/// \file bench_table1_2_timing.cpp
/// Reproduces paper Tables I and II: wall-clock of every pipeline
/// stage for a 1 MeV/cm^2 normally incident burst, repeated
/// ADAPT_TIMING_REPS times (default 60; paper: 300), all stages
/// OpenMP-parallel.
///
/// The paper measures on a Raspberry Pi 3B+ (Table I) and an Intel
/// Atom E3845 (Table II); neither platform exists here, so the table
/// reports this host's times next to both papers' reference columns
/// (see DESIGN.md's substitution note).  The reproduction targets are
/// the stage *breakdown* — reconstruction, localization setup, the two
/// network inferences, approximation+refinement — and the accounting
/// that a full 5-iteration run stays within a small multiple of the
/// single-stage costs (sub-second end-to-end on flight-class CPUs).

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const std::size_t reps = eval::env_size("ADAPT_TIMING_REPS", 60);
  std::printf("=== Tables I & II — pipeline stage timing ===\n");
  std::printf("reproduces: paper Tables I (RPi 3B+) and II (Atom E3845)\n");
  std::printf("repetitions: %zu (paper: 300; scale with ADAPT_TIMING_REPS)\n\n",
              reps);

  eval::TrialSetup setup = bench::default_setup();
  setup.grb.fluence = 1.0;
  setup.grb.polar_deg = 0.0;
  eval::ModelProvider provider(setup, bench::provider_config());
  const eval::TrialRunner runner(setup);

  eval::PipelineVariant ml;
  ml.background_net = &provider.background_net();
  ml.deta_net = &provider.deta_net();

  // Rep r draws from Rng(0x71e + r) via the deterministic trial
  // harness.  The stage rows come from the pipeline's own telemetry
  // timers (the same instrumentation `adaptctl --metrics` reports),
  // not from bench-local stopwatches: each histogram sample is one
  // pass through the stage.
  const bench::StageBreakdown stats =
      bench::collect_stage_breakdown(runner, ml, 0x71e, reps);
  const core::telemetry::HistogramData& recon = stats.recon;
  const core::telemetry::HistogramData& loc_setup = stats.loc_setup;
  const core::telemetry::HistogramData& deta_nn = stats.deta_nn;
  const core::telemetry::HistogramData& bkg_nn = stats.bkg_nn;
  const core::telemetry::HistogramData& approx_refine = stats.approx_refine;
  const core::telemetry::HistogramData& total = stats.total;

  const auto row = [](const char* stage,
                      const core::telemetry::HistogramData& s,
                      const char* rpi, const char* atom) {
    return std::vector<std::string>{
        stage, core::TextTable::num(s.mean(), 1),
        core::TextTable::num(s.min, 0) + "-" +
            core::TextTable::num(s.max, 0),
        rpi, atom};
  };

  core::TextTable table({"stage", "host mean (ms)", "host range (ms)",
                         "paper RPi 3B+ (ms)", "paper Atom (ms)"});
  table.add_row(row("Reconstruction", recon, "36.9 (35-44)", "18.6 (15-26)"));
  table.add_row(row("Localization Setup", loc_setup, "35.4 (34-99)",
                    "12.1 (12-13)"));
  table.add_row(row("DEta NN Inference", deta_nn, "31.0 (17-41)",
                    "5.5 (5-6)"));
  table.add_row(row("Bkg NN Inference", bkg_nn, "36.1 (22-58)",
                    "14.7 (14-15)"));
  table.add_row(row("Approx + Refine", approx_refine, "91.7 (89-107)",
                    "18.5 (17-21)"));
  table.add_row(row("Total (Max 5 iter)", total, "834.0 (730-1116)",
                    "220.7 (204-246)"));
  table.print(std::cout, "Per-stage pipeline timing (ML pipeline, Fig. 6)");
  table.write_csv("bench_table1_2_timing.csv");

  std::printf(
      "\nshape checks:\n"
      "  total / (recon + setup + both NNs + approx-refine) = %.2f "
      "(paper RPi: %.2f, Atom: %.2f —\n  the 5-iteration total is a small "
      "multiple of the single-pass stage sum)\n"
      "  end-to-end total is %s the paper's sub-second budget on this "
      "host.\n",
      total.mean() / (recon.mean() + loc_setup.mean() + deta_nn.mean() +
                      bkg_nn.mean() + approx_refine.mean()),
      834.0 / (36.9 + 35.4 + 31.0 + 36.1 + 91.7),
      220.7 / (18.6 + 12.1 + 5.5 + 14.7 + 18.5),
      total.mean() < 1000.0 ? "within" : "outside");
  return 0;
}
