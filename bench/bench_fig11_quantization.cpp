/// \file bench_fig11_quantization.cpp
/// Reproduces paper Fig. 11: localization accuracy when the background
/// network runs in INT8 (quantization-aware trained, integer
/// inference) instead of FP32, across source polar angles at
/// 1 MeV/cm^2.  The dEta network stays FP32 in both configurations,
/// exactly as in the paper.
///
/// Paper shape: "the INT8 model performs almost as well as FP32 68% of
/// the time.  However, 95% containment values become less accurate."

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xF16'11);
  bench::print_banner("Fig. 11 — INT8-quantized background network",
                      "paper Fig. 11 (Sec. V)", cc);

  eval::TrialSetup setup = bench::default_setup();
  eval::ModelProvider provider(setup, bench::provider_config());

  eval::PipelineVariant fp32;
  fp32.background_net = &provider.background_net();
  fp32.deta_net = &provider.deta_net();
  eval::PipelineVariant int8;
  int8.background_net = &provider.background_net_int8();
  int8.deta_net = &provider.deta_net();

  core::TextTable table({"polar [deg]", "FP32 68%", "FP32 95%", "INT8 68%",
                         "INT8 95%"});
  double sum_gap_68 = 0.0;
  int points = 0;
  for (double angle = 0.0; angle <= 80.0; angle += 10.0) {
    eval::TrialSetup s = setup;
    s.grb.polar_deg = angle;
    const eval::TrialRunner runner(s);
    const auto full = eval::measure_containment(runner, fp32, cc);
    const auto quant = eval::measure_containment(runner, int8, cc);
    table.add_row({core::TextTable::num(angle, 0), bench::pm(full.c68),
                   bench::pm(full.c95), bench::pm(quant.c68),
                   bench::pm(quant.c95)});
    sum_gap_68 += quant.c68.mean - full.c68.mean;
    ++points;
  }
  table.print(std::cout,
              "Localization error [deg], FP32 vs INT8 background network, "
              "1 MeV/cm^2");
  table.write_csv("bench_fig11_quantization.csv");

  std::printf(
      "\nshape check: mean 68%% containment gap (INT8 - FP32) across "
      "angles = %+.2f deg\n(paper: near zero — INT8 performs almost as "
      "well at 68%%).\n",
      sum_gap_68 / points);
  return 0;
}
