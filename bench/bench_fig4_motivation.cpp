/// \file bench_fig4_motivation.cpp
/// Reproduces paper Fig. 4: the motivation study quantifying how much
/// background particles and d_eta mis-estimation each cost the prior
/// (no-ML) pipeline.
///
/// Three configurations of a 1 MeV/cm^2, normally incident burst:
///   "Full"            — the realistic pipeline input (background
///                       present, propagated d_eta);
///   "No background"   — oracle removal of every background ring;
///   "True d_eta"      — oracle replacement of d_eta by the actual
///                       |eta error| of each ring.
/// Reported: 68% and 95% containment with meta-trial error bars.
///
/// Paper values (deg, read from Fig. 4): Full ~12 / ~38;
/// No background ~7 / ~20; True d_eta ~3 / ~8.  Expected shape: both
/// oracles improve substantially on Full, with 95% containment gaining
/// the most.  Absolute numbers differ (our simulator is not the
/// authors' Geant4 model); the ordering and the relative factors are
/// the reproduction target.

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xF16'4);
  bench::print_banner("Fig. 4 — impact of background and d_eta error",
                      "paper Fig. 4 (Sec. II)", cc);

  eval::TrialSetup setup = bench::default_setup();
  setup.grb.fluence = 1.0;
  setup.grb.polar_deg = 0.0;
  const eval::TrialRunner runner(setup);

  struct Config {
    const char* label;
    eval::PipelineVariant variant;
    const char* paper;
  };
  eval::PipelineVariant full;
  eval::PipelineVariant no_bkg;
  no_bkg.oracle_remove_background = true;
  eval::PipelineVariant true_deta;
  true_deta.oracle_true_deta = true;

  const Config configs[] = {
      {"Full (bkg + est. d_eta)", full, "~12 / ~38"},
      {"No background (oracle)", no_bkg, "~7 / ~20"},
      {"True d_eta (oracle)", true_deta, "~3 / ~8"},
  };

  core::TextTable table({"configuration", "68% cont. [deg]",
                         "95% cont. [deg]", "paper 68%/95% [deg]",
                         "mean rings (grb/bkg)"});
  double full_c95 = 0.0;
  for (const Config& cfg : configs) {
    const auto summary = eval::measure_containment(runner, cfg.variant, cc);
    if (std::string(cfg.label).rfind("Full", 0) == 0)
      full_c95 = summary.c95.mean;
    table.add_row({cfg.label, bench::pm(summary.c68), bench::pm(summary.c95),
                   cfg.paper,
                   core::TextTable::num(summary.mean_rings_grb, 0) + " / " +
                       core::TextTable::num(summary.mean_rings_background, 0)});
  }
  table.print(std::cout, "Localization error, 1 MeV/cm^2 burst at 0 deg");
  table.write_csv("bench_fig4_motivation.csv");

  std::printf(
      "\nshape check: both oracle corrections should beat the full "
      "configuration,\nand the paper's 2-3x background-to-GRB ring ratio "
      "should hold in the rings column.\n(full-config 95%% containment: "
      "%.2f deg)\n",
      full_c95);
  return 0;
}
