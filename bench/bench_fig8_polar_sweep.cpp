/// \file bench_fig8_polar_sweep.cpp
/// Reproduces paper Fig. 8: localization accuracy versus source polar
/// angle (0-80 degrees) for a 1 MeV/cm^2 burst, with and without the
/// neural networks.
///
/// Paper shape: the ML pipeline is consistently at or below the no-ML
/// curve, with the largest gains in the 95% containment tail; the
/// paper's summary claim — "across all polar angles, ADAPT can
/// localize GRBs with fluence at least 1 MeV/cm^2 to within 6 degrees
/// of error at least 68% of the time" — is checked at the end.

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xF16'8);
  bench::print_banner("Fig. 8 — accuracy vs polar angle, with/without ML",
                      "paper Fig. 8 (Sec. IV)", cc);

  eval::TrialSetup setup = bench::default_setup();
  eval::ModelProvider provider(setup, bench::provider_config());

  eval::PipelineVariant no_ml;
  eval::PipelineVariant ml;
  ml.background_net = &provider.background_net();
  ml.deta_net = &provider.deta_net();

  core::TextTable table({"polar [deg]", "no-ML 68%", "no-ML 95%", "ML 68%",
                         "ML 95%"});
  bool claim_holds = true;
  double worst_ml_c68 = 0.0;
  for (double angle = 0.0; angle <= 80.0; angle += 10.0) {
    eval::TrialSetup s = setup;
    s.grb.polar_deg = angle;
    const eval::TrialRunner runner(s);
    const auto plain = eval::measure_containment(runner, no_ml, cc);
    const auto with_ml = eval::measure_containment(runner, ml, cc);
    table.add_row({core::TextTable::num(angle, 0), bench::pm(plain.c68),
                   bench::pm(plain.c95), bench::pm(with_ml.c68),
                   bench::pm(with_ml.c95)});
    worst_ml_c68 = std::max(worst_ml_c68, with_ml.c68.mean);
    if (with_ml.c68.mean > 6.0) claim_holds = false;
  }
  table.print(std::cout,
              "Localization error [deg] vs polar angle, 1 MeV/cm^2");
  table.write_csv("bench_fig8_polar_sweep.csv");

  std::printf(
      "\npaper claim (Sec. IV): 1 MeV/cm^2 localized to within 6 deg at "
      "68%% across all polar angles.\nmeasured: worst ML 68%% containment "
      "= %.2f deg -> claim %s on this instrument model.\n",
      worst_ml_c68, claim_holds ? "HOLDS" : "does NOT hold");
  return 0;
}
