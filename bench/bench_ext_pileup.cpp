/// \file bench_ext_pileup.cpp
/// Extension experiment (the paper's first item of future work,
/// Sec. VI): "consideration of additional sources of error, such as
/// multiple events that arrive simultaneously to within the detection
/// latency of the instrument."
///
/// We sweep the detection-latency window: coincident events are read
/// out merged, producing corrupted trajectories.  Reported: ring yield
/// per window, pileup fraction, and localization containment with and
/// without the ML pipeline.  Expected: graceful degradation, with the
/// ML pipeline retaining an edge (piled-up events are mostly rejected
/// by reconstruction's kinematic cuts; survivors look like background
/// to the classifier).

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xE117);
  bench::print_banner("Extension — detection-latency pileup",
                      "paper Sec. VI future work (not evaluated there)", cc);

  eval::TrialSetup setup = bench::default_setup();
  setup.grb.fluence = 1.0;
  setup.grb.polar_deg = 0.0;
  eval::ModelProvider provider(setup, bench::provider_config());

  eval::PipelineVariant no_ml;
  eval::PipelineVariant ml;
  ml.background_net = &provider.background_net();
  ml.deta_net = &provider.deta_net();

  // Detected-event rates are ~1.4e4 per second in this configuration,
  // so tens of microseconds already produce heavy pileup.
  core::TextTable table({"latency window [us]", "mean rings", "no-ML 68%",
                         "no-ML 95%", "ML 68%", "ML 95%"});
  for (const double window_us : {0.0, 5.0, 20.0, 100.0}) {
    eval::TrialSetup s = setup;
    s.pileup.detection_latency_s = window_us * 1e-6;
    const eval::TrialRunner runner(s);
    const auto plain = eval::measure_containment(runner, no_ml, cc);
    const auto with_ml = eval::measure_containment(runner, ml, cc);
    table.add_row({core::TextTable::num(window_us, 0),
                   core::TextTable::num(plain.mean_rings_total, 0),
                   bench::pm(plain.c68), bench::pm(plain.c95),
                   bench::pm(with_ml.c68), bench::pm(with_ml.c95)});
  }
  table.print(std::cout,
              "Localization under event pileup, 1 MeV/cm^2 at 0 deg");
  table.write_csv("bench_ext_pileup.csv");

  std::printf(
      "\nreading: moderate windows INFLATE the ring count — two "
      "unreconstructable\nsingle-hit events merge into a fake but "
      "kinematically plausible 2-hit 'ring'\n(fake coincidences), "
      "poisoning localization; very wide windows merge events\ninto "
      "blobs that fail the energy cuts and the yield collapses.  Both "
      "regimes\ndegrade containment, motivating the paper's interest in "
      "modeling this error\nsource.\n");
  return 0;
}
