/// \file bench_fig9_fluence_sweep.cpp
/// Reproduces paper Fig. 9: localization accuracy versus GRB fluence
/// for normally incident bursts, with and without the networks.
///
/// Paper shape: accuracy degrades as the burst dims (the fixed
/// background swamps the shrinking signal), and the ML pipeline's
/// advantage grows toward dim fluences — the paper highlights
/// improvement "especially ... for dimmer GRBs".  At the bright end
/// both pipelines converge.

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xF16'9);
  bench::print_banner("Fig. 9 — accuracy vs fluence, with/without ML",
                      "paper Fig. 9 (Sec. IV)", cc);

  eval::TrialSetup setup = bench::default_setup();
  setup.grb.polar_deg = 0.0;
  eval::ModelProvider provider(setup, bench::provider_config());

  eval::PipelineVariant no_ml;
  eval::PipelineVariant ml;
  ml.background_net = &provider.background_net();
  ml.deta_net = &provider.deta_net();

  core::TextTable table({"fluence [MeV/cm^2]", "no-ML 68%", "no-ML 95%",
                         "ML 68%", "ML 95%"});
  double dim_gain = 0.0;
  for (const double fluence : {0.25, 0.5, 0.75, 1.0, 2.0}) {
    eval::TrialSetup s = setup;
    s.grb.fluence = fluence;
    const eval::TrialRunner runner(s);
    const auto plain = eval::measure_containment(runner, no_ml, cc);
    const auto with_ml = eval::measure_containment(runner, ml, cc);
    table.add_row({core::TextTable::num(fluence, 2), bench::pm(plain.c68),
                   bench::pm(plain.c95), bench::pm(with_ml.c68),
                   bench::pm(with_ml.c95)});
    if (fluence == 0.5) dim_gain = plain.c68.mean - with_ml.c68.mean;
  }
  table.print(std::cout,
              "Localization error [deg] vs fluence, normal incidence");
  table.write_csv("bench_fig9_fluence_sweep.csv");

  std::printf(
      "\nshape check: ML's 68%% containment gain at the dim 0.5 MeV/cm^2 "
      "point is %.1f deg\n(positive = ML better, the paper's headline "
      "behaviour).\n",
      dim_gain);
  return 0;
}
