/// \file bench_ablation_deta.cpp
/// Ablation of the dEta estimator (the paper's second network).
///
/// Two questions:
///   1. Calibration — is the quoted d_eta statistically honest?  For
///      each estimator we measure the *coverage*: the fraction of GRB
///      rings whose true |eta error| falls within k * d_eta for
///      k = 1, 2, 3.  An honest Gaussian width gives ~68/95/99.7%.
///      The paper's motivating observation (Sec. II) is that
///      propagation of error is over-confident ("many rings have much
///      larger actual errors in eta than our estimates predict").
///   2. Localization impact — containment with propagated d_eta, with
///      the network's d_eta, and with the truth oracle, holding
///      background rejection fixed (the paper's own network).

#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xAB1A'2);
  bench::print_banner("Ablation — dEta estimator quality",
                      "supports paper Sec. II / Fig. 4 (d_eta error bars)",
                      cc);

  eval::TrialSetup setup = bench::default_setup();
  eval::ModelProvider provider(setup, bench::provider_config());

  // ---- 1. Coverage calibration over a fresh simulated sample -------
  const eval::TrialRunner runner(setup);
  std::vector<recon::ComptonRing> grb_rings;
  core::Vec3 true_source;
  {
    core::Rng rng(0xCA11);
    for (int window = 0; window < 4; ++window) {
      const auto rings = runner.reconstruct_window(rng, &true_source);
      for (const auto& r : rings) {
        if (r.origin == detector::Origin::kGrb) grb_rings.push_back(r);
      }
    }
  }
  const auto nn_d_eta =
      provider.deta_net().predict(grb_rings, setup.grb.polar_deg);

  core::TextTable coverage({"estimator", "within 1 sigma [%]",
                            "within 2 sigma [%]", "within 3 sigma [%]",
                            "(honest Gaussian: 68 / 95 / 99.7)"});
  const auto coverage_row = [&](const char* label, auto width_of) {
    double within[3] = {0, 0, 0};
    for (std::size_t i = 0; i < grb_rings.size(); ++i) {
      const double err = std::abs(grb_rings[i].eta_error(true_source));
      const double w = width_of(i);
      for (int k = 1; k <= 3; ++k)
        if (err < k * w) within[k - 1] += 1.0;
    }
    const auto n = static_cast<double>(grb_rings.size());
    coverage.add_row({label, core::TextTable::num(100 * within[0] / n, 1),
                      core::TextTable::num(100 * within[1] / n, 1),
                      core::TextTable::num(100 * within[2] / n, 1), ""});
  };
  const double cal = provider.deta_calibration();
  coverage_row("propagation of error",
               [&](std::size_t i) { return grb_rings[i].d_eta; });
  coverage_row("dEta network (raw)",
               [&](std::size_t i) { return nn_d_eta[i]; });
  coverage_row("dEta network (coverage-calibrated)",
               [&](std::size_t i) { return cal * nn_d_eta[i]; });
  coverage.print(std::cout,
                 "Coverage of the true |eta error| (" +
                     std::to_string(grb_rings.size()) +
                     " GRB rings; calibration factor " +
                     core::TextTable::num(cal, 2) + ")");

  // ---- 2. Localization impact --------------------------------------
  eval::PipelineVariant propagated;
  propagated.background_net = &provider.background_net();
  eval::PipelineVariant with_nn = propagated;
  with_nn.deta_net = &provider.deta_net();
  eval::PipelineVariant oracle = propagated;
  oracle.oracle_true_deta = true;

  core::TextTable impact({"d_eta source", "68% cont. [deg]",
                          "95% cont. [deg]"});
  const struct {
    const char* label;
    const eval::PipelineVariant* variant;
  } rows[] = {{"propagation of error", &propagated},
              {"dEta network", &with_nn},
              {"truth oracle", &oracle}};
  for (const auto& r : rows) {
    const auto summary = eval::measure_containment(runner, *r.variant, cc);
    impact.add_row(
        {r.label, bench::pm(summary.c68), bench::pm(summary.c95)});
  }
  impact.print(std::cout,
               "Localization with background rejection fixed, "
               "1 MeV/cm^2 at 0 deg");
  impact.write_csv("bench_ablation_deta.csv");

  std::printf(
      "\nreading: propagation of error under-covers (the paper's 'false "
      "certainty');\nthe calibrated network is honest by construction "
      "(~68/95/99.7).  Localization\ndeploys the RAW network: a uniform "
      "width inflation would loosen the robust\ninlier cut without adding "
      "per-ring discrimination (the truth-oracle row shows\nwhat per-ring "
      "discrimination is worth).\n");
  return 0;
}
