/// \file bench_ext_quant_strategies.cpp
/// Extension experiment (the paper's second item of future work,
/// Sec. VI): "a broader range of quantization strategies for our
/// models."
///
/// We sweep the weight bit width (8/6/4 bits, symmetric) and compare
/// per-channel against per-tensor weight scales, reporting:
///   * classification agreement with the FP32 reference on a realistic
///     ring batch;
///   * localization containment with the quantized background network
///     in the loop;
///   * the analytic FPGA kernel's II and resources at that width.
///
/// Expected: INT8 is essentially free (Fig. 11's finding); accuracy
/// erodes as bits shrink while FPGA resources keep improving —
/// mapping the trade-off space the paper proposes to explore.

#include <iostream>

#include "bench_common.hpp"
#include "fpga/hls_model.hpp"
#include "nn/mlp.hpp"
#include "quant/qat_io.hpp"
#include "quant/qat_linear.hpp"
#include "quant/quantized_mlp.hpp"

using namespace adapt;

int main() {
  auto cc = bench::containment_config(0xE117'2);
  bench::print_banner("Extension — quantization strategy sweep",
                      "paper Sec. VI future work (not evaluated there)", cc);

  eval::TrialSetup setup = bench::default_setup();
  eval::ModelProvider provider(setup, bench::provider_config());

  // Rebuild the QAT stack from the cached calibrated model at each
  // strategy (weights and activation ranges are shared; only the
  // weight quantizer changes).
  const auto qat_path = std::string("adaptml_models/background_qat.adqt");
  auto saved = quant::load_qat_model(qat_path);
  if (!saved) {
    std::printf("missing %s — run examples/train_models first\n",
                qat_path.c_str());
    return 1;
  }

  // FP32 reference logits on a realistic batch.
  const eval::TrialRunner runner(setup);
  core::Rng rng(31337);
  const auto rings = runner.reconstruct_window(rng);
  auto& fp32_net = provider.background_net();
  const auto ref = fp32_net.classify(rings, 30.0);

  struct Strategy {
    const char* label;
    quant::QuantStrategy strategy;
    int fpga_bits;
  };
  const Strategy strategies[] = {
      {"INT8 per-channel (paper)", {8, true}, 8},
      {"INT8 per-tensor", {8, false}, 8},
      {"INT6 per-channel", {6, true}, 6},
      {"INT4 per-channel", {4, true}, 4},
      {"INT4 per-tensor", {4, false}, 4},
  };

  const auto kernel_spec = fpga::kernel_spec_from(provider.fused_background());

  core::TextTable table({"strategy", "agree w/ FP32 [%]", "ML 68% [deg]",
                         "ML 95% [deg]", "FPGA II [cyc]", "FPGA DSP",
                         "FPGA BRAM"});
  cc.trials = std::max<std::size_t>(cc.trials / 2, 10);  // Keep runtime sane.
  for (const Strategy& s : strategies) {
    // Re-apply the strategy to the calibrated QAT stack.
    auto reloaded = quant::load_qat_model(qat_path);
    for (std::size_t i = 0; i < reloaded->model.n_layers(); ++i) {
      if (auto* lin = dynamic_cast<quant::QatLinear*>(
              &reloaded->model.layer(i))) {
        lin->set_weight_bits(s.strategy.weight_bits);
        lin->set_per_channel(s.strategy.per_channel);
      }
    }
    pipeline::BackgroundNet net(
        quant::export_quantized(reloaded->model), reloaded->standardizer,
        pipeline::PolarThresholds::from_metadata(reloaded->metadata), true);

    const auto cls = net.classify(rings, 30.0);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < cls.size(); ++i)
      if (cls[i] == ref[i]) ++agree;

    eval::PipelineVariant variant;
    variant.background_net = &net;
    variant.deta_net = &provider.deta_net();
    const auto summary = eval::measure_containment(runner, variant, cc);

    const auto model = fpga::DataTypeModel::narrow_int(s.fpga_bits);
    const auto kernel = fpga::synthesize(kernel_spec, fpga::DataType::kInt8,
                                         {}, &model);

    table.add_row(
        {s.label,
         core::TextTable::num(
             100.0 * static_cast<double>(agree) / static_cast<double>(cls.size()), 1),
         bench::pm(summary.c68), bench::pm(summary.c95),
         core::TextTable::integer(static_cast<long long>(kernel.ii_cycles)),
         core::TextTable::integer(static_cast<long long>(kernel.dsp)),
         core::TextTable::integer(static_cast<long long>(kernel.bram))});
  }
  table.print(std::cout,
              "Quantization strategies: accuracy vs FPGA cost "
              "(1 MeV/cm^2 at 0 deg)");
  table.write_csv("bench_ext_quant_strategies.csv");

  std::printf(
      "\nreading: accuracy should be flat INT8 -> INT6 and erode at "
      "INT4 (per-tensor\nworst), while II/DSP/BRAM keep shrinking — the "
      "trade-off space of the paper's\nproposed future study.\n");
  return 0;
}
