#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the reproduction benches (one binary per
/// paper table/figure; see DESIGN.md Sec. 3).
///
/// Scale knobs (environment variables):
///   ADAPT_TRIALS        localization trials per meta-trial
///                       (default 40; paper: 1000)
///   ADAPT_META_TRIALS   meta-trials for error bars
///                       (default 3; paper: 10)
///   ADAPT_TRAIN_RINGS   training rings per polar angle
///                       (default 5000; paper-equivalent: ~110000)
///   ADAPT_TRAIN_EPOCHS  training epoch cap (default 45; paper: 120)
///   ADAPT_TIMING_REPS   repetitions for the timing tables
///                       (default 60; paper: 300)
///
/// Every bench prints the measured rows next to the paper's reported
/// values so shape comparisons are immediate; EXPERIMENTS.md records
/// the outcome.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/telemetry.hpp"
#include "eval/containment.hpp"
#include "eval/model_provider.hpp"
#include "eval/trial.hpp"

namespace adapt::bench {

/// Canonical instrument + workload configuration every experiment
/// starts from (1 MeV/cm^2 burst, calibrated background, defaults
/// everywhere else).
inline eval::TrialSetup default_setup() { return eval::TrialSetup{}; }

/// Containment protocol sized from the environment.
inline eval::ContainmentConfig containment_config(std::uint64_t seed) {
  eval::ContainmentConfig cfg;
  cfg.trials = eval::env_size("ADAPT_TRIALS", 40);
  cfg.meta_trials = eval::env_size("ADAPT_META_TRIALS", 3);
  cfg.seed = seed;
  return cfg;
}

/// Model provider sized from the environment, sharing the canonical
/// on-disk cache across benches.
inline eval::ModelProviderConfig provider_config() {
  eval::ModelProviderConfig cfg;
  cfg.dataset.rings_per_angle =
      eval::env_size("ADAPT_TRAIN_RINGS", cfg.dataset.rings_per_angle);
  cfg.max_epochs = eval::env_size("ADAPT_TRAIN_EPOCHS", cfg.max_epochs);
  return cfg;
}

/// "12.34 +- 0.56" formatting for containment cells.
inline std::string pm(const core::MeanStd& m) {
  return core::TextTable::num(m.mean, 2) + " +- " +
         core::TextTable::num(m.stddev, 2);
}

/// Per-stage timing breakdown for the Table I/II-style benches, taken
/// straight from the pipeline's own telemetry timers rather than
/// bench-local stopwatches.  Each instrumented scope is ONE pass
/// through the stage (as in the paper, whose per-stage rows sum to
/// well below the 5-iteration total): the background network and
/// approx+refine record once per Fig. 6 iteration, the other stages
/// once per trial.
struct StageBreakdown {
  core::telemetry::HistogramData recon;
  core::telemetry::HistogramData loc_setup;
  core::telemetry::HistogramData deta_nn;
  core::telemetry::HistogramData bkg_nn;
  core::telemetry::HistogramData approx_refine;
  core::telemetry::HistogramData total;  ///< Full trial incl. recon.
};

/// Runs `reps` independent timing trials through the deterministic
/// harness (rep r draws from Rng(base_seed + r)) with telemetry
/// enabled, and returns the per-stage histograms accumulated by the
/// batch.  The event counts in the breakdown are schedule-independent;
/// the timing values are wall-clock.
inline StageBreakdown collect_stage_breakdown(
    const eval::TrialRunner& runner, const eval::PipelineVariant& variant,
    std::uint64_t base_seed, std::size_t reps) {
  namespace tm = core::telemetry;
  const bool was_enabled = tm::enabled();
  tm::set_enabled(true);
  tm::Snapshot delta;
  eval::run_trials(runner, variant, base_seed, reps, /*parallel=*/true,
                   &delta);
  tm::set_enabled(was_enabled);

  StageBreakdown b;
  b.recon = delta.histograms["recon.window_ms"];
  b.loc_setup = delta.histograms["pipeline.setup_ms"];
  b.deta_nn = delta.histograms["pipeline.deta_nn_ms"];
  b.bkg_nn = delta.histograms["pipeline.bkg_nn_ms"];
  b.approx_refine = delta.histograms["pipeline.approx_refine_ms"];
  b.total = delta.histograms["eval.trial_total_ms"];
  return b;
}

/// Standard bench banner with the effective statistics.
inline void print_banner(const char* name, const char* paper_ref,
                         const eval::ContainmentConfig& cfg) {
  std::printf("=== %s ===\n", name);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf(
      "statistics: %zu trials x %zu meta-trials per point "
      "(paper: 1000 x 10; scale with ADAPT_TRIALS / ADAPT_META_TRIALS)\n\n",
      cfg.trials, cfg.meta_trials);
}

}  // namespace adapt::bench
