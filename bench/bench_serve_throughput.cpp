/// \file bench_serve_throughput.cpp
/// Throughput and latency of the streaming serving layer
/// (`adapt::serve`) versus the per-ring baseline it replaces.
///
/// Setup: a fixed synthetic event stream (seeded, paper-dimension
/// networks) is pushed through
///   * the per-ring baseline — one single-ring forward pair per event,
///     no queue, no batching;
///   * the serve path at a sweep of micro-batch sizes — bounded queue,
///     deadline-or-size flush, one batched forward per flush.
/// Reported per row: events/s, p50/p99 end-to-end latency, batches,
/// shed count (must be 0 below saturation — the queue is sized to hold
/// the whole stream), then one deliberately saturated row (tiny queue)
/// to show the shed-oldest + degrade overload behavior.
///
/// The last CSV block is what tools/check_timing_regression.sh gates
/// on.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "serve/synthetic_models.hpp"
#include "serve/throughput.hpp"

using namespace adapt;

namespace {

struct Row {
  const char* label;
  serve::ThroughputReport report;
};

void print_row(core::TextTable& table, const Row& row) {
  table.add_row({row.label,
                 core::TextTable::num(row.report.events_per_s / 1e3, 1),
                 core::TextTable::num(row.report.p50_latency_ms, 3),
                 core::TextTable::num(row.report.p99_latency_ms, 3),
                 std::to_string(row.report.batches),
                 std::to_string(row.report.shed),
                 std::to_string(row.report.degraded)});
}

}  // namespace

int main() {
  std::cout << "=== Serving-layer throughput: batched vs per-ring ===\n"
            << "synthetic paper-dimension networks, INT8 background +"
               " FP32 dEta, seeded stream\n\n";

  auto background = serve::synthetic_background_net_int8(0x5EB7E);
  auto deta = serve::synthetic_deta_net(0x5EB7D);
  const pipeline::Models models{&background, &deta};

  serve::ThroughputConfig base;
  base.events = 20000;
  base.producers = 2;
  base.queue_capacity = 32768;  // Holds the whole stream: shed == 0.
  base.seed = 42;

  std::vector<Row> rows;
  rows.push_back({"per-ring loop (no batching)",
                  serve::measure_per_ring_baseline(models, base)});

  const std::size_t batch_sizes[] = {1, 2, 4, 8, 16, 32, 64};
  std::vector<std::string> labels;
  for (const std::size_t b : batch_sizes)
    labels.push_back("serve, batch " + std::to_string(b));
  for (std::size_t i = 0; i < std::size(batch_sizes); ++i) {
    serve::ThroughputConfig cfg = base;
    cfg.max_batch = batch_sizes[i];
    rows.push_back(
        {labels[i].c_str(), serve::measure_serve_throughput(models, cfg)});
  }

  // Saturation row: a queue far smaller than the stream, all producers
  // hammering.  Shedding and degradation must both engage.
  serve::ThroughputConfig saturated = base;
  saturated.events = 5000;
  saturated.producers = 4;
  saturated.queue_capacity = 64;
  saturated.max_batch = 8;  // Post-pop depth stays above the degrade
                            // watermark while the backlog drains.
  rows.push_back({"serve, saturated (queue 64)",
                  serve::measure_serve_throughput(models, saturated)});

  core::TextTable table({"configuration", "kevents/s", "p50 [ms]",
                         "p99 [ms]", "batches", "shed", "degraded"});
  for (const Row& row : rows) print_row(table, row);
  table.print(std::cout);

  // Acceptance signals, spelled out.
  const double baseline_eps = rows[0].report.events_per_s;
  double batch8_eps = 0.0;
  for (std::size_t i = 0; i < std::size(batch_sizes); ++i)
    if (batch_sizes[i] == 8) batch8_eps = rows[1 + i].report.events_per_s;
  std::cout << "\nbatched (8) vs per-ring speedup: "
            << core::TextTable::num(batch8_eps / baseline_eps, 2) << "x\n";

  // Machine-readable block for the timing-regression gate.
  std::printf("\nCSV,config,events_per_s,p50_ms,p99_ms,shed\n");
  std::printf("CSV,per_ring,%.0f,%.4f,%.4f,%llu\n", rows[0].report.events_per_s,
              rows[0].report.p50_latency_ms, rows[0].report.p99_latency_ms,
              static_cast<unsigned long long>(rows[0].report.shed));
  for (std::size_t i = 0; i < std::size(batch_sizes); ++i) {
    const auto& r = rows[1 + i].report;
    std::printf("CSV,batch_%zu,%.0f,%.4f,%.4f,%llu\n", batch_sizes[i],
                r.events_per_s, r.p50_latency_ms, r.p99_latency_ms,
                static_cast<unsigned long long>(r.shed));
  }
  const auto& sat = rows.back().report;
  std::printf("CSV,saturated,%.0f,%.4f,%.4f,%llu\n", sat.events_per_s,
              sat.p50_latency_ms, sat.p99_latency_ms,
              static_cast<unsigned long long>(sat.shed));
  return 0;
}
