/// \file bench_table3_fpga.cpp
/// Reproduces paper Table III: synthesis/performance of the background
/// network as an FPGA dataflow kernel, INT8 versus FP32.
///
/// The kernel is the layer-swapped, BN-fused background network with
/// the final sigmoid elided (a prior threshold on the logit replaces
/// it — the sigmoid is bijective).  We have no Vitis toolchain, so the
/// numbers come from the calibrated analytic HLS model in adapt::fpga
/// (see DESIGN.md's substitution table); the INT8-vs-FP32 ratios are
/// the reproduction target, and the paper's reported values are
/// printed alongside.

#include <iostream>

#include "bench_common.hpp"
#include "fpga/hls_model.hpp"

using namespace adapt;

int main() {
  std::printf("=== Table III — FPGA kernel, INT8 vs FP32 ===\n");
  std::printf("reproduces: paper Table III (Sec. V)\n\n");

  // The kernel layer stack is architectural (13 -> 256 -> 128 -> 64 ->
  // 1 with ReLU between): identical whether or not a trained model is
  // on disk, so the bench does not need the model cache.
  const std::vector<fpga::KernelLayerSpec> layers = {
      {13, 256, true}, {256, 128, true}, {128, 64, true}, {64, 1, false}};

  const fpga::HlsConfig hls;  // 10 ns clock: the paper's conservative
                              // 100 MHz co-simulation setting.
  const auto int8 = fpga::synthesize(layers, fpga::DataType::kInt8, hls);
  const auto fp32 = fpga::synthesize(layers, fpga::DataType::kFp32, hls);

  constexpr std::size_t kRings = 597;  // Paper: mean rings in the first
                                       // background-network iteration.

  core::TextTable table(
      {"statistic", "INT8 (model)", "FP32 (model)", "INT8 (paper)",
       "FP32 (paper)"});
  table.add_row({"Latency (cycles)",
                 core::TextTable::integer(static_cast<long long>(int8.latency_cycles)),
                 core::TextTable::integer(static_cast<long long>(fp32.latency_cycles)),
                 "881", "1891"});
  table.add_row({"Initiation Interval (cycles)",
                 core::TextTable::integer(static_cast<long long>(int8.ii_cycles)),
                 core::TextTable::integer(static_cast<long long>(fp32.ii_cycles)),
                 "692", "1209"});
  table.add_row({"BRAM Blocks",
                 core::TextTable::integer(static_cast<long long>(int8.bram)),
                 core::TextTable::integer(static_cast<long long>(fp32.bram)),
                 "15", "144"});
  table.add_row({"DSP Slices",
                 core::TextTable::integer(static_cast<long long>(int8.dsp)),
                 core::TextTable::integer(static_cast<long long>(fp32.dsp)),
                 "4304", "7467"});
  table.add_row({"Flip-Flops",
                 core::TextTable::integer(static_cast<long long>(int8.ff)),
                 core::TextTable::integer(static_cast<long long>(fp32.ff)),
                 "366545", "651014"});
  table.add_row({"Lookup Tables",
                 core::TextTable::integer(static_cast<long long>(int8.lut)),
                 core::TextTable::integer(static_cast<long long>(fp32.lut)),
                 "775986", "817041"});
  table.add_row({"Latency (ms) for 597 rings",
                 core::TextTable::num(int8.batch_latency_ms(kRings), 2),
                 core::TextTable::num(fp32.batch_latency_ms(kRings), 2),
                 "4.13", "7.22"});
  table.print(std::cout, "Quantization results on FPGA (100 MHz clock)");
  table.write_csv("bench_table3_fpga.csv");

  const double throughput_ratio =
      int8.throughput_per_second() / fp32.throughput_per_second();
  std::printf(
      "\nshape checks:\n"
      "  INT8 / FP32 throughput ratio: %.2fx (paper: ~1.75x)\n"
      "  INT8 597-ring latency vs paper's worst-case Atom NN time "
      "(15 ms): %.1fx faster (paper: ~3.6x)\n",
      throughput_ratio, 15.0 / int8.batch_latency_ms(kRings));
  return 0;
}
