/// \file bench_fig7_polar_feature.cpp
/// Reproduces paper Fig. 7: the effect of giving the networks the
/// source polar angle as a thirteenth input feature.
///
/// Two ML pipelines are compared across source polar angles at
/// 1 MeV/cm^2: one whose background network takes the polar feature
/// (and receives the pipeline's running estimate at inference, Fig. 6)
/// and one trained without it.  Paper shape: the polar-aware model is
/// at least as good everywhere, with the clearest gains at the lowest
/// and highest angles ("prediction performance at the lowest and
/// highest angles improves given a roughly correct estimate").

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xF16'7);
  bench::print_banner("Fig. 7 — impact of the polar-angle input feature",
                      "paper Fig. 7 (Sec. III)", cc);

  eval::TrialSetup setup = bench::default_setup();
  eval::ModelProvider provider(setup, bench::provider_config());

  eval::PipelineVariant with_polar;
  with_polar.background_net = &provider.background_net();
  with_polar.deta_net = &provider.deta_net();
  eval::PipelineVariant no_polar;
  no_polar.background_net = &provider.background_net_no_polar();
  no_polar.deta_net = &provider.deta_net();

  core::TextTable table({"polar [deg]", "no-polar 68%", "no-polar 95%",
                         "polar 68%", "polar 95%"});
  double edge_gain = 0.0;
  for (double angle = 0.0; angle <= 80.0; angle += 10.0) {
    eval::TrialSetup s = setup;
    s.grb.polar_deg = angle;
    const eval::TrialRunner runner(s);
    const auto without = eval::measure_containment(runner, no_polar, cc);
    const auto with = eval::measure_containment(runner, with_polar, cc);
    table.add_row({core::TextTable::num(angle, 0), bench::pm(without.c68),
                   bench::pm(without.c95), bench::pm(with.c68),
                   bench::pm(with.c95)});
    if (angle == 0.0 || angle == 80.0)
      edge_gain += without.c68.mean - with.c68.mean;
  }
  table.print(std::cout,
              "Localization error [deg]: background net with vs without "
              "the polar feature, 1 MeV/cm^2");
  table.write_csv("bench_fig7_polar_feature.csv");

  std::printf(
      "\nshape check: cumulative 68%% gain from the polar feature at the "
      "field-of-view edges (0 and 80 deg) = %.2f deg (paper: positive, "
      "edges benefit most).\n",
      edge_gain);
  return 0;
}
