/// \file bench_serve_multistream.cpp
/// Aggregate throughput, tail latency, and fairness of the multi-stream
/// serving layer (`serve::StreamRouter`) under the flood harness.
///
/// Setup: a seeded Zipf-skewed event stream over K logical streams is
/// pushed through the router (paper-dimension synthetic networks, the
/// same models as bench_serve_throughput so the streams_1 row is
/// directly comparable to that bench's batch_64 row).  Rows:
///   * streams_1        — parity config (1 stream / 1 shard / 1 worker):
///                        the router's fixed overhead over the
///                        single-stream InferenceServer;
///   * streams_10_uniform — 10 equal streams over 2 shards;
///   * streams_100_skew1  — 100 streams at Zipf skew 1.0 over 4 shards,
///                        the fleet-scale headline row;
///   * saturated        — 100 streams into deliberately tiny caps: the
///                        per-stream admission control must shed on the
///                        hot streams while the trickle streams keep
///                        delivering (fairness stays above its floor).
/// Below saturation the queues hold the whole stream, so shed must be
/// exactly 0 and fairness 1.0.
///
/// The final CSV block is what tools/check_timing_regression.sh gates
/// on: per-config events/s floor, shed == 0 for non-saturated rows,
/// and Jain fairness >= the baseline's min_fairness column.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "serve/flood.hpp"
#include "serve/synthetic_models.hpp"

using namespace adapt;

namespace {

struct Row {
  const char* label;
  const char* csv;
  serve::FloodReport report;
};

void print_row(core::TextTable& table, const Row& row) {
  table.add_row({row.label,
                 core::TextTable::num(row.report.events_per_s / 1e3, 1),
                 core::TextTable::num(row.report.p50_latency_ms, 3),
                 core::TextTable::num(row.report.p99_latency_ms, 3),
                 std::to_string(row.report.batches),
                 std::to_string(row.report.shed),
                 core::TextTable::num(row.report.fairness, 4)});
}

}  // namespace

int main() {
  std::cout << "=== Multi-stream serving: sharded queues + fairness ===\n"
            << "synthetic paper-dimension networks, INT8 background +"
               " FP32 dEta, seeded Zipf stream\n\n";

  auto background = serve::synthetic_background_net_int8(0x5EB7E);
  auto deta = serve::synthetic_deta_net(0x5EB7D);
  const pipeline::Models models{&background, &deta};

  // Protocol matches bench_serve_throughput: 20000 events, queues deep
  // enough to hold the whole stream (shed == 0 below saturation), two
  // producers, zero flush deadline (flush what is visible).
  serve::FloodConfig base;
  base.events = 20000;
  base.producers = 2;
  base.max_batch = 64;
  base.flush_deadline = std::chrono::microseconds(0);
  base.shard_capacity = 32768;
  base.per_stream_cap = 8192;
  base.seed = 42;

  std::vector<Row> rows;

  serve::FloodConfig one = base;
  one.streams = 1;
  one.shards = 1;
  one.workers = 1;
  // One stream carries the whole 20000-event load: its per-stream cap
  // must hold the full stream for the shed == 0 invariant to apply.
  one.per_stream_cap = one.shard_capacity;
  rows.push_back({"1 stream (parity, 1 shard)", "streams_1",
                  serve::measure_flood(models, one)});

  serve::FloodConfig ten = base;
  ten.streams = 10;
  ten.skew = 0.0;
  ten.shards = 2;
  ten.workers = 1;
  rows.push_back({"10 streams, uniform (2 shards)", "streams_10_uniform",
                  serve::measure_flood(models, ten)});

  serve::FloodConfig hundred = base;
  hundred.streams = 100;
  hundred.skew = 1.0;
  hundred.shards = 4;
  hundred.workers = 1;
  rows.push_back({"100 streams, skew 1.0 (4 shards)", "streams_100_skew1",
                  serve::measure_flood(models, hundred)});

  // Saturation row: caps far below the offered load.  The hot streams
  // must absorb the shedding (per-stream shed-oldest); the trickle
  // streams keep delivering, so fairness degrades but stays bounded.
  serve::FloodConfig saturated = base;
  saturated.events = 5000;
  saturated.streams = 100;
  saturated.skew = 1.5;
  saturated.producers = 4;
  saturated.shards = 4;
  saturated.workers = 1;
  saturated.shard_capacity = 512;
  saturated.per_stream_cap = 64;
  rows.push_back({"saturated (stream cap 64)", "saturated",
                  serve::measure_flood(models, saturated)});

  core::TextTable table({"configuration", "kevents/s", "p50 [ms]",
                         "p99 [ms]", "batches", "shed", "fairness"});
  for (const Row& row : rows) print_row(table, row);
  table.print(std::cout);

  std::cout << "\n100-stream aggregate vs 1-stream parity: "
            << core::TextTable::num(rows[2].report.events_per_s /
                                        rows[0].report.events_per_s,
                                    2)
            << "x\n";

  // Machine-readable block for the timing-regression gate.
  std::printf("\nCSV,config,events_per_s,p50_ms,p99_ms,shed,fairness\n");
  for (const Row& row : rows) {
    std::printf("CSV,%s,%.0f,%.4f,%.4f,%llu,%.4f\n", row.csv,
                row.report.events_per_s, row.report.p50_latency_ms,
                row.report.p99_latency_ms,
                static_cast<unsigned long long>(row.report.shed),
                row.report.fairness);
  }
  return 0;
}
