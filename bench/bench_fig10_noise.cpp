/// \file bench_fig10_noise.cpp
/// Reproduces paper Fig. 10: robustness to unmodeled measurement
/// error.  Gaussian noise with standard deviation eps% of each value
/// is added to every hit's position and energy before reconstruction,
/// for eps in {0, 1, 5, 10}.
///
/// Paper shape: errors grow with eps for both pipelines, but the ML
/// pipeline stays below the no-ML pipeline, and its 68% containment
/// grows more slowly with noise.

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xF16'10);
  bench::print_banner("Fig. 10 — robustness to perturbed inputs",
                      "paper Fig. 10 (Sec. IV)", cc);

  eval::TrialSetup setup = bench::default_setup();
  setup.grb.fluence = 1.0;
  setup.grb.polar_deg = 0.0;
  eval::ModelProvider provider(setup, bench::provider_config());

  eval::PipelineVariant no_ml;
  eval::PipelineVariant ml;
  ml.background_net = &provider.background_net();
  ml.deta_net = &provider.deta_net();

  core::TextTable table({"eps [%]", "no-ML 68%", "no-ML 95%", "ML 68%",
                         "ML 95%"});
  double ml_slope_num = 0.0;
  double plain_slope_num = 0.0;
  double ml_c68_at_0 = 0.0;
  double plain_c68_at_0 = 0.0;
  for (const double eps : {0.0, 1.0, 5.0, 10.0}) {
    eval::TrialSetup s = setup;
    s.readout.perturbation_percent = eps;
    const eval::TrialRunner runner(s);
    const auto plain = eval::measure_containment(runner, no_ml, cc);
    const auto with_ml = eval::measure_containment(runner, ml, cc);
    table.add_row({core::TextTable::num(eps, 0), bench::pm(plain.c68),
                   bench::pm(plain.c95), bench::pm(with_ml.c68),
                   bench::pm(with_ml.c95)});
    if (eps == 0.0) {
      ml_c68_at_0 = with_ml.c68.mean;
      plain_c68_at_0 = plain.c68.mean;
    }
    if (eps == 10.0) {
      ml_slope_num = with_ml.c68.mean - ml_c68_at_0;
      plain_slope_num = plain.c68.mean - plain_c68_at_0;
    }
  }
  table.print(std::cout,
              "Localization error [deg] under eps% Gaussian perturbation, "
              "1 MeV/cm^2 at 0 deg");
  table.write_csv("bench_fig10_noise.csv");

  std::printf(
      "\nshape check: 68%% containment growth from eps=0 to eps=10:\n"
      "  no-ML: %+.2f deg   ML: %+.2f deg\n"
      "(paper: the ML curve grows more slowly).\n",
      plain_slope_num, ml_slope_num);
  return 0;
}
