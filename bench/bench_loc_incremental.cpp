/// \file bench_loc_incremental.cpp
/// Cost model of the streaming localizer: per-ring incremental update
/// and query cost of loc::IncrementalLocalizer versus a full batch
/// SkyMap::compute, across grid resolutions.
///
/// The point being demonstrated (and gated by
/// tools/check_timing_regression.sh against
/// tools/bench_loc_incremental.baseline.csv):
///   * the per-ring update touches only the ring's truncation band —
///     a near-constant pixel count per ring — so its cost is sublinear
///     in the grid size, while the batch recompute is O(pixels*rings);
///   * `inc_update_res<r>` must therefore stay below `batch_res<r>`
///     at every resolution (a machine-independent structural check);
///   * the 68% credible radius shrinks monotonically-ish with ring
///     count, which is what makes the serve-layer early alert
///     (`adaptctl serve-bench --alert-deg`) useful.
///
/// Scale knobs: ADAPT_LOC_BENCH_RINGS (default 400) rings per stream,
/// ADAPT_LOC_BENCH_REPS (default 3) repetitions per timed cell.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "loc/incremental.hpp"
#include "loc/skymap.hpp"

using namespace adapt;

namespace {

/// Source-consistent cone stream with a background admixture — the
/// same construction the serve-bench alert mode feeds the streaming
/// localizer (throughput.cpp), minus the detector-side fields the
/// localizer never reads.
std::vector<recon::ComptonRing> make_rings(std::size_t n) {
  core::Rng rng(0x10c);
  const core::Vec3 source = core::from_spherical(
      core::deg_to_rad(35.0), core::deg_to_rad(120.0));
  constexpr double d_eta = 0.05;
  std::vector<recon::ComptonRing> rings(n);
  for (recon::ComptonRing& ring : rings) {
    ring.axis = rng.isotropic_direction();
    ring.d_eta = d_eta;
    if (rng.uniform() < 0.25) {
      ring.eta = rng.uniform(-1.0, 1.0);
    } else {
      ring.eta = std::clamp(ring.axis.dot(source) +
                                rng.normal(0.0, d_eta),
                            -1.0, 1.0);
    }
  }
  return rings;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const std::size_t n_rings = eval::env_size("ADAPT_LOC_BENCH_RINGS", 400);
  const std::size_t reps = eval::env_size("ADAPT_LOC_BENCH_REPS", 3);
  std::printf("=== incremental localizer cost model ===\n");
  std::printf(
      "stream: %zu rings (source-consistent + 25%% background), "
      "%zu reps per cell\n\n",
      n_rings, reps);

  const std::vector<recon::ComptonRing> rings = make_rings(n_rings);
  const double resolutions[] = {2.0, 1.0, 0.5};

  core::TextTable table(
      {"case", "mean_ms", "n_pixels", "touched/ring", "radius68_deg"});
  for (const double res : resolutions) {
    loc::SkyMapConfig bc;
    bc.resolution_deg = res;

    // Batch recompute: the cost an arriving ring pays if the whole
    // posterior is re-evaluated (what the serve layer would do without
    // the accumulator).
    double batch_ms = 0.0;
    double batch_radius = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const loc::SkyMap batch_map = loc::SkyMap::compute(rings, bc);
      batch_ms += ms_since(t0);
      batch_radius = batch_map.credible_radius_deg(0.68);
    }
    batch_ms /= static_cast<double>(reps);

    // Incremental: mean per-ring add cost over the whole stream.
    double add_ms = 0.0;
    double query_ms = 0.0;
    std::size_t touched = 0;
    std::size_t n_pixels = 0;
    double radius = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      loc::IncrementalConfig ic;
      ic.resolution_deg = res;
      loc::IncrementalLocalizer inc(ic);
      const auto t0 = std::chrono::steady_clock::now();
      inc.add_rings(rings);
      add_ms += ms_since(t0) / static_cast<double>(rings.size());
      // Query cost with a dirty posterior: one more ring, then the
      // 68% radius (rebuild + greedy cut) — the serve layer's
      // per-check cost.
      inc.add_ring(rings.front());
      const auto q0 = std::chrono::steady_clock::now();
      radius = inc.credible_radius_deg(0.68);
      query_ms += ms_since(q0);
      touched = inc.pixels_touched_total() / (rings.size() + 1);
      n_pixels = inc.fine_grid().n_pixels();
    }
    add_ms /= static_cast<double>(reps);
    query_ms /= static_cast<double>(reps);

    const auto res_tag = core::TextTable::num(res, 1);
    table.add_row({"batch_res" + res_tag, core::TextTable::num(batch_ms, 3),
                   core::TextTable::integer(static_cast<long long>(n_pixels)),
                   "-", core::TextTable::num(batch_radius, 2)});
    table.add_row({"inc_update_res" + res_tag,
                   core::TextTable::num(add_ms, 3),
                   core::TextTable::integer(static_cast<long long>(n_pixels)),
                   core::TextTable::integer(static_cast<long long>(touched)),
                   "-"});
    table.add_row({"inc_query_res" + res_tag,
                   core::TextTable::num(query_ms, 3),
                   core::TextTable::integer(static_cast<long long>(n_pixels)),
                   "-", core::TextTable::num(radius, 2)});
  }
  table.print(std::cout, "Batch recompute vs incremental update (mean ms)");
  table.write_csv("bench_loc_incremental.csv");

  // Containment-radius trajectory at the serve-layer's resolution:
  // the early-alert signal the streaming localizer watches.
  std::printf("\n68%% credible radius vs rings fed (1.0 deg grid):\n");
  loc::IncrementalLocalizer traj(loc::IncrementalConfig{});
  std::size_t next_mark = 25;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    traj.add_ring(rings[i]);
    if (i + 1 == next_mark || i + 1 == rings.size()) {
      // Query first: the radius query triggers refinement, which the
      // refined-rows count should reflect.
      const double r68 = traj.credible_radius_deg(0.68);
      std::printf("  %4zu rings: %6.2f deg (%zu fine rows refined)\n",
                  i + 1, r68, traj.refined_fine_rows());
      next_mark *= 2;
    }
  }
  return 0;
}
