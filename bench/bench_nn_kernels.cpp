/// \file bench_nn_kernels.cpp
/// google-benchmark microbenchmarks for the computational kernels
/// behind the timing tables: FP32 inference of both paper networks,
/// the INT8 integer engine, the fused stack, reconstruction, and
/// localization.  These are the per-stage costs that Tables I/II
/// aggregate; run with --benchmark_filter=... to isolate one.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "eval/trial.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/mlp.hpp"
#include "quant/fuse.hpp"
#include "quant/quantized_mlp.hpp"

using namespace adapt;

namespace {

nn::Tensor random_features(std::size_t n, std::size_t d, std::uint64_t seed) {
  core::Rng rng(seed);
  nn::Tensor x(n, d);
  for (auto& v : x.vec()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

/// The paper's reference batch: 597 rings in the first background
/// network iteration.
constexpr std::size_t kPaperBatch = 597;

// ---------------------------------------------------------------------------
// Before/after kernel pairs.  The *Naive benchmarks reimplement the
// pre-optimization triple loops (the seed's matmul_abt and per-element
// integer inference), so `--benchmark_filter='Gemm|Int8Dot'` reports
// the blocked/fused speedup directly on this host.

/// The seed's matmul_abt: jam loops, column-strided B, one scalar
/// accumulator.
void naive_matmul_abt(const nn::Tensor& a, const nn::Tensor& b,
                      nn::Tensor& c) {
  const std::size_t n = a.rows(), k = a.cols(), m = b.rows();
  if (c.rows() != n || c.cols() != m) c = nn::Tensor(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (std::size_t t = 0; t < k; ++t) acc += a(i, t) * b(j, t);
      c(i, j) = acc;
    }
}

void BM_GemmAbtNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto m = static_cast<std::size_t>(state.range(2));
  const nn::Tensor a = random_features(n, k, 21);
  const nn::Tensor b = random_features(m, k, 22);
  nn::Tensor c;
  for (auto _ : state) {
    naive_matmul_abt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * k * m));
}

void BM_GemmAbtBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto m = static_cast<std::size_t>(state.range(2));
  const nn::Tensor a = random_features(n, k, 21);
  const nn::Tensor b = random_features(m, k, 22);
  nn::Tensor c;
  for (auto _ : state) {
    nn::matmul_abt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * k * m));
}

// The background net's two heaviest layers (597x13 * 256x13^T and
// 597x256 * 128x256^T) plus a square stress shape.
#define GEMM_SHAPES \
  Args({kPaperBatch, 13, 256})->Args({kPaperBatch, 256, 128})->Args({256, 256, 256})
BENCHMARK(BM_GemmAbtNaive)->GEMM_SHAPES;
BENCHMARK(BM_GemmAbtBlocked)->GEMM_SHAPES;
#undef GEMM_SHAPES

/// Builds the calibrated INT8 background engine used by both INT8
/// benchmarks.
quant::QuantizedMlp build_int8_background_engine() {
  core::Rng rng(7);
  nn::Sequential swapped =
      nn::build_mlp(nn::background_net_spec(13, true), rng);
  for (int pass = 0; pass < 4; ++pass)
    (void)swapped.forward(random_features(64, 13, 8 + pass), true);
  const auto fused = quant::fuse_bn(swapped);
  core::Rng qrng(9);
  nn::Sequential qat = quant::build_qat_model(fused, qrng);
  for (int pass = 0; pass < 4; ++pass)
    (void)qat.forward(random_features(64, 13, 20 + pass), true);
  return quant::export_quantized(qat);
}

/// The seed's per-element integer inference: (q_x - zp) * q_w inside
/// the inner loop, per-layer activation buffers, per-element requant.
nn::Tensor naive_int8_forward(const quant::QuantizedMlp& mlp,
                              const nn::Tensor& x) {
  const auto& layers = mlp.layers();
  const std::size_t n = x.rows();
  std::vector<std::uint8_t> act(n * layers.front().in_features);
  for (std::size_t i = 0; i < act.size(); ++i)
    act[i] = static_cast<std::uint8_t>(
        layers.front().input_q.quantize(x.vec()[i]));
  nn::Tensor out;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const auto& layer = layers[li];
    const bool last = li + 1 == layers.size();
    std::vector<std::uint8_t> next(n * layer.out_features);
    if (last) out = nn::Tensor(n, layer.out_features);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t oc = 0; oc < layer.out_features; ++oc) {
        std::int32_t acc = layer.bias[oc];
        for (std::size_t ic = 0; ic < layer.in_features; ++ic)
          acc += (static_cast<std::int32_t>(act[r * layer.in_features + ic]) -
                  layer.input_q.zero_point) *
                 layer.weight[oc * layer.in_features + ic];
        if (layer.relu && acc < 0) acc = 0;
        const float real = static_cast<float>(acc) * layer.input_q.scale *
                           layer.weight_scales[oc];
        if (last)
          out(r, oc) = real;
        else
          next[r * layer.out_features + oc] = static_cast<std::uint8_t>(
              layers[li + 1].input_q.quantize(real));
      }
    act = std::move(next);
  }
  return out;
}

void BM_Int8DotNaive(benchmark::State& state) {
  const quant::QuantizedMlp engine = build_int8_background_engine();
  const nn::Tensor x = random_features(kPaperBatch, 13, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_int8_forward(engine, x));
  }
  state.SetItemsProcessed(state.iterations() * kPaperBatch);
}
BENCHMARK(BM_Int8DotNaive);

void BM_Int8DotFused(benchmark::State& state) {
  const quant::QuantizedMlp engine = build_int8_background_engine();
  const nn::Tensor x = random_features(kPaperBatch, 13, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * kPaperBatch);
}
BENCHMARK(BM_Int8DotFused);

void BM_BackgroundNetFp32(benchmark::State& state) {
  core::Rng rng(1);
  nn::Sequential model = nn::build_mlp(nn::background_net_spec(13), rng);
  const nn::Tensor x =
      random_features(static_cast<std::size_t>(state.range(0)), 13, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BackgroundNetFp32)->Arg(64)->Arg(kPaperBatch);

void BM_DetaNetFp32(benchmark::State& state) {
  core::Rng rng(3);
  nn::Sequential model = nn::build_mlp(nn::deta_net_spec(13), rng);
  const nn::Tensor x =
      random_features(static_cast<std::size_t>(state.range(0)), 13, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetaNetFp32)->Arg(64)->Arg(kPaperBatch);

void BM_BackgroundNetFused(benchmark::State& state) {
  core::Rng rng(5);
  nn::Sequential swapped =
      nn::build_mlp(nn::background_net_spec(13, true), rng);
  for (int pass = 0; pass < 4; ++pass)
    (void)swapped.forward(random_features(64, 13, 6 + pass), true);
  const auto fused = quant::fuse_bn(swapped);
  const nn::Tensor x = random_features(kPaperBatch, 13, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::fused_forward(fused, x));
  }
  state.SetItemsProcessed(state.iterations() * kPaperBatch);
}
BENCHMARK(BM_BackgroundNetFused);

void BM_BackgroundNetInt8(benchmark::State& state) {
  const quant::QuantizedMlp engine = build_int8_background_engine();
  const nn::Tensor x = random_features(kPaperBatch, 13, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * kPaperBatch);
}
BENCHMARK(BM_BackgroundNetInt8);

void BM_Reconstruction(benchmark::State& state) {
  const eval::TrialSetup setup;
  const eval::TrialRunner runner(setup);
  // Pre-simulate one window's measured events, then time recon only.
  const detector::Geometry geometry(setup.geometry);
  const sim::ExposureSimulator simulator(geometry, setup.material,
                                         setup.readout);
  core::Rng rng(12);
  const sim::Exposure exposure =
      simulator.simulate(setup.grb, setup.background, rng);
  const recon::EventReconstructor reconstructor(setup.material,
                                                setup.reconstruction);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconstructor.reconstruct_all(exposure.events));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(exposure.events.size()));
}
BENCHMARK(BM_Reconstruction);

void BM_Localization(benchmark::State& state) {
  const eval::TrialSetup setup;
  const eval::TrialRunner runner(setup);
  core::Rng rng(13);
  const auto rings = runner.reconstruct_window(rng);
  const loc::Localizer localizer;
  for (auto _ : state) {
    core::Rng loc_rng(14);
    benchmark::DoNotOptimize(localizer.localize(rings, loc_rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(rings.size()));
}
BENCHMARK(BM_Localization);

void BM_MonteCarloTransport(benchmark::State& state) {
  const detector::Geometry geometry;
  const auto material = detector::Material::csi();
  const physics::Transport transport(geometry, material);
  const sim::GrbSource source(sim::GrbConfig{}, geometry);
  core::Rng rng(15);
  for (auto _ : state) {
    const auto photon = source.sample_photon(rng);
    benchmark::DoNotOptimize(
        transport.propagate(photon.origin, photon.direction, photon.energy,
                            rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonteCarloTransport);

// ---------------------------------------------------------------------------
// Per-variant SIMD kernel benchmarks (src/nn/kernels).  Registered
// dynamically so only variants this host can execute appear; all use
// the production background-net panel shapes, so
// `--benchmark_filter=Kernel` pits scalar vs AVX2 vs AVX-512 directly.

void bench_u8i8_gemm(benchmark::State& state, nn::kernels::Isa isa) {
  const nn::kernels::KernelSet& kset = nn::kernels::kernel_set(isa);
  const std::size_t rows = kPaperBatch, in = 256, out = 128;
  core::Rng rng(33);
  std::vector<std::uint8_t> x(rows * in);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_index(256));
  std::vector<std::int8_t> w(out * in);
  for (auto& v : w)
    v = static_cast<std::int8_t>(
        static_cast<int>(rng.uniform_index(255)) - 127);
  std::vector<std::int32_t> acc(rows * out);
  for (auto _ : state) {
    kset.u8i8_gemm(x.data(), w.data(), acc.data(), rows, in, out);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
}

void bench_u8_requant(benchmark::State& state, nn::kernels::Isa isa) {
  const nn::kernels::KernelSet& kset = nn::kernels::kernel_set(isa);
  const std::size_t rows = kPaperBatch, out = 256;
  core::Rng rng(34);
  std::vector<std::int32_t> acc(rows * out);
  for (auto& v : acc)
    v = static_cast<std::int32_t>(rng.uniform_index(2000001)) - 1000000;
  std::vector<std::int32_t> row_sums(out), bias(out);
  std::vector<float> ws(out);
  for (std::size_t i = 0; i < out; ++i) {
    row_sums[i] = static_cast<std::int32_t>(rng.uniform_index(8001)) - 4000;
    bias[i] = static_cast<std::int32_t>(rng.uniform_index(100001)) - 50000;
    ws[i] = static_cast<float>(rng.uniform(5e-4, 5e-3));
  }
  std::vector<std::uint8_t> dst(rows * out);
  for (auto _ : state) {
    kset.u8_requant(acc.data(), rows, out, 131, row_sums.data(), bias.data(),
                    /*relu=*/true, 0.0173f, ws.data(), 0.0211f, 97,
                    dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  // Elements per second: the epilogue cost scales with outputs.
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows * out));
}

void bench_f32_row_block(benchmark::State& state, nn::kernels::Isa isa) {
  const nn::kernels::KernelSet& kset = nn::kernels::kernel_set(isa);
  const std::size_t rows = 4, k = 256, j = 256;
  const nn::Tensor a = random_features(rows, k, 35);
  const nn::Tensor b = random_features(k, j, 36);
  std::vector<float> c(rows * j);
  for (auto _ : state) {
    kset.f32_row_block(a.data(), k, b.data(), j, c.data(), j, rows, k, 0, j);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(rows * k * j));
}

void register_kernel_variant_benchmarks() {
  namespace nk = nn::kernels;
  for (int i = 0; i < nk::kIsaCount; ++i) {
    const auto isa = static_cast<nk::Isa>(i);
    if (!nk::supported(isa)) continue;
    const std::string name = nk::kernel_set(isa).name;
    benchmark::RegisterBenchmark(
        ("BM_U8I8GemmKernel/" + name).c_str(),
        [isa](benchmark::State& s) { bench_u8i8_gemm(s, isa); });
    benchmark::RegisterBenchmark(
        ("BM_U8RequantKernel/" + name).c_str(),
        [isa](benchmark::State& s) { bench_u8_requant(s, isa); });
    benchmark::RegisterBenchmark(
        ("BM_F32RowBlockKernel/" + name).c_str(),
        [isa](benchmark::State& s) { bench_f32_row_block(s, isa); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_kernel_variant_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
