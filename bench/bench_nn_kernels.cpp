/// \file bench_nn_kernels.cpp
/// google-benchmark microbenchmarks for the computational kernels
/// behind the timing tables: FP32 inference of both paper networks,
/// the INT8 integer engine, the fused stack, reconstruction, and
/// localization.  These are the per-stage costs that Tables I/II
/// aggregate; run with --benchmark_filter=... to isolate one.

#include <benchmark/benchmark.h>

#include "eval/trial.hpp"
#include "nn/mlp.hpp"
#include "quant/fuse.hpp"
#include "quant/quantized_mlp.hpp"

using namespace adapt;

namespace {

nn::Tensor random_features(std::size_t n, std::size_t d, std::uint64_t seed) {
  core::Rng rng(seed);
  nn::Tensor x(n, d);
  for (auto& v : x.vec()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

/// The paper's reference batch: 597 rings in the first background
/// network iteration.
constexpr std::size_t kPaperBatch = 597;

void BM_BackgroundNetFp32(benchmark::State& state) {
  core::Rng rng(1);
  nn::Sequential model = nn::build_mlp(nn::background_net_spec(13), rng);
  const nn::Tensor x =
      random_features(static_cast<std::size_t>(state.range(0)), 13, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BackgroundNetFp32)->Arg(64)->Arg(kPaperBatch);

void BM_DetaNetFp32(benchmark::State& state) {
  core::Rng rng(3);
  nn::Sequential model = nn::build_mlp(nn::deta_net_spec(13), rng);
  const nn::Tensor x =
      random_features(static_cast<std::size_t>(state.range(0)), 13, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetaNetFp32)->Arg(64)->Arg(kPaperBatch);

void BM_BackgroundNetFused(benchmark::State& state) {
  core::Rng rng(5);
  nn::Sequential swapped =
      nn::build_mlp(nn::background_net_spec(13, true), rng);
  for (int pass = 0; pass < 4; ++pass)
    (void)swapped.forward(random_features(64, 13, 6 + pass), true);
  const auto fused = quant::fuse_bn(swapped);
  const nn::Tensor x = random_features(kPaperBatch, 13, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::fused_forward(fused, x));
  }
  state.SetItemsProcessed(state.iterations() * kPaperBatch);
}
BENCHMARK(BM_BackgroundNetFused);

void BM_BackgroundNetInt8(benchmark::State& state) {
  core::Rng rng(7);
  nn::Sequential swapped =
      nn::build_mlp(nn::background_net_spec(13, true), rng);
  for (int pass = 0; pass < 4; ++pass)
    (void)swapped.forward(random_features(64, 13, 8 + pass), true);
  const auto fused = quant::fuse_bn(swapped);
  core::Rng qrng(9);
  nn::Sequential qat = quant::build_qat_model(fused, qrng);
  for (int pass = 0; pass < 4; ++pass)
    (void)qat.forward(random_features(64, 13, 20 + pass), true);
  const quant::QuantizedMlp engine = quant::export_quantized(qat);
  const nn::Tensor x = random_features(kPaperBatch, 13, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * kPaperBatch);
}
BENCHMARK(BM_BackgroundNetInt8);

void BM_Reconstruction(benchmark::State& state) {
  const eval::TrialSetup setup;
  const eval::TrialRunner runner(setup);
  // Pre-simulate one window's measured events, then time recon only.
  const detector::Geometry geometry(setup.geometry);
  const sim::ExposureSimulator simulator(geometry, setup.material,
                                         setup.readout);
  core::Rng rng(12);
  const sim::Exposure exposure =
      simulator.simulate(setup.grb, setup.background, rng);
  const recon::EventReconstructor reconstructor(setup.material,
                                                setup.reconstruction);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconstructor.reconstruct_all(exposure.events));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(exposure.events.size()));
}
BENCHMARK(BM_Reconstruction);

void BM_Localization(benchmark::State& state) {
  const eval::TrialSetup setup;
  const eval::TrialRunner runner(setup);
  core::Rng rng(13);
  const auto rings = runner.reconstruct_window(rng);
  const loc::Localizer localizer;
  for (auto _ : state) {
    core::Rng loc_rng(14);
    benchmark::DoNotOptimize(localizer.localize(rings, loc_rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(rings.size()));
}
BENCHMARK(BM_Localization);

void BM_MonteCarloTransport(benchmark::State& state) {
  const detector::Geometry geometry;
  const auto material = detector::Material::csi();
  const physics::Transport transport(geometry, material);
  const sim::GrbSource source(sim::GrbConfig{}, geometry);
  core::Rng rng(15);
  for (auto _ : state) {
    const auto photon = source.sample_photon(rng);
    benchmark::DoNotOptimize(
        transport.propagate(photon.origin, photon.direction, photon.energy,
                            rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonteCarloTransport);

}  // namespace

BENCHMARK_MAIN();
