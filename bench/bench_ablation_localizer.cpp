/// \file bench_ablation_localizer.cpp
/// Ablation study of the localizer's robustness machinery (the design
/// choices DESIGN.md Sec. 4 calls out, beyond what the paper itself
/// ablates):
///
///   * multi-start candidate refinement (n_starts) vs a single seed;
///   * scoring approximation candidates against all rings vs only the
///     random sample;
///   * the truncated (outlier-capped) likelihood vs an effectively
///     quadratic score (cap at 100 sigma).
///
/// Run at 0.75 MeV/cm^2 — the marginal regime where robustness
/// machinery decides between localizing and failing.  No networks
/// involved: this isolates the classical pipeline.

#include <iostream>

#include "bench_common.hpp"

using namespace adapt;

int main() {
  const auto cc = bench::containment_config(0xAB1A);
  bench::print_banner("Ablation — localizer robustness machinery",
                      "design-choice ablation (DESIGN.md Sec. 4)", cc);

  eval::TrialSetup base = bench::default_setup();
  base.grb.fluence = 0.75;
  base.grb.polar_deg = 20.0;

  struct Config {
    const char* label;
    int n_starts;
    bool score_all;
    double truncation;
  };
  const Config configs[] = {
      {"full (6 starts, all-ring scoring, 3-sigma cap)", 6, true, 3.0},
      {"single start", 1, true, 3.0},
      {"sample-only candidate scoring", 6, false, 3.0},
      {"quadratic scoring (cap 100 sigma)", 6, true, 100.0},
      {"minimal (1 start, sample scoring, quadratic)", 1, false, 100.0},
  };

  core::TextTable table({"configuration", "68% cont. [deg]",
                         "95% cont. [deg]", "failed trials"});
  for (const Config& cfg : configs) {
    eval::TrialSetup setup = base;
    auto& approx = setup.ml_localizer.localizer.approximation;
    approx.n_starts = cfg.n_starts;
    approx.score_against_all = cfg.score_all;
    approx.truncation_sigma = cfg.truncation;
    const eval::TrialRunner runner(setup);
    const auto summary =
        eval::measure_containment(runner, eval::PipelineVariant{}, cc);
    table.add_row({cfg.label, bench::pm(summary.c68), bench::pm(summary.c95),
                   core::TextTable::integer(
                       static_cast<long long>(summary.failed_trials))});
  }
  table.print(std::cout,
              "No-ML localization at 0.75 MeV/cm^2, 20 deg (marginal "
              "regime)");
  table.write_csv("bench_ablation_localizer.csv");

  std::printf(
      "\nreading: each removed mechanism should cost containment; the "
      "truncated\nlikelihood and all-ring candidate scoring carry most of "
      "the robustness\nagainst the 2-3x background.\n");
  return 0;
}
