#!/usr/bin/env sh
# Timing regression gate for the hot-path kernels.
#
# Runs the Table I/II timing bench from an existing build tree and
# compares each stage's mean against the stored baseline
# (tools/bench_table1_2_timing.baseline.csv, refreshed whenever the
# kernels intentionally change speed).  A stage whose mean exceeds
# baseline * TOLERANCE fails the check; faster-than-baseline is always
# fine.  Wall-clock noise is real, so the default tolerance is loose —
# this gate catches "the blocked GEMM fell off a cliff", not 5% jitter.
#
# Usage: tools/check_timing_regression.sh [build_dir] [tolerance]
#   build_dir  cmake build tree containing bench/ (default: build)
#   tolerance  allowed slowdown factor (default: 1.5)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
tolerance=${2:-1.5}
baseline="$repo_root/tools/bench_table1_2_timing.baseline.csv"
bench="$build_dir/bench/bench_table1_2_timing"

[ -x "$bench" ] || {
  echo "error: $bench not built (cmake --build $build_dir --target bench_table1_2_timing)" >&2
  exit 2
}
# The bench runs from a scratch dir, so a relative build_dir must be
# resolved first.
bench=$(CDPATH= cd -- "$(dirname -- "$bench")" && pwd)/$(basename -- "$bench")
[ -f "$baseline" ] || {
  echo "error: baseline $baseline missing" >&2
  exit 2
}

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

# The bench writes its CSV into the working directory.
(cd "$scratch" && "$bench" >bench.log 2>&1) || {
  cat "$scratch/bench.log" >&2
  echo "error: timing bench failed" >&2
  exit 2
}
current="$scratch/bench_table1_2_timing.csv"
[ -f "$current" ] || {
  echo "error: bench produced no bench_table1_2_timing.csv" >&2
  exit 2
}

status=0
awk -F, -v tol="$tolerance" '
  NR == FNR { if (FNR > 1) base[$1] = $2; next }
  FNR > 1 {
    stage = $1; mean = $2 + 0
    if (!(stage in base)) {
      printf "SKIP  %-22s no baseline row\n", stage
      next
    }
    limit = base[stage] * tol
    # Sub-millisecond stages are dominated by timer noise; give them
    # an absolute floor instead of a ratio.
    if (limit < 0.5) limit = 0.5
    if (mean > limit) {
      printf "FAIL  %-22s mean %6.1f ms > limit %6.1f ms (baseline %s ms)\n",
             stage, mean, limit, base[stage]
      failed = 1
    } else {
      printf "ok    %-22s mean %6.1f ms (baseline %s ms, limit %6.1f ms)\n",
             stage, mean, base[stage], limit
    }
  }
  END { exit failed ? 1 : 0 }
' "$baseline" "$current" || status=$?

if [ "$status" -eq 0 ]; then
  echo "timing check passed (tolerance ${tolerance}x)"
else
  echo "timing check FAILED (tolerance ${tolerance}x) — if the slowdown is intentional," >&2
  echo "refresh tools/bench_table1_2_timing.baseline.csv from a quiet machine" >&2
fi
exit "$status"
