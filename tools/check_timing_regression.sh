#!/usr/bin/env sh
# Timing regression gate for the hot-path kernels.
#
# Runs the Table I/II timing bench from an existing build tree and
# compares each stage's mean against the stored baseline
# (tools/bench_table1_2_timing.baseline.csv, refreshed whenever the
# kernels intentionally change speed).  A stage whose mean exceeds
# baseline * tolerance fails the check; faster-than-baseline is always
# fine.  Wall-clock noise is real, so the default tolerance is loose —
# this gate catches "the blocked GEMM fell off a cliff", not 5% jitter.
#
# After the timing gate it also runs the tier-1 ctest suite under the
# ADAPT_SANITIZE (ASan+UBSan) build so the untrusted-input paths (CLI
# parsing, ring-file loading, NaN-ring handling) are sanitizer-covered
# on every run.  The sanitizer tree is configured/built on first use.
#
# Usage: tools/check_timing_regression.sh [--check-only] [build_dir] [tolerance]
#   --check-only  CI-safe mode for noisy shared runners: verify the
#                 baselines parse, run both benches, and print the
#                 comparison — but never fail on absolute timing
#                 numbers.  Structural problems (bench crashes, missing
#                 CSV output, unparseable baseline) still exit nonzero.
#                 Implies ADAPT_SKIP_ASAN=1 (CI runs the sanitizer
#                 suite in its own job).
#   build_dir  cmake build tree containing bench/ (default: build)
#   tolerance  allowed slowdown factor (default: 1.5)
#
# NOTE: never point build_dir at a tree configured with ADAPT_WERROR,
# ADAPT_CHECKED, or ADAPT_SANITIZE, and never refresh the baseline CSV
# from one: checked contracts and sanitizer instrumentation slow the
# kernels by integer factors, so such a tree either fails the gate
# spuriously or (worse) poisons the baseline into masking real
# regressions.  Timing baselines come from the plain release build
# only; the correctness trees belong to tools/check_static_analysis.sh.
# Environment:
#   ADAPT_TIMING_SLACK  extra tolerance multiplier (default 1).  A
#                       shared CI runner with noisy neighbors can set
#                       e.g. 2 or 3 without touching the baselines the
#                       quiet dev boxes gate against.
#   ADAPT_BENCH_CSV_DIR if set, the bench CSVs are copied there (CI
#                       uploads them as artifacts for offline triage).
#   ADAPT_ASAN_DIR      sanitizer build tree (default: <repo>/build-asan)
#   ADAPT_SKIP_ASAN     set to 1 to skip the sanitizer ctest step
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

check_only=0
build_dir=""
tolerance=""
for arg in "$@"; do
  case "$arg" in
    --check-only) check_only=1 ;;
    -h|--help) sed -n '2,45p' "$0"; exit 0 ;;
    *)
      if [ -z "$build_dir" ]; then build_dir=$arg
      elif [ -z "$tolerance" ]; then tolerance=$arg
      else echo "error: unexpected argument $arg" >&2; exit 2
      fi
      ;;
  esac
done
[ -n "$build_dir" ] || build_dir="$repo_root/build"
[ -n "$tolerance" ] || tolerance=1.5

slack=${ADAPT_TIMING_SLACK:-1}
tolerance=$(awk -v t="$tolerance" -v s="$slack" '
  BEGIN {
    if (t + 0 <= 0 || s + 0 <= 0) exit 1
    printf "%g", t * s
  }') || {
  echo "error: tolerance '$tolerance' / ADAPT_TIMING_SLACK '$slack' not positive numbers" >&2
  exit 2
}
[ "$slack" = "1" ] || echo "note: ADAPT_TIMING_SLACK=$slack -> effective tolerance ${tolerance}x"

baseline="$repo_root/tools/bench_table1_2_timing.baseline.csv"
bench="$build_dir/bench/bench_table1_2_timing"

# A baseline that exists but no longer parses (merge damage, truncated
# checkout) must be a loud failure even in --check-only mode, or the
# gate silently stops gating.
validate_baseline() {
  [ -f "$1" ] || { echo "error: baseline $1 missing" >&2; exit 2; }
  awk -F, '
    FNR > 1 {
      rows++
      if ($1 == "" || $2 + 0 != $2) { bad = 1; exit }
    }
    END { exit (bad || rows == 0) ? 1 : 0 }
  ' "$1" || {
    echo "error: baseline $1 does not parse (need header + name,mean rows)" >&2
    exit 2
  }
}

[ -x "$bench" ] || {
  echo "error: $bench not built (cmake --build $build_dir --target bench_table1_2_timing)" >&2
  exit 2
}
# The bench runs from a scratch dir, so a relative build_dir must be
# resolved first.
bench=$(CDPATH= cd -- "$(dirname -- "$bench")" && pwd)/$(basename -- "$bench")
validate_baseline "$baseline"

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

# The bench writes its CSV into the working directory.
(cd "$scratch" && "$bench" >bench.log 2>&1) || {
  cat "$scratch/bench.log" >&2
  echo "error: timing bench failed" >&2
  exit 2
}
current="$scratch/bench_table1_2_timing.csv"
[ -f "$current" ] || {
  echo "error: bench produced no bench_table1_2_timing.csv" >&2
  exit 2
}
if [ -n "${ADAPT_BENCH_CSV_DIR:-}" ]; then
  mkdir -p "$ADAPT_BENCH_CSV_DIR"
  cp "$current" "$ADAPT_BENCH_CSV_DIR/"
fi

status=0
awk -F, -v tol="$tolerance" '
  NR == FNR { if (FNR > 1) base[$1] = $2; next }
  FNR > 1 {
    stage = $1; mean = $2 + 0
    if (!(stage in base)) {
      printf "SKIP  %-22s no baseline row\n", stage
      next
    }
    limit = base[stage] * tol
    # Sub-millisecond stages are dominated by timer noise; give them
    # an absolute floor instead of a ratio.
    if (limit < 0.5) limit = 0.5
    if (mean > limit) {
      printf "FAIL  %-22s mean %6.1f ms > limit %6.1f ms (baseline %s ms)\n",
             stage, mean, limit, base[stage]
      failed = 1
    } else {
      printf "ok    %-22s mean %6.1f ms (baseline %s ms, limit %6.1f ms)\n",
             stage, mean, base[stage], limit
    }
  }
  END { exit failed ? 1 : 0 }
' "$baseline" "$current" || status=$?

if [ "$status" -eq 0 ]; then
  echo "timing check passed (tolerance ${tolerance}x)"
elif [ "$check_only" -eq 1 ]; then
  echo "timing over limit but --check-only set: reported, not gated"
  status=0
else
  echo "timing check FAILED (tolerance ${tolerance}x) — if the slowdown is intentional," >&2
  echo "refresh tools/bench_table1_2_timing.baseline.csv from a quiet machine" >&2
  exit "$status"
fi

# ---- serving-layer throughput gate --------------------------------
# bench_serve_throughput prints a machine-readable `CSV,` block; this
# gate checks three things against
# tools/bench_serve_throughput.baseline.csv:
#   * throughput per config has not fallen below baseline / tolerance
#     (events/s — higher is better, so the tolerance divides);
#   * shed count is exactly 0 for every non-saturated config (the
#     queue is sized to hold the whole stream, so any shed is a bug);
#   * the best batched config (batch >= 8) still beats the per-ring
#     loop — the reason the serving layer exists.
serve_bench="$build_dir/bench/bench_serve_throughput"
serve_baseline="$repo_root/tools/bench_serve_throughput.baseline.csv"
if [ ! -x "$serve_bench" ]; then
  echo "error: $serve_bench not built (cmake --build $build_dir --target bench_serve_throughput)" >&2
  exit 2
fi
validate_baseline "$serve_baseline"
"$serve_bench" >"$scratch/serve.log" 2>&1 || {
  cat "$scratch/serve.log" >&2
  echo "error: serve throughput bench failed" >&2
  exit 2
}
grep '^CSV,' "$scratch/serve.log" >"$scratch/serve.csv" || {
  echo "error: serve bench produced no CSV block" >&2
  exit 2
}
if [ -n "${ADAPT_BENCH_CSV_DIR:-}" ]; then
  cp "$scratch/serve.csv" "$ADAPT_BENCH_CSV_DIR/bench_serve_throughput.csv"
fi

serve_status=0
awk -F, -v tol="$tolerance" '
  NR == FNR { if (FNR > 1) base[$1] = $2; next }
  $2 == "config" { next }  # header line: CSV,config,events_per_s,...
  {
    cfg = $2; eps = $3 + 0; shed = $6 + 0
    current[cfg] = eps
    if (cfg != "saturated" && shed != 0) {
      printf "FAIL  %-12s shed %d events (must be 0 below saturation)\n",
             cfg, shed
      failed = 1
    }
    if (cfg in base) {
      floor = base[cfg] / tol
      if (eps < floor) {
        printf "FAIL  %-12s %8.0f events/s < floor %8.0f (baseline %s)\n",
               cfg, eps, floor, base[cfg]
        failed = 1
      } else {
        printf "ok    %-12s %8.0f events/s (baseline %s, floor %8.0f)\n",
               cfg, eps, base[cfg], floor
      }
    }
  }
  END {
    best = 0
    for (cfg in current)
      if (cfg ~ /^batch_(8|16|32|64)$/ && current[cfg] > best)
        best = current[cfg]
    if (best <= current["per_ring"]) {
      printf "FAIL  batched path (best %8.0f events/s) no faster than per-ring (%8.0f)\n",
             best, current["per_ring"]
      failed = 1
    }
    exit failed ? 1 : 0
  }
' "$serve_baseline" "$scratch/serve.csv" || serve_status=$?

if [ "$serve_status" -eq 0 ]; then
  echo "serve throughput check passed (tolerance ${tolerance}x)"
elif [ "$check_only" -eq 1 ]; then
  echo "serve throughput below floor but --check-only set: reported, not gated"
else
  echo "serve throughput check FAILED — if the slowdown is intentional," >&2
  echo "refresh tools/bench_serve_throughput.baseline.csv from a quiet machine" >&2
  exit "$serve_status"
fi

# ---- multi-stream serving gate ------------------------------------
# bench_serve_multistream prints the same kind of `CSV,` block with a
# trailing Jain-fairness column; this gate checks, against
# tools/bench_serve_multistream.baseline.csv (config,events_per_s,
# min_fairness rows):
#   * aggregate throughput per config has not fallen below
#     baseline / tolerance;
#   * shed count is exactly 0 for every non-saturated config (the
#     queues are sized to hold the whole stream);
#   * Jain fairness >= the baseline's min_fairness column — an
#     absolute floor, NOT scaled by the tolerance: fairness measures
#     the round-robin fill and per-stream admission control, which
#     machine noise does not excuse.
multi_bench="$build_dir/bench/bench_serve_multistream"
multi_baseline="$repo_root/tools/bench_serve_multistream.baseline.csv"
if [ ! -x "$multi_bench" ]; then
  echo "error: $multi_bench not built (cmake --build $build_dir --target bench_serve_multistream)" >&2
  exit 2
fi
validate_baseline "$multi_baseline"
"$multi_bench" >"$scratch/multi.log" 2>&1 || {
  cat "$scratch/multi.log" >&2
  echo "error: multi-stream serve bench failed" >&2
  exit 2
}
grep '^CSV,' "$scratch/multi.log" >"$scratch/multi.csv" || {
  echo "error: multi-stream bench produced no CSV block" >&2
  exit 2
}
if [ -n "${ADAPT_BENCH_CSV_DIR:-}" ]; then
  cp "$scratch/multi.csv" "$ADAPT_BENCH_CSV_DIR/bench_serve_multistream.csv"
fi

multi_status=0
awk -F, -v tol="$tolerance" '
  NR == FNR { if (FNR > 1) { base[$1] = $2; minfair[$1] = $3 } next }
  $2 == "config" { next }  # header: CSV,config,events_per_s,...,fairness
  {
    cfg = $2; eps = $3 + 0; shed = $6 + 0; fair = $7 + 0
    if (cfg != "saturated" && shed != 0) {
      printf "FAIL  %-20s shed %d events (must be 0 below saturation)\n",
             cfg, shed
      failed = 1
    }
    if (!(cfg in base)) {
      printf "SKIP  %-20s no baseline row\n", cfg
      next
    }
    floor = base[cfg] / tol
    if (eps < floor) {
      printf "FAIL  %-20s %8.0f events/s < floor %8.0f (baseline %s)\n",
             cfg, eps, floor, base[cfg]
      failed = 1
    } else {
      printf "ok    %-20s %8.0f events/s (baseline %s, floor %8.0f)\n",
             cfg, eps, base[cfg], floor
    }
    if (fair < minfair[cfg] + 0) {
      printf "FAIL  %-20s fairness %6.4f < floor %s\n", cfg, fair, minfair[cfg]
      failed = 1
    }
  }
  END { exit failed ? 1 : 0 }
' "$multi_baseline" "$scratch/multi.csv" || multi_status=$?

if [ "$multi_status" -eq 0 ]; then
  echo "multi-stream serving check passed (tolerance ${tolerance}x)"
elif [ "$check_only" -eq 1 ]; then
  echo "multi-stream serving below floor but --check-only set: reported, not gated"
else
  echo "multi-stream serving check FAILED — if the slowdown is intentional," >&2
  echo "refresh tools/bench_serve_multistream.baseline.csv from a quiet machine" >&2
  exit "$multi_status"
fi

# ---- SIMD kernel throughput gate ----------------------------------
# bench_nn_kernels registers one benchmark per dispatched kernel
# variant (BM_U8I8GemmKernel/<isa>, BM_U8RequantKernel/<isa>,
# BM_F32RowBlockKernel/<isa>) plus the dispatch-level int8 paths.
# Each row in tools/bench_nn_kernels.baseline.csv is a deliberately
# conservative items/s floor (well below a quiet-machine run, so
# shared-runner noise does not trip it); throughput below
# floor / tolerance fails.  Variant rows for ISAs the host lacks are
# simply absent from the bench output and reported as skipped — the
# gate works unchanged on AVX2-only or scalar-only hosts.
kernel_bench="$build_dir/bench/bench_nn_kernels"
kernel_baseline="$repo_root/tools/bench_nn_kernels.baseline.csv"
if [ ! -x "$kernel_bench" ]; then
  echo "error: $kernel_bench not built (cmake --build $build_dir --target bench_nn_kernels)" >&2
  exit 2
fi
validate_baseline "$kernel_baseline"
"$kernel_bench" --benchmark_filter='Kernel|Int8Dot|BackgroundNetInt8' \
  --benchmark_format=csv >"$scratch/kernels.csv" 2>"$scratch/kernels.log" || {
  cat "$scratch/kernels.log" >&2
  echo "error: kernel bench failed" >&2
  exit 2
}
grep -q '^"BM_' "$scratch/kernels.csv" || {
  echo "error: kernel bench produced no benchmark rows" >&2
  exit 2
}
if [ -n "${ADAPT_BENCH_CSV_DIR:-}" ]; then
  cp "$scratch/kernels.csv" "$ADAPT_BENCH_CSV_DIR/bench_nn_kernels.csv"
fi

kernel_status=0
awk -F, -v tol="$tolerance" '
  NR == FNR { if (FNR > 1) base[$1] = $2; next }
  /^"BM_/ {
    name = $1; gsub(/"/, "", name)
    ips = $7 + 0
    seen[name] = 1
    if (!(name in base)) next  # unbaselined benchmark: informational only
    floor = base[name] / tol
    if (ips < floor) {
      printf "FAIL  %-28s %12.3e items/s < floor %12.3e (baseline %s)\n",
             name, ips, floor, base[name]
      failed = 1
    } else {
      printf "ok    %-28s %12.3e items/s (baseline %s, floor %12.3e)\n",
             name, ips, base[name], floor
    }
  }
  END {
    for (name in base)
      if (!(name in seen))
        printf "SKIP  %-28s variant not supported on this host\n", name
    exit failed ? 1 : 0
  }
' "$kernel_baseline" "$scratch/kernels.csv" || kernel_status=$?

if [ "$kernel_status" -eq 0 ]; then
  echo "kernel throughput check passed (tolerance ${tolerance}x)"
elif [ "$check_only" -eq 1 ]; then
  echo "kernel throughput below floor but --check-only set: reported, not gated"
else
  echo "kernel throughput check FAILED — if the slowdown is intentional," >&2
  echo "refresh tools/bench_nn_kernels.baseline.csv from a quiet machine" >&2
  exit "$kernel_status"
fi

# ---- incremental localizer gate -----------------------------------
# bench_loc_incremental writes name,mean_ms rows (plus informational
# columns) comparing a full batch SkyMap recompute against the
# streaming accumulator's per-ring update and query cost at several
# grid resolutions.  Two checks:
#   * each row's mean stays under baseline * tolerance
#     (tools/bench_loc_incremental.baseline.csv), same ceiling rule as
#     the stage-timing gate;
#   * structurally, inc_update_res<r> must undercut batch_res<r> at
#     every resolution — the machine-independent reason the
#     incremental localizer exists.  A violation means the band
#     enumeration degenerated into a full-grid walk.
loc_bench="$build_dir/bench/bench_loc_incremental"
loc_baseline="$repo_root/tools/bench_loc_incremental.baseline.csv"
if [ ! -x "$loc_bench" ]; then
  echo "error: $loc_bench not built (cmake --build $build_dir --target bench_loc_incremental)" >&2
  exit 2
fi
validate_baseline "$loc_baseline"
loc_bench=$(CDPATH= cd -- "$(dirname -- "$loc_bench")" && pwd)/$(basename -- "$loc_bench")
(cd "$scratch" && "$loc_bench" >loc.log 2>&1) || {
  cat "$scratch/loc.log" >&2
  echo "error: incremental localizer bench failed" >&2
  exit 2
}
loc_csv="$scratch/bench_loc_incremental.csv"
[ -f "$loc_csv" ] || {
  echo "error: bench produced no bench_loc_incremental.csv" >&2
  exit 2
}
if [ -n "${ADAPT_BENCH_CSV_DIR:-}" ]; then
  cp "$loc_csv" "$ADAPT_BENCH_CSV_DIR/"
fi

loc_status=0
awk -F, -v tol="$tolerance" '
  NR == FNR { if (FNR > 1) base[$1] = $2; next }
  FNR > 1 {
    name = $1; mean = $2 + 0
    cur[name] = mean
    if (!(name in base)) {
      printf "SKIP  %-22s no baseline row\n", name
      next
    }
    limit = base[name] * tol
    # Sub-millisecond rows (the per-ring updates) are timer-noise
    # dominated; use an absolute floor instead of a ratio.
    if (limit < 0.5) limit = 0.5
    if (mean > limit) {
      printf "FAIL  %-22s mean %8.3f ms > limit %8.3f ms (baseline %s ms)\n",
             name, mean, limit, base[name]
      failed = 1
    } else {
      printf "ok    %-22s mean %8.3f ms (baseline %s ms, limit %8.3f ms)\n",
             name, mean, base[name], limit
    }
  }
  END {
    for (name in cur) {
      if (name !~ /^batch_res/) continue
      res = substr(name, 10)
      inc = "inc_update_res" res
      if (!(inc in cur)) continue
      if (cur[inc] >= cur[name]) {
        printf "FAIL  %-22s %8.3f ms not below batch recompute %8.3f ms\n",
               inc, cur[inc], cur[name]
        failed = 1
      }
    }
    exit failed ? 1 : 0
  }
' "$loc_baseline" "$loc_csv" || loc_status=$?

if [ "$loc_status" -eq 0 ]; then
  echo "incremental localizer check passed (tolerance ${tolerance}x)"
elif [ "$check_only" -eq 1 ]; then
  echo "incremental localizer over limit but --check-only set: reported, not gated"
else
  echo "incremental localizer check FAILED — if the slowdown is intentional," >&2
  echo "refresh tools/bench_loc_incremental.baseline.csv from a quiet machine" >&2
  exit "$loc_status"
fi

# ---- sanitizer-covered tier-1 tests -------------------------------
if [ "$check_only" -eq 1 ]; then
  echo "sanitizer ctest skipped (--check-only; CI covers it in a dedicated job)"
  exit 0
fi
if [ "${ADAPT_SKIP_ASAN:-0}" = "1" ]; then
  echo "sanitizer ctest skipped (ADAPT_SKIP_ASAN=1)"
  exit 0
fi

asan_dir=${ADAPT_ASAN_DIR:-"$repo_root/build-asan"}
if [ ! -f "$asan_dir/CMakeCache.txt" ]; then
  echo "configuring sanitizer tree at $asan_dir (ADAPT_SANITIZE=ON)"
  cmake -B "$asan_dir" -S "$repo_root" -DADAPT_SANITIZE=ON >/dev/null || {
    echo "error: sanitizer configure failed" >&2
    exit 2
  }
fi
echo "building sanitizer tree..."
cmake --build "$asan_dir" -j "$(nproc 2>/dev/null || echo 1)" >/dev/null || {
  echo "error: sanitizer build failed" >&2
  exit 2
}
echo "running tier-1 tests under ASan+UBSan..."
(cd "$asan_dir" && ctest --output-on-failure) || {
  echo "sanitizer ctest FAILED" >&2
  exit 1
}
echo "sanitizer ctest passed"
exit 0
