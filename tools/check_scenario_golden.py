#!/usr/bin/env python3
"""Tolerance-aware comparator for scenario golden reports.

The scenario-matrix CI job proves determinism by diffing two runs of
the SAME binary byte-for-byte.  Across machines (different libm,
different FMA contraction) the floating-point values in a cell report
can drift a little, so the golden gate must NOT be a byte diff: this
script compares a fresh `adaptctl campaign` report directory against
the checked-in goldens structurally.

Exact-match contract (any mismatch fails):
  * the set of golden cells (one per scenario, clean row),
  * every line's key sequence (`sim:`, `trigger:`, `burst N:`,
    `stream N:`, counter names, status lines),
  * integer-valued semantics we engineered to be stable: efficiency /
    purity (compared with a wide tolerance, see below), alert yes/no,
    `ledger invariant: balanced`, `cell status: ok`.

Numeric fields are compared with per-key tolerances chosen to absorb
cross-platform FP drift and Poisson-level sensitivity while still
catching real behavior changes (a lost alert, a localization that
walks away, a collapsed event population):

  * efficiency / purity: absolute 0.26 (one trigger episode).
  * *_deg fields: absolute 3.0 degrees.
  * base_rate_hz: relative 20%.
  * times (alert_t_s / alert_latency_s, window bounds): absolute 0.3 s.
  * everything else (counts): relative 25% + absolute 30.

Usage:
  tools/check_scenario_golden.py --report-dir DIR [--golden-dir DIR]
  tools/check_scenario_golden.py --report-dir DIR --update

--update overwrites the goldens from the report directory; the diff
then goes through normal code review (see DESIGN.md, "Golden-file
update policy").
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import sys

NUMBER_RE = re.compile(r"^-?\d+(?:\.\d+)?$")


def tolerance_ok(key: str, golden: float, fresh: float) -> bool:
    if key == "seed":  # Derived from the matrix seed: must not move.
        return golden == fresh
    if key in ("efficiency", "purity"):
        return abs(golden - fresh) <= 0.26
    if key.endswith("_deg") or key == "radius68_deg":
        return abs(golden - fresh) <= 3.0
    if key == "base_rate_hz":
        return abs(golden - fresh) <= 0.20 * max(abs(golden), 1.0)
    if key.endswith("_s") or key in ("t_start", "t_end"):
        return abs(golden - fresh) <= 0.3
    return abs(golden - fresh) <= 0.25 * max(abs(golden), abs(fresh)) + 30.0


def tokenize(line: str) -> list[tuple[str, str]]:
    """Split a report line into (key, value) pairs.

    `key=value` tokens compare by key; window bounds `[a,b)` become
    (t_start, a), (t_end, b); everything else is structural text that
    must match exactly (key "" marks it).
    """
    tokens: list[tuple[str, str]] = []
    for raw in line.split():
        if "=" in raw:
            key, value = raw.split("=", 1)
            tokens.append((key, value))
        elif raw.startswith("[") and "," in raw:
            bounds = raw.strip("[)").split(",")
            if len(bounds) == 2:
                tokens.append(("t_start", bounds[0]))
                tokens.append(("t_end", bounds[1]))
            else:
                tokens.append(("", raw))
        else:
            tokens.append(("", raw))
    return tokens


def compare_cell(name: str, golden: str, fresh: str) -> list[str]:
    errors: list[str] = []
    golden_lines = golden.strip().splitlines()
    fresh_lines = fresh.strip().splitlines()
    if len(golden_lines) != len(fresh_lines):
        return [
            f"{name}: line count differs "
            f"(golden {len(golden_lines)}, fresh {len(fresh_lines)})"
        ]
    for line_no, (gl, fl) in enumerate(zip(golden_lines, fresh_lines), 1):
        # The cell header embeds the per-cell seed: structural.
        gt, ft = tokenize(gl), tokenize(fl)
        if len(gt) != len(ft):
            errors.append(f"{name}:{line_no}: token count differs")
            errors.append(f"  golden: {gl.strip()}")
            errors.append(f"  fresh:  {fl.strip()}")
            continue
        for (gk, gv), (fk, fv) in zip(gt, ft):
            if gk != fk:
                errors.append(
                    f"{name}:{line_no}: key sequence differs "
                    f"('{gk}' vs '{fk}')"
                )
                continue
            if NUMBER_RE.match(gv) and NUMBER_RE.match(fv):
                if not tolerance_ok(gk, float(gv), float(fv)):
                    errors.append(
                        f"{name}:{line_no}: {gk or 'value'} out of "
                        f"tolerance (golden {gv}, fresh {fv})"
                    )
            elif gv != fv:
                # Non-numeric values (alert=yes/no, status words, row
                # names) must match exactly.
                errors.append(
                    f"{name}:{line_no}: '{gk or gv}' differs "
                    f"(golden '{gv}', fresh '{fv}')"
                )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-dir", required=True, type=pathlib.Path,
        help="directory written by `adaptctl campaign --report-dir`",
    )
    parser.add_argument(
        "--golden-dir", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "tests" / "scenario" / "golden",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="overwrite goldens from the report dir instead of comparing",
    )
    args = parser.parse_args()

    goldens = sorted(args.golden_dir.glob("*.txt"))
    if args.update:
        updated = 0
        for golden in goldens:
            fresh = args.report_dir / golden.name
            if not fresh.is_file():
                print(f"missing fresh report for {golden.name}",
                      file=sys.stderr)
                return 1
            shutil.copyfile(fresh, golden)
            updated += 1
        print(f"updated {updated} golden report(s) in {args.golden_dir}")
        return 0

    if not goldens:
        print(f"no golden reports in {args.golden_dir}", file=sys.stderr)
        return 1

    errors: list[str] = []
    for golden in goldens:
        fresh = args.report_dir / golden.name
        if not fresh.is_file():
            errors.append(f"{golden.name}: missing from {args.report_dir}")
            continue
        errors.extend(
            compare_cell(
                golden.name,
                golden.read_text(encoding="utf-8"),
                fresh.read_text(encoding="utf-8"),
            )
        )

    if errors:
        print("scenario golden check FAILED:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        print(
            "if the change is intentional, regenerate with "
            "tools/check_scenario_golden.py --report-dir DIR --update "
            "and commit the reviewed diff",
            file=sys.stderr,
        )
        return 1
    print(f"scenario golden check passed ({len(goldens)} cell(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
