#!/usr/bin/env python3
"""Repo lint gate for adaptml.

Fast, dependency-free checks for rules the compiler cannot enforce.
Run from anywhere; exits non-zero when any rule fires:

  1. no-naked-parse: std::atof / std::strtod (and their unqualified
     forms) are banned outside the core CLI layer.  Both silently
     return 0.0 on garbage; flight-facing inputs must go through the
     strict core::parse_double / env parsers, which reject trailing
     junk and non-finite values.
  2. no-std-rand: std::rand / srand are banned everywhere.  All
     randomness flows through core::Rng so trials stay deterministic
     and seedable.
  3. no-float-literal-in-physics: src/physics/ computes in double
     precision end to end; a stray 1.0f silently truncates a constant
     (or an intermediate, via promotion rules) to 24-bit mantissa.
  4. test-coverage: every src/**/*.cpp must have a test file whose
     name mentions its stem, or an entry in COVERAGE_ALLOWLIST naming
     where its behavior is actually exercised.
  5. no-intrinsics-outside-kernels: x86 SIMD intrinsics (_mm*) and
     vector types (__m128/__m256/__m512) are confined to
     src/nn/kernels/.  Every vector kernel carries a bit-identity
     obligation against its scalar reference; scattering intrinsics
     elsewhere would scatter that obligation too, and the rest of the
     codebase must stay portable to non-x86 hosts.
  6. no-batch-skymap-in-serve: SkyMap::compute is banned in
     src/serve/.  A full-grid recompute on the serving hot path
     reintroduces the O(pixels * rings) stall the streaming
     accumulator exists to avoid; the serve layer localizes through
     loc::IncrementalLocalizer (serve/stream_localizer.hpp) only.
  7. no-naked-mutex: std::mutex / std::shared_mutex /
     std::condition_variable, the std lock RAII types, and the C++20
     coordination primitives (std::latch, std::barrier, the
     semaphores) are banned outside src/core/sync.hpp.  Locking must
     go through the core::sync capability wrappers so the Clang
     thread-safety gate (tools/check_static_analysis.sh --stage
     thread-safety) can see every acquisition; a raw std primitive is
     a lock the analysis cannot check.
  8. golden-drift-guard: a commit touching a scenario golden report
     (tests/scenario/golden/) must also touch the scenario configs,
     the scenario/matrix engine, or the golden comparator in the SAME
     commit.  Goldens only move when the behavior they pin moves; a
     golden-only commit is someone silencing a red gate.  Inspects the
     HEAD commit via git (best-effort: skipped outside a git
     checkout).

Usage: tools/adapt_lint.py [--repo DIR]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

# Files allowed to call the raw C parsing functions: the strict
# parsers themselves, and the env-var fallback parsing in parallel.hpp
# (strtol only, but kept here so the rule reads as "the parsing
# layer").
PARSE_ALLOWLIST = {
    "src/core/cli.hpp",
    "src/core/cli.cpp",
}

# src/**/*.cpp files with no same-stem test file, mapped to the test
# that actually covers them (kept next to the rule so a new uncovered
# file is a conscious, reviewable decision).
COVERAGE_ALLOWLIST = {
    "src/core/table.cpp": "tests/core/table_test.cpp",
    "src/eval/model_provider.cpp": "tests/eval/run_trials_test.cpp",
    "src/eval/trial.cpp": "tests/eval/trial_containment_test.cpp",
    "src/loc/least_squares.cpp": "tests/loc/localizer_test.cpp",
    "src/nn/activations.cpp": "tests/nn/layers_test.cpp",
    "src/nn/linear.cpp": "tests/nn/layers_test.cpp",
    "src/nn/batchnorm.cpp": "tests/nn/layers_test.cpp",
    "src/nn/mlp.cpp": "tests/nn/trainer_test.cpp",
    "src/nn/sequential.cpp": "tests/nn/layers_test.cpp",
    "src/nn/optimizer.cpp": "tests/nn/loss_optimizer_test.cpp",
    "src/pipeline/ml_localizer.cpp": "tests/pipeline/ml_localizer_test.cpp",
    "src/recon/error_propagation.cpp": "tests/recon/reconstruction_test.cpp",
    "src/recon/event_reconstruction.cpp": "tests/recon/reconstruction_test.cpp",
    "src/sim/background.cpp": "tests/sim/pileup_test.cpp",
    "src/sim/grb_source.cpp": "tests/sim/source_test.cpp",
    "src/nn/kernels/registry.cpp": "tests/nn/kernels_test.cpp",
    "src/nn/kernels/scalar.cpp": "tests/nn/kernels_test.cpp",
    "src/nn/kernels/avx2.cpp": "tests/nn/kernels_test.cpp",
    "src/nn/kernels/avx512.cpp": "tests/nn/kernels_test.cpp",
    "src/quant/fake_quant.cpp": "tests/quant/quant_property_test.cpp",
    "src/quant/qat_io.cpp": "tests/quant/quantized_mlp_fused_test.cpp",
    "src/quant/qat_linear.cpp": "tests/quant/quant_property_test.cpp",
    "src/trigger/rate_trigger.cpp": "tests/trigger/trigger_test.cpp",
}

NAKED_PARSE = re.compile(r"\b(?:std::)?(atof|strtod)\s*\(")
STD_RAND = re.compile(r"\b(?:std::)?s?rand\s*\(")
# A float literal: digits with an f/F suffix (1.0f, .5f, 1e3f, 2f).
FLOAT_LITERAL = re.compile(r"[0-9.]([eE][-+]?[0-9]+)?[fF]\b")
# An x86 intrinsic call or vector type (SSE/AVX/AVX-512 families).
INTRINSIC = re.compile(r"\b(?:_mm(?:256|512)?_[a-z0-9_]+|__m(?:64|128|256|512)[di]?)\b")
BATCH_SKYMAP = re.compile(r"\bSkyMap::compute\s*\(")
# A raw std synchronization primitive (type use or header include) —
# everything the core::sync capability layer wraps.
NAKED_MUTEX = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|latch|barrier|counting_semaphore|binary_semaphore)\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable|latch|"
    r"barrier|semaphore)>")
# The one place raw primitives are allowed: the wrapper layer itself.
MUTEX_ALLOWLIST = {
    "src/core/sync.hpp",
}
LINE_COMMENT = re.compile(r"//.*$")
STRING = re.compile(r'"(?:[^"\\]|\\.)*"')

# Rule 8: paths whose change justifies a golden-report update — the
# scenario definitions, the engine/serve/matrix code that produces the
# reports, and the comparator that defines "within tolerance".
GOLDEN_PREFIX = "tests/scenario/golden/"
GOLDEN_JUSTIFIES = (
    "tests/scenario/configs/",
    "src/scenario/",
    "src/fault/",
    "src/serve/",
    "src/trigger/",
    "src/sim/",
    "tools/adaptctl.cpp",
    "tools/check_scenario_golden.py",
)


def check_golden_drift(repo: pathlib.Path) -> list[str]:
    """Rule 8: golden files may only change alongside the code or
    configs that define them.  Best-effort — returns nothing when git
    or history is unavailable (tarball builds, shallow oddities)."""
    try:
        out = subprocess.run(
            ["git", "log", "-1", "--name-only", "--pretty=format:"],
            cwd=repo, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if out.returncode != 0:
        return []
    changed = [line.strip() for line in out.stdout.splitlines()
               if line.strip()]
    goldens = [p for p in changed if p.startswith(GOLDEN_PREFIX)]
    if not goldens:
        return []
    if any(p.startswith(GOLDEN_JUSTIFIES) for p in changed):
        return []
    return [
        f"{p}: golden report changed with no accompanying scenario "
        "config / engine / comparator change in the same commit — "
        "goldens only move when the behavior they pin moves "
        "[golden-drift-guard]"
        for p in goldens
    ]


def strip_noise(line: str) -> str:
    """Drop string contents and // comments so literals inside either
    don't trip the code rules (block comments are rare enough in this
    codebase that per-line stripping suffices)."""
    return LINE_COMMENT.sub("", STRING.sub('""', line))


def iter_source(repo: pathlib.Path, *globs: str):
    for pattern in globs:
        for path in sorted(repo.glob(pattern)):
            yield path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo", default=pathlib.Path(__file__).resolve().parent.parent,
        type=pathlib.Path, help="repository root (default: tools/..)")
    args = parser.parse_args()
    repo = args.repo.resolve()

    findings: list[str] = []

    # Rules 1-3: line scans.
    code_globs = ("src/**/*.cpp", "src/**/*.hpp", "examples/*.cpp",
                  "bench/*.cpp", "tools/*.cpp")
    for path in iter_source(repo, *code_globs):
        rel = path.relative_to(repo).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for ln, raw in enumerate(lines, 1):
            line = strip_noise(raw)
            if rel not in PARSE_ALLOWLIST and NAKED_PARSE.search(line):
                findings.append(
                    f"{rel}:{ln}: naked atof/strtod — use core::parse_double "
                    "(strict, rejects trailing junk) [no-naked-parse]")
            if STD_RAND.search(line):
                findings.append(
                    f"{rel}:{ln}: std::rand breaks deterministic trials — "
                    "use core::Rng [no-std-rand]")
            if rel.startswith("src/physics/") and FLOAT_LITERAL.search(line):
                findings.append(
                    f"{rel}:{ln}: float literal in double-precision physics "
                    "code [no-float-literal-in-physics]")
            if (not rel.startswith("src/nn/kernels/")
                    and INTRINSIC.search(line)):
                findings.append(
                    f"{rel}:{ln}: SIMD intrinsics belong in src/nn/kernels/ "
                    "(dispatched, bit-identical to scalar) "
                    "[no-intrinsics-outside-kernels]")
            if rel.startswith("src/serve/") and BATCH_SKYMAP.search(line):
                findings.append(
                    f"{rel}:{ln}: full-grid SkyMap::compute on the serving "
                    "hot path — stream rings through "
                    "loc::IncrementalLocalizer instead "
                    "[no-batch-skymap-in-serve]")
            if rel not in MUTEX_ALLOWLIST and NAKED_MUTEX.search(line):
                findings.append(
                    f"{rel}:{ln}: raw std sync primitive — use the "
                    "core::sync capability types (core/sync.hpp) so the "
                    "thread-safety gate can check the lock discipline "
                    "[no-naked-mutex]")

    # Rule 4: test coverage by stem.
    test_names = " ".join(
        p.name for p in iter_source(repo, "tests/**/*_test.cpp"))
    for path in iter_source(repo, "src/**/*.cpp"):
        rel = path.relative_to(repo).as_posix()
        stem = path.stem
        if stem in test_names:
            continue
        mapped = COVERAGE_ALLOWLIST.get(rel)
        if mapped is None:
            findings.append(
                f"{rel}: no tests/**/*{stem}*_test.cpp and no "
                "COVERAGE_ALLOWLIST entry [test-coverage]")
        elif not (repo / mapped).is_file():
            findings.append(
                f"{rel}: COVERAGE_ALLOWLIST points at missing {mapped} "
                "[test-coverage]")

    # Rule 8: golden drift.
    findings.extend(check_golden_drift(repo))

    for f in findings:
        print(f)
    n_files = sum(1 for _ in iter_source(repo, *code_globs))
    print(f"adapt_lint: {len(findings)} finding(s) across {n_files} files",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
