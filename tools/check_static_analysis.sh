#!/usr/bin/env bash
# One-command correctness gate for adaptml.  Runs, in order:
#
#   1. repo lint        (tools/adapt_lint.py — parsing/rand/literal/
#                        test-coverage rules)
#   2. clang-tidy       (profile in .clang-tidy; documented-skip when
#                        clang-tidy is not installed, as on the minimal
#                        gcc-only CI image)
#   3. WERROR build     (-Wall -Wextra -Wconversion -Wshadow
#                        -Wdouble-promotion -Werror over src/)
#   4. ASan+UBSan ctest (full suite under AddressSanitizer)
#   5. TSan ctest       (full suite under ThreadSanitizer, std::thread
#                        backend — see core/parallel.hpp for why the
#                        TSan build swaps out libgomp)
#   6. TSan serve+fault focus (queue/server/supervisor/chaos tests
#                        repeated for more interleavings)
#   7. thread-safety     (Clang Thread Safety Analysis over src/ with
#                        -Werror=thread-safety{,-beta}; the configure
#                        step itself proves the gate is live via a
#                        compile-fail probe.  Documented-skip when no
#                        clang++ is installed, like tidy)
#   8. fuzz-smoke        (tests/fuzz parser harnesses replay the
#                        checked-in corpus plus ~60 s of deterministic
#                        seeded mutations each, under ASan+UBSan)
#
# Exits non-zero on the first failing stage.  Budget: ~10 minutes on
# a multicore dev box; the dominant costs are the sanitizer builds and
# the TSan ctest pass, all of which parallelize (bench/examples are
# excluded from the gate builds to keep them lean).
#
# NOTE: gate build trees (checked/sanitized/werror) are for
# correctness only — never take timing baselines from them; see
# tools/check_timing_regression.sh.
#
# Usage: tools/check_static_analysis.sh [--stage NAME]... [build-root]
#   --stage NAME  run only the named stage(s); repeatable.  Names:
#                 lint tidy werror asan tsan tsan-serve thread-safety
#                 fuzz-smoke.  This is how the CI workflow fans the
#                 gate out across jobs without duplicating any stage
#                 logic.
#   build-root defaults to .gate-builds/ under the repo root (kept out
#   of the way of the normal build/ tree).

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
stages=""
build_root=""
while [ $# -gt 0 ]; do
  case "$1" in
    --stage)
      [ $# -ge 2 ] || { echo "error: --stage needs a name" >&2; exit 2; }
      stages="${stages} $2"
      shift 2
      ;;
    --stage=*)
      stages="${stages} ${1#--stage=}"
      shift
      ;;
    -h|--help)
      sed -n '2,40p' "${BASH_SOURCE[0]}"; exit 0 ;;
    *)
      [ -z "${build_root}" ] || { echo "error: unexpected arg $1" >&2; exit 2; }
      build_root="$1"
      shift
      ;;
  esac
done
[ -n "${stages}" ] || stages="lint tidy werror asan tsan tsan-serve thread-safety fuzz-smoke"
[ -n "${build_root}" ] || build_root="${repo}/.gate-builds"
jobs="$(nproc 2>/dev/null || echo 2)"

# TSan only audits code that actually runs multi-threaded; on 1-2 core
# CI boxes force a real thread pool through the std backend.
tsan_threads=4

stage() { printf '\n=== %s ===\n' "$*"; }

fail() { printf 'FAIL: %s\n' "$*" >&2; exit 1; }

want() {
  case " ${stages} " in *" $1 "*) return 0 ;; esac
  return 1
}

# The TSan tree is shared by the full-suite stage and the serve+fault
# focus stage, so either can run standalone (a lone `--stage
# tsan-serve` still gets a built tree; re-running is an incremental
# no-op).
build_tsan_tree() {
  cmake -B "${build_root}/tsan" -S "${repo}" \
    -DADAPT_SANITIZE=thread -DADAPT_CHECKED=ON \
    -DADAPT_BUILD_BENCH=OFF -DADAPT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${build_root}/tsan" -j"${jobs}" >/dev/null \
    || fail "TSan build failed"
}

# --- 1. repo lint -----------------------------------------------------
if want lint; then
  stage "lint (tools/adapt_lint.py)"
  python3 "${repo}/tools/adapt_lint.py" --repo "${repo}" \
    || fail "lint findings above"
fi

# --- 2. clang-tidy ----------------------------------------------------
if want tidy; then
  stage "clang-tidy"
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B "${build_root}/tidy" -S "${repo}" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DADAPT_BUILD_BENCH=OFF -DADAPT_BUILD_EXAMPLES=OFF >/dev/null
    # shellcheck disable=SC2046
    clang-tidy -p "${build_root}/tidy" --quiet \
      $(find "${repo}/src" -name '*.cpp') \
      || fail "clang-tidy findings above"
  else
    echo "SKIPPED: clang-tidy not installed on this image (profile is" \
         "checked in at .clang-tidy; run on a clang-equipped host)."
  fi
fi

# --- 3. warning-hardened build ---------------------------------------
if want werror; then
  stage "WERROR build (-Wall -Wextra -Wconversion -Wshadow -Wdouble-promotion)"
  cmake -B "${build_root}/werror" -S "${repo}" \
    -DADAPT_WERROR=ON -DADAPT_CHECKED=ON \
    -DADAPT_BUILD_BENCH=OFF -DADAPT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${build_root}/werror" -j"${jobs}" 2>&1 | tail -3 \
    || fail "WERROR build failed"
fi

# --- 4. ASan+UBSan tests ---------------------------------------------
if want asan; then
  stage "AddressSanitizer ctest"
  cmake -B "${build_root}/asan" -S "${repo}" \
    -DADAPT_SANITIZE=address -DADAPT_CHECKED=ON \
    -DADAPT_BUILD_BENCH=OFF -DADAPT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${build_root}/asan" -j"${jobs}" >/dev/null \
    || fail "ASan build failed"
  (cd "${build_root}/asan" && \
    ctest --output-on-failure -j"${jobs}" --timeout 1800) \
    || fail "tests failed under ASan+UBSan"
fi

# --- 5. TSan tests ----------------------------------------------------
if want tsan; then
  stage "ThreadSanitizer ctest (std::thread backend, ${tsan_threads} threads)"
  build_tsan_tree
  (cd "${build_root}/tsan" && \
    ADAPT_NUM_THREADS="${tsan_threads}" \
      ctest --output-on-failure -j1 --timeout 1800) \
    || fail "tests failed under TSan"
fi

# --- 6. serving-layer + fault-injection TSan focus --------------------
# The serve subsystem is the one place where producer threads, the
# consumer worker, the supervisor watchdog, and shared model state all
# race by design, and the fault campaign deliberately provokes every
# recovery path (retries, checksum quarantine, watchdog restarts).
# The full ctest pass above runs each of these tests once; here they
# are repeated to give TSan more interleavings to object to.
if want tsan-serve; then
  stage "TSan serve+fault focus (queue + server + supervisor + chaos, repeated)"
  build_tsan_tree
  "${build_root}/tsan/tests/adapt_serve_tests" \
    --gtest_filter='EventQueue.*:InferenceServer.*:ConcurrentInference.*:SupervisorTest.*:ShardQueue.*:StreamRouter.*' \
    --gtest_repeat=3 --gtest_brief=1 \
    || fail "serve tests failed under TSan"
  "${build_root}/tsan/tests/adapt_fault_tests" \
    --gtest_repeat=2 --gtest_brief=1 \
    || fail "fault-injection tests failed under TSan"
fi

# --- 7. Clang thread-safety analysis ----------------------------------
# The core::sync capability annotations (src/core/sync.hpp) are only
# checked by Clang; under GCC they expand to nothing.  This stage
# compiles src/ with the annotations enforced as errors.  The CMake
# configure step arms the gate with a pair of try_compile probes — an
# unguarded-access probe that must FAIL and a guarded twin that must
# compile — so a misconfigured toolchain cannot produce a silently
# green stage.
if want thread-safety; then
  stage "thread-safety (Clang TSA, -Werror=thread-safety)"
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B "${build_root}/tsa" -S "${repo}" \
      -DCMAKE_CXX_COMPILER=clang++ -DADAPT_THREAD_SAFETY=ON \
      -DADAPT_BUILD_BENCH=OFF -DADAPT_BUILD_EXAMPLES=OFF >/dev/null \
      || fail "thread-safety configure failed (probe gate not armed?)"
    cmake --build "${build_root}/tsa" -j"${jobs}" 2>&1 | tail -3 \
      || fail "thread-safety analysis found lock-discipline violations"
  else
    echo "SKIPPED: clang++ not installed on this image (the annotations" \
         "are checked in at src/core/sync.hpp; run on a clang-equipped" \
         "host — CI runs this stage with clang)."
  fi
fi

# --- 8. parser fuzz smoke ---------------------------------------------
# Each harness replays the checked-in seed corpus, then spends
# ADAPT_FUZZ_SMOKE_SECS (default 60) on deterministic seeded mutations
# of it, under ASan+UBSan.  Under Clang the same sources build as real
# libFuzzer targets for longer offline campaigns; the smoke stage uses
# the standalone driver so it runs identically on the gcc-only image.
if want fuzz-smoke; then
  smoke_secs="${ADAPT_FUZZ_SMOKE_SECS:-60}"
  stage "fuzz-smoke (${smoke_secs}s/harness, ASan+UBSan, seeded mutations)"
  cmake -B "${build_root}/fuzz" -S "${repo}" \
    -DADAPT_SANITIZE=address -DADAPT_CHECKED=ON -DADAPT_BUILD_FUZZERS=ON \
    -DADAPT_BUILD_BENCH=OFF -DADAPT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${build_root}/fuzz" -j"${jobs}" \
    --target fuzz_nn_model fuzz_qat_model fuzz_rings >/dev/null \
    || fail "fuzz harness build failed"
  for pair in "fuzz_nn_model nn_model" "fuzz_qat_model qat_model" \
              "fuzz_rings rings"; do
    set -- ${pair}
    harness="$1"; corpus="${repo}/tests/fuzz/corpus/$2"
    [ -d "${corpus}" ] || fail "missing seed corpus ${corpus}"
    "${build_root}/fuzz/tests/fuzz/${harness}" \
      --smoke "${smoke_secs}" "${corpus}" \
      || fail "${harness} crashed (minimize the reproducer and pin it as a regression test)"
  done
fi

stage "all gates passed"
