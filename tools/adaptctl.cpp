/// \file adaptctl.cpp
/// Command-line driver for the adaptml library: simulate windows, dump
/// rings, localize bursts, measure containment, train models, and
/// query the FPGA model — the operations a calibration or quick-look
/// workflow scripts against.
///
///   adaptctl simulate   [--fluence F] [--polar P] [--seed S] [--out rings.csv]
///   adaptctl localize   [--fluence F] [--polar P] [--seed S] [--ml] [--models DIR]
///   adaptctl containment [--fluence F] [--polar P] [--trials N] [--meta M] [--ml]
///   adaptctl train      [--rings N] [--epochs E] [--models DIR]
///   adaptctl fpga       [--bits B]
///   adaptctl trigger    [--fluence F] [--polar P] [--seed S]
///   adaptctl skymap     [--fluence F] [--polar P] [--seed S] [--out map.csv]
///   adaptctl chaos      [--seed S] [--events N] [--disable] ...
///
/// Every command additionally accepts `--metrics json|csv`: pipeline
/// telemetry (per-stage counters and timing histograms) is collected
/// during the run and written to stdout after the command's own
/// output.  See README.md "Telemetry" for the metric names.
///
/// `--max-reject-frac F` (any command) arms the record-rejection gate:
/// when more than fraction F of ring records were rejected by the
/// untrusted-input loaders during the run, adaptctl exits 3 instead of
/// 0 — a dataset that was 100% garbage is a failure, not a quiet
/// no-op (see eval/reject_gate.hpp).
///
/// `chaos` runs the seeded fault-injection campaign (src/fault)
/// against a live supervised serve pipeline and prints the fault
/// ledger; it exits nonzero unless every injected fault was detected
/// or tolerated and the pipeline ended healthy.
///
/// Flag values are parsed strictly (core::CliArgs): `--fluence banana`
/// or `--fluence -1` is a usage error, never a silent 0.0.  Negative
/// values (`--polar -30`) parse fine.
///
/// Exit code 0 on success; 1 on command failure; 2 on usage errors;
/// 3 when the --max-reject-frac gate breaches.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/cpu_features.hpp"
#include "core/table.hpp"
#include "core/telemetry.hpp"
#include "nn/kernels/kernels.hpp"
#include "eval/reject_gate.hpp"
#include "fault/campaign.hpp"
#include "fault/matrix.hpp"
#include "scenario/config.hpp"
#include "loc/grid_search.hpp"
#include "loc/skymap.hpp"
#include "trigger/rate_trigger.hpp"
#include "core/units.hpp"
#include "eval/containment.hpp"
#include "eval/model_provider.hpp"
#include "fpga/hls_model.hpp"
#include "pipeline/features.hpp"
#include "serve/flood.hpp"
#include "serve/synthetic_models.hpp"
#include "serve/throughput.hpp"

using namespace adapt;

namespace {

using core::CliArgs;

std::uint64_t seed_from(const CliArgs& args, std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      args.number("seed", static_cast<double>(fallback)));
}

eval::TrialSetup setup_from(const CliArgs& args) {
  eval::TrialSetup setup;
  setup.grb.fluence = args.positive_number("fluence", 1.0);
  setup.grb.polar_deg = args.number("polar", 0.0);
  setup.grb.azimuth_deg = args.number("azimuth", 0.0);
  return setup;
}

int cmd_simulate(const CliArgs& args) {
  const eval::TrialSetup setup = setup_from(args);
  const eval::TrialRunner runner(setup);
  core::Rng rng(seed_from(args, 1));
  core::Vec3 truth;
  const auto rings = runner.reconstruct_window(rng, &truth);

  core::TextTable table({"axis_x", "axis_y", "axis_z", "eta", "d_eta",
                         "e_total", "n_hits", "origin", "true_eta"});
  for (const auto& r : rings) {
    table.add_row({core::TextTable::num(r.axis.x, 6),
                   core::TextTable::num(r.axis.y, 6),
                   core::TextTable::num(r.axis.z, 6),
                   core::TextTable::num(r.eta, 6),
                   core::TextTable::num(r.d_eta, 6),
                   core::TextTable::num(r.e_total, 6),
                   core::TextTable::integer(r.n_hits),
                   r.origin == detector::Origin::kGrb ? "grb" : "background",
                   core::TextTable::num(r.cosine_to(truth), 6)});
  }
  const std::string out = args.text("out", "");
  if (!out.empty()) {
    if (!table.write_csv(out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu rings to %s (source polar %.1f deg)\n",
                table.rows(), out.c_str(), setup.grb.polar_deg);
  } else {
    table.print(std::cout, "Reconstructed Compton rings");
  }
  return 0;
}

int cmd_localize(const CliArgs& args) {
  const eval::TrialSetup setup = setup_from(args);
  const eval::TrialRunner runner(setup);
  const std::uint64_t seed = seed_from(args, 1);
  core::Rng rng(seed);

  eval::PipelineVariant variant;
  std::unique_ptr<eval::ModelProvider> provider;
  if (args.has("ml")) {
    eval::ModelProviderConfig cfg;
    cfg.cache_dir = args.text("models", "adaptml_models");
    provider = std::make_unique<eval::ModelProvider>(eval::TrialSetup{}, cfg);
    variant.background_net = &provider->background_net();
    variant.deta_net = &provider->deta_net();
  }
  const eval::TrialOutcome o = runner.run(variant, rng);
  if (!o.valid) {
    std::printf("localization failed (rings: %zu)\n", o.rings_total);
    return 1;
  }
  std::printf("burst %.2f MeV/cm^2 at polar %.1f deg: error %.3f deg "
              "(%zu rings: %zu grb + %zu bkg; kept %zu; %.1f ms)\n",
              setup.grb.fluence, setup.grb.polar_deg, o.error_deg,
              o.rings_total, o.rings_grb, o.rings_background, o.rings_kept,
              o.timings.total_ms);

  // Exhaustive grid-search cross-check on the same window (same seed
  // reproduces the exact ring set): when the fast localizer and the
  // brute-force reference disagree wildly, the burst geometry — not
  // the optimizer — is the suspect.  --no-grid skips it.
  if (!args.has("no-grid")) {
    core::Rng check_rng(seed);
    core::Vec3 truth;
    const auto rings = runner.reconstruct_window(check_rng, &truth);
    const loc::LocalizationResult grid = loc::grid_search_localize(rings);
    if (grid.valid) {
      std::printf("grid-search cross-check: error %.3f deg (%zu rings)\n",
                  core::rad_to_deg(
                      core::angle_between(grid.direction, truth)),
                  grid.rings_used);
    }
  }
  return 0;
}

int cmd_containment(const CliArgs& args) {
  const eval::TrialSetup setup = setup_from(args);
  const eval::TrialRunner runner(setup);

  eval::ContainmentConfig cc;
  cc.trials = static_cast<std::size_t>(args.count("trials", 40));
  cc.meta_trials = static_cast<std::size_t>(args.count("meta", 3));
  cc.seed = seed_from(args, 0x5eed);

  eval::PipelineVariant variant;
  std::unique_ptr<eval::ModelProvider> provider;
  if (args.has("ml")) {
    eval::ModelProviderConfig cfg;
    cfg.cache_dir = args.text("models", "adaptml_models");
    provider = std::make_unique<eval::ModelProvider>(eval::TrialSetup{}, cfg);
    variant.background_net = &provider->background_net();
    variant.deta_net = &provider->deta_net();
  }
  const auto summary = eval::measure_containment(runner, variant, cc);
  std::printf("fluence %.2f polar %.1f (%zu x %zu trials, %s):\n",
              setup.grb.fluence, setup.grb.polar_deg, cc.trials,
              cc.meta_trials, args.has("ml") ? "ML" : "no ML");
  std::printf("  68%%: %.2f +- %.2f deg    95%%: %.2f +- %.2f deg\n",
              summary.c68.mean, summary.c68.stddev, summary.c95.mean,
              summary.c95.stddev);
  return 0;
}

int cmd_train(const CliArgs& args) {
  eval::ModelProviderConfig cfg;
  cfg.cache_dir = args.text("models", "adaptml_models");
  cfg.dataset.rings_per_angle = static_cast<std::size_t>(
      args.count("rings", cfg.dataset.rings_per_angle));
  cfg.max_epochs =
      static_cast<std::size_t>(args.count("epochs", cfg.max_epochs));
  cfg.verbose = args.has("verbose");
  eval::ModelProvider provider(eval::TrialSetup{}, cfg);
  std::printf("models ready in %s (bkg accuracy %.3f, deta MSE %.3f — "
              "zeros mean loaded from cache)\n",
              cfg.cache_dir.c_str(), provider.background_test_accuracy(),
              provider.deta_test_mse());
  return 0;
}

int cmd_fpga(const CliArgs& args) {
  const int bits = static_cast<int>(args.count("bits", 8));
  const std::vector<fpga::KernelLayerSpec> layers = {
      {13, 256, true}, {256, 128, true}, {128, 64, true}, {64, 1, false}};
  fpga::KernelReport report;
  if (bits == 32) {
    report = fpga::synthesize(layers, fpga::DataType::kFp32);
  } else {
    const auto model = fpga::DataTypeModel::narrow_int(bits);
    report = fpga::synthesize(layers, fpga::DataType::kInt8, {}, &model);
  }
  std::printf("background-net kernel at %d-bit weights (10 ns clock):\n",
              bits);
  std::printf("  II %zu cycles, latency %zu cycles, %zu BRAM, %zu DSP, "
              "%zu FF, %zu LUT\n",
              report.ii_cycles, report.latency_cycles, report.bram,
              report.dsp, report.ff, report.lut);
  std::printf("  597-ring batch: %.2f ms (%.0f rings/s sustained)\n",
              report.batch_latency_ms(597), report.throughput_per_second());
  return 0;
}

int cmd_trigger(const CliArgs& args) {
  const eval::TrialSetup setup = setup_from(args);
  const detector::Geometry geometry(setup.geometry);
  const sim::ExposureSimulator simulator(geometry, setup.material,
                                         setup.readout);
  core::Rng rng(seed_from(args, 1));

  const auto quiet =
      simulator.simulate_background_only(setup.background, rng);
  trigger::TriggerConfig cfg;
  cfg.background_rate_hz =
      trigger::RateTrigger::estimate_background_rate(quiet.events, 1.0);
  const trigger::RateTrigger rate_trigger(cfg);

  const auto burst =
      simulator.simulate(setup.grb, setup.background, rng);
  const auto result = rate_trigger.scan(burst.events, 1.0);
  std::printf("background rate: %.0f events/s\n", cfg.background_rate_hz);
  if (result.triggered) {
    std::printf("TRIGGER %.1f sigma in [%.3f, %.3f] s (%zu events, %.0f "
                "expected)\n",
                result.significance_sigma, result.t_start, result.t_end,
                result.counts, result.expected);
  } else {
    std::printf("no trigger (best %.1f sigma)\n",
                result.significance_sigma);
  }
  return result.triggered ? 0 : 1;
}

int cmd_skymap(const CliArgs& args) {
  const eval::TrialSetup setup = setup_from(args);
  const eval::TrialRunner runner(setup);
  core::Rng rng(seed_from(args, 1));
  core::Vec3 truth;
  const auto rings = runner.reconstruct_window(rng, &truth);
  const loc::SkyMap map = loc::SkyMap::compute(rings);
  const std::string out = args.text("out", "skymap.csv");
  if (!map.write_csv(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  const core::Vec3 peak = map.peak();
  std::printf("sky map over %zu pixels -> %s\n", map.n_pixels(),
              out.c_str());
  std::printf("peak: polar %.2f deg azimuth %.2f deg (true error %.2f "
              "deg); 90%% radius %.2f deg\n",
              core::rad_to_deg(core::polar_of(peak)),
              core::rad_to_deg(core::azimuth_of(peak)),
              core::rad_to_deg(core::angle_between(peak, truth)),
              map.credible_radius_deg(0.9));
  return 0;
}

int cmd_serve_bench(const CliArgs& args) {
  // Strict parsing + range validation (serve/flood.hpp): a malformed
  // flag throws CliError here and exits 2 with usage, instead of
  // tripping an ADAPT_REQUIRE (exit 1) inside the serve layer.
  const serve::ThroughputConfig cfg =
      serve::throughput_config_from_args(args);

  // Synthetic paper-dimension networks (INT8 background + FP32 dEta):
  // identical compute shape to the deployed models, no training wait.
  auto background = serve::synthetic_background_net_int8(cfg.seed ^ 0xB6);
  auto deta = serve::synthetic_deta_net(cfg.seed ^ 0xDE);
  const pipeline::Models models{&background, &deta};

  const auto baseline = serve::measure_per_ring_baseline(models, cfg);
  const auto batched = serve::measure_serve_throughput(models, cfg);

  core::TextTable table({"mode", "kevents/s", "p50 [ms]", "p99 [ms]",
                         "batches", "shed", "degraded"});
  table.add_row({"per-ring loop", core::TextTable::num(
                                      baseline.events_per_s / 1e3, 1),
                 core::TextTable::num(baseline.p50_latency_ms, 3),
                 core::TextTable::num(baseline.p99_latency_ms, 3),
                 std::to_string(baseline.batches), "0", "0"});
  table.add_row({"serve, batch " + std::to_string(cfg.max_batch),
                 core::TextTable::num(batched.events_per_s / 1e3, 1),
                 core::TextTable::num(batched.p50_latency_ms, 3),
                 core::TextTable::num(batched.p99_latency_ms, 3),
                 std::to_string(batched.batches),
                 std::to_string(batched.shed),
                 std::to_string(batched.degraded)});
  table.print(std::cout);
  std::printf("speedup: %.2fx over the per-ring loop (%zu events, %zu "
              "producer(s), queue %zu)\n",
              batched.events_per_s / baseline.events_per_s, cfg.events,
              cfg.producers, cfg.queue_capacity);
  if (cfg.alert_deg > 0.0) {
    std::printf("streaming localization: %llu rings fed, %llu "
                "background-vetoed, final %.0f%% radius %.2f deg\n",
                static_cast<unsigned long long>(batched.loc_rings),
                static_cast<unsigned long long>(batched.loc_skipped),
                cfg.alert_content * 100.0, batched.final_radius_deg);
    if (batched.alert_fired) {
      std::printf("early alert: radius %.2f deg <= %.2f deg after %llu "
                  "rings, %.1f ms after start\n",
                  batched.alert_radius_deg, cfg.alert_deg,
                  static_cast<unsigned long long>(batched.alert_rings),
                  batched.alert_wall_ms);
    } else {
      std::printf("early alert: NOT fired (threshold %.2f deg; final "
                  "radius %.2f deg)\n",
                  cfg.alert_deg, batched.final_radius_deg);
    }
  }
  return 0;
}

int cmd_flood(const CliArgs& args) {
  const serve::FloodConfig cfg = serve::flood_config_from_args(args);

  auto background = serve::synthetic_background_net_int8(cfg.seed ^ 0xB6);
  auto deta = serve::synthetic_deta_net(cfg.seed ^ 0xDE);
  const pipeline::Models models{&background, &deta};

  const serve::FloodReport report = serve::measure_flood(models, cfg);

  std::printf("flood: %zu streams (skew %.2f), %zu events, %zu shards, "
              "%zu workers, %zu producer(s)\n",
              cfg.streams, cfg.skew, cfg.events, cfg.shards, cfg.workers,
              cfg.producers);
  std::printf("aggregate: %.1f kevents/s, p50 %.3f ms, p99 %.3f ms, "
              "%llu batches (%llu mixed), shed %llu (%.2f%%), degraded "
              "%llu, fairness %.4f\n",
              report.events_per_s / 1e3, report.p50_latency_ms,
              report.p99_latency_ms,
              static_cast<unsigned long long>(report.batches),
              static_cast<unsigned long long>(report.mixed_batches),
              static_cast<unsigned long long>(report.shed),
              report.submitted > 0
                  ? 100.0 * static_cast<double>(report.shed) /
                        static_cast<double>(report.submitted)
                  : 0.0,
              static_cast<unsigned long long>(report.degraded),
              report.fairness);
  if (cfg.alert_deg > 0.0) {
    std::printf("early alerts: %zu of %zu streams crossed %.2f deg\n",
                report.alerts_fired, cfg.streams, cfg.alert_deg);
  }

  // Per-stream table: all streams when small, the hottest head plus
  // the coldest tail row otherwise (the interesting fairness story is
  // hot-vs-cold, not 100 near-identical middle rows).
  std::vector<serve::StreamFloodReport> by_load = report.streams;
  std::sort(by_load.begin(), by_load.end(),
            [](const auto& a, const auto& b) {
              return a.submitted > b.submitted;
            });
  const std::size_t shown = std::min<std::size_t>(by_load.size(), 10);
  core::TextTable table({"stream", "submitted", "processed", "shed",
                         "p50 [ms]", "p99 [ms]", "alert"});
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& s = by_load[i];
    table.add_row({std::to_string(s.stream_id), std::to_string(s.submitted),
                   std::to_string(s.processed), std::to_string(s.shed),
                   core::TextTable::num(s.p50_latency_ms, 3),
                   core::TextTable::num(s.p99_latency_ms, 3),
                   s.alert_fired ? "yes" : "-"});
  }
  if (by_load.size() > shown) {
    const auto& s = by_load.back();
    table.add_row({"... " + std::to_string(s.stream_id) + " (coldest)",
                   std::to_string(s.submitted), std::to_string(s.processed),
                   std::to_string(s.shed),
                   core::TextTable::num(s.p50_latency_ms, 3),
                   core::TextTable::num(s.p99_latency_ms, 3),
                   s.alert_fired ? "yes" : "-"});
  }
  table.print(std::cout, "Per-stream (hottest first)");
  return 0;
}

int cmd_cpu_features(const CliArgs&) {
  namespace nk = nn::kernels;
  // Enable telemetry before the first kernel dispatch so the
  // nn.kernel.dispatch.* marker lands in the counters below.
  core::telemetry::set_enabled(true);

  std::printf("detected: %s\n", core::cpu_features_summary().c_str());

  core::TextTable variants({"variant", "compiled", "supported"});
  for (int i = 0; i < nk::kIsaCount; ++i) {
    const auto isa = static_cast<nk::Isa>(i);
    const char* name = i == 0 ? "scalar" : (i == 1 ? "avx2" : "avx512");
    variants.add_row({name, nk::compiled(isa) ? "yes" : "no",
                      nk::supported(isa) ? "yes" : "no"});
  }
  variants.print(std::cout);

  const nk::KernelSet& active = nk::active();
  const char* override_env = std::getenv("ADAPT_SIMD");
  if (override_env != nullptr && override_env[0] != '\0') {
    std::printf("dispatch: %s (ADAPT_SIMD=%s)\n", active.name, override_env);
  } else {
    std::printf("dispatch: %s\n", active.name);
  }

  // Run one synthetic INT8 forward (paper network dimensions) plus a
  // small float GEMM so the per-layer table and the nn.kernel.*
  // counters reflect kernels that actually executed, not just the
  // dispatch decision.
  auto background = serve::synthetic_background_net_int8(1);
  const quant::QuantizedMlp* engine = background.int8_model();
  nn::Tensor x(4, engine->layers().front().in_features, 0.25f);
  (void)engine->forward(x);
  nn::Tensor a(3, 8, 0.5f), b(5, 8, 0.25f), c;
  nn::matmul_abt(a, b, c);

  core::TextTable layers_table({"layer", "in", "out", "kernels"});
  const auto& layers = engine->layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const bool last = i + 1 == layers.size();
    layers_table.add_row(
        {"int8 " + std::to_string(i), std::to_string(layers[i].in_features),
         std::to_string(layers[i].out_features),
         std::string("u8i8_gemm.") + active.name +
             (last ? " + scalar f32 epilogue"
                   : std::string(" + u8_requant.") + active.name)});
  }
  layers_table.add_row({"fp32 gemm", "-", "-",
                        std::string("f32_gemm.") + active.name});
  layers_table.print(std::cout, "Per-layer kernel dispatch");

  std::printf("nn.kernel.* counters:\n");
  const core::telemetry::Snapshot snap = core::telemetry::snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("nn.kernel.", 0) == 0) {
      std::printf("  %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  return 0;
}

int cmd_chaos(const CliArgs& args) {
  fault::CampaignSpec spec;
  spec.seed = seed_from(args, 2026);
  spec.enabled = !args.has("disable");
  spec.events =
      static_cast<std::size_t>(args.count("events", spec.events));
  spec.transient_rounds = static_cast<std::size_t>(
      args.count("transients", spec.transient_rounds));
  spec.persistent_rounds = static_cast<std::size_t>(
      args.count("persistents", spec.persistent_rounds));
  spec.stall_rounds =
      static_cast<std::size_t>(args.count("stalls", spec.stall_rounds));
  spec.weight_bit_rounds = static_cast<std::size_t>(
      args.count("weight-flips", spec.weight_bit_rounds));
  spec.model_bytes_rounds = static_cast<std::size_t>(
      args.count("model-garbles", spec.model_bytes_rounds));
  spec.scratch_dir = args.text("scratch", "");

  const fault::CampaignResult result = fault::run_campaign(spec);
  std::fputs(result.report.c_str(), stdout);
  if (!result.ok) {
    std::fprintf(stderr, "chaos campaign FAILED: %s\n",
                 result.errors.empty() ? "ledger imbalance"
                                       : result.errors.c_str());
    return 1;
  }
  std::printf("chaos campaign passed: %llu faults injected, all "
              "accounted for, pipeline healthy\n",
              static_cast<unsigned long long>(
                  result.ledger.total_injected()));
  return 0;
}

int cmd_campaign(const CliArgs& args) {
  namespace fs = std::filesystem;

  fault::MatrixSpec spec;
  spec.seed = seed_from(args, 2026);
  spec.only_row = args.text("row", "");
  spec.scratch_dir = args.text("scratch", "");
  if (!spec.only_row.empty()) {
    bool known = false;
    for (std::size_t r = 0; r < fault::kMatrixRowCount; ++r)
      if (spec.only_row == fault::to_string(static_cast<fault::MatrixRow>(r)))
        known = true;
    if (!known)
      throw core::CliError(
          "--row must be one of none|events|forward|seu|model_bytes, got '" +
          spec.only_row + "'");
  }

  // Scenario configs: one file via --config, or every *.scn in
  // --config-dir (sorted by filename for a stable cell order).
  if (args.has("config")) {
    spec.scenarios.push_back(
        scenario::load_scenario_file(args.text("config", "")));
  } else {
    const std::string dir =
        args.text("config-dir", "tests/scenario/configs");
    std::vector<fs::path> paths;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec))
      if (entry.path().extension() == ".scn") paths.push_back(entry.path());
    if (ec)
      throw core::CliError("cannot read scenario config dir '" + dir + "'");
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths)
      spec.scenarios.push_back(scenario::load_scenario_file(path.string()));
    if (spec.scenarios.empty())
      throw core::CliError("no *.scn scenario configs in '" + dir + "'");
  }

  const fault::MatrixResult result = fault::run_matrix(spec);
  std::fputs(result.report.c_str(), stdout);

  if (args.has("report-dir")) {
    const fs::path report_dir = args.text("report-dir", "");
    std::error_code ec;
    fs::create_directories(report_dir, ec);
    if (ec)
      throw core::CliError("cannot create report dir '" +
                           report_dir.string() + "'");
    const auto write = [](const fs::path& path, const std::string& text) {
      std::ofstream out(path, std::ios::trunc);
      out << text;
      if (!out)
        throw core::CliError("cannot write report '" + path.string() + "'");
    };
    for (const auto& cell : result.cells)
      write(report_dir / (cell.scenario + "__" +
                          std::string(fault::to_string(cell.row)) + ".txt"),
            cell.report);
    write(report_dir / "matrix.txt", result.report);
  }

  if (!result.ok) {
    std::fprintf(stderr, "campaign matrix FAILED\n");
    return 1;
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: adaptctl <simulate|localize|containment|train|fpga|...> "
      "[--key value ...] [--metrics json|csv]\n"
      "  simulate    --fluence F --polar P --seed S [--out rings.csv]\n"
      "  localize    --fluence F --polar P --seed S [--ml] [--models DIR]"
      " [--no-grid]\n"
      "  containment --fluence F --polar P --trials N --meta M [--ml]\n"
      "  train       --rings N --epochs E [--models DIR] [--verbose]\n"
      "  fpga        --bits B   (2-8, or 32 for FP32)\n"
      "  trigger     --fluence F --polar P --seed S\n"
      "  skymap      --fluence F --polar P --seed S [--out map.csv]\n"
      "  serve-bench --events N --batch B --producers P --queue Q"
      " --deadline-us D\n"
      "              [--alert-deg X [--alert-content C]"
      " [--background-fraction F]]\n"
      "              (--alert-deg: stream a synthetic burst, localize "
      "incrementally per\n"
      "              batch, report when the credible radius first "
      "shrinks below X deg)\n"
      "  flood       --streams K --events N --skew Z [--shards S"
      " --workers W]\n"
      "              [--shard-cap C --stream-cap P --quantum Q --batch B"
      " --deadline-us D]\n"
      "              [--producers P] [--no-degrade] [--alert-deg X]\n"
      "              (multi-stream load generator: Zipf(Z)-skewed K-stream"
      " flood through\n"
      "              the sharded StreamRouter; reports per-stream p50/p99,"
      " shed rate, and\n"
      "              the Jain fairness index)\n"
      "  chaos       --seed S --events N [--disable] [--transients N]"
      " [--persistents N]\n"
      "              [--stalls N] [--weight-flips N] [--model-garbles N]"
      " [--scratch DIR]\n"
      "  campaign    --matrix [--seed S] [--config-dir DIR]"
      " [--report-dir DIR] [--row R]\n"
      "              | --config FILE [--seed S] [--row R]\n"
      "              (fault-class x scenario matrix: replay each *.scn"
      " hostile-sky\n"
      "              scenario through the serve path under every fault"
      " row; prints\n"
      "              per-cell ScenarioReports and enforces the ledger"
      " invariant)\n"
      "  cpu-features  report detected ISA, compiled/supported kernel\n"
      "              variants, and per-layer dispatch (ADAPT_SIMD="
      "scalar|avx2|avx512 overrides)\n"
      "  --metrics json|csv  dump pipeline telemetry to stdout after "
      "the command\n"
      "  --max-reject-frac F exit 3 when more than fraction F of ring "
      "records were rejected\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const CliArgs args(argc, argv, 2);

    // Telemetry: validate the requested format BEFORE doing any work,
    // enable collection for the run, dump after the command.
    std::string metrics_format;
    if (args.has("metrics")) {
      metrics_format = args.text("metrics", "json");
      if (metrics_format != "json" && metrics_format != "csv") {
        throw core::CliError("--metrics must be 'json' or 'csv', got '" +
                             metrics_format + "'");
      }
      core::telemetry::set_enabled(true);
    }

    // The rejection gate needs the loaders' telemetry counters even
    // when no --metrics dump was requested.
    double max_reject_frac = 1.0;
    const bool reject_gate_armed = args.has("max-reject-frac");
    if (reject_gate_armed) {
      max_reject_frac = args.number("max-reject-frac", 1.0);
      if (max_reject_frac < 0.0 || max_reject_frac > 1.0) {
        throw core::CliError("--max-reject-frac must be in [0, 1]");
      }
      core::telemetry::set_enabled(true);
    }

    int rc = 2;
    bool known = true;
    if (cmd == "simulate") rc = cmd_simulate(args);
    else if (cmd == "localize") rc = cmd_localize(args);
    else if (cmd == "containment") rc = cmd_containment(args);
    else if (cmd == "train") rc = cmd_train(args);
    else if (cmd == "fpga") rc = cmd_fpga(args);
    else if (cmd == "trigger") rc = cmd_trigger(args);
    else if (cmd == "skymap") rc = cmd_skymap(args);
    else if (cmd == "serve-bench") rc = cmd_serve_bench(args);
    else if (cmd == "flood") rc = cmd_flood(args);
    else if (cmd == "chaos") rc = cmd_chaos(args);
    else if (cmd == "campaign") rc = cmd_campaign(args);
    else if (cmd == "cpu-features" || cmd == "--cpu-features")
      rc = cmd_cpu_features(args);
    else known = false;

    if (!known) {
      usage();
      return 2;
    }
    if (!metrics_format.empty()) {
      const core::telemetry::Snapshot snap = core::telemetry::snapshot();
      if (metrics_format == "json") {
        snap.write_json(std::cout);
      } else {
        snap.write_csv(std::cout);
      }
    }
    if (reject_gate_armed && rc == 0) {
      const auto gate = eval::evaluate_reject_gate(
          core::telemetry::snapshot(), max_reject_frac);
      if (gate.breached) {
        std::fprintf(stderr,
                     "error: %llu of %llu ring records rejected "
                     "(%.1f%% > --max-reject-frac %.1f%%)\n",
                     static_cast<unsigned long long>(gate.rejected),
                     static_cast<unsigned long long>(gate.rejected +
                                                     gate.loaded),
                     100.0 * gate.fraction, 100.0 * max_reject_frac);
        return 3;
      }
    }
    return rc;
  } catch (const core::CliError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
