# Empty dependencies file for bench_nn_kernels.
# This may be replaced when dependencies are built.
