file(REMOVE_RECURSE
  "CMakeFiles/bench_nn_kernels.dir/bench_nn_kernels.cpp.o"
  "CMakeFiles/bench_nn_kernels.dir/bench_nn_kernels.cpp.o.d"
  "bench_nn_kernels"
  "bench_nn_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
