# Empty compiler generated dependencies file for bench_ablation_deta.
# This may be replaced when dependencies are built.
