file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_deta.dir/bench_ablation_deta.cpp.o"
  "CMakeFiles/bench_ablation_deta.dir/bench_ablation_deta.cpp.o.d"
  "bench_ablation_deta"
  "bench_ablation_deta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
