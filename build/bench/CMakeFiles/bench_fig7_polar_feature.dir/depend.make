# Empty dependencies file for bench_fig7_polar_feature.
# This may be replaced when dependencies are built.
