file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_polar_feature.dir/bench_fig7_polar_feature.cpp.o"
  "CMakeFiles/bench_fig7_polar_feature.dir/bench_fig7_polar_feature.cpp.o.d"
  "bench_fig7_polar_feature"
  "bench_fig7_polar_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_polar_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
