file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_quant_strategies.dir/bench_ext_quant_strategies.cpp.o"
  "CMakeFiles/bench_ext_quant_strategies.dir/bench_ext_quant_strategies.cpp.o.d"
  "bench_ext_quant_strategies"
  "bench_ext_quant_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_quant_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
