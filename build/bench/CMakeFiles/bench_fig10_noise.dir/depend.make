# Empty dependencies file for bench_fig10_noise.
# This may be replaced when dependencies are built.
