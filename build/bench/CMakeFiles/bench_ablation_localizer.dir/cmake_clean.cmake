file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_localizer.dir/bench_ablation_localizer.cpp.o"
  "CMakeFiles/bench_ablation_localizer.dir/bench_ablation_localizer.cpp.o.d"
  "bench_ablation_localizer"
  "bench_ablation_localizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
