# Empty compiler generated dependencies file for bench_ablation_localizer.
# This may be replaced when dependencies are built.
