# Empty dependencies file for bench_fig4_motivation.
# This may be replaced when dependencies are built.
