# Empty dependencies file for bench_fig11_quantization.
# This may be replaced when dependencies are built.
