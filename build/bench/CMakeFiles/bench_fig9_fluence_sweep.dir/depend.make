# Empty dependencies file for bench_fig9_fluence_sweep.
# This may be replaced when dependencies are built.
