file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fluence_sweep.dir/bench_fig9_fluence_sweep.cpp.o"
  "CMakeFiles/bench_fig9_fluence_sweep.dir/bench_fig9_fluence_sweep.cpp.o.d"
  "bench_fig9_fluence_sweep"
  "bench_fig9_fluence_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fluence_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
