file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fpga.dir/bench_table3_fpga.cpp.o"
  "CMakeFiles/bench_table3_fpga.dir/bench_table3_fpga.cpp.o.d"
  "bench_table3_fpga"
  "bench_table3_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
