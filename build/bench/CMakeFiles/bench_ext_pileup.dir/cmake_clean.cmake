file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pileup.dir/bench_ext_pileup.cpp.o"
  "CMakeFiles/bench_ext_pileup.dir/bench_ext_pileup.cpp.o.d"
  "bench_ext_pileup"
  "bench_ext_pileup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pileup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
