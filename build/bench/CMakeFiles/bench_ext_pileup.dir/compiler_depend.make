# Empty compiler generated dependencies file for bench_ext_pileup.
# This may be replaced when dependencies are built.
