# Empty dependencies file for adapt_nn.
# This may be replaced when dependencies are built.
