file(REMOVE_RECURSE
  "CMakeFiles/adapt_nn.dir/activations.cpp.o"
  "CMakeFiles/adapt_nn.dir/activations.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/adapt_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/data.cpp.o"
  "CMakeFiles/adapt_nn.dir/data.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/linear.cpp.o"
  "CMakeFiles/adapt_nn.dir/linear.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/loss.cpp.o"
  "CMakeFiles/adapt_nn.dir/loss.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/mlp.cpp.o"
  "CMakeFiles/adapt_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/optimizer.cpp.o"
  "CMakeFiles/adapt_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/sequential.cpp.o"
  "CMakeFiles/adapt_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/serialize.cpp.o"
  "CMakeFiles/adapt_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/tensor.cpp.o"
  "CMakeFiles/adapt_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/adapt_nn.dir/trainer.cpp.o"
  "CMakeFiles/adapt_nn.dir/trainer.cpp.o.d"
  "libadapt_nn.a"
  "libadapt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
