file(REMOVE_RECURSE
  "libadapt_nn.a"
)
