# Empty compiler generated dependencies file for adapt_core.
# This may be replaced when dependencies are built.
