file(REMOVE_RECURSE
  "libadapt_core.a"
)
