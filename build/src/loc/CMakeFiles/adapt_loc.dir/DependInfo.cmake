
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loc/grid_search.cpp" "src/loc/CMakeFiles/adapt_loc.dir/grid_search.cpp.o" "gcc" "src/loc/CMakeFiles/adapt_loc.dir/grid_search.cpp.o.d"
  "/root/repo/src/loc/least_squares.cpp" "src/loc/CMakeFiles/adapt_loc.dir/least_squares.cpp.o" "gcc" "src/loc/CMakeFiles/adapt_loc.dir/least_squares.cpp.o.d"
  "/root/repo/src/loc/likelihood.cpp" "src/loc/CMakeFiles/adapt_loc.dir/likelihood.cpp.o" "gcc" "src/loc/CMakeFiles/adapt_loc.dir/likelihood.cpp.o.d"
  "/root/repo/src/loc/localizer.cpp" "src/loc/CMakeFiles/adapt_loc.dir/localizer.cpp.o" "gcc" "src/loc/CMakeFiles/adapt_loc.dir/localizer.cpp.o.d"
  "/root/repo/src/loc/skymap.cpp" "src/loc/CMakeFiles/adapt_loc.dir/skymap.cpp.o" "gcc" "src/loc/CMakeFiles/adapt_loc.dir/skymap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/recon/CMakeFiles/adapt_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/adapt_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/detector/CMakeFiles/adapt_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
