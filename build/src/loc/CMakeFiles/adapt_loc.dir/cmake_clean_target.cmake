file(REMOVE_RECURSE
  "libadapt_loc.a"
)
