# Empty compiler generated dependencies file for adapt_loc.
# This may be replaced when dependencies are built.
