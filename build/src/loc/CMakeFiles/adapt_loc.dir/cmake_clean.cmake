file(REMOVE_RECURSE
  "CMakeFiles/adapt_loc.dir/grid_search.cpp.o"
  "CMakeFiles/adapt_loc.dir/grid_search.cpp.o.d"
  "CMakeFiles/adapt_loc.dir/least_squares.cpp.o"
  "CMakeFiles/adapt_loc.dir/least_squares.cpp.o.d"
  "CMakeFiles/adapt_loc.dir/likelihood.cpp.o"
  "CMakeFiles/adapt_loc.dir/likelihood.cpp.o.d"
  "CMakeFiles/adapt_loc.dir/localizer.cpp.o"
  "CMakeFiles/adapt_loc.dir/localizer.cpp.o.d"
  "CMakeFiles/adapt_loc.dir/skymap.cpp.o"
  "CMakeFiles/adapt_loc.dir/skymap.cpp.o.d"
  "libadapt_loc.a"
  "libadapt_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
