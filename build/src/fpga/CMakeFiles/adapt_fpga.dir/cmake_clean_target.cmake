file(REMOVE_RECURSE
  "libadapt_fpga.a"
)
