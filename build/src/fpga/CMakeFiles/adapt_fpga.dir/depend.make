# Empty dependencies file for adapt_fpga.
# This may be replaced when dependencies are built.
