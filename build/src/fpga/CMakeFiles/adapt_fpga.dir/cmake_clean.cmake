file(REMOVE_RECURSE
  "CMakeFiles/adapt_fpga.dir/hls_model.cpp.o"
  "CMakeFiles/adapt_fpga.dir/hls_model.cpp.o.d"
  "libadapt_fpga.a"
  "libadapt_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
