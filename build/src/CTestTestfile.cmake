# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("detector")
subdirs("physics")
subdirs("sim")
subdirs("recon")
subdirs("trigger")
subdirs("loc")
subdirs("nn")
subdirs("quant")
subdirs("fpga")
subdirs("pipeline")
subdirs("eval")
