# Empty dependencies file for adapt_physics.
# This may be replaced when dependencies are built.
