
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physics/compton.cpp" "src/physics/CMakeFiles/adapt_physics.dir/compton.cpp.o" "gcc" "src/physics/CMakeFiles/adapt_physics.dir/compton.cpp.o.d"
  "/root/repo/src/physics/cross_sections.cpp" "src/physics/CMakeFiles/adapt_physics.dir/cross_sections.cpp.o" "gcc" "src/physics/CMakeFiles/adapt_physics.dir/cross_sections.cpp.o.d"
  "/root/repo/src/physics/transport.cpp" "src/physics/CMakeFiles/adapt_physics.dir/transport.cpp.o" "gcc" "src/physics/CMakeFiles/adapt_physics.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detector/CMakeFiles/adapt_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
