file(REMOVE_RECURSE
  "libadapt_physics.a"
)
