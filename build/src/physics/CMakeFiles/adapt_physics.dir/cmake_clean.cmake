file(REMOVE_RECURSE
  "CMakeFiles/adapt_physics.dir/compton.cpp.o"
  "CMakeFiles/adapt_physics.dir/compton.cpp.o.d"
  "CMakeFiles/adapt_physics.dir/cross_sections.cpp.o"
  "CMakeFiles/adapt_physics.dir/cross_sections.cpp.o.d"
  "CMakeFiles/adapt_physics.dir/transport.cpp.o"
  "CMakeFiles/adapt_physics.dir/transport.cpp.o.d"
  "libadapt_physics.a"
  "libadapt_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
