# Empty compiler generated dependencies file for adapt_pipeline.
# This may be replaced when dependencies are built.
