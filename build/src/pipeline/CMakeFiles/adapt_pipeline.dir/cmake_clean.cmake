file(REMOVE_RECURSE
  "CMakeFiles/adapt_pipeline.dir/alert.cpp.o"
  "CMakeFiles/adapt_pipeline.dir/alert.cpp.o.d"
  "CMakeFiles/adapt_pipeline.dir/features.cpp.o"
  "CMakeFiles/adapt_pipeline.dir/features.cpp.o.d"
  "CMakeFiles/adapt_pipeline.dir/ml_localizer.cpp.o"
  "CMakeFiles/adapt_pipeline.dir/ml_localizer.cpp.o.d"
  "CMakeFiles/adapt_pipeline.dir/models.cpp.o"
  "CMakeFiles/adapt_pipeline.dir/models.cpp.o.d"
  "CMakeFiles/adapt_pipeline.dir/thresholds.cpp.o"
  "CMakeFiles/adapt_pipeline.dir/thresholds.cpp.o.d"
  "libadapt_pipeline.a"
  "libadapt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
