file(REMOVE_RECURSE
  "libadapt_pipeline.a"
)
