# Empty dependencies file for adapt_recon.
# This may be replaced when dependencies are built.
