
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recon/error_propagation.cpp" "src/recon/CMakeFiles/adapt_recon.dir/error_propagation.cpp.o" "gcc" "src/recon/CMakeFiles/adapt_recon.dir/error_propagation.cpp.o.d"
  "/root/repo/src/recon/event_reconstruction.cpp" "src/recon/CMakeFiles/adapt_recon.dir/event_reconstruction.cpp.o" "gcc" "src/recon/CMakeFiles/adapt_recon.dir/event_reconstruction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/adapt_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/detector/CMakeFiles/adapt_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
