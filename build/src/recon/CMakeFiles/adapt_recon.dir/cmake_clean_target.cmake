file(REMOVE_RECURSE
  "libadapt_recon.a"
)
