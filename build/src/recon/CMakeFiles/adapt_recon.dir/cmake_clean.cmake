file(REMOVE_RECURSE
  "CMakeFiles/adapt_recon.dir/error_propagation.cpp.o"
  "CMakeFiles/adapt_recon.dir/error_propagation.cpp.o.d"
  "CMakeFiles/adapt_recon.dir/event_reconstruction.cpp.o"
  "CMakeFiles/adapt_recon.dir/event_reconstruction.cpp.o.d"
  "libadapt_recon.a"
  "libadapt_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
