file(REMOVE_RECURSE
  "CMakeFiles/adapt_eval.dir/containment.cpp.o"
  "CMakeFiles/adapt_eval.dir/containment.cpp.o.d"
  "CMakeFiles/adapt_eval.dir/dataset_gen.cpp.o"
  "CMakeFiles/adapt_eval.dir/dataset_gen.cpp.o.d"
  "CMakeFiles/adapt_eval.dir/model_provider.cpp.o"
  "CMakeFiles/adapt_eval.dir/model_provider.cpp.o.d"
  "CMakeFiles/adapt_eval.dir/ring_io.cpp.o"
  "CMakeFiles/adapt_eval.dir/ring_io.cpp.o.d"
  "CMakeFiles/adapt_eval.dir/trial.cpp.o"
  "CMakeFiles/adapt_eval.dir/trial.cpp.o.d"
  "libadapt_eval.a"
  "libadapt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
