file(REMOVE_RECURSE
  "libadapt_eval.a"
)
