# Empty compiler generated dependencies file for adapt_eval.
# This may be replaced when dependencies are built.
