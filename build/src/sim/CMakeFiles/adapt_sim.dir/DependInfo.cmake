
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/background.cpp" "src/sim/CMakeFiles/adapt_sim.dir/background.cpp.o" "gcc" "src/sim/CMakeFiles/adapt_sim.dir/background.cpp.o.d"
  "/root/repo/src/sim/exposure.cpp" "src/sim/CMakeFiles/adapt_sim.dir/exposure.cpp.o" "gcc" "src/sim/CMakeFiles/adapt_sim.dir/exposure.cpp.o.d"
  "/root/repo/src/sim/grb_source.cpp" "src/sim/CMakeFiles/adapt_sim.dir/grb_source.cpp.o" "gcc" "src/sim/CMakeFiles/adapt_sim.dir/grb_source.cpp.o.d"
  "/root/repo/src/sim/light_curve.cpp" "src/sim/CMakeFiles/adapt_sim.dir/light_curve.cpp.o" "gcc" "src/sim/CMakeFiles/adapt_sim.dir/light_curve.cpp.o.d"
  "/root/repo/src/sim/spectrum.cpp" "src/sim/CMakeFiles/adapt_sim.dir/spectrum.cpp.o" "gcc" "src/sim/CMakeFiles/adapt_sim.dir/spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/adapt_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/detector/CMakeFiles/adapt_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
