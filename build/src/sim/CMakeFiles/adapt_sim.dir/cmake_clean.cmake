file(REMOVE_RECURSE
  "CMakeFiles/adapt_sim.dir/background.cpp.o"
  "CMakeFiles/adapt_sim.dir/background.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/exposure.cpp.o"
  "CMakeFiles/adapt_sim.dir/exposure.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/grb_source.cpp.o"
  "CMakeFiles/adapt_sim.dir/grb_source.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/light_curve.cpp.o"
  "CMakeFiles/adapt_sim.dir/light_curve.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/spectrum.cpp.o"
  "CMakeFiles/adapt_sim.dir/spectrum.cpp.o.d"
  "libadapt_sim.a"
  "libadapt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
