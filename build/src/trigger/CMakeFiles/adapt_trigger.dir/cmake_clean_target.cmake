file(REMOVE_RECURSE
  "libadapt_trigger.a"
)
