file(REMOVE_RECURSE
  "CMakeFiles/adapt_trigger.dir/rate_trigger.cpp.o"
  "CMakeFiles/adapt_trigger.dir/rate_trigger.cpp.o.d"
  "libadapt_trigger.a"
  "libadapt_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
