# Empty compiler generated dependencies file for adapt_trigger.
# This may be replaced when dependencies are built.
