file(REMOVE_RECURSE
  "libadapt_detector.a"
)
