
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detector/geometry.cpp" "src/detector/CMakeFiles/adapt_detector.dir/geometry.cpp.o" "gcc" "src/detector/CMakeFiles/adapt_detector.dir/geometry.cpp.o.d"
  "/root/repo/src/detector/readout.cpp" "src/detector/CMakeFiles/adapt_detector.dir/readout.cpp.o" "gcc" "src/detector/CMakeFiles/adapt_detector.dir/readout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
