# Empty dependencies file for adapt_detector.
# This may be replaced when dependencies are built.
