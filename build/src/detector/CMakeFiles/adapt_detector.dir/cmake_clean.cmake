file(REMOVE_RECURSE
  "CMakeFiles/adapt_detector.dir/geometry.cpp.o"
  "CMakeFiles/adapt_detector.dir/geometry.cpp.o.d"
  "CMakeFiles/adapt_detector.dir/readout.cpp.o"
  "CMakeFiles/adapt_detector.dir/readout.cpp.o.d"
  "libadapt_detector.a"
  "libadapt_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
