
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/fake_quant.cpp" "src/quant/CMakeFiles/adapt_quant.dir/fake_quant.cpp.o" "gcc" "src/quant/CMakeFiles/adapt_quant.dir/fake_quant.cpp.o.d"
  "/root/repo/src/quant/fuse.cpp" "src/quant/CMakeFiles/adapt_quant.dir/fuse.cpp.o" "gcc" "src/quant/CMakeFiles/adapt_quant.dir/fuse.cpp.o.d"
  "/root/repo/src/quant/qat_io.cpp" "src/quant/CMakeFiles/adapt_quant.dir/qat_io.cpp.o" "gcc" "src/quant/CMakeFiles/adapt_quant.dir/qat_io.cpp.o.d"
  "/root/repo/src/quant/qat_linear.cpp" "src/quant/CMakeFiles/adapt_quant.dir/qat_linear.cpp.o" "gcc" "src/quant/CMakeFiles/adapt_quant.dir/qat_linear.cpp.o.d"
  "/root/repo/src/quant/qparams.cpp" "src/quant/CMakeFiles/adapt_quant.dir/qparams.cpp.o" "gcc" "src/quant/CMakeFiles/adapt_quant.dir/qparams.cpp.o.d"
  "/root/repo/src/quant/quantized_mlp.cpp" "src/quant/CMakeFiles/adapt_quant.dir/quantized_mlp.cpp.o" "gcc" "src/quant/CMakeFiles/adapt_quant.dir/quantized_mlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/adapt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
