file(REMOVE_RECURSE
  "libadapt_quant.a"
)
