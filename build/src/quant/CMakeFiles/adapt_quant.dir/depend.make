# Empty dependencies file for adapt_quant.
# This may be replaced when dependencies are built.
