file(REMOVE_RECURSE
  "CMakeFiles/adapt_quant.dir/fake_quant.cpp.o"
  "CMakeFiles/adapt_quant.dir/fake_quant.cpp.o.d"
  "CMakeFiles/adapt_quant.dir/fuse.cpp.o"
  "CMakeFiles/adapt_quant.dir/fuse.cpp.o.d"
  "CMakeFiles/adapt_quant.dir/qat_io.cpp.o"
  "CMakeFiles/adapt_quant.dir/qat_io.cpp.o.d"
  "CMakeFiles/adapt_quant.dir/qat_linear.cpp.o"
  "CMakeFiles/adapt_quant.dir/qat_linear.cpp.o.d"
  "CMakeFiles/adapt_quant.dir/qparams.cpp.o"
  "CMakeFiles/adapt_quant.dir/qparams.cpp.o.d"
  "CMakeFiles/adapt_quant.dir/quantized_mlp.cpp.o"
  "CMakeFiles/adapt_quant.dir/quantized_mlp.cpp.o.d"
  "libadapt_quant.a"
  "libadapt_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
