file(REMOVE_RECURSE
  "CMakeFiles/adaptctl.dir/adaptctl.cpp.o"
  "CMakeFiles/adaptctl.dir/adaptctl.cpp.o.d"
  "adaptctl"
  "adaptctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
