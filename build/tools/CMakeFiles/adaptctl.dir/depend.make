# Empty dependencies file for adaptctl.
# This may be replaced when dependencies are built.
