# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/adapt_core_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_detector_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_physics_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_recon_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_loc_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_nn_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_quant_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_fpga_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_pipeline_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_eval_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_integration_tests[1]_include.cmake")
include("/root/repo/build/tests/adapt_trigger_tests[1]_include.cmake")
