# Empty dependencies file for adapt_eval_tests.
# This may be replaced when dependencies are built.
