file(REMOVE_RECURSE
  "CMakeFiles/adapt_eval_tests.dir/eval/dataset_gen_test.cpp.o"
  "CMakeFiles/adapt_eval_tests.dir/eval/dataset_gen_test.cpp.o.d"
  "CMakeFiles/adapt_eval_tests.dir/eval/ring_io_test.cpp.o"
  "CMakeFiles/adapt_eval_tests.dir/eval/ring_io_test.cpp.o.d"
  "CMakeFiles/adapt_eval_tests.dir/eval/trial_containment_test.cpp.o"
  "CMakeFiles/adapt_eval_tests.dir/eval/trial_containment_test.cpp.o.d"
  "adapt_eval_tests"
  "adapt_eval_tests.pdb"
  "adapt_eval_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_eval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
