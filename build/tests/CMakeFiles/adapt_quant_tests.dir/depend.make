# Empty dependencies file for adapt_quant_tests.
# This may be replaced when dependencies are built.
