file(REMOVE_RECURSE
  "CMakeFiles/adapt_quant_tests.dir/quant/fuse_test.cpp.o"
  "CMakeFiles/adapt_quant_tests.dir/quant/fuse_test.cpp.o.d"
  "CMakeFiles/adapt_quant_tests.dir/quant/qparams_test.cpp.o"
  "CMakeFiles/adapt_quant_tests.dir/quant/qparams_test.cpp.o.d"
  "CMakeFiles/adapt_quant_tests.dir/quant/quant_property_test.cpp.o"
  "CMakeFiles/adapt_quant_tests.dir/quant/quant_property_test.cpp.o.d"
  "CMakeFiles/adapt_quant_tests.dir/quant/quantized_mlp_test.cpp.o"
  "CMakeFiles/adapt_quant_tests.dir/quant/quantized_mlp_test.cpp.o.d"
  "adapt_quant_tests"
  "adapt_quant_tests.pdb"
  "adapt_quant_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_quant_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
