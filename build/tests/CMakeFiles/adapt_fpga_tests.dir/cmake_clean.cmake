file(REMOVE_RECURSE
  "CMakeFiles/adapt_fpga_tests.dir/fpga/hls_model_test.cpp.o"
  "CMakeFiles/adapt_fpga_tests.dir/fpga/hls_model_test.cpp.o.d"
  "adapt_fpga_tests"
  "adapt_fpga_tests.pdb"
  "adapt_fpga_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_fpga_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
