# Empty compiler generated dependencies file for adapt_fpga_tests.
# This may be replaced when dependencies are built.
