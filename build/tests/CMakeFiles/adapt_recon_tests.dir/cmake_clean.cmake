file(REMOVE_RECURSE
  "CMakeFiles/adapt_recon_tests.dir/recon/error_propagation_test.cpp.o"
  "CMakeFiles/adapt_recon_tests.dir/recon/error_propagation_test.cpp.o.d"
  "CMakeFiles/adapt_recon_tests.dir/recon/placeholder_test.cpp.o"
  "CMakeFiles/adapt_recon_tests.dir/recon/placeholder_test.cpp.o.d"
  "CMakeFiles/adapt_recon_tests.dir/recon/reconstruction_test.cpp.o"
  "CMakeFiles/adapt_recon_tests.dir/recon/reconstruction_test.cpp.o.d"
  "adapt_recon_tests"
  "adapt_recon_tests.pdb"
  "adapt_recon_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_recon_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
