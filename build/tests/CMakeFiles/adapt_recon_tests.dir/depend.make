# Empty dependencies file for adapt_recon_tests.
# This may be replaced when dependencies are built.
