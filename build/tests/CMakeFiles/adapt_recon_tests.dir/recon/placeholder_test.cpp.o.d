tests/CMakeFiles/adapt_recon_tests.dir/recon/placeholder_test.cpp.o: \
 /root/repo/tests/recon/placeholder_test.cpp /usr/include/stdc-predef.h
