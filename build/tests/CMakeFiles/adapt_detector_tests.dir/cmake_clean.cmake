file(REMOVE_RECURSE
  "CMakeFiles/adapt_detector_tests.dir/detector/geometry_test.cpp.o"
  "CMakeFiles/adapt_detector_tests.dir/detector/geometry_test.cpp.o.d"
  "CMakeFiles/adapt_detector_tests.dir/detector/readout_test.cpp.o"
  "CMakeFiles/adapt_detector_tests.dir/detector/readout_test.cpp.o.d"
  "adapt_detector_tests"
  "adapt_detector_tests.pdb"
  "adapt_detector_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_detector_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
