
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/detector/geometry_test.cpp" "tests/CMakeFiles/adapt_detector_tests.dir/detector/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/adapt_detector_tests.dir/detector/geometry_test.cpp.o.d"
  "/root/repo/tests/detector/readout_test.cpp" "tests/CMakeFiles/adapt_detector_tests.dir/detector/readout_test.cpp.o" "gcc" "tests/CMakeFiles/adapt_detector_tests.dir/detector/readout_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/adapt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/trigger/CMakeFiles/adapt_trigger.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/adapt_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/loc/CMakeFiles/adapt_loc.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/adapt_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/adapt_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/detector/CMakeFiles/adapt_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/adapt_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/adapt_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adapt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
