# Empty dependencies file for adapt_detector_tests.
# This may be replaced when dependencies are built.
