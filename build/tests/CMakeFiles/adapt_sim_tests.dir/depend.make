# Empty dependencies file for adapt_sim_tests.
# This may be replaced when dependencies are built.
