file(REMOVE_RECURSE
  "CMakeFiles/adapt_sim_tests.dir/sim/exposure_test.cpp.o"
  "CMakeFiles/adapt_sim_tests.dir/sim/exposure_test.cpp.o.d"
  "CMakeFiles/adapt_sim_tests.dir/sim/light_curve_test.cpp.o"
  "CMakeFiles/adapt_sim_tests.dir/sim/light_curve_test.cpp.o.d"
  "CMakeFiles/adapt_sim_tests.dir/sim/pileup_test.cpp.o"
  "CMakeFiles/adapt_sim_tests.dir/sim/pileup_test.cpp.o.d"
  "CMakeFiles/adapt_sim_tests.dir/sim/source_test.cpp.o"
  "CMakeFiles/adapt_sim_tests.dir/sim/source_test.cpp.o.d"
  "CMakeFiles/adapt_sim_tests.dir/sim/spectrum_test.cpp.o"
  "CMakeFiles/adapt_sim_tests.dir/sim/spectrum_test.cpp.o.d"
  "adapt_sim_tests"
  "adapt_sim_tests.pdb"
  "adapt_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
