file(REMOVE_RECURSE
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/alert_test.cpp.o"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/alert_test.cpp.o.d"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/features_test.cpp.o"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/features_test.cpp.o.d"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/ml_localizer_test.cpp.o"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/ml_localizer_test.cpp.o.d"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/models_test.cpp.o"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/models_test.cpp.o.d"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/pipeline_property_test.cpp.o"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/pipeline_property_test.cpp.o.d"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/thresholds_test.cpp.o"
  "CMakeFiles/adapt_pipeline_tests.dir/pipeline/thresholds_test.cpp.o.d"
  "adapt_pipeline_tests"
  "adapt_pipeline_tests.pdb"
  "adapt_pipeline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_pipeline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
