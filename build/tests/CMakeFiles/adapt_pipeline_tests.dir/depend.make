# Empty dependencies file for adapt_pipeline_tests.
# This may be replaced when dependencies are built.
