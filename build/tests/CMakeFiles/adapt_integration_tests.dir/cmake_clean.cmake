file(REMOVE_RECURSE
  "CMakeFiles/adapt_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/adapt_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "adapt_integration_tests"
  "adapt_integration_tests.pdb"
  "adapt_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
