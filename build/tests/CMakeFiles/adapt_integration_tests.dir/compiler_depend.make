# Empty compiler generated dependencies file for adapt_integration_tests.
# This may be replaced when dependencies are built.
