file(REMOVE_RECURSE
  "CMakeFiles/adapt_core_tests.dir/core/mat3_test.cpp.o"
  "CMakeFiles/adapt_core_tests.dir/core/mat3_test.cpp.o.d"
  "CMakeFiles/adapt_core_tests.dir/core/rng_test.cpp.o"
  "CMakeFiles/adapt_core_tests.dir/core/rng_test.cpp.o.d"
  "CMakeFiles/adapt_core_tests.dir/core/stats_test.cpp.o"
  "CMakeFiles/adapt_core_tests.dir/core/stats_test.cpp.o.d"
  "CMakeFiles/adapt_core_tests.dir/core/table_test.cpp.o"
  "CMakeFiles/adapt_core_tests.dir/core/table_test.cpp.o.d"
  "CMakeFiles/adapt_core_tests.dir/core/vec3_test.cpp.o"
  "CMakeFiles/adapt_core_tests.dir/core/vec3_test.cpp.o.d"
  "adapt_core_tests"
  "adapt_core_tests.pdb"
  "adapt_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
