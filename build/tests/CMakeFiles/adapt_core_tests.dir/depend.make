# Empty dependencies file for adapt_core_tests.
# This may be replaced when dependencies are built.
