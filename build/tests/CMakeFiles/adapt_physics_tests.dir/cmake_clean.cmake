file(REMOVE_RECURSE
  "CMakeFiles/adapt_physics_tests.dir/physics/compton_test.cpp.o"
  "CMakeFiles/adapt_physics_tests.dir/physics/compton_test.cpp.o.d"
  "CMakeFiles/adapt_physics_tests.dir/physics/cross_sections_test.cpp.o"
  "CMakeFiles/adapt_physics_tests.dir/physics/cross_sections_test.cpp.o.d"
  "CMakeFiles/adapt_physics_tests.dir/physics/physics_property_test.cpp.o"
  "CMakeFiles/adapt_physics_tests.dir/physics/physics_property_test.cpp.o.d"
  "CMakeFiles/adapt_physics_tests.dir/physics/transport_test.cpp.o"
  "CMakeFiles/adapt_physics_tests.dir/physics/transport_test.cpp.o.d"
  "adapt_physics_tests"
  "adapt_physics_tests.pdb"
  "adapt_physics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_physics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
