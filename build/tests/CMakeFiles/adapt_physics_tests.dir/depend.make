# Empty dependencies file for adapt_physics_tests.
# This may be replaced when dependencies are built.
