# Empty compiler generated dependencies file for adapt_trigger_tests.
# This may be replaced when dependencies are built.
