file(REMOVE_RECURSE
  "CMakeFiles/adapt_trigger_tests.dir/trigger/rate_trigger_test.cpp.o"
  "CMakeFiles/adapt_trigger_tests.dir/trigger/rate_trigger_test.cpp.o.d"
  "adapt_trigger_tests"
  "adapt_trigger_tests.pdb"
  "adapt_trigger_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_trigger_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
