tests/CMakeFiles/adapt_loc_tests.dir/loc/placeholder_test.cpp.o: \
 /root/repo/tests/loc/placeholder_test.cpp /usr/include/stdc-predef.h
