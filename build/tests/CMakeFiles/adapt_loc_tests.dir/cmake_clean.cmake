file(REMOVE_RECURSE
  "CMakeFiles/adapt_loc_tests.dir/loc/grid_search_test.cpp.o"
  "CMakeFiles/adapt_loc_tests.dir/loc/grid_search_test.cpp.o.d"
  "CMakeFiles/adapt_loc_tests.dir/loc/likelihood_test.cpp.o"
  "CMakeFiles/adapt_loc_tests.dir/loc/likelihood_test.cpp.o.d"
  "CMakeFiles/adapt_loc_tests.dir/loc/localizer_property_test.cpp.o"
  "CMakeFiles/adapt_loc_tests.dir/loc/localizer_property_test.cpp.o.d"
  "CMakeFiles/adapt_loc_tests.dir/loc/localizer_test.cpp.o"
  "CMakeFiles/adapt_loc_tests.dir/loc/localizer_test.cpp.o.d"
  "CMakeFiles/adapt_loc_tests.dir/loc/placeholder_test.cpp.o"
  "CMakeFiles/adapt_loc_tests.dir/loc/placeholder_test.cpp.o.d"
  "CMakeFiles/adapt_loc_tests.dir/loc/skymap_test.cpp.o"
  "CMakeFiles/adapt_loc_tests.dir/loc/skymap_test.cpp.o.d"
  "adapt_loc_tests"
  "adapt_loc_tests.pdb"
  "adapt_loc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_loc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
