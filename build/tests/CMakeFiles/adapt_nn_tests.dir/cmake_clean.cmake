file(REMOVE_RECURSE
  "CMakeFiles/adapt_nn_tests.dir/nn/data_test.cpp.o"
  "CMakeFiles/adapt_nn_tests.dir/nn/data_test.cpp.o.d"
  "CMakeFiles/adapt_nn_tests.dir/nn/layers_test.cpp.o"
  "CMakeFiles/adapt_nn_tests.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/adapt_nn_tests.dir/nn/loss_optimizer_test.cpp.o"
  "CMakeFiles/adapt_nn_tests.dir/nn/loss_optimizer_test.cpp.o.d"
  "CMakeFiles/adapt_nn_tests.dir/nn/nn_property_test.cpp.o"
  "CMakeFiles/adapt_nn_tests.dir/nn/nn_property_test.cpp.o.d"
  "CMakeFiles/adapt_nn_tests.dir/nn/serialize_mlp_test.cpp.o"
  "CMakeFiles/adapt_nn_tests.dir/nn/serialize_mlp_test.cpp.o.d"
  "CMakeFiles/adapt_nn_tests.dir/nn/tensor_test.cpp.o"
  "CMakeFiles/adapt_nn_tests.dir/nn/tensor_test.cpp.o.d"
  "CMakeFiles/adapt_nn_tests.dir/nn/trainer_test.cpp.o"
  "CMakeFiles/adapt_nn_tests.dir/nn/trainer_test.cpp.o.d"
  "adapt_nn_tests"
  "adapt_nn_tests.pdb"
  "adapt_nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
