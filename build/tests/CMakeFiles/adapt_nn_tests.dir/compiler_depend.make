# Empty compiler generated dependencies file for adapt_nn_tests.
# This may be replaced when dependencies are built.
