# Empty dependencies file for apt_forecast.
# This may be replaced when dependencies are built.
