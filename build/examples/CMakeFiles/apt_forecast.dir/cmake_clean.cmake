file(REMOVE_RECURSE
  "CMakeFiles/apt_forecast.dir/apt_forecast.cpp.o"
  "CMakeFiles/apt_forecast.dir/apt_forecast.cpp.o.d"
  "apt_forecast"
  "apt_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
