file(REMOVE_RECURSE
  "CMakeFiles/grb_survey.dir/grb_survey.cpp.o"
  "CMakeFiles/grb_survey.dir/grb_survey.cpp.o.d"
  "grb_survey"
  "grb_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grb_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
