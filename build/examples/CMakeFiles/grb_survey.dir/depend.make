# Empty dependencies file for grb_survey.
# This may be replaced when dependencies are built.
