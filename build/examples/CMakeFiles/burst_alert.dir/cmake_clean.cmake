file(REMOVE_RECURSE
  "CMakeFiles/burst_alert.dir/burst_alert.cpp.o"
  "CMakeFiles/burst_alert.dir/burst_alert.cpp.o.d"
  "burst_alert"
  "burst_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
