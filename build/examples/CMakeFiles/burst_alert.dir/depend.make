# Empty dependencies file for burst_alert.
# This may be replaced when dependencies are built.
