# Empty compiler generated dependencies file for background_rejection.
# This may be replaced when dependencies are built.
