file(REMOVE_RECURSE
  "CMakeFiles/background_rejection.dir/background_rejection.cpp.o"
  "CMakeFiles/background_rejection.dir/background_rejection.cpp.o.d"
  "background_rejection"
  "background_rejection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_rejection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
