/// \file apt_forecast.cpp
/// Forward look at the full APT instrument (paper Sec. VI): "the full
/// APT instrument, whose much larger detector ... could allow
/// localization of even dim (< 0.1 MeV/cm^2) GRBs to within a degree
/// or less."
///
/// We scale the instrument model up — more, larger tile layers (an
/// APT-class stack instead of the four-tile ADAPT demonstrator) — and
/// sweep dim fluences with the classical pipeline, printing the
/// detected-ring yield and localization error.  This exercises every
/// substrate at a different operating point from the benches.
///
/// Usage: apt_forecast [trials_per_point]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "eval/containment.hpp"
#include "eval/trial.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  const std::size_t trials =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  // APT-class instrument: deeper stack of larger tiles (the flight
  // design targets ~a square meter of aperture and many more layers;
  // this keeps single-core runtimes sane while scaling the geometric
  // acceptance ~8x over ADAPT).
  eval::TrialSetup apt;
  apt.geometry.n_layers = 8;
  apt.geometry.tile_half_width = 40.0;
  apt.geometry.layer_pitch = 10.0;
  // Space platform at L2: no atmospheric albedo; only the diffuse
  // cosmic background remains, at a much lower rate.
  apt.background.photons_per_second = 4000.0;
  apt.background.albedo_fraction = 0.0;

  std::printf("APT-class instrument: %d layers of %.0f x %.0f cm tiles\n",
              apt.geometry.n_layers, 2 * apt.geometry.tile_half_width,
              2 * apt.geometry.tile_half_width);

  core::TextTable table({"fluence [MeV/cm^2]", "mean rings",
                         "68% cont. [deg]", "95% cont. [deg]"});
  eval::ContainmentConfig cc;
  cc.trials = trials;
  cc.meta_trials = 1;
  for (const double fluence : {0.2, 0.1, 0.05}) {
    eval::TrialSetup s = apt;
    s.grb.fluence = fluence;
    s.grb.polar_deg = 25.0;
    const eval::TrialRunner runner(s);
    const auto summary =
        eval::measure_containment(runner, eval::PipelineVariant{}, cc);
    table.add_row({core::TextTable::num(fluence, 2),
                   core::TextTable::num(summary.mean_rings_total, 0),
                   core::TextTable::num(summary.c68.mean, 2),
                   core::TextTable::num(summary.c95.mean, 2)});
  }
  table.print(std::cout, "Dim-GRB forecast, APT-class geometry (no ML)");

  std::printf(
      "\npaper conjecture (Sec. VI): APT's larger detector could localize "
      "< 0.1 MeV/cm^2\nbursts to within a degree — compare the 0.1 row "
      "above.\n");
  return 0;
}
