/// \file grb_survey.cpp
/// A small survey campaign: sweep burst brightness and sky position,
/// localize each burst with the full ML pipeline (Fig. 6), and print a
/// detection/localization summary — roughly what ADAPT's one-day
/// quick-look products would contain.
///
/// Usage: grb_survey [bursts_per_point]

#include <cstdio>
#include <cstdlib>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "eval/model_provider.hpp"

#include <iostream>

using namespace adapt;

int main(int argc, char** argv) {
  const int bursts =
      argc > 1 ? std::max(1, std::atoi(argv[1])) : 6;

  std::printf("loading (or training) models from ./adaptml_models ...\n");
  eval::ModelProvider provider(eval::TrialSetup{}, {});
  eval::PipelineVariant ml;
  ml.background_net = &provider.background_net();
  ml.deta_net = &provider.deta_net();

  core::TextTable table({"fluence [MeV/cm^2]", "polar [deg]",
                         "localized (<6 deg)", "median err [deg]",
                         "mean rings"});
  for (const double fluence : {2.0, 1.0, 0.5}) {
    for (const double polar : {0.0, 40.0, 75.0}) {
      eval::TrialSetup setup;
      setup.grb.fluence = fluence;
      setup.grb.polar_deg = polar;
      const eval::TrialRunner runner(setup);

      std::vector<double> errors;
      core::RunningStat rings;
      int localized = 0;
      for (int b = 0; b < bursts; ++b) {
        core::Rng rng(0x5042 + 131 * b + static_cast<int>(10 * fluence) +
                      static_cast<int>(polar));
        const eval::TrialOutcome o = runner.run(ml, rng);
        const double err = o.valid ? o.error_deg : 180.0;
        errors.push_back(err);
        rings.add(static_cast<double>(o.rings_total));
        if (err < 6.0) ++localized;
      }
      table.add_row({core::TextTable::num(fluence, 1),
                     core::TextTable::num(polar, 0),
                     std::to_string(localized) + "/" + std::to_string(bursts),
                     core::TextTable::num(core::quantile(errors, 0.5), 2),
                     core::TextTable::num(rings.mean(), 0)});
    }
  }
  table.print(std::cout, "Simulated short-GRB survey (ML pipeline)");
  return 0;
}
