/// \file burst_alert.cpp
/// The full on-board alert chain, end to end — what ADAPT actually has
/// to do in flight, of which the paper's pipeline is the localization
/// back half:
///
///   1. stream time-tagged events from the detector simulation;
///   2. DETECT: multi-timescale Poisson rate trigger against the
///      running background rate;
///   3. SELECT: take the events around the triggered window;
///   4. LOCALIZE: reconstruct Compton rings and run the ML-in-the-loop
///      localizer (paper Fig. 6);
///   5. ALERT: trigger time, significance, best-fit position, and the
///      90% credible radius from the posterior sky map — the data a
///      GCN-style alert network would broadcast for follow-up.
///
/// All of it is one pipeline::AlertPipeline call; this example wires
/// the simulation to it and prints the alert.
///
/// Usage: burst_alert [fluence] [polar_deg]

#include <cstdio>

#include "core/cli.hpp"

#include "core/units.hpp"
#include "eval/model_provider.hpp"
#include "pipeline/alert.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  eval::TrialSetup setup;
  setup.grb.fluence = argc > 1 ? core::parse_double(argv[1], "fluence") : 1.0;
  setup.grb.polar_deg =
      argc > 2 ? core::parse_double(argv[2], "polar_deg") : 35.0;

  std::printf("loading (or training) models from ./adaptml_models ...\n");
  eval::ModelProvider provider(eval::TrialSetup{}, {});

  // One second of time-tagged detector data, plus a pre-burst
  // calibration window for the running background-rate estimate.
  const detector::Geometry geometry(setup.geometry);
  const sim::ExposureSimulator simulator(geometry, setup.material,
                                         setup.readout);
  core::Rng rng(20260706);

  pipeline::AlertPipeline alert_pipeline;
  const auto quiet =
      simulator.simulate_background_only(setup.background, rng);
  alert_pipeline.calibrate_background(quiet.events, 1.0);
  std::printf("background rate calibrated: %.0f detected events/s\n",
              alert_pipeline.background_rate_hz());

  const sim::Exposure exposure =
      simulator.simulate(setup.grb, setup.background, rng);
  std::printf("burst window: %zu detected events (%.2f MeV/cm^2 at "
              "polar %.0f deg, onset %.2f s)\n",
              exposure.events.size(), setup.grb.fluence,
              setup.grb.polar_deg, setup.grb.light_curve.t_start);

  const pipeline::Alert alert = alert_pipeline.process_window(
      exposure.events, 1.0, &provider.background_net(),
      &provider.deta_net(), rng);

  if (!alert.detection.triggered) {
    std::printf("no trigger (best %.1f sigma) — no alert.\n",
                alert.detection.significance_sigma);
    return 1;
  }
  std::printf("TRIGGER: %.1f sigma in [%.3f, %.3f] s (%zu events, "
              "%.0f expected); %zu events selected, %zu rings\n",
              alert.detection.significance_sigma, alert.detection.t_start,
              alert.detection.t_end, alert.detection.counts,
              alert.detection.expected, alert.events_selected,
              alert.rings_total);
  if (!alert.issued) {
    std::printf("localization withheld (too few rings or no valid fit).\n");
    return 1;
  }

  alert.sky_map->write_csv("burst_alert_skymap.csv");
  const double err = core::rad_to_deg(core::angle_between(
      alert.direction, exposure.true_source_direction));
  std::printf("\n================ GRB ALERT ================\n");
  std::printf("trigger time      : %.3f s (%.1f sigma)\n",
              alert.detection.t_start, alert.detection.significance_sigma);
  std::printf("best-fit position : polar %.2f deg, azimuth %.2f deg\n",
              alert.polar_deg, alert.azimuth_deg);
  std::printf("90%% error radius  : %.2f deg (sky map: "
              "burst_alert_skymap.csv)\n",
              alert.credible_radius_deg);
  std::printf("rings used        : %zu of %zu (%d rejection iterations)\n",
              alert.rings_kept, alert.rings_total,
              alert.rejection_iterations);
  std::printf("===========================================\n");
  std::printf("\n[truth check: actual error %.2f deg]\n", err);
  return 0;
}
