/// \file quickstart.cpp
/// Minimal end-to-end tour of the adaptml public API:
///
///   1. configure the ADAPT instrument (geometry + readout),
///   2. simulate a 1-second, 1 MeV/cm^2 gamma-ray burst plus
///      atmospheric background,
///   3. reconstruct Compton rings from the measured events,
///   4. localize the burst without ML (the prior pipeline),
///   5. print what happened.
///
/// Training and using the neural networks is shown in
/// examples/train_models.cpp and examples/background_rejection.cpp.

#include <cstdio>

#include "core/cli.hpp"

#include "core/rng.hpp"
#include "core/units.hpp"
#include "detector/geometry.hpp"
#include "detector/material.hpp"
#include "eval/trial.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  // Workload: one short GRB, normally incident unless overridden.
  eval::TrialSetup setup;
  setup.grb.fluence = 1.0;  // MeV/cm^2
  setup.grb.polar_deg =
      argc > 1 ? core::parse_double(argv[1], "polar_deg") : 30.0;

  const eval::TrialRunner runner(setup);
  core::Rng rng(42);

  std::printf("ADAPT quickstart: %.1f MeV/cm^2 burst at polar angle %.0f deg\n",
              setup.grb.fluence, setup.grb.polar_deg);

  // Simulate + reconstruct one exposure window.
  core::Vec3 true_source;
  const auto rings = runner.reconstruct_window(rng, &true_source);
  std::size_t n_grb = 0;
  for (const auto& r : rings)
    if (r.origin == detector::Origin::kGrb) ++n_grb;
  std::printf("reconstructed %zu Compton rings (%zu GRB, %zu background)\n",
              rings.size(), n_grb, rings.size() - n_grb);

  // Localize without ML: approximation + robust refinement.
  const pipeline::MlLocalizer localizer;
  const auto result =
      localizer.run(rings, /*background_net=*/nullptr, /*deta_net=*/nullptr,
                    rng);
  if (!result.valid) {
    std::printf("localization failed (too few usable rings)\n");
    return 1;
  }

  const double err_deg = core::rad_to_deg(
      core::angle_between(result.direction, true_source));
  std::printf("true source:      (%.3f, %.3f, %.3f)\n", true_source.x,
              true_source.y, true_source.z);
  std::printf("estimated source: (%.3f, %.3f, %.3f)\n", result.direction.x,
              result.direction.y, result.direction.z);
  std::printf("angular error:    %.2f deg  (rings used: %zu / %zu)\n",
              err_deg, result.base.rings_used, rings.size());
  return 0;
}
