/// \file background_rejection.cpp
/// Demonstrates the background network on a realistic burst window:
/// simulate a GRB plus atmospheric background, classify every
/// reconstructed Compton ring with the per-polar-bin dynamic
/// thresholds, and report the confusion matrix plus the effect on the
/// ring mix entering localization — the paper's core data-reduction
/// step (Sec. III).
///
/// Usage: background_rejection [polar_deg] [fluence]

#include <cstdio>

#include "core/cli.hpp"

#include "core/units.hpp"
#include "eval/model_provider.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  const double polar_deg =
      argc > 1 ? core::parse_double(argv[1], "polar_deg") : 30.0;
  const double fluence =
      argc > 2 ? core::parse_double(argv[2], "fluence") : 1.0;

  eval::TrialSetup setup;
  setup.grb.polar_deg = polar_deg;
  setup.grb.fluence = fluence;

  std::printf("loading (or training) models from ./adaptml_models ...\n");
  eval::ModelProvider provider(eval::TrialSetup{}, {});
  pipeline::BackgroundNet& net = provider.background_net();

  const eval::TrialRunner runner(setup);
  core::Rng rng(2024);
  core::Vec3 true_source;
  const auto rings = runner.reconstruct_window(rng, &true_source);

  // Classify at the *true* polar angle (the pipeline's Fig. 6 loop
  // would converge to an estimate of it; this example isolates the
  // classifier itself).
  const auto flagged = net.classify(rings, polar_deg);

  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    const bool is_bkg = rings[i].origin == detector::Origin::kBackground;
    const bool called_bkg = flagged[i] != 0;
    if (is_bkg && called_bkg) ++tp;
    if (!is_bkg && called_bkg) ++fp;
    if (!is_bkg && !called_bkg) ++tn;
    if (is_bkg && !called_bkg) ++fn;
  }
  const std::size_t n = rings.size();
  const std::size_t grb_in = tn + fp;
  const std::size_t bkg_in = tp + fn;

  std::printf("\nburst: %.2f MeV/cm^2 at polar %.0f deg\n", fluence,
              polar_deg);
  std::printf("rings entering localization: %zu (%zu GRB + %zu background, "
              "ratio %.1fx)\n",
              n, grb_in, bkg_in,
              static_cast<double>(bkg_in) / static_cast<double>(grb_in));
  std::printf("\nconfusion matrix (threshold for the %d-deg bin: logit "
              ">= %.3f):\n",
              static_cast<int>(polar_deg),
              net.thresholds().logit_threshold(polar_deg));
  std::printf("                      called GRB   called background\n");
  std::printf("  truly GRB        %10zu   %10zu\n", tn, fp);
  std::printf("  truly background %10zu   %10zu\n", fn, tp);

  std::printf("\nbackground removed: %.1f%%   GRB retained: %.1f%%\n",
              100.0 * static_cast<double>(tp) / static_cast<double>(bkg_in),
              100.0 * static_cast<double>(tn) / static_cast<double>(grb_in));
  std::printf("GRB purity: %.2f before -> %.2f after rejection\n",
              static_cast<double>(grb_in) / static_cast<double>(n),
              static_cast<double>(tn) / static_cast<double>(tn + fn));

  // Show the downstream effect: localize with and without rejection.
  const pipeline::MlLocalizer localizer;
  core::Rng rng_a(7);
  core::Rng rng_b(7);
  const auto plain = localizer.run(rings, nullptr, nullptr, rng_a);
  const auto with_net = localizer.run(rings, &net, nullptr, rng_b);
  const auto err = [&](const pipeline::MlLocalizationResult& r) {
    return r.valid
               ? core::rad_to_deg(core::angle_between(r.direction, true_source))
               : 180.0;
  };
  std::printf("\nlocalization error without rejection: %7.2f deg\n",
              err(plain));
  std::printf("localization error with rejection:    %7.2f deg "
              "(%d iterations, %zu rings kept)\n",
              err(with_net), with_net.background_iterations,
              with_net.rings_kept);
  return 0;
}
