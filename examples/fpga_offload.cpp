/// \file fpga_offload.cpp
/// Demonstrates the quantization + FPGA offload path (paper Sec. V):
///
///   1. load the trained, QAT-calibrated background network;
///   2. run the same ring batch through the FP32 model and the INT8
///      integer engine and compare decisions;
///   3. "synthesize" the kernel with the analytic HLS dataflow model
///      and report latency/II/resources for both datatypes;
///   4. show the accuracy/latency trade-off the paper's conclusion
///      cites (ms for a 597-ring batch at a conservative 100 MHz).

#include <cstdio>

#include "eval/model_provider.hpp"
#include "fpga/hls_model.hpp"

using namespace adapt;

int main() {
  std::printf("loading (or training) models from ./adaptml_models ...\n");
  eval::ModelProvider provider(eval::TrialSetup{}, {});

  // A realistic ring batch from one burst window.
  const eval::TrialRunner runner(eval::TrialSetup{});
  core::Rng rng(99);
  const auto rings = runner.reconstruct_window(rng);
  std::printf("ring batch: %zu rings from one 1-second window\n\n",
              rings.size());

  // FP32 vs INT8 decisions.
  auto& fp32 = provider.background_net();
  auto& int8 = provider.background_net_int8();
  const auto a = fp32.classify(rings, 30.0);
  const auto b = int8.classify(rings, 30.0);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] == b[i]) ++agree;
  std::printf("FP32 vs INT8 classification agreement: %.1f%% of %zu rings\n",
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(a.size()),
              a.size());

  // Kernel synthesis for both datatypes.
  const auto spec = fpga::kernel_spec_from(provider.fused_background());
  const auto report_int8 = fpga::synthesize(spec, fpga::DataType::kInt8);
  const auto report_fp32 = fpga::synthesize(spec, fpga::DataType::kFp32);

  const auto show = [&](const fpga::KernelReport& r) {
    std::printf("  %s: II %zu cycles, latency %zu cycles, %zu BRAM, "
                "%zu DSP, %zu FF, %zu LUT\n",
                fpga::to_string(r.data_type), r.ii_cycles, r.latency_cycles,
                r.bram, r.dsp, r.ff, r.lut);
  };
  std::printf("\nanalytic HLS synthesis (10 ns clock):\n");
  show(report_int8);
  show(report_fp32);

  std::printf("\nbatch latency for this window's %zu rings:\n",
              rings.size());
  std::printf("  INT8: %.2f ms   FP32: %.2f ms   (throughput ratio %.2fx)\n",
              report_int8.batch_latency_ms(rings.size()),
              report_fp32.batch_latency_ms(rings.size()),
              report_int8.throughput_per_second() /
                  report_fp32.throughput_per_second());
  std::size_t int8_bytes = 0;
  std::size_t fp32_bytes = 0;
  for (const auto& layer : provider.fused_background()) {
    int8_bytes += layer.weight.size() + 4 * layer.bias.size();
    fp32_bytes += 4 * (layer.weight.size() + layer.bias.size());
  }
  std::printf(
      "\nweight+bias footprint: %zu bytes INT8 vs %zu bytes FP32 — the "
      "4x shrink\nis what moves the big layer from BRAM toward LUTRAM in "
      "Table III.\n",
      int8_bytes, fp32_bytes);
  return 0;
}
