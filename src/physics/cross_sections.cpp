#include "physics/cross_sections.hpp"

#include <cmath>

#include "core/contract.hpp"
#include "core/units.hpp"
#include "physics/compton.hpp"

namespace adapt::physics {

using core::kClassicalElectronRadiusCm;
using core::kElectronMassMeV;

double klein_nishina_total(double e) {
  ADAPT_REQUIRE(e > 0.0, "photon energy must be positive");
  const double k = e / kElectronMassMeV;
  const double re2 = kClassicalElectronRadiusCm * kClassicalElectronRadiusCm;
  const double one_2k = 1.0 + 2.0 * k;
  const double log_term = std::log(one_2k);
  // Exact Klein-Nishina integral (e.g. Evans, "The Atomic Nucleus").
  const double term1 =
      (1.0 + k) / (k * k) * (2.0 * (1.0 + k) / one_2k - log_term / k);
  const double term2 = log_term / (2.0 * k);
  const double term3 = (1.0 + 3.0 * k) / (one_2k * one_2k);
  return 2.0 * core::kPi * re2 * (term1 + term2 - term3);
}

double sample_klein_nishina_cos_theta(double e, core::Rng& rng) {
  ADAPT_REQUIRE(e > 0.0, "photon energy must be positive");
  // Unnormalized dsigma/dcos_theta ~ r^2 (r + 1/r - sin^2 theta) with
  // r = E'/E.  The integrand is bounded above by its forward value 2
  // (r = 1 at cos_theta = 1), so plain rejection is exact.
  for (;;) {
    const double c = rng.uniform(-1.0, 1.0);
    const double r = compton_scattered_energy(e, c) / e;
    const double sin2 = 1.0 - c * c;
    const double f = r * r * (r + 1.0 / r - sin2);
    if (rng.uniform() * 2.0 < f) {
      ADAPT_CHECK_COSINE(c, "sampled Klein-Nishina cos(theta)");
      return c;
    }
  }
}

Attenuation attenuation(const detector::Material& material, double e) {
  ADAPT_REQUIRE(e > 0.0, "photon energy must be positive");
  Attenuation mu;
  mu.compton = material.electron_density * klein_nishina_total(e);

  // Photoelectric: steep E^-3 below the knee, shallower power law
  // above it (the cross section flattens once all shells contribute
  // and relativistic effects set in).
  const double knee = material.photo_knee;
  if (e <= knee) {
    mu.photoelectric = material.photo_coeff / (e * e * e);
  } else {
    const double at_knee = material.photo_coeff / (knee * knee * knee);
    mu.photoelectric =
        at_knee * std::pow(e / knee, -material.photo_high_exponent);
  }

  // Pair production above threshold, slowly (logarithmically) rising.
  const double threshold = 2.0 * kElectronMassMeV;
  if (e > threshold) {
    mu.pair = material.pair_coeff * std::log(e / threshold);
  }
  return mu;
}

Process sample_process(const Attenuation& mu, core::Rng& rng) {
  const double total = mu.total();
  ADAPT_REQUIRE(total > 0.0, "total attenuation must be positive");
  const double u = rng.uniform() * total;
  if (u < mu.compton) return Process::kCompton;
  if (u < mu.compton + mu.photoelectric) return Process::kPhotoelectric;
  return Process::kPair;
}

}  // namespace adapt::physics
