#include "physics/transport.hpp"

#include <cmath>

#include "core/contract.hpp"
#include "core/mat3.hpp"
#include "core/units.hpp"
#include "physics/compton.hpp"
#include "physics/cross_sections.hpp"

namespace adapt::physics {

using core::Mat3;
using core::Vec3;

Transport::Transport(const detector::Geometry& geometry,
                     const detector::Material& material,
                     const TransportConfig& config)
    : geometry_(&geometry), material_(&material), config_(config) {
  ADAPT_REQUIRE(config.energy_cutoff > 0.0, "energy cutoff must be > 0");
  ADAPT_REQUIRE(config.max_interactions > 0, "max_interactions must be > 0");
}

std::optional<Vec3> Transport::next_interaction_point(const Vec3& origin,
                                                      const Vec3& dir,
                                                      double mu_total,
                                                      core::Rng& rng) const {
  // Optical depth to consume, sampled from the exponential law.
  double tau = rng.exponential(1.0);
  const auto segments = geometry_->trace(origin, dir, 1e-9);
  for (const auto& seg : segments) {
    const double length = seg.t_exit - seg.t_enter;
    const double depth = mu_total * length;
    if (tau <= depth) {
      const double t = seg.t_enter + tau / mu_total;
      return origin + dir * t;
    }
    tau -= depth;
  }
  return std::nullopt;  // Escaped through the far side.
}

bool Transport::track(Vec3 position, Vec3 direction, double energy, int depth,
                      detector::RawEvent& event, core::Rng& rng) const {
  bool all_deposited = true;
  for (int n = 0; n < config_.max_interactions; ++n) {
    const Attenuation mu = attenuation(*material_, energy);
    const auto point =
        next_interaction_point(position, direction, mu.total(), rng);
    if (!point) return false;  // Photon escaped.

    const int layer = geometry_->layer_at(point->z);

    // Below the cutoff, the photon range is negligible: absorb here.
    if (energy <= config_.energy_cutoff) {
      event.hits.push_back(detector::TrueHit{*point, energy, layer});
      return all_deposited;
    }

    switch (sample_process(mu, rng)) {
      case Process::kPhotoelectric: {
        event.hits.push_back(detector::TrueHit{*point, energy, layer});
        return all_deposited;
      }
      case Process::kCompton: {
        const double cos_theta = sample_klein_nishina_cos_theta(energy, rng);
        const double e_out = compton_scattered_energy(energy, cos_theta);
        const double deposit = energy - e_out;
        if (deposit > 0.0) {
          event.hits.push_back(detector::TrueHit{*point, deposit, layer});
        }
        // New direction: polar angle theta about the old direction,
        // uniform azimuth, rotated back to the detector frame.
        const double sin_theta =
            std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
        const double phi = rng.uniform(0.0, core::kTwoPi);
        const Vec3 local{sin_theta * std::cos(phi), sin_theta * std::sin(phi),
                         cos_theta};
        direction = (Mat3::frame_to(direction) * local).normalized();
        position = *point;
        energy = e_out;
        // Loop invariant: the photon always carries positive energy
        // along a unit direction (the scatter math above preserves
        // both; a violation would walk the track off the kinematics).
        ADAPT_INVARIANT(energy > 0.0 && std::isfinite(energy),
                        "tracked photon energy must stay positive");
        ADAPT_CHECK_UNIT_VECTOR(direction, "scattered photon direction");
        break;
      }
      case Process::kPair: {
        // Pair production: the e+/e- kinetic energy (E - 2 m_e c^2)
        // deposits locally; positron annihilation then emits two
        // back-to-back 511 keV photons.
        const double kinetic = energy - 2.0 * core::kElectronMassMeV;
        if (kinetic > 0.0) {
          event.hits.push_back(detector::TrueHit{*point, kinetic, layer});
        }
        if (depth < config_.max_secondary_depth) {
          const Vec3 dir_a = rng.isotropic_direction();
          const bool a = track(*point, dir_a, core::kElectronMassMeV,
                               depth + 1, event, rng);
          const bool b = track(*point, -dir_a, core::kElectronMassMeV,
                               depth + 1, event, rng);
          return all_deposited && a && b;
        }
        return false;  // Annihilation photons not tracked: energy lost.
      }
    }
  }
  return false;  // Interaction cap hit; treat as partially contained.
}

detector::RawEvent Transport::propagate(const Vec3& origin,
                                        const Vec3& direction, double energy,
                                        core::Rng& rng) const {
  ADAPT_REQUIRE(energy > 0.0, "photon energy must be positive");
  ADAPT_REQUIRE(core::is_unit_vector(direction),
                "direction must be unit length");
  detector::RawEvent event;
  event.true_direction = direction;
  event.true_energy = energy;
  event.fully_absorbed = track(origin, direction, energy, 0, event, rng);
  return event;
}

}  // namespace adapt::physics
