#pragma once

/// \file compton.hpp
/// Compton scattering kinematics.  These formulas are the physical
/// heart of the instrument: the same relation that the Monte-Carlo
/// uses to scatter photons is inverted by reconstruction to recover
/// the scattering angle (the Compton ring cosine eta) from measured
/// energies.

namespace adapt::physics {

/// Scattered photon energy after a Compton scatter of a photon with
/// energy `e_in` [MeV] through an angle with cosine `cos_theta`.
///   E' = E / (1 + (E / m_e c^2) (1 - cos_theta))
double compton_scattered_energy(double e_in, double cos_theta);

/// Cosine of the scattering angle given incoming and outgoing photon
/// energies [MeV]:
///   cos_theta = 1 + m_e c^2 (1/E_in' ... ) rearranged as
///   cos_theta = 1 - m_e c^2 (1/E_out - 1/E_in).
/// The result is NOT clamped: values outside [-1, 1] signal
/// kinematically impossible energy pairs, which reconstruction uses to
/// reject mis-ordered hit sequences.
double compton_cos_theta(double e_in, double e_out);

/// The Compton-ring cosine eta for an event with total energy
/// `e_total` whose first hit deposited `e_first` (paper Sec. II-B):
/// the photon arrived with E = e_total and left the first interaction
/// with E' = e_total - e_first, so
///   eta = 1 + m_e c^2 * (1/e_total - 1/(e_total - e_first)).
/// Unclamped for the same reason as compton_cos_theta.
double ring_cosine(double e_total, double e_first);

/// Minimum incident energy [MeV] capable of depositing `e_first` in a
/// single Compton scatter (the backscatter, cos_theta = -1, limit).
/// Events violating this bound cannot be a Compton scatter of a fully
/// absorbed photon and are rejected by reconstruction filters.
double min_energy_for_first_deposit(double e_first);

/// Energy deposited by a Compton scatter of `e_in` at `cos_theta`.
double compton_energy_deposit(double e_in, double cos_theta);

}  // namespace adapt::physics
