#pragma once

/// \file cross_sections.hpp
/// Photon interaction cross sections and attenuation coefficients.
///
/// The Compton channel uses the exact (free-electron) Klein-Nishina
/// total cross section and exact rejection sampling of the scattering
/// angle.  The photoelectric and pair-production channels use the
/// calibrated parameterizations stored in detector::Material (see
/// material.hpp and DESIGN.md for the Geant4 substitution rationale).

#include "core/rng.hpp"
#include "detector/material.hpp"

namespace adapt::physics {

/// Klein-Nishina total cross section per electron [cm^2] for a photon
/// of energy `e` [MeV].
double klein_nishina_total(double e);

/// Sample the cosine of the Compton scattering angle for a photon of
/// energy `e` [MeV] from the Klein-Nishina differential cross section
/// (exact rejection sampling).
double sample_klein_nishina_cos_theta(double e, core::Rng& rng);

/// Linear attenuation coefficients [1/cm] in a material.
struct Attenuation {
  double compton = 0.0;
  double photoelectric = 0.0;
  double pair = 0.0;

  double total() const { return compton + photoelectric + pair; }
};

Attenuation attenuation(const detector::Material& material, double e);

/// Interaction channels selected by the transport loop.
enum class Process {
  kCompton,
  kPhotoelectric,
  kPair,
};

/// Pick an interaction channel proportionally to the partial
/// attenuation coefficients.
Process sample_process(const Attenuation& mu, core::Rng& rng);

}  // namespace adapt::physics
