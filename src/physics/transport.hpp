#pragma once

/// \file transport.hpp
/// Monte-Carlo photon transport through the ADAPT tile stack.
///
/// This is the repository's stand-in for the paper's Geant4
/// simulation: it propagates a photon through the layered scintillator
/// geometry, sampling interaction points from the exponential
/// attenuation law and interaction types from the partial attenuation
/// coefficients.  Compton scatters use exact Klein-Nishina angle
/// sampling; photoabsorption deposits the remaining energy; pair
/// production deposits the kinetic energy locally and emits two
/// back-to-back 511 keV annihilation photons that are themselves
/// transported.  The result is the photon's true interaction history
/// (a RawEvent) with chronological hits.

#include <optional>

#include "core/rng.hpp"
#include "detector/geometry.hpp"
#include "detector/hit.hpp"
#include "detector/material.hpp"

namespace adapt::physics {

struct TransportConfig {
  /// Photons below this energy [MeV] are considered locally absorbed
  /// at their next interaction (their range is millimetric in CsI).
  double energy_cutoff = 0.010;

  /// Hard cap on interactions per primary (pathological-history guard;
  /// physical events terminate long before this).
  int max_interactions = 32;

  /// Annihilation-photon recursion depth (pair production chains).
  int max_secondary_depth = 2;
};

class Transport {
 public:
  Transport(const detector::Geometry& geometry,
            const detector::Material& material,
            const TransportConfig& config = {});

  /// Propagate one primary photon.  `origin` is a point outside (or
  /// on the boundary of) the detector, `direction` its unit travel
  /// direction, `energy` in MeV.  Returns the event's true interaction
  /// history; an event with zero hits means the photon crossed the
  /// detector without interacting.
  detector::RawEvent propagate(const core::Vec3& origin,
                               const core::Vec3& direction, double energy,
                               core::Rng& rng) const;

  const detector::Geometry& geometry() const { return *geometry_; }
  const detector::Material& material() const { return *material_; }

 private:
  /// Sample the next interaction point of a ray starting at `origin`
  /// along `dir` with attenuation mu_total.  Returns nullopt when the
  /// photon escapes all material.
  std::optional<core::Vec3> next_interaction_point(const core::Vec3& origin,
                                                   const core::Vec3& dir,
                                                   double mu_total,
                                                   core::Rng& rng) const;

  /// Transport one photon (primary or secondary), appending hits.
  /// Returns true if the photon's full energy was deposited.
  bool track(core::Vec3 position, core::Vec3 direction, double energy,
             int depth, detector::RawEvent& event, core::Rng& rng) const;

  const detector::Geometry* geometry_;
  const detector::Material* material_;
  TransportConfig config_;
};

}  // namespace adapt::physics
