#include "physics/compton.hpp"

#include <cmath>

#include "core/contract.hpp"
#include "core/units.hpp"

namespace adapt::physics {

using core::kElectronMassMeV;

double compton_scattered_energy(double e_in, double cos_theta) {
  ADAPT_REQUIRE(e_in > 0.0, "photon energy must be positive");
  const double denom = 1.0 + (e_in / kElectronMassMeV) * (1.0 - cos_theta);
  const double e_out = e_in / denom;
  // Kinematics: the scattered photon keeps some energy and never
  // gains any (equality only at cos_theta = 1, the forward limit).
  ADAPT_ENSURE(e_out > 0.0 && e_out <= e_in,
               "scattered energy must lie in (0, e_in]");
  return e_out;
}

double compton_cos_theta(double e_in, double e_out) {
  ADAPT_REQUIRE(e_in > 0.0 && e_out > 0.0, "energies must be positive");
  return 1.0 - kElectronMassMeV * (1.0 / e_out - 1.0 / e_in);
}

double ring_cosine(double e_total, double e_first) {
  ADAPT_REQUIRE(e_total > 0.0, "total energy must be positive");
  ADAPT_REQUIRE(e_first > 0.0 && e_first < e_total,
                "first deposit must be in (0, e_total)");
  return 1.0 + kElectronMassMeV * (1.0 / e_total - 1.0 / (e_total - e_first));
}

double min_energy_for_first_deposit(double e_first) {
  ADAPT_REQUIRE(e_first > 0.0, "deposit must be positive");
  // At cos_theta = -1 the deposit is maximal:
  //   dep(E) = E - E / (1 + 2 E / m) = 2 E^2 / (m + 2 E).
  // Solving dep(E) = e_first for E:
  const double m = kElectronMassMeV;
  return (e_first + std::sqrt(e_first * e_first + 2.0 * m * e_first)) / 2.0;
}

double compton_energy_deposit(double e_in, double cos_theta) {
  return e_in - compton_scattered_energy(e_in, cos_theta);
}

}  // namespace adapt::physics
