#pragma once

/// \file layer.hpp
/// Layer abstraction for the MLPs of paper Fig. 5.
///
/// The networks are small sequential stacks, so instead of a general
/// autograd graph each layer implements an explicit forward/backward
/// pair and caches whatever it needs between the two.  Parameters
/// expose value+gradient pairs to the optimizer.

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace adapt::nn {

/// A trainable parameter: value and accumulated gradient.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  void zero_grad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
      grad = Tensor(value.rows(), value.cols());
    }
    grad.zero();
  }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass.  `training` toggles batch-statistics vs running
  /// statistics in BatchNorm (and is forwarded to any stateful layer).
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Backward pass: gradient of the loss w.r.t. this layer's input,
  /// given the gradient w.r.t. its output.  Must be called after
  /// forward(training=true) on the same batch.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Param*> params() { return {}; }

  /// Layer type tag for serialization and reports.
  virtual std::string type() const = 0;

  /// Human-readable shape summary.
  virtual std::string describe() const { return type(); }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace adapt::nn
