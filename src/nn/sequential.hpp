#pragma once

/// \file sequential.hpp
/// Ordered layer stack with whole-network forward/backward, parameter
/// collection, and weight snapshot/restore (used by early stopping to
/// keep the best-validation weights, as the paper trains with early
/// stopping).

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace adapt::nn {

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(LayerPtr layer);

  Tensor forward(const Tensor& x, bool training = false);

  /// Backward through the whole stack; returns the input gradient.
  Tensor backward(const Tensor& grad_out);

  std::vector<Param*> params();
  void zero_grad();

  std::size_t n_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Total trainable scalar count.
  std::size_t n_parameters();

  /// Deep copy of all parameter values (and batchnorm running stats).
  std::vector<std::vector<float>> snapshot_weights();
  void restore_weights(const std::vector<std::vector<float>>& snapshot);

  std::string describe() const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace adapt::nn
