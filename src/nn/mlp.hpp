#pragma once

/// \file mlp.hpp
/// Builders for the paper's network architecture (Fig. 5): a stack of
/// blocks, each BatchNorm1d -> FC -> ReLU, followed by a final FC to
/// one output.  A "layer-swapped" variant (FC -> BatchNorm1d -> ReLU)
/// exists for quantization: swapping the order lets Linear+BN+ReLU
/// fuse into a single integer kernel (paper Sec. V).

#include <cstddef>
#include <vector>

#include "nn/sequential.hpp"

namespace adapt::nn {

struct MlpSpec {
  std::size_t input_dim = 13;  ///< 12 ring features + polar angle.
  std::vector<std::size_t> widths;  ///< Hidden FC widths, block order.
  bool swap_bn_fc = false;  ///< Layer-swapped (quantizable) blocks.

  /// Total fully connected layers (hidden + output), the count the
  /// paper reports as "four FC layers in total".
  std::size_t n_fc_layers() const { return widths.size() + 1; }
};

/// Background network: 4 FC layers, maximum width 256 in the first FC,
/// gradually decreasing (paper Sec. III, Model Training).
MlpSpec background_net_spec(std::size_t input_dim = 13,
                            bool swap_bn_fc = false);

/// dEta network: 4 FC layers, maximum width 16 in the middle, shorter
/// at the beginning and end (paper Sec. III, Model Training).
MlpSpec deta_net_spec(std::size_t input_dim = 13);

/// Instantiate the architecture with fresh (He) weights.
Sequential build_mlp(const MlpSpec& spec, core::Rng& rng);

}  // namespace adapt::nn
