#include "nn/loss.hpp"

#include <cmath>

#include "core/require.hpp"

namespace adapt::nn {

LossResult bce_with_logits(const Tensor& logits,
                           const std::vector<float>& targets) {
  ADAPT_REQUIRE(logits.cols() == 1, "bce expects (n x 1) logits");
  ADAPT_REQUIRE(logits.rows() == targets.size(), "bce target count mismatch");
  const std::size_t n = logits.rows();
  ADAPT_REQUIRE(n > 0, "empty batch");

  LossResult out;
  out.grad = Tensor(n, 1);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double z = logits(i, 0);
    const double t = targets[i];
    // loss = max(z,0) - z t + log(1 + exp(-|z|))
    total += std::max(z, 0.0) - z * t + std::log1p(std::exp(-std::abs(z)));
    // dloss/dz = sigmoid(z) - t
    const double s = z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                              : std::exp(z) / (1.0 + std::exp(z));
    out.grad(i, 0) = static_cast<float>((s - t) / static_cast<double>(n));
  }
  out.value = total / static_cast<double>(n);
  return out;
}

LossResult mse(const Tensor& pred, const std::vector<float>& targets) {
  ADAPT_REQUIRE(pred.cols() == 1, "mse expects (n x 1) predictions");
  ADAPT_REQUIRE(pred.rows() == targets.size(), "mse target count mismatch");
  const std::size_t n = pred.rows();
  ADAPT_REQUIRE(n > 0, "empty batch");

  LossResult out;
  out.grad = Tensor(n, 1);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        static_cast<double>(pred(i, 0)) - static_cast<double>(targets[i]);
    total += d * d;
    out.grad(i, 0) = static_cast<float>(2.0 * d / static_cast<double>(n));
  }
  out.value = total / static_cast<double>(n);
  return out;
}

}  // namespace adapt::nn
