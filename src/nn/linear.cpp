#include "nn/linear.hpp"

#include <sstream>

#include "core/require.hpp"

namespace adapt::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               core::Rng& rng)
    : in_(in_features), out_(out_features) {
  ADAPT_REQUIRE(in_features > 0 && out_features > 0,
                "linear layer dims must be positive");
  weight_.name = "weight";
  weight_.value = Tensor(out_, in_);
  weight_.value.he_init(in_, rng);
  weight_.zero_grad();
  bias_.name = "bias";
  bias_.value = Tensor(1, out_);
  bias_.zero_grad();
}

Tensor Linear::forward(const Tensor& x, bool training) {
  ADAPT_REQUIRE(x.cols() == in_, "linear input width mismatch");
  if (training) input_cache_ = x;
  Tensor y;
  matmul_abt(x, weight_.value, y);
  add_row_broadcast(y, bias_.value.vec());
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  ADAPT_REQUIRE(grad_out.cols() == out_, "linear grad width mismatch");
  ADAPT_REQUIRE(grad_out.rows() == input_cache_.rows(),
                "backward batch mismatch (forward(training=true) first?)");

  // dW = grad_out^T * x; db = column sums; dx = grad_out * W.
  Tensor dw;
  matmul_atb(grad_out, input_cache_, dw);
  for (std::size_t i = 0; i < dw.size(); ++i)
    weight_.grad.vec()[i] += dw.vec()[i];

  for (std::size_t r = 0; r < grad_out.rows(); ++r)
    for (std::size_t c = 0; c < out_; ++c)
      bias_.grad(0, c) += grad_out(r, c);

  Tensor dx;
  matmul_ab(grad_out, weight_.value, dx);
  return dx;
}

std::string Linear::describe() const {
  std::ostringstream os;
  os << "linear(" << in_ << " -> " << out_ << ")";
  return os.str();
}

}  // namespace adapt::nn
