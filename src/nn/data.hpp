#pragma once

/// \file data.hpp
/// Dataset plumbing: feature standardization, train/val/test splits
/// (the paper uses 80/20 train/test with a further 80/20
/// train/validation split), and a shuffled mini-batch loader.

#include <cstddef>
#include <vector>

#include "core/rng.hpp"
#include "nn/tensor.hpp"

namespace adapt::nn {

/// A supervised dataset: features (n x d) and one target per row.
struct Dataset {
  Tensor x;
  std::vector<float> y;

  std::size_t size() const { return x.rows(); }
  bool empty() const { return x.rows() == 0; }

  /// Select a subset of rows.
  Dataset subset(const std::vector<std::size_t>& rows) const;
};

/// Split a dataset into two parts with the first receiving
/// `first_fraction` of the rows, after a seeded shuffle.
struct SplitResult {
  Dataset first;
  Dataset second;
};
SplitResult split(const Dataset& data, double first_fraction, core::Rng& rng);

/// Per-feature affine standardization to zero mean / unit variance,
/// fit on training data and frozen for validation/test/inference.
/// The fitted constants ship with the serialized model so the flight
/// software applies the identical transform.
class Standardizer {
 public:
  void fit(const Tensor& x);
  Tensor transform(const Tensor& x) const;
  void transform_in_place(Tensor& x) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& inv_std() const { return inv_std_; }
  void set(std::vector<float> mean, std::vector<float> inv_std);

 private:
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

/// Shuffled mini-batch iteration over a dataset.
class DataLoader {
 public:
  DataLoader(const Dataset& data, std::size_t batch_size, core::Rng& rng);

  /// Prepare a new epoch (reshuffle).
  void reset();

  /// Fetch the next batch; returns false at epoch end.
  bool next(Tensor& x_batch, std::vector<float>& y_batch);

  std::size_t n_batches() const;

 private:
  const Dataset* data_;
  std::size_t batch_size_;
  core::Rng* rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace adapt::nn
