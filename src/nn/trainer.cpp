#include "nn/trainer.hpp"

#include <cstdio>
#include <limits>
#include <optional>

#include "core/require.hpp"

namespace adapt::nn {

Trainer::Trainer(Sequential& model, LossFn loss, const TrainConfig& config)
    : model_(&model), loss_(loss), config_(config) {
  ADAPT_REQUIRE(loss != nullptr, "null loss function");
  ADAPT_REQUIRE(config.batch_size >= 2,
                "batch size must be >= 2 (batchnorm statistics)");
  ADAPT_REQUIRE(config.max_epochs >= 1, "need at least one epoch");
}

TrainReport Trainer::fit(const Dataset& train, const Dataset& val,
                         core::Rng& rng) {
  ADAPT_REQUIRE(!train.empty() && !val.empty(), "empty train/val set");
  TrainReport report;
  std::optional<Sgd> sgd;
  std::optional<Adam> adam;
  if (config_.optimizer == TrainConfig::Optimizer::kSgd) {
    sgd.emplace(model_->params(), config_.sgd);
  } else {
    adam.emplace(model_->params(), config_.adam);
  }
  const auto optimizer_step = [&] {
    if (sgd) {
      sgd->step();
    } else {
      adam->step();
    }
  };
  DataLoader loader(train, config_.batch_size, rng);

  double best_val = std::numeric_limits<double>::infinity();
  std::vector<std::vector<float>> best_weights = model_->snapshot_weights();
  std::size_t epochs_since_best = 0;

  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    loader.reset();
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    Tensor xb;
    std::vector<float> yb;
    while (loader.next(xb, yb)) {
      // BatchNorm needs at least two rows to form batch statistics;
      // a trailing singleton batch is skipped.
      if (xb.rows() < 2) continue;
      model_->zero_grad();
      const Tensor pred = model_->forward(xb, /*training=*/true);
      const LossResult loss = loss_(pred, yb);
      model_->backward(loss.grad);
      optimizer_step();
      epoch_loss += loss.value;
      ++batches;
    }
    ADAPT_REQUIRE(batches > 0, "no usable batches in training set");
    epoch_loss /= static_cast<double>(batches);

    const double val_loss = evaluate(val);
    report.train_losses.push_back(epoch_loss);
    report.val_losses.push_back(val_loss);
    report.epochs_run = epoch + 1;
    if (config_.verbose) {
      std::printf("epoch %3zu  train %.6f  val %.6f\n", epoch + 1, epoch_loss,
                  val_loss);
    }

    if (val_loss < best_val - 1e-9) {
      best_val = val_loss;
      best_weights = model_->snapshot_weights();
      epochs_since_best = 0;
    } else if (++epochs_since_best >= config_.patience) {
      report.stopped_early = true;
      break;
    }
  }

  model_->restore_weights(best_weights);
  report.best_val_loss = best_val;
  return report;
}

double Trainer::evaluate(const Dataset& data) {
  ADAPT_REQUIRE(!data.empty(), "empty evaluation set");
  const Tensor pred = model_->forward(data.x, /*training=*/false);
  return loss_(pred, data.y).value;
}

}  // namespace adapt::nn
