#pragma once

/// \file activations.hpp
/// ReLU (block activation in paper Fig. 5) and Sigmoid (background
/// network output).  The FPGA kernel drops the final sigmoid — it is
/// bijective, so the classification threshold is applied to the logit
/// instead (paper Sec. V); the software path keeps it for calibrated
/// probabilities.

#include "nn/layer.hpp"

namespace adapt::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type() const override { return "relu"; }

 private:
  Tensor mask_;  ///< 1 where the input was positive.
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type() const override { return "sigmoid"; }

 private:
  Tensor output_cache_;
};

/// Scalar sigmoid, shared with inference wrappers.
float sigmoid(float x);

}  // namespace adapt::nn
