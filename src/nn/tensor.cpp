#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "core/parallel.hpp"
#include "core/require.hpp"
#include "nn/kernels/kernels.hpp"

namespace adapt::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::he_init(std::size_t fan_in, core::Rng& rng) {
  ADAPT_REQUIRE(fan_in > 0, "fan_in must be positive");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

void Tensor::xavier_init(std::size_t fan_in, std::size_t fan_out,
                         core::Rng& rng) {
  ADAPT_REQUIRE(fan_in + fan_out > 0, "fans must be positive");
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : data_) v = static_cast<float>(rng.uniform(-limit, limit));
}

Tensor Tensor::slice_rows(std::size_t begin, std::size_t end) const {
  ADAPT_REQUIRE(begin <= end && end <= rows_, "row slice out of range");
  Tensor out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_),
            out.data());
  return out;
}

double Tensor::squared_norm() const {
  double s = 0.0;
  for (const float v : data_) {
    const auto dv = static_cast<double>(v);
    s += dv * dv;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Blocked GEMM.
//
// All three matmul orientations funnel into one register-blocked,
// cache-tiled driver over row-major operands, C[n x m] = A[n x k] *
// B[k x m].  The transposed orientations pack their transposed operand
// into a contiguous row-major panel first (O(k*m) work against the
// kernel's O(n*k*m)), which turns the column-strided accesses of
// matmul_abt / matmul_atb into unit-stride streams.
//
// The inner row-block kernel is runtime-dispatched (nn/kernels):
// scalar, AVX2, or AVX-512 depending on the host CPU and ADAPT_SIMD.
// Every variant accumulates each output element in plain ascending-t
// order with unfused mul+add, so results are deterministic and
// independent of tiling, thread count, AND dispatched ISA.

namespace {

constexpr std::size_t kRowBlock = 4;  ///< C rows per kernel row block.
constexpr std::size_t kColChunk = 8;  ///< column-tile rounding unit.

/// Column-tile width: keep the B stripe (k x tile floats) within half
/// of a typical 32 KiB L1D, clamped to [kColChunk, 512] and rounded to
/// whole chunks.
std::size_t tile_cols(std::size_t k, std::size_t m) {
  static const std::size_t env_override =
      core::env_tuning_knob("ADAPT_GEMM_TILE_COLS", 0);
  std::size_t tile = env_override;
  if (tile == 0) {
    const std::size_t budget = 16 * 1024 / sizeof(float);  // half of L1D
    tile = std::clamp<std::size_t>(budget / std::max<std::size_t>(k, 1),
                                   kColChunk, 512);
  }
  tile = (tile / kColChunk) * kColChunk;
  tile = std::max(tile, kColChunk);
  return std::min(tile, std::max<std::size_t>(m, 1));
}

/// C = A * B over row-major buffers (overwrites C).  A is (n x k) with
/// row stride lda, B (k x m) row stride m, C (n x m) row stride m.
void gemm_rowmajor(const float* a, std::size_t lda, const float* b,
                   float* c, std::size_t n, std::size_t k, std::size_t m) {
  if (n == 0 || m == 0) return;
  if (k == 0) {
    std::fill(c, c + n * m, 0.0f);
    return;
  }
  const kernels::KernelSet& kset = kernels::active();
  kset.f32_calls->add();
  const std::size_t jt = tile_cols(k, m);
  const std::size_t n_blocks = (n + kRowBlock - 1) / kRowBlock;
  core::parallel_for(
      n_blocks,
      [&](std::size_t blk) {
        const std::size_t i0 = blk * kRowBlock;
        const std::size_t rows = std::min(kRowBlock, n - i0);
        for (std::size_t j0 = 0; j0 < m; j0 += jt) {
          const std::size_t j1 = std::min(j0 + jt, m);
          kset.f32_row_block(a + i0 * lda, lda, b, m, c + i0 * m, m, rows, k,
                             j0, j1);
        }
      },
      // Amortize scheduling: hand out row blocks in bundles sized so a
      // bundle is ~64k MACs.
      std::max<std::size_t>(1, 65536 / std::max<std::size_t>(k * m, 1)));
}

/// Thread-local packing scratch (transposed panels), reused across
/// calls so the hot inference loop performs no steady-state
/// allocation.
std::vector<float>& pack_scratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

/// Pack src (r x c, row-major) transposed into dst (c x r, row-major).
void pack_transposed(const float* __restrict src, std::size_t r,
                     std::size_t c, float* __restrict dst) {
  for (std::size_t i = 0; i < r; ++i) {
    const float* __restrict si = src + i * c;
    for (std::size_t j = 0; j < c; ++j) dst[j * r + i] = si[j];
  }
}

}  // namespace

void matmul_abt(const Tensor& a, const Tensor& b, Tensor& c) {
  ADAPT_REQUIRE(a.cols() == b.cols(), "matmul_abt: inner dims mismatch");
  const std::size_t n = a.rows();
  const std::size_t m = b.rows();
  const std::size_t k = a.cols();
  if (c.rows() != n || c.cols() != m) c = Tensor(n, m);
  if (n == 0 || m == 0) return;

  // Pack B (m x k) into a contiguous (k x m) panel: B^T rows become
  // unit-stride, and the shared kernel's column streaming applies.
  std::vector<float>& bt = pack_scratch();
  bt.resize(k * m);
  pack_transposed(b.data(), m, k, bt.data());
  gemm_rowmajor(a.data(), k, bt.data(), c.data(), n, k, m);
}

void matmul_ab(const Tensor& a, const Tensor& b, Tensor& c) {
  ADAPT_REQUIRE(a.cols() == b.rows(), "matmul_ab: inner dims mismatch");
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  const std::size_t m = b.cols();
  if (c.rows() != n || c.cols() != m) c = Tensor(n, m);
  if (n == 0 || m == 0) return;
  gemm_rowmajor(a.data(), k, b.data(), c.data(), n, k, m);
}

void matmul_atb(const Tensor& a, const Tensor& b, Tensor& c) {
  ADAPT_REQUIRE(a.rows() == b.rows(), "matmul_atb: inner dims mismatch");
  const std::size_t k = a.rows();
  const std::size_t n = a.cols();
  const std::size_t m = b.cols();
  if (c.rows() != n || c.cols() != m) c = Tensor(n, m);
  if (n == 0 || m == 0) return;

  // Pack A (k x n) transposed into (n x k) so every output row reads a
  // contiguous A panel instead of striding column-wise.
  std::vector<float>& at = pack_scratch();
  at.resize(n * k);
  pack_transposed(a.data(), k, n, at.data());
  gemm_rowmajor(at.data(), k, b.data(), c.data(), n, k, m);
}

void add_row_broadcast(Tensor& y, const std::vector<float>& row) {
  ADAPT_REQUIRE(y.cols() == row.size(), "bias width mismatch");
  const float* __restrict r = row.data();
  const std::size_t cols = y.cols();
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* __restrict yi = y.data() + i * cols;
#pragma omp simd
    for (std::size_t j = 0; j < cols; ++j) yi[j] += r[j];
  }
}

}  // namespace adapt::nn
