#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"

namespace adapt::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::he_init(std::size_t fan_in, core::Rng& rng) {
  ADAPT_REQUIRE(fan_in > 0, "fan_in must be positive");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

void Tensor::xavier_init(std::size_t fan_in, std::size_t fan_out,
                         core::Rng& rng) {
  ADAPT_REQUIRE(fan_in + fan_out > 0, "fans must be positive");
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : data_) v = static_cast<float>(rng.uniform(-limit, limit));
}

Tensor Tensor::slice_rows(std::size_t begin, std::size_t end) const {
  ADAPT_REQUIRE(begin <= end && end <= rows_, "row slice out of range");
  Tensor out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_),
            out.data());
  return out;
}

double Tensor::squared_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

void matmul_abt(const Tensor& a, const Tensor& b, Tensor& c) {
  ADAPT_REQUIRE(a.cols() == b.cols(), "matmul_abt: inner dims mismatch");
  const std::size_t n = a.rows();
  const std::size_t m = b.rows();
  const std::size_t k = a.cols();
  if (c.rows() != n || c.cols() != m) c = Tensor(n, m);

  const auto ni = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static) if (n * m * k > 16384)
  for (std::ptrdiff_t i = 0; i < ni; ++i) {
    const float* ai = a.data() + static_cast<std::size_t>(i) * k;
    float* ci = c.data() + static_cast<std::size_t>(i) * m;
    for (std::size_t j = 0; j < m; ++j) {
      const float* bj = b.data() + j * k;
      float s = 0.0f;
      for (std::size_t t = 0; t < k; ++t) s += ai[t] * bj[t];
      ci[j] = s;
    }
  }
}

void matmul_ab(const Tensor& a, const Tensor& b, Tensor& c) {
  ADAPT_REQUIRE(a.cols() == b.rows(), "matmul_ab: inner dims mismatch");
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  const std::size_t m = b.cols();
  if (c.rows() != n || c.cols() != m) c = Tensor(n, m);
  c.zero();

  const auto ni = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static) if (n * m * k > 16384)
  for (std::ptrdiff_t i = 0; i < ni; ++i) {
    const float* ai = a.data() + static_cast<std::size_t>(i) * k;
    float* ci = c.data() + static_cast<std::size_t>(i) * m;
    for (std::size_t t = 0; t < k; ++t) {
      const float av = ai[t];
      const float* bt = b.data() + t * m;
      for (std::size_t j = 0; j < m; ++j) ci[j] += av * bt[j];
    }
  }
}

void matmul_atb(const Tensor& a, const Tensor& b, Tensor& c) {
  ADAPT_REQUIRE(a.rows() == b.rows(), "matmul_atb: inner dims mismatch");
  const std::size_t k = a.rows();
  const std::size_t n = a.cols();
  const std::size_t m = b.cols();
  if (c.rows() != n || c.cols() != m) c = Tensor(n, m);
  c.zero();

  // Accumulate outer products; parallel over output rows to avoid
  // write conflicts.
  const auto nn_ = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static) if (n * m * k > 16384)
  for (std::ptrdiff_t i = 0; i < nn_; ++i) {
    float* ci = c.data() + static_cast<std::size_t>(i) * m;
    for (std::size_t t = 0; t < k; ++t) {
      const float av = a(t, static_cast<std::size_t>(i));
      const float* bt = b.data() + t * m;
      for (std::size_t j = 0; j < m; ++j) ci[j] += av * bt[j];
    }
  }
}

void add_row_broadcast(Tensor& y, const std::vector<float>& row) {
  ADAPT_REQUIRE(y.cols() == row.size(), "bias width mismatch");
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* yi = y.data() + i * y.cols();
    for (std::size_t j = 0; j < y.cols(); ++j) yi[j] += row[j];
  }
}

}  // namespace adapt::nn
