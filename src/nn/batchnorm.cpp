#include "nn/batchnorm.hpp"

#include <cmath>
#include <sstream>

#include "core/require.hpp"

namespace adapt::nn {

BatchNorm1d::BatchNorm1d(std::size_t features, double momentum, double eps)
    : features_(features), momentum_(momentum), eps_(eps) {
  ADAPT_REQUIRE(features > 0, "batchnorm needs features > 0");
  ADAPT_REQUIRE(momentum > 0.0 && momentum <= 1.0, "momentum in (0, 1]");
  gamma_.name = "gamma";
  gamma_.value = Tensor(1, features, 1.0f);
  gamma_.zero_grad();
  beta_.name = "beta";
  beta_.value = Tensor(1, features, 0.0f);
  beta_.zero_grad();
  running_mean_.assign(features, 0.0f);
  running_var_.assign(features, 1.0f);
}

Tensor BatchNorm1d::forward(const Tensor& x, bool training) {
  ADAPT_REQUIRE(x.cols() == features_, "batchnorm width mismatch");
  const std::size_t n = x.rows();
  Tensor y(n, features_);

  if (!training) {
    // Row-major streaming with the per-feature factors hoisted: the
    // inference batches are wide (up to 256 features), so the natural
    // per-feature loop strides the whole tensor column-wise.  The
    // hoisted factors live in thread_local scratch, NOT a member —
    // inference on a shared layer must tolerate concurrent callers
    // (running_mean()/running_var() are mutably accessible, so the
    // factors cannot be precomputed once at load either).
    thread_local std::vector<float> inv_std_scratch;
    inv_std_scratch.resize(features_);
    for (std::size_t c = 0; c < features_; ++c)
      inv_std_scratch[c] =
          1.0f / std::sqrt(running_var_[c] + static_cast<float>(eps_));
    const float* __restrict inv_std = inv_std_scratch.data();
    const float* __restrict mu = running_mean_.data();
    const float* __restrict g = gamma_.value.data();
    const float* __restrict b = beta_.value.data();
    for (std::size_t r = 0; r < n; ++r) {
      const float* __restrict xr = x.data() + r * features_;
      float* __restrict yr = y.data() + r * features_;
#pragma omp simd
      for (std::size_t c = 0; c < features_; ++c)
        yr[c] = (xr[c] - mu[c]) * inv_std[c] * g[c] + b[c];
    }
    return y;
  }

  ADAPT_REQUIRE(n >= 2, "batchnorm training needs batch size >= 2");
  x_hat_ = Tensor(n, features_);
  batch_inv_std_.assign(features_, 0.0f);

  for (std::size_t c = 0; c < features_; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      mean += static_cast<double>(x(r, c));
    mean /= static_cast<double>(n);

    double var = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double d = static_cast<double>(x(r, c)) - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);  // Biased, as PyTorch normalizes.

    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    batch_inv_std_[c] = inv_std;
    const float g = gamma_.value(0, c);
    const float b = beta_.value(0, c);
    for (std::size_t r = 0; r < n; ++r) {
      const float xh = (x(r, c) - static_cast<float>(mean)) * inv_std;
      x_hat_(r, c) = xh;
      y(r, c) = xh * g + b;
    }

    // Running estimates use the unbiased variance, matching PyTorch.
    const double unbiased =
        var * static_cast<double>(n) / static_cast<double>(n - 1);
    running_mean_[c] = static_cast<float>(
        (1.0 - momentum_) * static_cast<double>(running_mean_[c]) +
        momentum_ * mean);
    running_var_[c] = static_cast<float>(
        (1.0 - momentum_) * static_cast<double>(running_var_[c]) +
        momentum_ * unbiased);
  }
  return y;
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  ADAPT_REQUIRE(grad_out.cols() == features_, "batchnorm grad mismatch");
  ADAPT_REQUIRE(grad_out.rows() == x_hat_.rows(),
                "backward batch mismatch (forward(training=true) first?)");
  const std::size_t n = grad_out.rows();
  Tensor dx(n, features_);

  for (std::size_t c = 0; c < features_; ++c) {
    const float g = gamma_.value(0, c);
    const float inv_std = batch_inv_std_[c];

    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const float dy = grad_out(r, c);
      sum_dy += static_cast<double>(dy);
      sum_dy_xhat += static_cast<double>(dy) * static_cast<double>(x_hat_(r, c));
    }

    gamma_.grad(0, c) += static_cast<float>(sum_dy_xhat);
    beta_.grad(0, c) += static_cast<float>(sum_dy);

    // Standard batchnorm input gradient:
    // dx = (g * inv_std / n) * (n*dy - sum(dy) - x_hat * sum(dy*x_hat))
    const double scale = static_cast<double>(g) * static_cast<double>(inv_std) /
                         static_cast<double>(n);
    for (std::size_t r = 0; r < n; ++r) {
      const double dy = grad_out(r, c);
      dx(r, c) = static_cast<float>(
          scale * (static_cast<double>(n) * dy - sum_dy -
                   static_cast<double>(x_hat_(r, c)) * sum_dy_xhat));
    }
  }
  return dx;
}

std::string BatchNorm1d::describe() const {
  std::ostringstream os;
  os << "batchnorm1d(" << features_ << ")";
  return os.str();
}

}  // namespace adapt::nn
