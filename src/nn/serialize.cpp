#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/checksum.hpp"
#include "core/contract.hpp"
#include "core/telemetry.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"

namespace adapt::nn {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'N', 'N'};
// Version 2 appends a u64 FNV-1a checksum footer; version-1 files
// (checked-in model caches predate the footer) still load.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;

enum class LayerTag : std::uint32_t {
  kLinear = 1,
  kBatchNorm1d = 2,
  kReLU = 3,
  kSigmoid = 4,
};

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_floats(std::ostream& os, const std::vector<float>& v) {
  write_u32(os, static_cast<std::uint32_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void write_string(std::ostream& os, const std::string& s) {
  write_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool read_u32(std::istream& is, std::uint32_t& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}
bool read_f64(std::istream& is, double& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}

/// Bytes between the stream's current position and its end.  Header
/// counts and dimensions are untrusted (same hardening as
/// eval::load_rings): every claimed element count is validated against
/// this budget BEFORE any allocation is sized from it, so a corrupt
/// header cannot request gigabytes ahead of the first failed read.
std::uint64_t bytes_left(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos < 0) return 0;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(pos);
  if (end < pos) return 0;
  return static_cast<std::uint64_t>(end - pos);
}

bool read_floats(std::istream& is, std::vector<float>& v) {
  std::uint32_t n = 0;
  if (!read_u32(is, n)) return false;
  if (static_cast<std::uint64_t>(n) * sizeof(float) > bytes_left(is))
    return false;
  v.resize(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  return static_cast<bool>(is);
}
bool read_string(std::istream& is, std::string& s,
                 std::uint32_t max_len = 4096) {
  std::uint32_t n = 0;
  if (!read_u32(is, n) || n > max_len || n > bytes_left(is)) return false;
  s.resize(n);
  is.read(s.data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(is);
}

}  // namespace

bool save_model(Sequential& model, const Standardizer& standardizer,
                const std::map<std::string, double>& metadata,
                const std::string& path) {
  // Serialize into memory first: the checksum footer covers every
  // body byte, so the body must be complete before the digest.
  std::ostringstream os(std::ios::binary);
  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kVersion);

  if (standardizer.fitted()) {
    write_u32(os, static_cast<std::uint32_t>(standardizer.mean().size()));
    os.write(reinterpret_cast<const char*>(standardizer.mean().data()),
             static_cast<std::streamsize>(standardizer.mean().size() *
                                          sizeof(float)));
    os.write(reinterpret_cast<const char*>(standardizer.inv_std().data()),
             static_cast<std::streamsize>(standardizer.inv_std().size() *
                                          sizeof(float)));
  } else {
    write_u32(os, 0);
  }

  write_u32(os, static_cast<std::uint32_t>(model.n_layers()));
  for (std::size_t i = 0; i < model.n_layers(); ++i) {
    Layer& layer = model.layer(i);
    if (auto* lin = dynamic_cast<Linear*>(&layer)) {
      write_u32(os, static_cast<std::uint32_t>(LayerTag::kLinear));
      write_u32(os, static_cast<std::uint32_t>(lin->in_features()));
      write_u32(os, static_cast<std::uint32_t>(lin->out_features()));
      write_floats(os, lin->weight().value.vec());
      write_floats(os, lin->bias().value.vec());
    } else if (auto* bn = dynamic_cast<BatchNorm1d*>(&layer)) {
      write_u32(os, static_cast<std::uint32_t>(LayerTag::kBatchNorm1d));
      write_u32(os, static_cast<std::uint32_t>(bn->features()));
      write_floats(os, bn->gamma().value.vec());
      write_floats(os, bn->beta().value.vec());
      write_floats(os, bn->running_mean());
      write_floats(os, bn->running_var());
    } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
      write_u32(os, static_cast<std::uint32_t>(LayerTag::kReLU));
    } else if (dynamic_cast<Sigmoid*>(&layer) != nullptr) {
      write_u32(os, static_cast<std::uint32_t>(LayerTag::kSigmoid));
    } else {
      return false;  // Unknown layer type.
    }
  }

  write_u32(os, static_cast<std::uint32_t>(metadata.size()));
  for (const auto& [key, value] : metadata) {
    write_string(os, key);
    write_f64(os, value);
  }
  if (!os) return false;

  const std::string body = os.str();
  const std::uint64_t digest = core::fnv1a64(body.data(), body.size());
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  file.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  return static_cast<bool>(file);
}

std::optional<SavedModel> load_model(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream raw;
  raw << file.rdbuf();
  const std::string data = raw.str();
  return load_model_from_bytes(data);
}

std::optional<SavedModel> load_model_from_bytes(std::string_view in_bytes) {
  // Rejected files are counted, not thrown: callers fall back to
  // retraining, and the counter names the load path that went bad.
  static core::telemetry::Counter& files_rejected =
      core::telemetry::counter("nn.model_files_rejected");
  static core::telemetry::Counter& checksum_failures =
      core::telemetry::counter("nn.model_checksum_failures");

  std::string bytes(in_bytes);

  const auto reject = [&]() -> std::optional<SavedModel> {
    files_rejected.add();
    return std::nullopt;
  };
  constexpr std::size_t kHeaderBytes = sizeof(kMagic) + sizeof(std::uint32_t);
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return reject();
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version < kMinVersion || version > kVersion) return reject();
  if (version >= 2) {
    // Verify the whole-file digest before parsing a single field: a
    // garbled upload must not reach the structural parser at all.
    if (bytes.size() < kHeaderBytes + sizeof(std::uint64_t)) return reject();
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
                sizeof(stored));
    if (stored != core::fnv1a64(bytes.data(), bytes.size() - sizeof(stored))) {
      checksum_failures.add();
      return reject();
    }
    bytes.resize(bytes.size() - sizeof(std::uint64_t));
  }
  std::istringstream is(bytes, std::ios::binary);
  is.seekg(static_cast<std::streamoff>(kHeaderBytes));

  SavedModel out;
  std::uint32_t std_dim = 0;
  if (!read_u32(is, std_dim)) return reject();
  if (std_dim > 0) {
    if (static_cast<std::uint64_t>(std_dim) * 2 * sizeof(float) >
        bytes_left(is))
      return reject();
    std::vector<float> mean(std_dim);
    std::vector<float> inv_std(std_dim);
    is.read(reinterpret_cast<char*>(mean.data()),
            static_cast<std::streamsize>(std_dim * sizeof(float)));
    is.read(reinterpret_cast<char*>(inv_std.data()),
            static_cast<std::streamsize>(std_dim * sizeof(float)));
    if (!is) return reject();
    out.standardizer.set(std::move(mean), std::move(inv_std));
  }

  std::uint32_t n_layers = 0;
  if (!read_u32(is, n_layers) || n_layers > 1024) return reject();
  core::Rng dummy_rng(0);  // Weights are overwritten after construction.
  for (std::uint32_t i = 0; i < n_layers; ++i) {
    std::uint32_t tag = 0;
    if (!read_u32(is, tag)) return reject();
    switch (static_cast<LayerTag>(tag)) {
      case LayerTag::kLinear: {
        std::uint32_t in = 0;
        std::uint32_t out_f = 0;
        if (!read_u32(is, in) || !read_u32(is, out_f)) return reject();
        // Validate the claimed shape (non-zero, product consistent with
        // the size-checked payloads) BEFORE constructing the layer —
        // Linear allocates in*out floats from these dims.
        if (in == 0 || out_f == 0) return reject();
        std::vector<float> w;
        std::vector<float> b;
        if (!read_floats(is, w) || !read_floats(is, b)) return reject();
        if (w.size() != static_cast<std::size_t>(in) * out_f ||
            b.size() != out_f)
          return reject();
        auto lin = std::make_unique<Linear>(in, out_f, dummy_rng);
        lin->weight().value.vec() = std::move(w);
        lin->bias().value.vec() = std::move(b);
        out.model.add(std::move(lin));
        break;
      }
      case LayerTag::kBatchNorm1d: {
        std::uint32_t features = 0;
        if (!read_u32(is, features) || features == 0) return reject();
        std::vector<float> gamma;
        std::vector<float> beta;
        std::vector<float> mean;
        std::vector<float> var;
        if (!read_floats(is, gamma) || !read_floats(is, beta) ||
            !read_floats(is, mean) || !read_floats(is, var))
          return reject();
        if (gamma.size() != features || beta.size() != features ||
            mean.size() != features || var.size() != features)
          return reject();
        // Constructed only after the shape survived the size checks
        // (BatchNorm1d allocates 4 x features floats from this dim).
        auto bn = std::make_unique<BatchNorm1d>(features);
        bn->gamma().value.vec() = std::move(gamma);
        bn->beta().value.vec() = std::move(beta);
        bn->running_mean() = std::move(mean);
        bn->running_var() = std::move(var);
        out.model.add(std::move(bn));
        break;
      }
      case LayerTag::kReLU:
        out.model.add(std::make_unique<ReLU>());
        break;
      case LayerTag::kSigmoid:
        out.model.add(std::make_unique<Sigmoid>());
        break;
      default:
        return reject();
    }
  }

  std::uint32_t n_meta = 0;
  if (!read_u32(is, n_meta) || n_meta > 4096) return reject();
  for (std::uint32_t i = 0; i < n_meta; ++i) {
    std::string key;
    double value = 0.0;
    if (!read_string(is, key) || !read_f64(is, value)) return reject();
    out.metadata.emplace(std::move(key), value);
  }
  return out;
}

std::uint64_t weight_checksum(Sequential& model) {
  core::Fnv1a64 h;
  const auto fold = [&h](const std::vector<float>& v) {
    h.update(v.data(), v.size() * sizeof(float));
  };
  for (std::size_t i = 0; i < model.n_layers(); ++i) {
    Layer& layer = model.layer(i);
    // Fold a type marker per layer so a reordered but byte-identical
    // stack still changes the digest.
    if (auto* lin = dynamic_cast<Linear*>(&layer)) {
      const std::uint32_t tag = static_cast<std::uint32_t>(LayerTag::kLinear);
      h.update(&tag, sizeof(tag));
      fold(lin->weight().value.vec());
      fold(lin->bias().value.vec());
    } else if (auto* bn = dynamic_cast<BatchNorm1d*>(&layer)) {
      const std::uint32_t tag =
          static_cast<std::uint32_t>(LayerTag::kBatchNorm1d);
      h.update(&tag, sizeof(tag));
      fold(bn->gamma().value.vec());
      fold(bn->beta().value.vec());
      fold(bn->running_mean());
      fold(bn->running_var());
    } else {
      const std::uint32_t tag = 0;
      h.update(&tag, sizeof(tag));
    }
  }
  return h.digest();
}

}  // namespace adapt::nn
