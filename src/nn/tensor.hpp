#pragma once

/// \file tensor.hpp
/// A 2-D row-major float tensor — the only shape the paper's MLPs need
/// (batch x features).  FP32 matches the paper's full-precision
/// models; the INT8 path lives in adapt::quant.
///
/// The GEMM kernels are OpenMP-parallel over rows, mirroring how the
/// flight pipeline parallelizes NN inference across cores.

#include <cstddef>
#include <vector>

#include "core/contract.hpp"
#include "core/rng.hpp"

namespace adapt::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    ADAPT_INVARIANT(r < rows_ && c < cols_, "tensor index out of range");
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    ADAPT_INVARIANT(r < rows_ && c < cols_, "tensor index out of range");
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  const std::vector<float>& vec() const { return data_; }
  std::vector<float>& vec() { return data_; }

  void fill(float v);
  void zero() { fill(0.0f); }

  /// He-normal initialization (for ReLU nets): N(0, sqrt(2/fan_in)).
  void he_init(std::size_t fan_in, core::Rng& rng);

  /// Xavier-uniform initialization: U(+-sqrt(6/(fan_in+fan_out))).
  void xavier_init(std::size_t fan_in, std::size_t fan_out, core::Rng& rng);

  /// Extract rows [begin, end) as a new tensor.
  Tensor slice_rows(std::size_t begin, std::size_t end) const;

  /// Sum of squares of all entries (for weight-decay diagnostics).
  double squared_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B^T.  A is (n x k), B is (m x k), C is (n x m).  This is
/// the natural orientation for Linear layers storing weights as
/// (out_features x in_features).
void matmul_abt(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A * B.  A is (n x k), B is (k x m), C is (n x m).
void matmul_ab(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T * B.  A is (k x n), B is (k x m), C is (n x m).  Used for
/// weight gradients (dW = dY^T X).
void matmul_atb(const Tensor& a, const Tensor& b, Tensor& c);

/// y += row_vector broadcast over rows (bias add).
void add_row_broadcast(Tensor& y, const std::vector<float>& row);

}  // namespace adapt::nn
