#include "nn/optimizer.hpp"

#include <cmath>

#include "core/require.hpp"

namespace adapt::nn {

Sgd::Sgd(std::vector<Param*> params, const SgdConfig& config)
    : params_(std::move(params)), config_(config) {
  ADAPT_REQUIRE(config.learning_rate > 0.0, "learning rate must be > 0");
  ADAPT_REQUIRE(config.momentum >= 0.0 && config.momentum < 1.0,
                "momentum must be in [0, 1)");
  ADAPT_REQUIRE(config.weight_decay >= 0.0, "weight decay must be >= 0");
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    ADAPT_REQUIRE(p != nullptr, "null parameter");
    velocity_.emplace_back(p->value.size(), 0.0f);
  }
}

Adam::Adam(std::vector<Param*> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  ADAPT_REQUIRE(config.learning_rate > 0.0, "learning rate must be > 0");
  ADAPT_REQUIRE(config.beta1 >= 0.0 && config.beta1 < 1.0, "beta1 in [0,1)");
  ADAPT_REQUIRE(config.beta2 >= 0.0 && config.beta2 < 1.0, "beta2 in [0,1)");
  ADAPT_REQUIRE(config.epsilon > 0.0, "epsilon must be > 0");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    ADAPT_REQUIRE(p != nullptr, "null parameter");
    m_.emplace_back(p->value.size(), 0.0f);
    v_.emplace_back(p->value.size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = config_.learning_rate;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    ADAPT_REQUIRE(p->grad.size() == p->value.size(),
                  "gradient not allocated (zero_grad before backward?)");
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < m.size(); ++j) {
      double g = p->grad.vec()[j];
      if (config_.weight_decay > 0.0)
        g += config_.weight_decay * static_cast<double>(p->value.vec()[j]);
      m[j] = static_cast<float>(b1 * static_cast<double>(m[j]) + (1.0 - b1) * g);
      v[j] =
          static_cast<float>(b2 * static_cast<double>(v[j]) + (1.0 - b2) * g * g);
      const double m_hat = static_cast<double>(m[j]) / bias1;
      const double v_hat = static_cast<double>(v[j]) / bias2;
      p->value.vec()[j] -= static_cast<float>(
          lr * m_hat / (std::sqrt(v_hat) + config_.epsilon));
    }
  }
}

void Sgd::step() {
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto mu = static_cast<float>(config_.momentum);
  const auto wd = static_cast<float>(config_.weight_decay);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    auto& vel = velocity_[i];
    ADAPT_REQUIRE(p->grad.size() == p->value.size(),
                  "gradient not allocated (zero_grad before backward?)");
    for (std::size_t j = 0; j < vel.size(); ++j) {
      float g = p->grad.vec()[j];
      if (wd > 0.0f) g += wd * p->value.vec()[j];
      vel[j] = mu * vel[j] + g;
      p->value.vec()[j] -= lr * vel[j];
    }
  }
}

}  // namespace adapt::nn
