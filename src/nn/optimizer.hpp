#pragma once

/// \file optimizer.hpp
/// SGD with classical momentum and optional L2 weight decay — the
/// optimizer the paper trains both networks with.

#include <vector>

#include "nn/layer.hpp"

namespace adapt::nn {

struct SgdConfig {
  double learning_rate = 1e-3;
  double momentum = 0.9;
  double weight_decay = 0.0;
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, const SgdConfig& config);

  /// Apply one update from the accumulated gradients, then leave the
  /// gradients untouched (caller zeroes them per batch).
  void step();

  void set_learning_rate(double lr) { config_.learning_rate = lr; }
  double learning_rate() const { return config_.learning_rate; }
  const SgdConfig& config() const { return config_; }

 private:
  std::vector<Param*> params_;
  std::vector<std::vector<float>> velocity_;
  SgdConfig config_;
};

/// Adam optimizer (Kingma & Ba).  The paper trains with SGD; Adam is
/// provided for the optimizer ablation in examples/train_models and
/// for downstream users — small MLPs on standardized features often
/// train in far fewer epochs with it.
struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  Adam(std::vector<Param*> params, const AdamConfig& config);

  void step();

  const AdamConfig& config() const { return config_; }

 private:
  std::vector<Param*> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  long t_ = 0;
  AdamConfig config_;
};

}  // namespace adapt::nn
