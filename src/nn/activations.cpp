#include "nn/activations.hpp"

#include <cmath>

#include "core/require.hpp"

namespace adapt::nn {

float sigmoid(float x) {
  // Numerically stable in both tails.
  if (x >= 0.0f) {
    const float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

Tensor ReLU::forward(const Tensor& x, bool training) {
  Tensor y(x.rows(), x.cols());
  if (training) mask_ = Tensor(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.vec()[i];
    y.vec()[i] = v > 0.0f ? v : 0.0f;
    if (training) mask_.vec()[i] = v > 0.0f ? 1.0f : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  ADAPT_REQUIRE(grad_out.rows() == mask_.rows() &&
                    grad_out.cols() == mask_.cols(),
                "relu backward shape mismatch");
  Tensor dx(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < dx.size(); ++i)
    dx.vec()[i] = grad_out.vec()[i] * mask_.vec()[i];
  return dx;
}

Tensor Sigmoid::forward(const Tensor& x, bool training) {
  Tensor y(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    y.vec()[i] = sigmoid(x.vec()[i]);
  if (training) output_cache_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  ADAPT_REQUIRE(grad_out.rows() == output_cache_.rows() &&
                    grad_out.cols() == output_cache_.cols(),
                "sigmoid backward shape mismatch");
  Tensor dx(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < dx.size(); ++i) {
    const float y = output_cache_.vec()[i];
    dx.vec()[i] = grad_out.vec()[i] * y * (1.0f - y);
  }
  return dx;
}

}  // namespace adapt::nn
