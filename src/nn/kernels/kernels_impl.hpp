#pragma once

/// \file kernels_impl.hpp
/// Internal linkage header between the registry and the per-ISA
/// translation units.  Each SIMD TU is compiled with its own -m flags,
/// so nothing outside src/nn/kernels/ may include this — the public
/// surface is kernels.hpp.

#include <cstddef>
#include <cstdint>

namespace adapt::nn::kernels::detail {

void u8i8_gemm_scalar(const std::uint8_t* x, const std::int8_t* w,
                      std::int32_t* acc, std::size_t rows,
                      std::size_t in_features, std::size_t out_features);
void u8_requant_scalar(const std::int32_t* acc, std::size_t rows,
                       std::size_t out_features, std::int32_t zp_in,
                       const std::int32_t* row_sums, const std::int32_t* bias,
                       bool relu, float s_in, const float* weight_scales,
                       float next_scale, std::int32_t next_zp,
                       std::uint8_t* out);
void f32_row_block_scalar(const float* a, std::size_t lda, const float* b,
                          std::size_t ldb, float* c, std::size_t ldc,
                          std::size_t rows, std::size_t k, std::size_t j0,
                          std::size_t j1);

#ifdef ADAPT_KERNELS_HAVE_AVX2
void u8i8_gemm_avx2(const std::uint8_t* x, const std::int8_t* w,
                    std::int32_t* acc, std::size_t rows,
                    std::size_t in_features, std::size_t out_features);
void u8_requant_avx2(const std::int32_t* acc, std::size_t rows,
                     std::size_t out_features, std::int32_t zp_in,
                     const std::int32_t* row_sums, const std::int32_t* bias,
                     bool relu, float s_in, const float* weight_scales,
                     float next_scale, std::int32_t next_zp,
                     std::uint8_t* out);
void f32_row_block_avx2(const float* a, std::size_t lda, const float* b,
                        std::size_t ldb, float* c, std::size_t ldc,
                        std::size_t rows, std::size_t k, std::size_t j0,
                        std::size_t j1);
#endif

#ifdef ADAPT_KERNELS_HAVE_AVX512
void u8i8_gemm_avx512(const std::uint8_t* x, const std::int8_t* w,
                      std::int32_t* acc, std::size_t rows,
                      std::size_t in_features, std::size_t out_features);
void u8_requant_avx512(const std::int32_t* acc, std::size_t rows,
                       std::size_t out_features, std::int32_t zp_in,
                       const std::int32_t* row_sums, const std::int32_t* bias,
                       bool relu, float s_in, const float* weight_scales,
                       float next_scale, std::int32_t next_zp,
                       std::uint8_t* out);
void f32_row_block_avx512(const float* a, std::size_t lda, const float* b,
                          std::size_t ldb, float* c, std::size_t ldc,
                          std::size_t rows, std::size_t k, std::size_t j0,
                          std::size_t j1);
#endif

}  // namespace adapt::nn::kernels::detail
