/// AVX2 kernels.  This TU (alone with avx512.cpp) builds with
/// -mavx2 -ffp-contract=off; the registry only hands these out when
/// cpuid + XCR0 say the machine runs AVX2.
///
/// Bit-identity notes:
///  * INT8: activations widen u8->s16 and weights s8->s16, then
///    _mm256_madd_epi16 multiplies and pairwise-adds into int32 lanes.
///    Every product |x*w| <= 255*128 and each int32 lane holds the sum
///    of two such products (<= 65280), so nothing saturates and the
///    result is the exact integer dot product in some lane order —
///    integer addition is associative, so any order is the scalar
///    answer.  The tempting _mm256_maddubs_epi16 is NOT used: it
///    saturates its intermediate int16 pair sums (255*(-128)*2 <
///    INT16_MIN) and silently breaks identity.
///  * float: vector lanes map across C columns (j); each output
///    element still accumulates in ascending t with separate mul+add,
///    so per-element arithmetic is exactly the scalar sequence.

#ifdef ADAPT_KERNELS_HAVE_AVX2

#include <immintrin.h>

#include "nn/kernels/kernels.hpp"
#include "nn/kernels/kernels_impl.hpp"

namespace adapt::nn::kernels::detail {

namespace {

constexpr std::size_t kColChunk = 8;  ///< floats per YMM register.

inline std::int32_t hsum_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// 16 activation bytes widened to sixteen int16 lanes.
inline __m256i load_u8_16(const std::uint8_t* p) {
  return _mm256_cvtepu8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

inline __m256i load_s8_16(const std::int8_t* p) {
  return _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/// Load mask covering the first jw (< 8) lanes: jw -1s then zeros.
inline __m256i tail_mask(std::size_t jw) {
  alignas(32) static constexpr std::int32_t kMask[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + (kColChunk - jw)));
}

template <int R>
inline void micro_tile_full(const float* a, std::size_t lda, const float* b,
                            std::size_t ldb, float* c, std::size_t ldc,
                            std::size_t k) {
  __m256 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm256_setzero_ps();
  for (std::size_t t = 0; t < k; ++t) {
    const __m256 bt = _mm256_loadu_ps(b + t * ldb);
    for (int r = 0; r < R; ++r) {
      const __m256 ar =
          _mm256_set1_ps(a[static_cast<std::size_t>(r) * lda + t]);
      acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(ar, bt));
    }
  }
  for (int r = 0; r < R; ++r)
    _mm256_storeu_ps(c + static_cast<std::size_t>(r) * ldc, acc[r]);
}

template <int R>
inline void micro_tile_partial(const float* a, std::size_t lda, const float* b,
                               std::size_t ldb, float* c, std::size_t ldc,
                               std::size_t k, std::size_t jw) {
  const __m256i mask = tail_mask(jw);
  __m256 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm256_setzero_ps();
  for (std::size_t t = 0; t < k; ++t) {
    const __m256 bt = _mm256_maskload_ps(b + t * ldb, mask);
    for (int r = 0; r < R; ++r) {
      const __m256 ar =
          _mm256_set1_ps(a[static_cast<std::size_t>(r) * lda + t]);
      acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(ar, bt));
    }
  }
  for (int r = 0; r < R; ++r)
    _mm256_maskstore_ps(c + static_cast<std::size_t>(r) * ldc, mask, acc[r]);
}

}  // namespace

void u8i8_gemm_avx2(const std::uint8_t* x, const std::int8_t* w,
                    std::int32_t* acc, std::size_t rows,
                    std::size_t in_features, std::size_t out_features) {
  const std::size_t vec_end = in_features & ~static_cast<std::size_t>(15);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint8_t* xi = x + r * in_features;
    std::int32_t* accr = acc + r * out_features;
    std::size_t oc = 0;
    for (; oc + 4 <= out_features; oc += 4) {
      const std::int8_t* w0 = w + (oc + 0) * in_features;
      const std::int8_t* w1 = w + (oc + 1) * in_features;
      const std::int8_t* w2 = w + (oc + 2) * in_features;
      const std::int8_t* w3 = w + (oc + 3) * in_features;
      __m256i v0 = _mm256_setzero_si256();
      __m256i v1 = _mm256_setzero_si256();
      __m256i v2 = _mm256_setzero_si256();
      __m256i v3 = _mm256_setzero_si256();
      for (std::size_t ic = 0; ic < vec_end; ic += 16) {
        const __m256i xv = load_u8_16(xi + ic);
        v0 = _mm256_add_epi32(v0, _mm256_madd_epi16(xv, load_s8_16(w0 + ic)));
        v1 = _mm256_add_epi32(v1, _mm256_madd_epi16(xv, load_s8_16(w1 + ic)));
        v2 = _mm256_add_epi32(v2, _mm256_madd_epi16(xv, load_s8_16(w2 + ic)));
        v3 = _mm256_add_epi32(v3, _mm256_madd_epi16(xv, load_s8_16(w3 + ic)));
      }
      std::int32_t a0 = hsum_epi32(v0);
      std::int32_t a1 = hsum_epi32(v1);
      std::int32_t a2 = hsum_epi32(v2);
      std::int32_t a3 = hsum_epi32(v3);
      for (std::size_t ic = vec_end; ic < in_features; ++ic) {
        const std::int32_t xv = xi[ic];
        a0 += xv * w0[ic];
        a1 += xv * w1[ic];
        a2 += xv * w2[ic];
        a3 += xv * w3[ic];
      }
      accr[oc + 0] = a0;
      accr[oc + 1] = a1;
      accr[oc + 2] = a2;
      accr[oc + 3] = a3;
    }
    for (; oc < out_features; ++oc) {
      const std::int8_t* wr = w + oc * in_features;
      __m256i v = _mm256_setzero_si256();
      for (std::size_t ic = 0; ic < vec_end; ic += 16)
        v = _mm256_add_epi32(
            v, _mm256_madd_epi16(load_u8_16(xi + ic), load_s8_16(wr + ic)));
      std::int32_t a = hsum_epi32(v);
      for (std::size_t ic = vec_end; ic < in_features; ++ic)
        a += static_cast<std::int32_t>(xi[ic]) * wr[ic];
      accr[oc] = a;
    }
  }
}

/// Requant epilogue, 8 output channels per iteration.  The rounding
/// path widens to double and adds copysign(0.5) before truncating —
/// the exact half-away-from-zero sequence round_half_away_saturated
/// takes, lane for lane (see kernels.hpp for the NaN/clamp analysis).
void u8_requant_avx2(const std::int32_t* acc, std::size_t rows,
                     std::size_t out_features, std::int32_t zp_in,
                     const std::int32_t* row_sums, const std::int32_t* bias,
                     bool relu, float s_in, const float* weight_scales,
                     float next_scale, std::int32_t next_zp,
                     std::uint8_t* out) {
  const __m256i vzp_in = _mm256_set1_epi32(zp_in);
  const __m256i vnext_zp = _mm256_set1_epi32(next_zp);
  const __m256 vs_in = _mm256_set1_ps(s_in);
  const __m256 vnext_scale = _mm256_set1_ps(next_scale);
  const __m256d vhalf = _mm256_set1_pd(0.5);
  const __m256d vsign = _mm256_set1_pd(-0.0);
  const __m256d vlo = _mm256_set1_pd(-512.0);
  const __m256d vhi = _mm256_set1_pd(512.0);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i v255 = _mm256_set1_epi32(255);
  const std::size_t vec_end = out_features & ~static_cast<std::size_t>(7);

  // Round one double quartet: clamp to [-512, 512] (max/min return the
  // second operand on NaN, so NaN lands on -512 exactly like the
  // scalar helper's fallthrough arm), add copysign(0.5), truncate.
  const auto round4 = [&](__m256d d) {
    d = _mm256_min_pd(_mm256_max_pd(d, vlo), vhi);
    const __m256d half = _mm256_or_pd(vhalf, _mm256_and_pd(d, vsign));
    return _mm256_cvttpd_epi32(_mm256_add_pd(d, half));
  };

  for (std::size_t r = 0; r < rows; ++r) {
    const std::int32_t* ar = acc + r * out_features;
    std::uint8_t* nr = out + r * out_features;
    std::size_t oc = 0;
    for (; oc < vec_end; oc += 8) {
      __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ar + oc));
      const __m256i rs = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(row_sums + oc));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(bias + oc));
      a = _mm256_add_epi32(_mm256_sub_epi32(a, _mm256_mullo_epi32(vzp_in, rs)),
                           b);
      if (relu) a = _mm256_max_epi32(a, vzero);
      // (float(a) * s_in) * ws — the scalar association order.
      const __m256 f = _mm256_cvtepi32_ps(a);
      const __m256 real = _mm256_mul_ps(_mm256_mul_ps(f, vs_in),
                                        _mm256_loadu_ps(weight_scales + oc));
      const __m256 y = _mm256_div_ps(real, vnext_scale);
      const __m128i qlo = round4(_mm256_cvtps_pd(_mm256_castps256_ps128(y)));
      const __m128i qhi = round4(_mm256_cvtps_pd(_mm256_extractf128_ps(y, 1)));
      __m256i q = _mm256_add_epi32(_mm256_set_m128i(qhi, qlo), vnext_zp);
      q = _mm256_min_epi32(_mm256_max_epi32(q, vzero), v255);
      // 8 x int32 in [0, 255] -> 8 bytes (the packs cannot saturate).
      const __m128i w16 = _mm_packus_epi32(_mm256_castsi256_si128(q),
                                           _mm256_extracti128_si256(q, 1));
      const __m128i w8 = _mm_packus_epi16(w16, w16);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(nr + oc), w8);
    }
    for (; oc < out_features; ++oc) {
      std::int32_t a = ar[oc] - zp_in * row_sums[oc] + bias[oc];
      if (relu && a < 0) a = 0;
      const float real = static_cast<float>(a) * s_in * weight_scales[oc];
      const std::int32_t q =
          round_half_away_saturated(real / next_scale) + next_zp;
      nr[oc] = static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
    }
  }
}

void f32_row_block_avx2(const float* a, std::size_t lda, const float* b,
                        std::size_t ldb, float* c, std::size_t ldc,
                        std::size_t rows, std::size_t k, std::size_t j0,
                        std::size_t j1) {
  std::size_t j = j0;
  for (; j + kColChunk <= j1; j += kColChunk) {
    switch (rows) {
      case 4: micro_tile_full<4>(a, lda, b + j, ldb, c + j, ldc, k); break;
      case 3: micro_tile_full<3>(a, lda, b + j, ldb, c + j, ldc, k); break;
      case 2: micro_tile_full<2>(a, lda, b + j, ldb, c + j, ldc, k); break;
      default: micro_tile_full<1>(a, lda, b + j, ldb, c + j, ldc, k); break;
    }
  }
  if (j < j1) {
    const std::size_t jw = j1 - j;
    switch (rows) {
      case 4:
        micro_tile_partial<4>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      case 3:
        micro_tile_partial<3>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      case 2:
        micro_tile_partial<2>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      default:
        micro_tile_partial<1>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
    }
  }
}

}  // namespace adapt::nn::kernels::detail

#endif  // ADAPT_KERNELS_HAVE_AVX2
