/// Scalar reference kernels.  Every SIMD variant must match these bit
/// for bit; they are also the shipped fallback on CPUs (or builds)
/// without AVX2, so they keep the 4-way channel/column blocking that
/// gives the autovectorizer independent accumulator chains.
///
/// This TU builds with the project's baseline flags plus
/// -ffp-contract=off: the float kernel's mul+add must stay unfused so
/// the scalar path computes exactly what the hand-vectorized variants
/// compute (they have no FMA to fall into, but the *compiler* could
/// contract here and break identity from the reference side).

#include "nn/kernels/kernels.hpp"
#include "nn/kernels/kernels_impl.hpp"

namespace adapt::nn::kernels::detail {

namespace {

constexpr std::size_t kColChunk = 8;  ///< C columns per float micro-tile.

/// R x kColChunk micro-tile with accumulators in registers: the B row
/// chunk is loaded once per t and shared across the R output rows.
template <int R>
inline void micro_tile_full(const float* __restrict a, std::size_t lda,
                            const float* __restrict b, std::size_t ldb,
                            float* __restrict c, std::size_t ldc,
                            std::size_t k) {
  float acc[R][kColChunk] = {};
  for (std::size_t t = 0; t < k; ++t) {
    const float* __restrict bt = b + t * ldb;
    for (int r = 0; r < R; ++r) {
      const float ar = a[static_cast<std::size_t>(r) * lda + t];
#pragma omp simd
      for (std::size_t j = 0; j < kColChunk; ++j) acc[r][j] += ar * bt[j];
    }
  }
  for (int r = 0; r < R; ++r)
    for (std::size_t j = 0; j < kColChunk; ++j)
      c[static_cast<std::size_t>(r) * ldc + j] = acc[r][j];
}

/// Remainder micro-tile (jw < kColChunk columns).
template <int R>
inline void micro_tile_partial(const float* __restrict a, std::size_t lda,
                               const float* __restrict b, std::size_t ldb,
                               float* __restrict c, std::size_t ldc,
                               std::size_t k, std::size_t jw) {
  float acc[R][kColChunk] = {};
  for (std::size_t t = 0; t < k; ++t) {
    const float* __restrict bt = b + t * ldb;
    for (int r = 0; r < R; ++r) {
      const float ar = a[static_cast<std::size_t>(r) * lda + t];
      for (std::size_t j = 0; j < jw; ++j) acc[r][j] += ar * bt[j];
    }
  }
  for (int r = 0; r < R; ++r)
    for (std::size_t j = 0; j < jw; ++j)
      c[static_cast<std::size_t>(r) * ldc + j] = acc[r][j];
}

}  // namespace

void u8i8_gemm_scalar(const std::uint8_t* x, const std::int8_t* w,
                      std::int32_t* acc, std::size_t rows,
                      std::size_t in_features, std::size_t out_features) {
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint8_t* __restrict xi = x + r * in_features;
    std::int32_t* __restrict accr = acc + r * out_features;
    std::size_t oc = 0;
    // Four output channels share every activation load and give the
    // autovectorizer four independent reduction chains.
    for (; oc + 4 <= out_features; oc += 4) {
      const std::int8_t* __restrict w0 = w + (oc + 0) * in_features;
      const std::int8_t* __restrict w1 = w + (oc + 1) * in_features;
      const std::int8_t* __restrict w2 = w + (oc + 2) * in_features;
      const std::int8_t* __restrict w3 = w + (oc + 3) * in_features;
      std::int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
#pragma omp simd reduction(+ : a0, a1, a2, a3)
      for (std::size_t ic = 0; ic < in_features; ++ic) {
        const std::int32_t xv = xi[ic];
        a0 += xv * w0[ic];
        a1 += xv * w1[ic];
        a2 += xv * w2[ic];
        a3 += xv * w3[ic];
      }
      accr[oc + 0] = a0;
      accr[oc + 1] = a1;
      accr[oc + 2] = a2;
      accr[oc + 3] = a3;
    }
    for (; oc < out_features; ++oc) {
      const std::int8_t* __restrict wr = w + oc * in_features;
      std::int32_t a = 0;
#pragma omp simd reduction(+ : a)
      for (std::size_t ic = 0; ic < in_features; ++ic)
        a += static_cast<std::int32_t>(xi[ic]) * wr[ic];
      accr[oc] = a;
    }
  }
}

void u8_requant_scalar(const std::int32_t* acc, std::size_t rows,
                       std::size_t out_features, std::int32_t zp_in,
                       const std::int32_t* row_sums, const std::int32_t* bias,
                       bool relu, float s_in, const float* weight_scales,
                       float next_scale, std::int32_t next_zp,
                       std::uint8_t* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int32_t* __restrict ar = acc + r * out_features;
    std::uint8_t* __restrict nr = out + r * out_features;
    for (std::size_t oc = 0; oc < out_features; ++oc) {
      std::int32_t a = ar[oc] - zp_in * row_sums[oc] + bias[oc];
      if (relu && a < 0) a = 0;
      // Keep the association order fixed: (float(a) * s_in) * ws[oc].
      // Every variant multiplies in exactly this order.
      const float real = static_cast<float>(a) * s_in * weight_scales[oc];
      const std::int32_t q =
          round_half_away_saturated(real / next_scale) + next_zp;
      nr[oc] = static_cast<std::uint8_t>(
          q < 0 ? 0 : (q > 255 ? 255 : q));
    }
  }
}

void f32_row_block_scalar(const float* a, std::size_t lda, const float* b,
                          std::size_t ldb, float* c, std::size_t ldc,
                          std::size_t rows, std::size_t k, std::size_t j0,
                          std::size_t j1) {
  std::size_t j = j0;
  for (; j + kColChunk <= j1; j += kColChunk) {
    switch (rows) {
      case 4: micro_tile_full<4>(a, lda, b + j, ldb, c + j, ldc, k); break;
      case 3: micro_tile_full<3>(a, lda, b + j, ldb, c + j, ldc, k); break;
      case 2: micro_tile_full<2>(a, lda, b + j, ldb, c + j, ldc, k); break;
      default: micro_tile_full<1>(a, lda, b + j, ldb, c + j, ldc, k); break;
    }
  }
  if (j < j1) {
    const std::size_t jw = j1 - j;
    switch (rows) {
      case 4:
        micro_tile_partial<4>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      case 3:
        micro_tile_partial<3>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      case 2:
        micro_tile_partial<2>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      default:
        micro_tile_partial<1>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
    }
  }
}

}  // namespace adapt::nn::kernels::detail
