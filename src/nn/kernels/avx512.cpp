/// AVX-512 (VNNI) kernels.  This TU builds with
/// -mavx512f -mavx512bw -mavx512vl -mavx512vnni -ffp-contract=off and
/// is dispatched only when cpuid + XCR0 report the full set.
///
/// Bit-identity notes:
///  * INT8: VPDPBUSD (_mm512_dpbusd_epi32) multiplies u8 x s8 and
///    accumulates four products per int32 lane WITHOUT saturation —
///    the exact integer dot product, associatively reordered.  (Its
///    sibling VPDPBUSDS saturates and must never be used here.)
///    Remainder lanes load through a zero-source masked load, so the
///    padding contributes exact zeros.
///  * float: 16 C columns per ZMM; per-element math is the same
///    ascending-t unfused mul+add as the scalar reference, with mask
///    stores for column tails.

#ifdef ADAPT_KERNELS_HAVE_AVX512

#include <immintrin.h>

#include "nn/kernels/kernels.hpp"
#include "nn/kernels/kernels_impl.hpp"

namespace adapt::nn::kernels::detail {

namespace {

constexpr std::size_t kColChunk = 16;  ///< floats per ZMM register.

inline __m512i load_u8_64(const std::uint8_t* p) {
  return _mm512_loadu_si512(static_cast<const void*>(p));
}

inline __m512i load_s8_64(const std::int8_t* p) {
  return _mm512_loadu_si512(static_cast<const void*>(p));
}

/// Masked tail load with the dead lanes as exact zeros (zero products
/// keep the dot product exact).  Spelled as mask_loadu with an
/// explicit zero source rather than maskz_loadu: GCC 12's maskz
/// intrinsic trips a -Wmaybe-uninitialized false positive under -O2,
/// and library code must stay -Werror clean.
template <typename T>
inline __m512i load_s8_tail(__mmask64 m, const T* p) {
  return _mm512_mask_loadu_epi8(_mm512_setzero_si512(), m,
                                static_cast<const void*>(p));
}

template <int R>
inline void micro_tile_full(const float* a, std::size_t lda, const float* b,
                            std::size_t ldb, float* c, std::size_t ldc,
                            std::size_t k) {
  __m512 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
  for (std::size_t t = 0; t < k; ++t) {
    const __m512 bt = _mm512_loadu_ps(b + t * ldb);
    for (int r = 0; r < R; ++r) {
      const __m512 ar =
          _mm512_set1_ps(a[static_cast<std::size_t>(r) * lda + t]);
      acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(ar, bt));
    }
  }
  for (int r = 0; r < R; ++r)
    _mm512_storeu_ps(c + static_cast<std::size_t>(r) * ldc, acc[r]);
}

template <int R>
inline void micro_tile_partial(const float* a, std::size_t lda, const float* b,
                               std::size_t ldb, float* c, std::size_t ldc,
                               std::size_t k, std::size_t jw) {
  const auto mask = static_cast<__mmask16>((1u << jw) - 1u);
  __m512 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
  for (std::size_t t = 0; t < k; ++t) {
    const __m512 bt = _mm512_maskz_loadu_ps(mask, b + t * ldb);
    for (int r = 0; r < R; ++r) {
      const __m512 ar =
          _mm512_set1_ps(a[static_cast<std::size_t>(r) * lda + t]);
      acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(ar, bt));
    }
  }
  for (int r = 0; r < R; ++r)
    _mm512_mask_storeu_ps(c + static_cast<std::size_t>(r) * ldc, mask, acc[r]);
}

}  // namespace

void u8i8_gemm_avx512(const std::uint8_t* x, const std::int8_t* w,
                      std::int32_t* acc, std::size_t rows,
                      std::size_t in_features, std::size_t out_features) {
  const std::size_t vec_end = in_features & ~static_cast<std::size_t>(63);
  const std::size_t rem = in_features - vec_end;
  const auto tail =
      rem != 0 ? static_cast<__mmask64>(~0ULL >> (64 - rem)) : __mmask64{0};
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint8_t* xi = x + r * in_features;
    std::int32_t* accr = acc + r * out_features;
    std::size_t oc = 0;
    for (; oc + 4 <= out_features; oc += 4) {
      const std::int8_t* w0 = w + (oc + 0) * in_features;
      const std::int8_t* w1 = w + (oc + 1) * in_features;
      const std::int8_t* w2 = w + (oc + 2) * in_features;
      const std::int8_t* w3 = w + (oc + 3) * in_features;
      __m512i v0 = _mm512_setzero_si512();
      __m512i v1 = _mm512_setzero_si512();
      __m512i v2 = _mm512_setzero_si512();
      __m512i v3 = _mm512_setzero_si512();
      for (std::size_t ic = 0; ic < vec_end; ic += 64) {
        const __m512i xv = load_u8_64(xi + ic);
        v0 = _mm512_dpbusd_epi32(v0, xv, load_s8_64(w0 + ic));
        v1 = _mm512_dpbusd_epi32(v1, xv, load_s8_64(w1 + ic));
        v2 = _mm512_dpbusd_epi32(v2, xv, load_s8_64(w2 + ic));
        v3 = _mm512_dpbusd_epi32(v3, xv, load_s8_64(w3 + ic));
      }
      if (rem != 0) {
        const __m512i xv = load_s8_tail(tail, xi + vec_end);
        v0 = _mm512_dpbusd_epi32(
            v0, xv, load_s8_tail(tail, w0 + vec_end));
        v1 = _mm512_dpbusd_epi32(
            v1, xv, load_s8_tail(tail, w1 + vec_end));
        v2 = _mm512_dpbusd_epi32(
            v2, xv, load_s8_tail(tail, w2 + vec_end));
        v3 = _mm512_dpbusd_epi32(
            v3, xv, load_s8_tail(tail, w3 + vec_end));
      }
      accr[oc + 0] = _mm512_reduce_add_epi32(v0);
      accr[oc + 1] = _mm512_reduce_add_epi32(v1);
      accr[oc + 2] = _mm512_reduce_add_epi32(v2);
      accr[oc + 3] = _mm512_reduce_add_epi32(v3);
    }
    for (; oc < out_features; ++oc) {
      const std::int8_t* wr = w + oc * in_features;
      __m512i v = _mm512_setzero_si512();
      for (std::size_t ic = 0; ic < vec_end; ic += 64)
        v = _mm512_dpbusd_epi32(v, load_u8_64(xi + ic), load_s8_64(wr + ic));
      if (rem != 0)
        v = _mm512_dpbusd_epi32(v, load_s8_tail(tail, xi + vec_end),
                                load_s8_tail(tail, wr + vec_end));
      accr[oc] = _mm512_reduce_add_epi32(v);
    }
  }
}

/// Requant epilogue, 16 output channels per iteration.  Same exact
/// rounding sequence as the AVX2 variant (widen to double, clamp
/// ±512 with NaN falling to -512, add copysign(0.5), truncate); the
/// double-precision bitwise ops go through si512 casts because the
/// pd forms of and/or need AVX512DQ, which this kernel class does not
/// require.
void u8_requant_avx512(const std::int32_t* acc, std::size_t rows,
                       std::size_t out_features, std::int32_t zp_in,
                       const std::int32_t* row_sums, const std::int32_t* bias,
                       bool relu, float s_in, const float* weight_scales,
                       float next_scale, std::int32_t next_zp,
                       std::uint8_t* out) {
  const __m512i vzp_in = _mm512_set1_epi32(zp_in);
  const __m512i vnext_zp = _mm512_set1_epi32(next_zp);
  const __m512 vs_in = _mm512_set1_ps(s_in);
  const __m512 vnext_scale = _mm512_set1_ps(next_scale);
  const __m512d vhalf = _mm512_set1_pd(0.5);
  const __m512i vsign = _mm512_set1_epi64(static_cast<long long>(1ULL << 63));
  const __m512d vlo = _mm512_set1_pd(-512.0);
  const __m512d vhi = _mm512_set1_pd(512.0);
  const __m512i vzero = _mm512_setzero_si512();
  const __m512i v255 = _mm512_set1_epi32(255);
  const std::size_t vec_end = out_features & ~static_cast<std::size_t>(15);

  const auto round8 = [&](__m512d d) {
    d = _mm512_min_pd(_mm512_max_pd(d, vlo), vhi);
    const __m512i sign_bits =
        _mm512_and_si512(_mm512_castpd_si512(d), vsign);
    const __m512d half = _mm512_castsi512_pd(
        _mm512_or_si512(_mm512_castpd_si512(vhalf), sign_bits));
    return _mm512_cvttpd_epi32(_mm512_add_pd(d, half));
  };

  for (std::size_t r = 0; r < rows; ++r) {
    const std::int32_t* ar = acc + r * out_features;
    std::uint8_t* nr = out + r * out_features;
    std::size_t oc = 0;
    for (; oc < vec_end; oc += 16) {
      __m512i a =
          _mm512_loadu_si512(static_cast<const void*>(ar + oc));
      const __m512i rs =
          _mm512_loadu_si512(static_cast<const void*>(row_sums + oc));
      const __m512i b =
          _mm512_loadu_si512(static_cast<const void*>(bias + oc));
      a = _mm512_add_epi32(_mm512_sub_epi32(a, _mm512_mullo_epi32(vzp_in, rs)),
                           b);
      if (relu) a = _mm512_max_epi32(a, vzero);
      const __m512 f = _mm512_cvtepi32_ps(a);
      const __m512 real = _mm512_mul_ps(_mm512_mul_ps(f, vs_in),
                                        _mm512_loadu_ps(weight_scales + oc));
      const __m512 y = _mm512_div_ps(real, vnext_scale);
      // Split into two float octets (extractf64x4 is AVX512F; the f32x8
      // form would need DQ) and widen each to doubles for rounding.
      const __m256 ylo = _mm512_castps512_ps256(y);
      const __m256 yhi = _mm256_castpd_ps(
          _mm512_extractf64x4_pd(_mm512_castps_pd(y), 1));
      const __m256i qlo = round8(_mm512_cvtps_pd(ylo));
      const __m256i qhi = round8(_mm512_cvtps_pd(yhi));
      __m512i q = _mm512_inserti64x4(_mm512_castsi256_si512(qlo), qhi, 1);
      q = _mm512_add_epi32(q, vnext_zp);
      q = _mm512_min_epi32(_mm512_max_epi32(q, vzero), v255);
      // 16 x int32 in [0, 255] -> 16 bytes (VPMOVDB truncates; values
      // are already in byte range).
      _mm_storeu_si128(reinterpret_cast<__m128i*>(nr + oc),
                       _mm512_cvtepi32_epi8(q));
    }
    for (; oc < out_features; ++oc) {
      std::int32_t a = ar[oc] - zp_in * row_sums[oc] + bias[oc];
      if (relu && a < 0) a = 0;
      const float real = static_cast<float>(a) * s_in * weight_scales[oc];
      const std::int32_t q =
          round_half_away_saturated(real / next_scale) + next_zp;
      nr[oc] = static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
    }
  }
}

void f32_row_block_avx512(const float* a, std::size_t lda, const float* b,
                          std::size_t ldb, float* c, std::size_t ldc,
                          std::size_t rows, std::size_t k, std::size_t j0,
                          std::size_t j1) {
  std::size_t j = j0;
  for (; j + kColChunk <= j1; j += kColChunk) {
    switch (rows) {
      case 4: micro_tile_full<4>(a, lda, b + j, ldb, c + j, ldc, k); break;
      case 3: micro_tile_full<3>(a, lda, b + j, ldb, c + j, ldc, k); break;
      case 2: micro_tile_full<2>(a, lda, b + j, ldb, c + j, ldc, k); break;
      default: micro_tile_full<1>(a, lda, b + j, ldb, c + j, ldc, k); break;
    }
  }
  if (j < j1) {
    const std::size_t jw = j1 - j;
    switch (rows) {
      case 4:
        micro_tile_partial<4>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      case 3:
        micro_tile_partial<3>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      case 2:
        micro_tile_partial<2>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
      default:
        micro_tile_partial<1>(a, lda, b + j, ldb, c + j, ldc, k, jw);
        break;
    }
  }
}

}  // namespace adapt::nn::kernels::detail

#endif  // ADAPT_KERNELS_HAVE_AVX512
