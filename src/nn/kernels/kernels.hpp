#pragma once

/// \file kernels.hpp
/// Runtime-dispatched SIMD kernels for the two inference hot loops.
///
/// A KernelSet bundles one implementation each of
///   * u8i8_gemm — the INT8 engine's uint8 activation x int8 weight
///     panel product into raw int32 accumulators,
///   * u8_requant — the requantization epilogue turning those
///     accumulators back into the next layer's uint8 activations
///     (zero-point correction, bias, ReLU, rescale, round), and
///   * f32_row_block — one register-blocked row band of the float
///     GEMM all three matmul orientations funnel into.
/// Variants: scalar (always compiled, the reference), AVX2, and
/// AVX-512 (VNNI).  Dispatch happens once per process from cpuid
/// (core::cpu_features) with an `ADAPT_SIMD=scalar|avx2|avx512`
/// override for testing and forced-fallback CI runs.
///
/// Bit-identity is a hard requirement, not a nicety: the fault layer
/// compares inference outputs across runs and replicas to catch SEUs,
/// and the serve layer promises batched == per-ring results exactly.
/// The INT8 kernel is pure int32 accumulation (associative — any
/// lane/block order is exact; the variants use only non-saturating
/// widening multiplies, never the saturating maddubs/VPDPBUSDS forms).
/// The float kernel keeps each output element's additions in ascending
/// k order with separate mul+add (kernel TUs build with
/// -ffp-contract=off so no variant silently fuses), making every
/// variant reproduce the scalar path bit for bit.

#include <cstddef>
#include <cstdint>

#include "core/telemetry.hpp"

namespace adapt::nn::kernels {

enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr int kIsaCount = 3;

/// acc[r * out_features + oc] = sum_ic x[r * in_features + ic] *
/// w[oc * in_features + ic], as exact int32 (activations uint8,
/// weights int8 row-major [out x in]).  Zero-point folding, bias, and
/// requantization stay with the caller — they are shared scalar code
/// so every variant feeds the identical epilogue.
using U8I8GemmFn = void (*)(const std::uint8_t* x, const std::int8_t* w,
                            std::int32_t* acc, std::size_t rows,
                            std::size_t in_features, std::size_t out_features);

/// Exact drop-in for `static_cast<int32>(std::lround(y))` (round half
/// away from zero) in the requantization epilogue, without the libm
/// call, saturated to ±512.  The saturation is invisible to callers:
/// the result is always added to a zero point in [0, 255] and clamped
/// to [0, 255] (QParams::from_range ENSUREs that zero-point range), so
/// any |rounded| >= 512 clamps to the same endpoint either way.
///
/// Exactness: the float y converts to double losslessly, and for
/// |d| < 512 the ±0.5 add is exact in double (a float-valued d there
/// spans at most 2^-14..2^9; double carries the 0.5 bit), after which
/// truncation toward zero equals half-away rounding.  NaN falls
/// through both comparisons to the -512 arm — the same lane value the
/// vector variants' max_pd/min_pd clamp produces — instead of the
/// undefined float-to-int cast lround would hit.
inline std::int32_t round_half_away_saturated(float y) {
  const double d = static_cast<double>(y);
  if (d >= 0.0) {
    return d >= 512.0 ? 512 : static_cast<std::int32_t>(d + 0.5);
  }
  if (d > -512.0) return static_cast<std::int32_t>(d - 0.5);
  return -512;  // Also the NaN arm: both comparisons above are false.
}

/// Fused epilogue for one accumulator panel from u8i8_gemm:
///   a   = acc[r][oc] - zp_in * row_sums[oc] + bias[oc]
///   a   = relu ? max(a, 0) : a
///   real = float(a) * s_in * weight_scales[oc]
///   out[r][oc] = clamp(round_half_away(real / next_scale) + next_zp,
///                      0, 255)
/// Bit-identical across variants: the int32 math wraps identically,
/// int32→float conversion and float division are IEEE-exact per lane,
/// the two multiplies keep the scalar association order
/// ((float(a) * s_in) * weight_scales[oc]), and the vector rounding
/// sequence (widen to double, clamp ±512, add copysign(0.5), truncate)
/// reproduces round_half_away_saturated exactly — including NaN, which
/// both map to the -512 arm.
using U8RequantFn = void (*)(const std::int32_t* acc, std::size_t rows,
                             std::size_t out_features, std::int32_t zp_in,
                             const std::int32_t* row_sums,
                             const std::int32_t* bias, bool relu, float s_in,
                             const float* weight_scales, float next_scale,
                             std::int32_t next_zp, std::uint8_t* out);

/// One block of up to 4 C rows against columns [j0, j1):
/// C[r][j] = sum_t A[r][t] * B[t][j], overwriting C.  A has row stride
/// lda, B row stride ldb, C row stride ldc.  Accumulation per element
/// is ascending t with unfused mul+add in every variant.
using F32RowBlockFn = void (*)(const float* a, std::size_t lda, const float* b,
                               std::size_t ldb, float* c, std::size_t ldc,
                               std::size_t rows, std::size_t k, std::size_t j0,
                               std::size_t j1);

struct KernelSet {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  U8I8GemmFn u8i8_gemm = nullptr;
  U8RequantFn u8_requant = nullptr;
  F32RowBlockFn f32_row_block = nullptr;
  /// nn.kernel.{u8i8_gemm,u8_requant,f32_gemm}.<name>: callers bump
  /// these once per layer/GEMM so --metrics shows which variant
  /// actually served.
  core::telemetry::Counter* u8i8_calls = nullptr;
  core::telemetry::Counter* requant_calls = nullptr;
  core::telemetry::Counter* f32_calls = nullptr;
};

/// Variant compiled into this binary (scalar always; SIMD variants
/// depend on compiler flag support at build time).
bool compiled(Isa isa);

/// Compiled AND runnable on this CPU/OS (cpuid + XCR0).
bool supported(Isa isa);

/// A specific variant's kernel table.  Callers must check supported()
/// first for non-scalar variants; the equivalence tests and benches
/// use this to pit variants against each other in one process.
const KernelSet& kernel_set(Isa isa);

/// The dispatched variant: the best supported ISA, overridden by
/// ADAPT_SIMD=scalar|avx2|avx512 (an unsupported or unparseable
/// request logs a telemetry marker and falls back rather than
/// crashing — tuning knobs must never abort flight code), and by the
/// test-only force below.  Resolved once, then cached.
const KernelSet& active();
Isa active_isa();

/// Name of the `ADAPT_SIMD` value, or Isa count sentinel on parse
/// failure.  Split out so the override grammar is unit-testable
/// without re-execing the process.
bool parse_isa_name(const char* value, Isa* out);

/// Test hooks: force dispatch to a specific (supported) variant, and
/// undo it.  Not for production use — dispatch is meant to be a
/// process-wide one-time decision.
void force_isa_for_testing(Isa isa);
void reset_forced_isa_for_testing();

}  // namespace adapt::nn::kernels
