/// Kernel registry: one-time dispatch from cpuid + ADAPT_SIMD.
///
/// This TU builds with baseline flags only — it never executes a SIMD
/// instruction itself; it just hands out function pointers into the
/// per-ISA TUs that were compiled with their own -m flags.

#include "nn/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cpu_features.hpp"
#include "core/require.hpp"
#include "nn/kernels/kernels_impl.hpp"

namespace adapt::nn::kernels {

namespace tm = core::telemetry;

namespace {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx512: return "avx512";
    case Isa::kAvx2: return "avx2";
    case Isa::kScalar: break;
  }
  return "scalar";
}

KernelSet make_set(Isa isa, U8I8GemmFn u8i8, U8RequantFn requant,
                   F32RowBlockFn f32) {
  KernelSet k;
  k.isa = isa;
  k.name = isa_name(isa);
  k.u8i8_gemm = u8i8;
  k.u8_requant = requant;
  k.f32_row_block = f32;
  k.u8i8_calls =
      &tm::counter(std::string("nn.kernel.u8i8_gemm.") + k.name);
  k.requant_calls =
      &tm::counter(std::string("nn.kernel.u8_requant.") + k.name);
  k.f32_calls = &tm::counter(std::string("nn.kernel.f32_gemm.") + k.name);
  return k;
}

const KernelSet& set_for(Isa isa) {
  static const KernelSet scalar =
      make_set(Isa::kScalar, detail::u8i8_gemm_scalar,
               detail::u8_requant_scalar, detail::f32_row_block_scalar);
#ifdef ADAPT_KERNELS_HAVE_AVX2
  static const KernelSet avx2 =
      make_set(Isa::kAvx2, detail::u8i8_gemm_avx2, detail::u8_requant_avx2,
               detail::f32_row_block_avx2);
  if (isa == Isa::kAvx2) return avx2;
#endif
#ifdef ADAPT_KERNELS_HAVE_AVX512
  static const KernelSet avx512 =
      make_set(Isa::kAvx512, detail::u8i8_gemm_avx512,
               detail::u8_requant_avx512, detail::f32_row_block_avx512);
  if (isa == Isa::kAvx512) return avx512;
#endif
  (void)isa;
  return scalar;
}

Isa best_supported() {
  if (supported(Isa::kAvx512)) return Isa::kAvx512;
  if (supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

/// The one-time dispatch decision: ADAPT_SIMD when valid and
/// supported, else the best the CPU offers.  A request this machine
/// cannot honor (ADAPT_SIMD=avx512 on an AVX2 box, or a typo) clamps
/// down instead of crashing, leaving a telemetry marker for triage.
Isa resolve_dispatch() {
  Isa isa = best_supported();
  if (const char* env = std::getenv("ADAPT_SIMD"); env != nullptr &&
                                                   env[0] != '\0') {
    Isa requested = Isa::kScalar;
    if (!parse_isa_name(env, &requested)) {
      tm::counter("nn.kernel.dispatch.bad_override").add();
    } else if (!supported(requested)) {
      tm::counter("nn.kernel.dispatch.unsupported_override").add();
    } else {
      isa = requested;
    }
  }
  tm::counter(std::string("nn.kernel.dispatch.") + isa_name(isa)).add();
  return isa;
}

/// Test-only override; -1 means "not forced".
std::atomic<int> forced_isa{-1};

}  // namespace

bool compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#ifdef ADAPT_KERNELS_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#ifdef ADAPT_KERNELS_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool supported(Isa isa) {
  if (!compiled(isa)) return false;
  const core::CpuFeatures& f = core::cpu_features();
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kAvx2: return f.avx2;
    case Isa::kAvx512: return f.avx512_kernel_class();
  }
  return false;
}

const KernelSet& kernel_set(Isa isa) {
  ADAPT_REQUIRE(supported(isa), "kernel_set: ISA not supported on this host");
  return set_for(isa);
}

const KernelSet& active() {
  const int forced = forced_isa.load(std::memory_order_acquire);
  if (forced >= 0) return set_for(static_cast<Isa>(forced));
  static const Isa dispatched = resolve_dispatch();
  return set_for(dispatched);
}

Isa active_isa() { return active().isa; }

bool parse_isa_name(const char* value, Isa* out) {
  if (value == nullptr || out == nullptr) return false;
  if (std::strcmp(value, "scalar") == 0) {
    *out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(value, "avx2") == 0) {
    *out = Isa::kAvx2;
    return true;
  }
  if (std::strcmp(value, "avx512") == 0) {
    *out = Isa::kAvx512;
    return true;
  }
  return false;
}

void force_isa_for_testing(Isa isa) {
  ADAPT_REQUIRE(supported(isa),
                "force_isa_for_testing: ISA not supported on this host");
  forced_isa.store(static_cast<int>(isa), std::memory_order_release);
}

void reset_forced_isa_for_testing() {
  forced_isa.store(-1, std::memory_order_release);
}

}  // namespace adapt::nn::kernels
