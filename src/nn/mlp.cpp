#include "nn/mlp.hpp"

#include <memory>

#include "core/require.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"

namespace adapt::nn {

MlpSpec background_net_spec(std::size_t input_dim, bool swap_bn_fc) {
  MlpSpec spec;
  spec.input_dim = input_dim;
  spec.widths = {256, 128, 64};
  spec.swap_bn_fc = swap_bn_fc;
  return spec;
}

MlpSpec deta_net_spec(std::size_t input_dim) {
  MlpSpec spec;
  spec.input_dim = input_dim;
  spec.widths = {8, 16, 8};
  return spec;
}

Sequential build_mlp(const MlpSpec& spec, core::Rng& rng) {
  ADAPT_REQUIRE(spec.input_dim > 0, "input dim must be positive");
  ADAPT_REQUIRE(!spec.widths.empty(), "need at least one hidden layer");

  Sequential model;
  std::size_t dim = spec.input_dim;
  for (std::size_t w : spec.widths) {
    ADAPT_REQUIRE(w > 0, "hidden width must be positive");
    if (spec.swap_bn_fc) {
      // Quantizable block: FC -> BN -> ReLU (fusable).
      model.add(std::make_unique<Linear>(dim, w, rng));
      model.add(std::make_unique<BatchNorm1d>(w));
      model.add(std::make_unique<ReLU>());
    } else {
      // Paper Fig. 5 block: BN -> FC -> ReLU.
      model.add(std::make_unique<BatchNorm1d>(dim));
      model.add(std::make_unique<Linear>(dim, w, rng));
      model.add(std::make_unique<ReLU>());
    }
    dim = w;
  }
  // Final FC to a single output: a logit for the background
  // classifier, ln(d_eta) for the regressor.
  model.add(std::make_unique<Linear>(dim, 1, rng));
  return model;
}

}  // namespace adapt::nn
