#include "nn/data.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"

namespace adapt::nn {

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  Dataset out;
  out.x = Tensor(rows.size(), x.cols());
  out.y.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ADAPT_REQUIRE(rows[i] < size(), "subset row out of range");
    for (std::size_t c = 0; c < x.cols(); ++c) out.x(i, c) = x(rows[i], c);
    out.y.push_back(y[rows[i]]);
  }
  return out;
}

SplitResult split(const Dataset& data, double first_fraction,
                  core::Rng& rng) {
  ADAPT_REQUIRE(first_fraction > 0.0 && first_fraction < 1.0,
                "split fraction must be in (0, 1)");
  ADAPT_REQUIRE(data.y.size() == data.size(), "dataset x/y size mismatch");
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Fisher-Yates with the library Rng for reproducibility.
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_index(i));
    std::swap(order[i - 1], order[j]);
  }
  const auto n_first =
      static_cast<std::size_t>(first_fraction * static_cast<double>(order.size()));
  const std::vector<std::size_t> first_rows(order.begin(),
                                            order.begin() + static_cast<std::ptrdiff_t>(n_first));
  const std::vector<std::size_t> second_rows(order.begin() + static_cast<std::ptrdiff_t>(n_first),
                                             order.end());
  return SplitResult{data.subset(first_rows), data.subset(second_rows)};
}

void Standardizer::fit(const Tensor& x) {
  ADAPT_REQUIRE(x.rows() >= 2, "standardizer needs at least two rows");
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0f);
  inv_std_.assign(d, 1.0f);
  for (std::size_t c = 0; c < d; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r)
      mean += static_cast<double>(x(r, c));
    mean /= static_cast<double>(x.rows());
    double var = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const double dlt = static_cast<double>(x(r, c)) - mean;
      var += dlt * dlt;
    }
    var /= static_cast<double>(x.rows());
    mean_[c] = static_cast<float>(mean);
    // Constant features pass through unscaled rather than exploding.
    inv_std_[c] = var > 1e-12 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.0f;
  }
}

Tensor Standardizer::transform(const Tensor& x) const {
  Tensor out = x;
  transform_in_place(out);
  return out;
}

void Standardizer::transform_in_place(Tensor& x) const {
  ADAPT_REQUIRE(fitted(), "standardizer not fitted");
  ADAPT_REQUIRE(x.cols() == mean_.size(), "standardizer width mismatch");
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      x(r, c) = (x(r, c) - mean_[c]) * inv_std_[c];
}

void Standardizer::set(std::vector<float> mean, std::vector<float> inv_std) {
  ADAPT_REQUIRE(mean.size() == inv_std.size(), "standardizer size mismatch");
  mean_ = std::move(mean);
  inv_std_ = std::move(inv_std);
}

DataLoader::DataLoader(const Dataset& data, std::size_t batch_size,
                       core::Rng& rng)
    : data_(&data), batch_size_(batch_size), rng_(&rng) {
  ADAPT_REQUIRE(batch_size >= 1, "batch size must be >= 1");
  ADAPT_REQUIRE(!data.empty(), "empty dataset");
  order_.resize(data.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  reset();
}

void DataLoader::reset() {
  for (std::size_t i = order_.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng_->uniform_index(i));
    std::swap(order_[i - 1], order_[j]);
  }
  cursor_ = 0;
}

bool DataLoader::next(Tensor& x_batch, std::vector<float>& y_batch) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t take = std::min(batch_size_, order_.size() - cursor_);
  x_batch = Tensor(take, data_->x.cols());
  y_batch.resize(take);
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t row = order_[cursor_ + i];
    for (std::size_t c = 0; c < data_->x.cols(); ++c)
      x_batch(i, c) = data_->x(row, c);
    y_batch[i] = data_->y[row];
  }
  cursor_ += take;
  return true;
}

std::size_t DataLoader::n_batches() const {
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace adapt::nn
