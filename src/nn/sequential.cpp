#include "nn/sequential.hpp"

#include <sstream>

#include "core/require.hpp"
#include "nn/batchnorm.hpp"

namespace adapt::nn {

void Sequential::add(LayerPtr layer) {
  ADAPT_REQUIRE(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& x, bool training) {
  Tensor y = x;
  for (auto& layer : layers_) y = layer->forward(y, training);
  return y;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) all.push_back(p);
  return all;
}

void Sequential::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::size_t Sequential::n_parameters() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

std::vector<std::vector<float>> Sequential::snapshot_weights() {
  std::vector<std::vector<float>> snap;
  for (Param* p : params()) snap.push_back(p->value.vec());
  // Batchnorm running statistics are state too.
  for (auto& layer : layers_) {
    if (auto* bn = dynamic_cast<BatchNorm1d*>(layer.get())) {
      snap.push_back(bn->running_mean());
      snap.push_back(bn->running_var());
    }
  }
  return snap;
}

void Sequential::restore_weights(
    const std::vector<std::vector<float>>& snapshot) {
  std::size_t idx = 0;
  for (Param* p : params()) {
    ADAPT_REQUIRE(idx < snapshot.size() &&
                      snapshot[idx].size() == p->value.size(),
                  "weight snapshot shape mismatch");
    p->value.vec() = snapshot[idx++];
  }
  for (auto& layer : layers_) {
    if (auto* bn = dynamic_cast<BatchNorm1d*>(layer.get())) {
      ADAPT_REQUIRE(idx + 1 < snapshot.size(), "snapshot missing BN stats");
      bn->running_mean() = snapshot[idx++];
      bn->running_var() = snapshot[idx++];
    }
  }
  ADAPT_REQUIRE(idx == snapshot.size(), "snapshot has extra entries");
}

std::string Sequential::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) os << " -> ";
    os << layers_[i]->describe();
  }
  return os.str();
}

}  // namespace adapt::nn
