#pragma once

/// \file linear.hpp
/// Fully connected layer: y = x W^T + b, weights stored as
/// (out_features x in_features) — the PyTorch convention, which also
/// matches the INT8 per-output-channel quantization in adapt::quant.

#include "nn/layer.hpp"

namespace adapt::nn {

class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, core::Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string type() const override { return "linear"; }
  std::string describe() const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param weight_;  ///< (out x in).
  Param bias_;    ///< (1 x out).
  Tensor input_cache_;
};

}  // namespace adapt::nn
