#pragma once

/// \file batchnorm.hpp
/// 1-D batch normalization (per-feature), matching the paper's block
/// structure (Fig. 5: BatchNorm1d -> FC -> ReLU) and PyTorch
/// semantics: batch statistics during training with an exponential
/// running estimate used at inference; affine gamma/beta parameters.
///
/// The running statistics are what the quantization stage folds into
/// the adjacent Linear layer (paper Sec. V's "layer-swapped" fusion).

#include "nn/layer.hpp"

namespace adapt::nn {

class BatchNorm1d : public Layer {
 public:
  explicit BatchNorm1d(std::size_t features, double momentum = 0.1,
                       double eps = 1e-5);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::string type() const override { return "batchnorm1d"; }
  std::string describe() const override;

  std::size_t features() const { return features_; }
  double eps() const { return eps_; }

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  const Param& gamma() const { return gamma_; }
  const Param& beta() const { return beta_; }

  /// Running statistics (1 x features), used at inference and by BN
  /// folding.
  const std::vector<float>& running_mean() const { return running_mean_; }
  const std::vector<float>& running_var() const { return running_var_; }
  std::vector<float>& running_mean() { return running_mean_; }
  std::vector<float>& running_var() { return running_var_; }

 private:
  std::size_t features_;
  double momentum_;
  double eps_;
  Param gamma_;  ///< (1 x features), initialized to 1.
  Param beta_;   ///< (1 x features), initialized to 0.
  std::vector<float> running_mean_;
  std::vector<float> running_var_;

  // Training-time caches for backward.  Inference deliberately keeps
  // NO member scratch: forward(training=false) must stay safe for
  // concurrent callers sharing one layer (the serving worker and any
  // in-process evaluation both run the same deployed net).
  Tensor x_hat_;              ///< Normalized input.
  std::vector<float> batch_inv_std_;
};

}  // namespace adapt::nn
