#pragma once

/// \file trainer.hpp
/// Mini-batch training loop with validation-based early stopping,
/// following the paper's protocol (Sec. III): SGD, up to 120 epochs,
/// stop when validation loss ceases to improve, keep the best
/// weights.

#include <functional>
#include <vector>

#include "nn/data.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace adapt::nn {

/// Loss function signature shared by bce_with_logits and mse.
using LossFn = LossResult (*)(const Tensor&, const std::vector<float>&);

struct TrainConfig {
  std::size_t batch_size = 256;
  std::size_t max_epochs = 120;  ///< Paper's cap.
  std::size_t patience = 10;     ///< Epochs without val improvement.

  /// Optimizer selection.  The paper trains with SGD; Adam is offered
  /// for the optimizer ablation and downstream use.
  enum class Optimizer { kSgd, kAdam };
  Optimizer optimizer = Optimizer::kSgd;
  SgdConfig sgd;    ///< Used when optimizer == kSgd.
  AdamConfig adam;  ///< Used when optimizer == kAdam.

  bool verbose = false;          ///< Print per-epoch losses to stdout.
};

struct TrainReport {
  std::size_t epochs_run = 0;
  bool stopped_early = false;
  double best_val_loss = 0.0;
  std::vector<double> train_losses;  ///< Per epoch.
  std::vector<double> val_losses;    ///< Per epoch.
};

class Trainer {
 public:
  Trainer(Sequential& model, LossFn loss, const TrainConfig& config);

  /// Train on `train`, early-stop on `val`.  The model is left holding
  /// the best-validation weights.
  TrainReport fit(const Dataset& train, const Dataset& val, core::Rng& rng);

  /// Mean loss of the current model on a dataset (inference mode).
  double evaluate(const Dataset& data);

 private:
  Sequential* model_;
  LossFn loss_;
  TrainConfig config_;
};

}  // namespace adapt::nn
