#pragma once

/// \file loss.hpp
/// Training losses: binary cross-entropy on logits for the background
/// classifier, and L2 (MSE) for the dEta regressor — the two losses
/// the paper trains with (Sec. III, Model Training).

#include <vector>

#include "nn/tensor.hpp"

namespace adapt::nn {

struct LossResult {
  double value = 0.0;  ///< Mean loss over the batch.
  Tensor grad;         ///< d(loss)/d(prediction), same shape as input.
};

/// Binary cross-entropy with logits (numerically stable log-sum-exp
/// form).  `logits` is (n x 1); `targets` holds n values in {0, 1}
/// (1 = background, by the convention in pipeline/features.hpp).
LossResult bce_with_logits(const Tensor& logits,
                           const std::vector<float>& targets);

/// Mean squared error.  `pred` is (n x 1); `targets` holds n values
/// (the dEta network regresses ln(d_eta), which spans several orders
/// of magnitude — hence the log, per the paper).
LossResult mse(const Tensor& pred, const std::vector<float>& targets);

}  // namespace adapt::nn
