#pragma once

/// \file serialize.hpp
/// Binary (de)serialization of trained models.  The flight software
/// loads models produced on the ground, so the format carries
/// everything inference needs: the layer stack with weights and
/// batchnorm running statistics, the input standardizer, and a small
/// key/value metadata block (e.g. the per-polar-bin classification
/// thresholds of pipeline/thresholds.hpp).
///
/// Format (little-endian):
///   magic "ADNN", version u32
///   standardizer: u32 dim (0 = absent), dim x f32 mean, dim x f32 inv_std
///   u32 n_layers, then per layer:
///     u32 tag (see LayerTag), payload per type
///   u32 n_metadata, then per entry: string key, f64 value
///   u64 FNV-1a checksum of every preceding byte (since version 2)
///
/// The checksum footer exists for the flight link: a model garbled in
/// transit (truncated upload, flipped bits) must be rejected at load,
/// never silently deployed.  Version-1 files (no footer) still load —
/// structural validation alone — so pre-existing model caches stay
/// usable; rejected checksums are counted under
/// `nn.model_checksum_failures` on top of `nn.model_files_rejected`.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "nn/data.hpp"
#include "nn/sequential.hpp"

namespace adapt::nn {

struct SavedModel {
  Sequential model;
  Standardizer standardizer;
  std::map<std::string, double> metadata;
};

/// Serialize to `path`.  Returns false on I/O failure.
bool save_model(Sequential& model, const Standardizer& standardizer,
                const std::map<std::string, double>& metadata,
                const std::string& path);

/// Deserialize from `path`.  Returns nullopt on missing/corrupt file
/// (structural damage or a version-2 checksum mismatch).
std::optional<SavedModel> load_model(const std::string& path);

/// Parse a serialized model from an in-memory buffer — the actual
/// parser behind load_model, exposed so untrusted inputs can be
/// exercised without touching the filesystem (tests/fuzz).  Every
/// claimed count is validated against the remaining bytes before any
/// allocation; malformed input returns nullopt, never throws.
std::optional<SavedModel> load_model_from_bytes(std::string_view bytes);

/// Digest of every parameter byte of the stack (Linear weights/biases,
/// BatchNorm affine parameters and running statistics), in layer
/// order.  The supervisor records this at model-attach time and
/// recomputes it on health ticks: any in-memory bit flip (radiation
/// SEU) changes the digest.  Deterministic for identical weights.
std::uint64_t weight_checksum(Sequential& model);

}  // namespace adapt::nn
