#pragma once

/// \file serialize.hpp
/// Binary (de)serialization of trained models.  The flight software
/// loads models produced on the ground, so the format carries
/// everything inference needs: the layer stack with weights and
/// batchnorm running statistics, the input standardizer, and a small
/// key/value metadata block (e.g. the per-polar-bin classification
/// thresholds of pipeline/thresholds.hpp).
///
/// Format (little-endian):
///   magic "ADNN", version u32
///   standardizer: u32 dim (0 = absent), dim x f32 mean, dim x f32 inv_std
///   u32 n_layers, then per layer:
///     u32 tag (see LayerTag), payload per type
///   u32 n_metadata, then per entry: string key, f64 value

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "nn/data.hpp"
#include "nn/sequential.hpp"

namespace adapt::nn {

struct SavedModel {
  Sequential model;
  Standardizer standardizer;
  std::map<std::string, double> metadata;
};

/// Serialize to `path`.  Returns false on I/O failure.
bool save_model(Sequential& model, const Standardizer& standardizer,
                const std::map<std::string, double>& metadata,
                const std::string& path);

/// Deserialize from `path`.  Returns nullopt on missing/corrupt file.
std::optional<SavedModel> load_model(const std::string& path);

}  // namespace adapt::nn
