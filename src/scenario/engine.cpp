#include "scenario/engine.hpp"

#include <algorithm>
#include <utility>

#include "core/rng.hpp"
#include "detector/material.hpp"
#include "loc/likelihood.hpp"
#include "recon/event_reconstruction.hpp"
#include "sim/exposure.hpp"
#include "sim/pileup.hpp"

namespace adapt::scenario {

namespace {

/// Emission window of a single simulated burst/pulse [s] — the FRED
/// sampling window in ExposureSimulator::simulate_grb_only.
constexpr double kEmissionWindowS = 1.0;

sim::GrbConfig burst_grb(const BurstSpec& b) {
  sim::GrbConfig g;
  g.fluence = b.fluence;
  g.polar_deg = b.polar_deg;
  g.azimuth_deg = b.azimuth_deg;
  g.spectrum.e_peak = b.e_peak_mev;
  // Onset near the window start: the scenario clock, not the light
  // curve, places the burst.
  g.light_curve.t_start = 0.05;
  g.light_curve.rise = b.rise_s;
  g.light_curve.decay = b.decay_s;
  return g;
}

sim::GrbConfig flare_pulse_grb(const FlareTrainSpec& f) {
  sim::GrbConfig g;
  g.fluence = f.pulse_fluence;
  g.polar_deg = f.polar_deg;
  g.azimuth_deg = f.azimuth_deg;
  g.spectrum.e_peak = f.e_peak_mev;
  g.light_curve.t_start = 0.02;
  g.light_curve.rise = f.pulse_width_s / 4.0;
  g.light_curve.decay = f.pulse_width_s / 2.0;
  return g;
}

void append_shifted(std::vector<detector::MeasuredEvent>& timeline,
                    std::vector<detector::MeasuredEvent>&& events,
                    double t_shift) {
  for (auto& event : events) {
    event.time_s += t_shift;
    timeline.push_back(std::move(event));
  }
}

bool in_any_window(double t, const std::vector<OccultationSpec>& windows) {
  for (const OccultationSpec& w : windows)
    if (t >= w.t_start && t < w.t_end) return true;
  return false;
}

}  // namespace

ScenarioData simulate_scenario(const ScenarioConfig& config,
                               std::uint64_t seed) {
  // One splitmix64 chain, consumed in a FIXED order (calibration,
  // baseline background, bursts, flare pulses, surges), hands every
  // component an independent Rng: adding a surge cannot perturb a
  // burst's realization drawn earlier in the chain.
  std::uint64_t chain = seed;
  const auto component_rng = [&chain] {
    return core::Rng(core::splitmix64(chain));
  };

  const detector::Geometry geometry{detector::GeometryConfig{}};
  const detector::Material material = detector::Material::csi();
  const sim::ExposureSimulator simulator(geometry, material);

  ScenarioData data;
  data.config = config;

  // Calibration: a burst-free window at the scenario's background level
  // gives the trigger its running-average rate, exactly as the flight
  // software would maintain one from pre-burst data.
  sim::BackgroundConfig baseline;
  baseline.photons_per_second *= config.background_rate_scale;
  {
    sim::BackgroundConfig calibration = baseline;
    calibration.exposure_seconds = 1.0;
    core::Rng rng = component_rng();
    const sim::Exposure cal =
        simulator.simulate_background_only(calibration, rng);
    data.background_rate_hz = trigger::RateTrigger::estimate_background_rate(
        cal.events, calibration.exposure_seconds);
  }

  // Baseline background over the whole campaign.
  {
    sim::BackgroundConfig bkg = baseline;
    bkg.exposure_seconds = config.duration_s;
    core::Rng rng = component_rng();
    sim::Exposure exposure = simulator.simulate_background_only(bkg, rng);
    data.background_events = exposure.events.size();
    append_shifted(data.events, std::move(exposure.events), 0.0);
  }

  // Bursts: each one is a 1-second GRB-only exposure shifted onto the
  // scenario clock.
  for (const BurstSpec& spec : config.bursts) {
    core::Rng rng = component_rng();
    sim::Exposure exposure =
        simulator.simulate_grb_only(burst_grb(spec), rng);
    BurstTruth truth;
    truth.direction = exposure.true_source_direction;
    truth.t_start = spec.t_start;
    truth.t_end = spec.t_start + kEmissionWindowS;
    truth.events = exposure.events.size();
    data.bursts.push_back(truth);
    append_shifted(data.events, std::move(exposure.events), spec.t_start);
  }

  // Flare trains: repeated soft pulses, truth-tagged background so the
  // scoring treats any trigger on them as a false positive.
  for (const FlareTrainSpec& spec : config.flare_trains) {
    for (std::uint64_t pulse = 0; pulse < spec.pulses; ++pulse) {
      core::Rng rng = component_rng();
      sim::Exposure exposure =
          simulator.simulate_grb_only(flare_pulse_grb(spec), rng);
      for (auto& event : exposure.events)
        event.origin = detector::Origin::kBackground;
      data.flare_events += exposure.events.size();
      const double t_shift =
          spec.t_first + static_cast<double>(pulse) * spec.period_s;
      append_shifted(data.events, std::move(exposure.events), t_shift);
    }
  }

  // Surges: extra background at rate * (factor - 1) inside the window
  // (the baseline already covers the first 1x).
  for (const SurgeSpec& spec : config.surges) {
    sim::BackgroundConfig surge = baseline;
    surge.photons_per_second *= (spec.factor - 1.0);
    surge.exposure_seconds = spec.t_end - spec.t_start;
    core::Rng rng = component_rng();
    if (surge.photons_per_second <= 0.0) continue;  // factor == 1.
    sim::Exposure exposure = simulator.simulate_background_only(surge, rng);
    data.surge_events += exposure.events.size();
    append_shifted(data.events, std::move(exposure.events), spec.t_start);
  }

  // Occultation dead windows: the sky is blocked, events vanish.
  if (!config.occultations.empty()) {
    const auto dead = [&](const detector::MeasuredEvent& e) {
      return in_any_window(e.time_s, config.occultations);
    };
    const auto keep_end =
        std::remove_if(data.events.begin(), data.events.end(), dead);
    data.occulted_events = static_cast<std::uint64_t>(
        std::distance(keep_end, data.events.end()));
    data.events.erase(keep_end, data.events.end());
  }

  // One DAQ: sort the merged timeline, then apply the shared
  // detection-latency pileup window across ALL components.
  std::stable_sort(data.events.begin(), data.events.end(),
                   [](const detector::MeasuredEvent& a,
                      const detector::MeasuredEvent& b) {
                     return a.time_s < b.time_s;
                   });
  data.piled_up_events =
      sim::merge_coincident(data.events, config.pileup_latency_s);

  // Per-event serial reconstruction preserves the event -> ring time
  // mapping (reconstruct_all is OpenMP-parallel and would still keep
  // order, but the serial loop makes the pairing explicit and lets us
  // record times for exactly the accepted events).
  const recon::EventReconstructor reconstructor(material);
  data.rings.reserve(data.events.size() / 2);
  for (const detector::MeasuredEvent& event : data.events) {
    if (auto ring = reconstructor.reconstruct(event)) {
      data.rings.push_back(std::move(*ring));
      data.ring_times.push_back(event.time_s);
    }
  }

  for (BurstTruth& truth : data.bursts)
    truth.rings = static_cast<std::uint64_t>(
        rings_in_window(data, truth.t_start, truth.t_end).size());
  return data;
}

TriggerScore score_trigger(const ScenarioData& data) {
  trigger::TriggerConfig config;
  config.background_rate_hz = data.background_rate_hz;
  const trigger::RateTrigger rate_trigger(config);

  std::vector<double> times;
  times.reserve(data.events.size());
  for (const auto& event : data.events) times.push_back(event.time_s);

  TriggerScore score;
  score.intervals =
      rate_trigger.scan_all(std::move(times), data.config.duration_s);

  const auto overlaps = [](const trigger::TriggerInterval& interval,
                           const BurstTruth& burst) {
    return interval.t_start < burst.t_end && burst.t_start < interval.t_end;
  };
  for (const trigger::TriggerInterval& interval : score.intervals) {
    bool matched = false;
    for (const BurstTruth& burst : data.bursts)
      if (overlaps(interval, burst)) matched = true;
    if (matched)
      ++score.true_positives;
    else
      ++score.false_positives;
  }
  for (const BurstTruth& burst : data.bursts) {
    for (const trigger::TriggerInterval& interval : score.intervals) {
      if (overlaps(interval, burst)) {
        ++score.bursts_detected;
        break;
      }
    }
  }
  if (!data.bursts.empty())
    score.efficiency = static_cast<double>(score.bursts_detected) /
                       static_cast<double>(data.bursts.size());
  if (!score.intervals.empty())
    score.purity = static_cast<double>(score.true_positives) /
                   static_cast<double>(score.intervals.size());
  return score;
}

std::vector<std::size_t> rings_in_window(const ScenarioData& data,
                                         double t_start, double t_end) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < data.rings.size(); ++i) {
    const double t = data.ring_times[i];
    if (t < t_start || t >= t_end) continue;
    if (!loc::ring_usable(data.rings[i])) continue;
    indices.push_back(i);
  }
  return indices;
}

}  // namespace adapt::scenario
