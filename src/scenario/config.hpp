#pragma once

/// \file config.hpp
/// Hostile-sky scenario configs: a strict, line-based TOML subset.
///
/// A scenario is a replayable sky campaign — overlapping GRBs, soft
/// flare trains, background surge windows, Earth-occultation dead
/// windows, and a pileup latency — described in a small text file so
/// CI can check the files in, diff them in review, and gate golden
/// reports on them.  The grammar is deliberately tiny:
///
///     # comment
///     [scenario]
///     name = multi_burst
///     duration_s = 4.0
///
///     [burst]            # repeatable; one section per burst
///     t_start = 0.5
///     fluence = 6.0
///     ...
///
/// Parsing is STRICT in the same spirit as core::CliArgs: unknown
/// sections, unknown keys, duplicate keys, malformed numbers,
/// non-finite rates, negative fluences, and inverted windows all throw
/// core::CliError (adaptctl maps that to exit code 2 with usage) —
/// never a silent default, never a crash.  A config that loads is a
/// config the engine can replay bit-identically from (config, seed).

#include <string>
#include <vector>

namespace adapt::scenario {

/// One gamma-ray burst: FRED light curve + Band spectrum, simulated
/// over a 1 s emission window starting at `t_start` scenario time.
struct BurstSpec {
  double t_start = 0.0;      ///< Emission window start [s, scenario clock].
  double fluence = 1.0;      ///< Relative fluence (1.0 = paper baseline).
  double polar_deg = 30.0;   ///< Source polar angle [deg, 0 = zenith].
  double azimuth_deg = 0.0;  ///< Source azimuth [deg].
  double rise_s = 0.01;      ///< FRED rise time [s].
  double decay_s = 0.15;     ///< FRED decay time [s].
  double e_peak_mev = 0.3;   ///< Band spectrum peak energy [MeV].
};

/// A repeating soft-gamma-flare train (SGR-like): `pulses` identical
/// soft pulses starting at `t_first`, one every `period_s`.  Flare
/// events are truth-tagged background — they are exactly the transient
/// the trigger must NOT localize as a GRB.
struct FlareTrainSpec {
  double t_first = 0.0;        ///< First pulse start [s].
  double period_s = 1.0;       ///< Pulse spacing [s].
  std::uint64_t pulses = 3;    ///< Number of pulses.
  double pulse_fluence = 0.5;  ///< Relative fluence per pulse.
  double pulse_width_s = 0.1;  ///< Pulse duration scale [s].
  double polar_deg = 60.0;     ///< Flare source polar angle [deg].
  double azimuth_deg = 180.0;  ///< Flare source azimuth [deg].
  double e_peak_mev = 0.08;    ///< Soft spectrum peak [MeV].
};

/// A solar-flare background surge: the background rate is multiplied
/// by `factor` inside [t_start, t_end).
struct SurgeSpec {
  double t_start = 0.0;
  double t_end = 0.0;
  double factor = 2.0;  ///< Rate multiplier, >= 1.
};

/// An Earth-occultation dead window: every event inside [t_start,
/// t_end) is dropped before reconstruction (the sky is blocked).
struct OccultationSpec {
  double t_start = 0.0;
  double t_end = 0.0;
};

struct ScenarioConfig {
  std::string name;               ///< Identifier ([A-Za-z0-9_-]).
  double duration_s = 4.0;        ///< Total campaign duration [s].
  double alert_radius_deg = 10.0; ///< Localizer alert threshold [deg].
  double pileup_latency_s = 0.0;  ///< DAQ coincidence window [s].
  double background_rate_scale = 1.0;  ///< Scale on the paper baseline.

  std::vector<BurstSpec> bursts;  ///< At least one.
  std::vector<FlareTrainSpec> flare_trains;
  std::vector<SurgeSpec> surges;
  std::vector<OccultationSpec> occultations;
};

/// Parse a scenario config from text.  Throws core::CliError on any
/// syntactic or semantic problem; `where` names the source (file name)
/// in the error message.
ScenarioConfig parse_scenario(const std::string& text,
                              const std::string& where = "<config>");

/// Read and parse a config file.  Throws core::CliError when the file
/// cannot be read or fails to parse.
ScenarioConfig load_scenario_file(const std::string& path);

}  // namespace adapt::scenario
