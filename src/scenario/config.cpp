#include "scenario/config.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>

#include "core/cli.hpp"

namespace adapt::scenario {

namespace {

[[noreturn]] void fail(const std::string& where, std::size_t line_no,
                       const std::string& msg) {
  std::ostringstream out;
  out << where << ":" << line_no << ": " << msg;
  throw core::CliError(out.str());
}

[[noreturn]] void fail(const std::string& where, const std::string& msg) {
  throw core::CliError(where + ": " + msg);
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0)
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0)
    --end;
  return s.substr(begin, end - begin);
}

bool is_identifier(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

enum class Section {
  kNone,
  kScenario,
  kBackground,
  kBurst,
  kFlareTrain,
  kSurge,
  kOccultation,
};

/// Strictly parsed positive integer for repeat counts.
std::uint64_t parse_count(const std::string& token, const std::string& what,
                          std::uint64_t max) {
  const double value = core::parse_double(token, what);
  const double rounded = std::floor(value);
  if (value != rounded || value < 1.0 ||
      value > static_cast<double>(max)) {
    std::ostringstream out;
    out << what << ": expected an integer in [1, " << max << "], got '"
        << token << "'";
    throw core::CliError(out.str());
  }
  return static_cast<std::uint64_t>(rounded);
}

}  // namespace

ScenarioConfig parse_scenario(const std::string& text,
                              const std::string& where) {
  ScenarioConfig cfg;
  Section section = Section::kNone;
  bool saw_scenario = false;
  bool saw_background = false;
  // Duplicate-key detection is scoped to the current section instance.
  std::unordered_set<std::string> seen_keys;

  std::istringstream stream(text);
  std::string raw_line;
  std::size_t line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const std::size_t hash = raw_line.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw_line : raw_line.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']')
        fail(where, line_no, "malformed section header '" + line + "'");
      const std::string name = trim(line.substr(1, line.size() - 2));
      seen_keys.clear();
      if (name == "scenario") {
        if (saw_scenario)
          fail(where, line_no, "duplicate [scenario] section");
        saw_scenario = true;
        section = Section::kScenario;
      } else if (name == "background") {
        if (saw_background)
          fail(where, line_no, "duplicate [background] section");
        saw_background = true;
        section = Section::kBackground;
      } else if (name == "burst") {
        cfg.bursts.emplace_back();
        section = Section::kBurst;
      } else if (name == "flare_train") {
        cfg.flare_trains.emplace_back();
        section = Section::kFlareTrain;
      } else if (name == "surge") {
        cfg.surges.emplace_back();
        section = Section::kSurge;
      } else if (name == "occultation") {
        cfg.occultations.emplace_back();
        section = Section::kOccultation;
      } else {
        fail(where, line_no, "unknown section [" + name + "]");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      fail(where, line_no, "expected 'key = value', got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty())
      fail(where, line_no, "expected 'key = value', got '" + line + "'");
    if (section == Section::kNone)
      fail(where, line_no, "key '" + key + "' before any [section]");
    if (!seen_keys.insert(key).second)
      fail(where, line_no, "duplicate key '" + key + "' in section");

    std::ostringstream what_stream;
    what_stream << where << ":" << line_no << ": " << key;
    const std::string what = what_stream.str();
    const auto num = [&] { return core::parse_double(value, what); };

    switch (section) {
      case Section::kScenario:
        if (key == "name") {
          if (!is_identifier(value))
            fail(where, line_no,
                 "name must be [A-Za-z0-9_-], got '" + value + "'");
          cfg.name = value;
        } else if (key == "duration_s") {
          cfg.duration_s = num();
        } else if (key == "alert_radius_deg") {
          cfg.alert_radius_deg = num();
        } else if (key == "pileup_latency_s") {
          cfg.pileup_latency_s = num();
        } else {
          fail(where, line_no, "unknown key '" + key + "' in [scenario]");
        }
        break;
      case Section::kBackground:
        if (key == "rate_scale") {
          cfg.background_rate_scale = num();
        } else {
          fail(where, line_no, "unknown key '" + key + "' in [background]");
        }
        break;
      case Section::kBurst: {
        BurstSpec& b = cfg.bursts.back();
        if (key == "t_start") b.t_start = num();
        else if (key == "fluence") b.fluence = num();
        else if (key == "polar_deg") b.polar_deg = num();
        else if (key == "azimuth_deg") b.azimuth_deg = num();
        else if (key == "rise_s") b.rise_s = num();
        else if (key == "decay_s") b.decay_s = num();
        else if (key == "e_peak_mev") b.e_peak_mev = num();
        else fail(where, line_no, "unknown key '" + key + "' in [burst]");
        break;
      }
      case Section::kFlareTrain: {
        FlareTrainSpec& f = cfg.flare_trains.back();
        if (key == "t_first") f.t_first = num();
        else if (key == "period_s") f.period_s = num();
        else if (key == "pulses") f.pulses = parse_count(value, what, 32);
        else if (key == "pulse_fluence") f.pulse_fluence = num();
        else if (key == "pulse_width_s") f.pulse_width_s = num();
        else if (key == "polar_deg") f.polar_deg = num();
        else if (key == "azimuth_deg") f.azimuth_deg = num();
        else if (key == "e_peak_mev") f.e_peak_mev = num();
        else
          fail(where, line_no, "unknown key '" + key + "' in [flare_train]");
        break;
      }
      case Section::kSurge: {
        SurgeSpec& s = cfg.surges.back();
        if (key == "t_start") s.t_start = num();
        else if (key == "t_end") s.t_end = num();
        else if (key == "factor") s.factor = num();
        else fail(where, line_no, "unknown key '" + key + "' in [surge]");
        break;
      }
      case Section::kOccultation: {
        OccultationSpec& o = cfg.occultations.back();
        if (key == "t_start") o.t_start = num();
        else if (key == "t_end") o.t_end = num();
        else
          fail(where, line_no, "unknown key '" + key + "' in [occultation]");
        break;
      }
      case Section::kNone:
        break;  // Unreachable: rejected above.
    }
  }

  // Semantic validation.  parse_double already guarantees every number
  // is finite, so range checks below complete the contract.
  if (cfg.name.empty()) fail(where, "[scenario] name is required");
  if (cfg.duration_s <= 0.0) fail(where, "duration_s must be positive");
  if (cfg.duration_s > 600.0)
    fail(where, "duration_s too large (max 600 s per scenario)");
  if (cfg.alert_radius_deg < 0.0)
    fail(where, "alert_radius_deg must be >= 0");
  if (cfg.pileup_latency_s < 0.0)
    fail(where, "pileup_latency_s must be >= 0");
  if (cfg.background_rate_scale <= 0.0)
    fail(where, "background rate_scale must be positive");
  if (cfg.bursts.empty())
    fail(where, "at least one [burst] section is required");

  // Each burst's emission window is 1 s of scenario time (the FRED
  // light-curve sampling window in ExposureSimulator::simulate_grb_only).
  constexpr double kEmissionWindowS = 1.0;
  for (std::size_t i = 0; i < cfg.bursts.size(); ++i) {
    const BurstSpec& b = cfg.bursts[i];
    const std::string tag = "[burst] #" + std::to_string(i + 1);
    if (b.fluence <= 0.0) fail(where, tag + ": fluence must be positive");
    if (b.t_start < 0.0) fail(where, tag + ": t_start must be >= 0");
    if (b.t_start + kEmissionWindowS > cfg.duration_s)
      fail(where, tag + ": emission window [t_start, t_start + 1 s) "
                         "extends past duration_s");
    if (b.polar_deg < 0.0 || b.polar_deg > 90.0)
      fail(where, tag + ": polar_deg must be in [0, 90]");
    if (b.rise_s <= 0.0 || b.decay_s <= 0.0)
      fail(where, tag + ": rise_s and decay_s must be positive");
    if (b.e_peak_mev <= 0.0)
      fail(where, tag + ": e_peak_mev must be positive");
  }
  for (std::size_t i = 0; i < cfg.flare_trains.size(); ++i) {
    const FlareTrainSpec& f = cfg.flare_trains[i];
    const std::string tag = "[flare_train] #" + std::to_string(i + 1);
    if (f.pulse_fluence <= 0.0)
      fail(where, tag + ": pulse_fluence must be positive");
    if (f.period_s <= 0.0) fail(where, tag + ": period_s must be positive");
    if (f.pulse_width_s <= 0.0)
      fail(where, tag + ": pulse_width_s must be positive");
    if (f.t_first < 0.0) fail(where, tag + ": t_first must be >= 0");
    const double last_start =
        f.t_first + static_cast<double>(f.pulses - 1) * f.period_s;
    if (last_start + kEmissionWindowS > cfg.duration_s)
      fail(where, tag + ": last pulse extends past duration_s");
    if (f.polar_deg < 0.0 || f.polar_deg > 90.0)
      fail(where, tag + ": polar_deg must be in [0, 90]");
    if (f.e_peak_mev <= 0.0)
      fail(where, tag + ": e_peak_mev must be positive");
  }
  for (std::size_t i = 0; i < cfg.surges.size(); ++i) {
    const SurgeSpec& s = cfg.surges[i];
    const std::string tag = "[surge] #" + std::to_string(i + 1);
    if (s.t_end <= s.t_start)
      fail(where, tag + ": window inverted (t_end must be > t_start)");
    if (s.t_start < 0.0 || s.t_end > cfg.duration_s)
      fail(where, tag + ": window must lie inside [0, duration_s]");
    if (s.factor < 1.0) fail(where, tag + ": factor must be >= 1");
    if (s.factor > 100.0) fail(where, tag + ": factor too large (max 100)");
  }
  for (std::size_t i = 0; i < cfg.occultations.size(); ++i) {
    const OccultationSpec& o = cfg.occultations[i];
    const std::string tag = "[occultation] #" + std::to_string(i + 1);
    if (o.t_end <= o.t_start)
      fail(where, tag + ": window inverted (t_end must be > t_start)");
    if (o.t_start < 0.0 || o.t_end > cfg.duration_s)
      fail(where, tag + ": window must lie inside [0, duration_s]");
  }
  return cfg;
}

ScenarioConfig load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw core::CliError("cannot read scenario config '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str(), path);
}

}  // namespace adapt::scenario
