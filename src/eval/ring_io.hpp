#pragma once

/// \file ring_io.hpp
/// Binary (de)serialization of truth-tagged Compton-ring datasets.
///
/// Generating training rings costs a full detector simulation pass;
/// the model provider caches the generated set on disk so retraining
/// with new hyperparameters (the common iteration) skips the
/// simulation.  The format is also the interchange surface for
/// offline analysis (adaptctl can dump it; any tool can mmap it).
///
/// Format (little-endian): magic "ADRG", version u32, count u64, then
/// per ring a fixed-size record, followed by the aligned polar/true-
/// source arrays.

#include <optional>
#include <string>
#include <string_view>

#include "eval/dataset_gen.hpp"

namespace adapt::eval {

/// Write a generated ring set.  Returns false on I/O failure.
bool save_rings(const GeneratedRings& rings, const std::string& path);

/// Read a ring set back.  Returns nullopt on missing/corrupt file.
/// The header count is validated against the real file size before any
/// allocation (a corrupt header cannot trigger a huge reserve), and
/// records with non-finite eta/d_eta/axis are skipped; rejections are
/// counted in the `eval.ring_files_rejected` /
/// `eval.ring_records_rejected.non_finite` telemetry counters.
std::optional<GeneratedRings> load_rings(const std::string& path);

/// Parse a serialized ring set from an in-memory buffer — the actual
/// parser behind load_rings, exposed so untrusted inputs can be
/// exercised without touching the filesystem (tests/fuzz).  Same
/// validation and telemetry as load_rings; never throws.
std::optional<GeneratedRings> load_rings_from_bytes(std::string_view bytes);

}  // namespace adapt::eval
