#include "eval/model_provider.hpp"

#include "eval/ring_io.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/cli.hpp"
#include "core/contract.hpp"
#include "core/stats.hpp"
#include "nn/activations.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "quant/fuse.hpp"
#include "quant/qat_io.hpp"
#include "quant/qat_linear.hpp"

namespace adapt::eval {

namespace fs = std::filesystem;

namespace {

/// True when `s` is empty or all whitespace (treated like unset: a
/// scale knob deliberately cleared with `VAR=` should fall back, not
/// abort the bench).
bool blank(const char* s) {
  for (; *s != '\0'; ++s)
    if (!std::isspace(static_cast<unsigned char>(*s))) return false;
  return true;
}

}  // namespace

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || blank(v)) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v, &end, 10);
  ADAPT_REQUIRE(end != v && blank(end) && errno != ERANGE,
                std::string(name) + "='" + v +
                    "' is not an integer — unset it or pass a positive "
                    "count");
  ADAPT_REQUIRE(parsed > 0, std::string(name) + "='" + v +
                                "' must be a positive count");
  return static_cast<std::size_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || blank(v)) return fallback;
  // Strict full-token parse (rejects trailing junk, inf, nan) shared
  // with the CLI layer; surfaced as the contract type env callers
  // already catch (std::invalid_argument).
  double parsed = 0.0;
  try {
    parsed = core::parse_double(v, name);
  } catch (const core::CliError& e) {
    throw core::ContractViolation(
        std::string(e.what()) + " — unset it or pass a positive value");
  }
  ADAPT_REQUIRE(parsed > 0.0, std::string(name) + "='" + v +
                                  "' must be positive");
  return parsed;
}

namespace {

/// Row subset of generated rings (keeps polar/true-source alignment).
GeneratedRings take(const GeneratedRings& data,
                    const std::vector<std::size_t>& rows) {
  GeneratedRings out;
  out.rings.reserve(rows.size());
  for (const std::size_t r : rows) {
    out.rings.push_back(data.rings[r]);
    out.polar_degs.push_back(data.polar_degs[r]);
    out.true_sources.push_back(data.true_sources[r]);
  }
  return out;
}

struct RingSplits {
  GeneratedRings train;
  GeneratedRings val;
  GeneratedRings test;
};

/// The paper's 80/20 train/test split with the training side further
/// split 80/20 into train/validation.
RingSplits split_rings(const GeneratedRings& data, core::Rng& rng) {
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_index(i));
    std::swap(order[i - 1], order[j]);
  }
  const std::size_t n = order.size();
  const std::size_t n_test = n / 5;
  const std::size_t n_val = (n - n_test) / 5;
  const std::size_t n_train = n - n_test - n_val;

  RingSplits s;
  s.train = take(data, {order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_train)});
  s.val = take(data, {order.begin() + static_cast<std::ptrdiff_t>(n_train),
                      order.begin() + static_cast<std::ptrdiff_t>(n_train + n_val)});
  s.test = take(data, {order.begin() + static_cast<std::ptrdiff_t>(n_train + n_val),
                       order.end()});
  return s;
}

/// Classification accuracy of a background net over generated rings,
/// using the per-ring (true) polar angles and dynamic thresholds.
double accuracy_of(pipeline::BackgroundNet& net, const GeneratedRings& data) {
  if (data.size() == 0) return 0.0;
  nn::Tensor features =
      net.uses_polar()
          ? pipeline::feature_matrix(data.rings,
                                     std::span<const double>(data.polar_degs))
          : pipeline::feature_matrix(data.rings, false, 0.0);
  const auto logits = net.logits_for_features(features);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double thr = net.thresholds().logit_threshold(data.polar_degs[i]);
    const bool predicted_bkg = static_cast<double>(logits[i]) >= thr;
    const bool is_bkg =
        data.rings[i].origin == detector::Origin::kBackground;
    if (predicted_bkg == is_bkg) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

/// Configuration signature baked into cached files; a mismatch forces
/// retraining so stale caches cannot poison experiments.
double config_signature(const ModelProviderConfig& cfg,
                        const TrialSetup& setup) {
  double sig = 17.0;
  sig = sig * 31.0 + static_cast<double>(cfg.dataset.rings_per_angle);
  sig = sig * 31.0 + static_cast<double>(cfg.dataset.seed % 100003);
  sig = sig * 31.0 + static_cast<double>(cfg.max_epochs);
  sig = sig * 31.0 + setup.grb.fluence * 1000.0;
  sig = sig * 31.0 + setup.background.photons_per_second;
  sig = sig * 31.0 + setup.geometry.tile_half_width;
  return sig;
}

}  // namespace

ModelProvider::ModelProvider(const TrialSetup& setup,
                             const ModelProviderConfig& config)
    : config_(config) {
  fs::create_directories(config_.cache_dir);
  const double sig = config_signature(config_, setup);
  const auto path = [&](const char* name) {
    return (fs::path(config_.cache_dir) / name).string();
  };

  const auto sig_ok = [&](const std::map<std::string, double>& meta) {
    const auto it = meta.find("config_sig");
    return it != meta.end() && std::abs(it->second - sig) < 0.5;
  };

  // Attempt a full cache load; any miss triggers a full retrain so the
  // model set stays internally consistent.
  bool loaded = true;
  do {
    auto bkg = nn::load_model(path("background.adnn"));
    auto bkg_np = nn::load_model(path("background_nopolar.adnn"));
    auto deta = nn::load_model(path("deta.adnn"));
    auto qat = quant::load_qat_model(path("background_qat.adqt"));
    if (!bkg || !bkg_np || !deta || !qat || !sig_ok(bkg->metadata) ||
        !sig_ok(bkg_np->metadata) || !sig_ok(deta->metadata) ||
        !sig_ok(qat->metadata)) {
      loaded = false;
      break;
    }
    background_ = std::make_unique<pipeline::BackgroundNet>(
        std::move(bkg->model), std::move(bkg->standardizer),
        pipeline::PolarThresholds::from_metadata(bkg->metadata), true);
    background_no_polar_ = std::make_unique<pipeline::BackgroundNet>(
        std::move(bkg_np->model), std::move(bkg_np->standardizer),
        pipeline::PolarThresholds::from_metadata(bkg_np->metadata), false);
    deta_calibration_ =
        deta->metadata.count("calibration") ? deta->metadata.at("calibration")
                                            : 1.0;
    deta_ = std::make_unique<pipeline::DEtaNet>(
        std::move(deta->model), std::move(deta->standardizer), true,
        config_.calibrate_deta ? deta_calibration_ : 1.0);

    background_int8_ = std::make_unique<pipeline::BackgroundNet>(
        quant::export_quantized(qat->model), qat->standardizer,
        pipeline::PolarThresholds::from_metadata(qat->metadata), true);
    for (std::size_t i = 0; i < qat->model.n_layers(); ++i) {
      if (auto* lin =
              dynamic_cast<quant::QatLinear*>(&qat->model.layer(i))) {
        quant::FusedLayer f;
        f.weight = lin->weight().value;
        f.bias = lin->bias().value.vec();
        fused_background_.push_back(std::move(f));
      } else if (dynamic_cast<nn::ReLU*>(&qat->model.layer(i)) != nullptr &&
                 !fused_background_.empty()) {
        fused_background_.back().relu = true;
      }
    }
  } while (false);
  if (loaded) return;

  train_all(setup);

  // Populate the cache (best effort — experiments proceed regardless).
  std::map<std::string, double> extra{{"config_sig", sig}};
  {
    auto meta = background_->thresholds().to_metadata();
    meta.insert(extra.begin(), extra.end());
    meta["uses_polar"] = 1.0;
    nn::save_model(*background_->fp32_model(), background_->standardizer(),
                   meta, path("background.adnn"));
  }
  {
    auto meta = background_no_polar_->thresholds().to_metadata();
    meta.insert(extra.begin(), extra.end());
    meta["uses_polar"] = 0.0;
    nn::save_model(*background_no_polar_->fp32_model(),
                   background_no_polar_->standardizer(), meta,
                   path("background_nopolar.adnn"));
  }
  {
    std::map<std::string, double> meta = extra;
    meta["uses_polar"] = 1.0;
    meta["calibration"] = deta_calibration_;
    nn::save_model(*deta_->model(), deta_->standardizer(), meta,
                   path("deta.adnn"));
  }
  // The QAT model was already saved by train_all (it owns the stack).
}

void ModelProvider::train_all(const TrialSetup& setup) {
  core::Rng rng(config_.seed);

  // --- Data ---------------------------------------------------------
  // Generated rings are themselves cached: re-training with new
  // hyperparameters (the common iteration) skips the simulation pass.
  const std::string rings_path =
      (fs::path(config_.cache_dir) /
       ("training_rings_" +
        std::to_string(static_cast<long long>(
            config_signature(config_, setup))) +
        ".adrg"))
          .string();
  GeneratedRings data;
  if (auto cached = load_rings(rings_path);
      cached && cached->size() == config_.dataset.rings_per_angle *
                                      config_.dataset.polar_angles_deg.size()) {
    data = std::move(*cached);
  } else {
    data = generate_training_rings(setup, config_.dataset);
    save_rings(data, rings_path);
  }
  core::Rng split_rng = rng.split();
  const RingSplits splits = split_rings(data, split_rng);

  const auto standardized = [](nn::Dataset ds, const nn::Standardizer& s) {
    s.transform_in_place(ds.x);
    return ds;
  };

  // --- Background network (paper hyperparameters) --------------------
  const auto train_background =
      [&](bool include_polar) -> std::unique_ptr<pipeline::BackgroundNet> {
    nn::Dataset train_raw = make_background_dataset(splits.train, include_polar);
    nn::Dataset val_raw = make_background_dataset(splits.val, include_polar);
    nn::Standardizer std_;
    std_.fit(train_raw.x);
    nn::Dataset train = standardized(std::move(train_raw), std_);
    nn::Dataset val = standardized(std::move(val_raw), std_);

    core::Rng net_rng = rng.split();
    nn::Sequential model = nn::build_mlp(
        nn::background_net_spec(train.x.cols(), /*swap_bn_fc=*/false),
        net_rng);
    // Paper hyperparameters are batch 4096 / lr 5.204e-4, tuned for
    // ~1M training rings; at the reduced dataset sizes this
    // environment trains on, batch 4096 yields too few optimizer steps
    // per epoch, so the batch shrinks with the dataset (and the paper
    // values are recovered automatically at full scale).
    nn::TrainConfig tc;
    tc.batch_size =
        std::clamp<std::size_t>(train.size() / 32, 128, 4096);
    tc.max_epochs = config_.max_epochs;
    tc.patience = config_.patience;
    tc.sgd.learning_rate =
        tc.batch_size >= 4096 ? 5.204e-4 : 3e-3;
    tc.sgd.momentum = 0.9;
    tc.verbose = config_.verbose;
    nn::Trainer trainer(model, nn::bce_with_logits, tc);
    core::Rng fit_rng = rng.split();
    trainer.fit(train, val, fit_rng);

    // Per-polar-bin thresholds minimizing training error (paper
    // Sec. III).
    auto net = std::make_unique<pipeline::BackgroundNet>(
        std::move(model), std_, pipeline::PolarThresholds{}, include_polar);
    nn::Tensor full_features =
        include_polar
            ? pipeline::feature_matrix(
                  splits.train.rings,
                  std::span<const double>(splits.train.polar_degs))
            : pipeline::feature_matrix(splits.train.rings, false, 0.0);
    const auto logits = net->logits_for_features(full_features);
    std::vector<float> labels;
    labels.reserve(splits.train.size());
    for (const auto& ring : splits.train.rings)
      labels.push_back(pipeline::background_label(ring));
    pipeline::PolarThresholds thresholds;
    thresholds.fit(logits, labels, splits.train.polar_degs);

    // Rebuild with fitted thresholds (wrapper state is immutable).
    auto* fp32 = net->fp32_model();
    return std::make_unique<pipeline::BackgroundNet>(
        std::move(*fp32), net->standardizer(), thresholds, include_polar);
  };

  background_ = train_background(true);
  background_no_polar_ = train_background(false);
  background_accuracy_ = accuracy_of(*background_, splits.test);

  // --- dEta network ---------------------------------------------------
  {
    nn::Dataset train_raw = make_deta_dataset(splits.train, true);
    nn::Dataset val_raw = make_deta_dataset(splits.val, true);
    nn::Standardizer std_;
    std_.fit(train_raw.x);
    nn::Dataset train = standardized(std::move(train_raw), std_);
    nn::Dataset val = standardized(std::move(val_raw), std_);

    core::Rng net_rng = rng.split();
    nn::Sequential model =
        nn::build_mlp(nn::deta_net_spec(train.x.cols()), net_rng);
    nn::TrainConfig tc;
    tc.batch_size = 256;  // Paper.
    tc.max_epochs = config_.max_epochs;
    tc.patience = config_.patience;
    tc.sgd.learning_rate = 4.375e-3;  // Paper.
    tc.sgd.momentum = 0.9;
    tc.verbose = config_.verbose;
    nn::Trainer trainer(model, nn::mse, tc);
    core::Rng fit_rng = rng.split();
    trainer.fit(train, val, fit_rng);

    nn::Dataset test =
        standardized(make_deta_dataset(splits.test, true), std_);
    deta_mse_ = trainer.evaluate(test);

    // Coverage calibration on validation rings: scale the predicted
    // width so that 68% of GRB rings fall within one predicted d_eta
    // of their true error (the statistically honest width).
    double calibration = 1.0;
    {
      pipeline::DEtaNet raw(std::move(model), std_, true);
      std::vector<recon::ComptonRing> val_grb;
      std::vector<core::Vec3> val_sources;
      std::vector<double> val_polars;
      for (std::size_t i = 0; i < splits.val.size(); ++i) {
        if (splits.val.rings[i].origin != detector::Origin::kGrb) continue;
        val_grb.push_back(splits.val.rings[i]);
        val_sources.push_back(splits.val.true_sources[i]);
        val_polars.push_back(splits.val.polar_degs[i]);
      }
      if (val_grb.size() >= 32) {
        std::vector<double> ratios;
        ratios.reserve(val_grb.size());
        // Predict per true polar angle (training-time convention).
        for (std::size_t i = 0; i < val_grb.size(); ++i) {
          const auto pred = raw.predict({&val_grb[i], 1}, val_polars[i],
                                        1e-6, 10.0);
          const double err = std::abs(val_grb[i].eta_error(val_sources[i]));
          ratios.push_back(err / std::max(pred[0], 1e-6));
        }
        calibration = std::max(core::quantile(std::move(ratios), 0.68), 0.1);
      }
      // The deployed network applies the calibration only when asked
      // (see ModelProviderConfig::calibrate_deta); the factor is
      // always persisted in the cache metadata.
      deta_calibration_ = calibration;
      deta_ = std::make_unique<pipeline::DEtaNet>(
          std::move(*raw.model()), std_, true,
          config_.calibrate_deta ? calibration : 1.0);
    }
  }

  // --- Layer-swapped background net -> QAT -> INT8 --------------------
  {
    nn::Dataset train_raw = make_background_dataset(splits.train, true);
    nn::Dataset val_raw = make_background_dataset(splits.val, true);
    nn::Standardizer std_;
    std_.fit(train_raw.x);
    nn::Dataset train = standardized(std::move(train_raw), std_);
    nn::Dataset val = standardized(std::move(val_raw), std_);

    core::Rng net_rng = rng.split();
    nn::Sequential swapped = nn::build_mlp(
        nn::background_net_spec(train.x.cols(), /*swap_bn_fc=*/true),
        net_rng);
    nn::TrainConfig tc;
    tc.batch_size =
        std::clamp<std::size_t>(train.size() / 32, 128, 4096);
    tc.max_epochs = config_.max_epochs;
    tc.patience = config_.patience;
    tc.sgd.learning_rate =
        tc.batch_size >= 4096 ? 5.204e-4 : 3e-3;
    tc.sgd.momentum = 0.9;
    tc.verbose = config_.verbose;
    {
      nn::Trainer trainer(swapped, nn::bce_with_logits, tc);
      core::Rng fit_rng = rng.split();
      trainer.fit(train, val, fit_rng);
    }

    fused_background_ = quant::fuse_bn(swapped);
    core::Rng qat_rng = rng.split();
    nn::Sequential qat = quant::build_qat_model(fused_background_, qat_rng);

    // Calibrate the activation observers with a few training batches,
    // then fine-tune briefly (quantization-aware training).
    {
      core::Rng cal_rng = rng.split();
      nn::DataLoader cal(train, 1024, cal_rng);
      nn::Tensor xb;
      std::vector<float> yb;
      int batches = 0;
      while (cal.next(xb, yb) && batches++ < 8) {
        (void)qat.forward(xb, /*training=*/true);
      }
      qat.zero_grad();
    }
    if (config_.qat_epochs > 0) {
      nn::TrainConfig qtc = tc;
      qtc.max_epochs = config_.qat_epochs;
      qtc.patience = config_.qat_epochs;
      qtc.sgd.learning_rate = tc.sgd.learning_rate * 0.1;
      nn::Trainer trainer(qat, nn::bce_with_logits, qtc);
      core::Rng fit_rng = rng.split();
      trainer.fit(train, val, fit_rng);
    }

    // Thresholds fitted on the quantized logits.
    quant::QuantizedMlp engine = quant::export_quantized(qat);
    auto tmp_net = std::make_unique<pipeline::BackgroundNet>(
        std::move(engine), std_, pipeline::PolarThresholds{}, true);
    nn::Tensor full_features = pipeline::feature_matrix(
        splits.train.rings, std::span<const double>(splits.train.polar_degs));
    const auto logits = tmp_net->logits_for_features(full_features);
    std::vector<float> labels;
    labels.reserve(splits.train.size());
    for (const auto& ring : splits.train.rings)
      labels.push_back(pipeline::background_label(ring));
    pipeline::PolarThresholds thresholds;
    thresholds.fit(logits, labels, splits.train.polar_degs);

    background_int8_ = std::make_unique<pipeline::BackgroundNet>(
        quant::export_quantized(qat), std_, thresholds, true);

    auto meta = thresholds.to_metadata();
    meta["config_sig"] = config_signature(config_, setup);
    meta["uses_polar"] = 1.0;
    quant::save_qat_model(
        qat, std_, meta,
        (fs::path(config_.cache_dir) / "background_qat.adqt").string());
  }
}

}  // namespace adapt::eval
