#pragma once

/// \file trial.hpp
/// One localization trial = one simulated burst window pushed through
/// the full pipeline (simulate -> read out -> reconstruct -> localize)
/// with the angular error against ground truth as the outcome.  Every
/// localization figure in the paper is containment statistics over
/// many such trials.
///
/// The variant flags cover every pipeline configuration the paper
/// evaluates, including the Fig. 4 oracles (perfect background
/// removal; true d_eta values), which only a simulation can provide.

#include <optional>

#include "core/rng.hpp"
#include "core/telemetry.hpp"
#include "detector/geometry.hpp"
#include "detector/material.hpp"
#include "detector/readout.hpp"
#include "pipeline/ml_localizer.hpp"
#include "recon/event_reconstruction.hpp"
#include "sim/exposure.hpp"

namespace adapt::eval {

/// Which pipeline to run on the reconstructed rings.
struct PipelineVariant {
  pipeline::BackgroundNet* background_net = nullptr;  ///< Null = no ML
                                                      ///< rejection.
  pipeline::DEtaNet* deta_net = nullptr;  ///< Null = propagated d_eta.
  bool oracle_remove_background = false;  ///< Fig. 4 middle bars.
  bool oracle_true_deta = false;          ///< Fig. 4 right bars.

  /// d_eta bounds applied when oracle_true_deta substitutes truth.
  double deta_floor = 1e-4;
  double deta_cap = 2.0;
};

/// The full instrument + workload configuration of a trial.
struct TrialSetup {
  detector::GeometryConfig geometry;
  detector::Material material = detector::Material::csi();
  detector::ReadoutConfig readout;   ///< perturbation_percent => Fig. 10.
  recon::ReconstructionConfig reconstruction;
  pipeline::MlLocalizerConfig ml_localizer;
  sim::GrbConfig grb;
  sim::BackgroundConfig background;
  sim::PileupConfig pileup;        ///< Detection-latency pileup (the
                                   ///< paper's future-work extension).
  bool include_background = true;  ///< False for GRB-only studies.
};

struct TrialOutcome {
  bool valid = false;
  double error_deg = 0.0;      ///< Angle between truth and estimate.
  std::size_t rings_total = 0;
  std::size_t rings_grb = 0;
  std::size_t rings_background = 0;
  std::size_t rings_kept = 0;  ///< After ML/oracle rejection.
  int background_iterations = 0;
  pipeline::StageTimings timings;
};

/// Runs trials against a fixed instrument configuration.  The heavy
/// per-trial state (geometry, transport, reconstructor) is built once.
class TrialRunner {
 public:
  explicit TrialRunner(const TrialSetup& setup);

  /// One full trial.  `rng` drives everything stochastic, so a fixed
  /// seed reproduces the trial exactly.
  TrialOutcome run(const PipelineVariant& variant, core::Rng& rng) const;

  /// Simulate + reconstruct only; returns the rings with truth tags
  /// (used by dataset generation and by diagnostics).
  std::vector<recon::ComptonRing> reconstruct_window(
      core::Rng& rng, core::Vec3* true_source = nullptr) const;

  const TrialSetup& setup() const { return setup_; }

 private:
  TrialSetup setup_;
  detector::Geometry geometry_;
  sim::ExposureSimulator simulator_;
  recon::EventReconstructor reconstructor_;
  pipeline::MlLocalizer ml_localizer_;
};

/// Deterministic trial batch: trial t draws from its own
/// core::Rng(base_seed + t) stream and writes outcome slot t, so the
/// result vector is bit-identical whether the batch runs serially or
/// across cores (`parallel = false` forces the serial path — the
/// reference the parallel path is tested against).  Every bench sweep
/// and the containment protocol run their independent trials through
/// this harness.
///
/// When `telemetry_delta` is non-null (and telemetry is enabled) it
/// receives the metrics accumulated by this batch — snapshotted around
/// the run, so concurrent batches should not share the registry.
/// Counter and histogram-bin totals in the delta are schedule-
/// independent: parallel and serial runs of the same seeds agree
/// exactly.
std::vector<TrialOutcome> run_trials(
    const TrialRunner& runner, const PipelineVariant& variant,
    std::uint64_t base_seed, std::size_t count, bool parallel = true,
    core::telemetry::Snapshot* telemetry_delta = nullptr);

}  // namespace adapt::eval
