#include "eval/trial.hpp"

#include <algorithm>
#include <cmath>

#include "core/parallel.hpp"
#include "core/require.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"

namespace adapt::eval {

namespace tm = core::telemetry;

TrialRunner::TrialRunner(const TrialSetup& setup)
    : setup_(setup),
      geometry_(setup.geometry),
      simulator_(geometry_, setup.material, setup.readout),
      reconstructor_(setup.material, setup.reconstruction),
      ml_localizer_(setup.ml_localizer) {}

std::vector<recon::ComptonRing> TrialRunner::reconstruct_window(
    core::Rng& rng, core::Vec3* true_source) const {
  const sim::Exposure exposure =
      setup_.include_background
          ? simulator_.simulate(setup_.grb, setup_.background, rng,
                                setup_.pileup)
          : simulator_.simulate_grb_only(setup_.grb, rng);
  if (true_source) *true_source = exposure.true_source_direction;
  return reconstructor_.reconstruct_all(exposure.events);
}

TrialOutcome TrialRunner::run(const PipelineVariant& variant,
                              core::Rng& rng) const {
  static tm::Counter& trials_run = tm::counter("eval.trials_run");
  static tm::Counter& trials_valid = tm::counter("eval.trials_valid");
  static tm::Histogram& recon_ms = tm::histogram("recon.window_ms");
  static tm::Histogram& trial_total_ms = tm::histogram("eval.trial_total_ms");
  TrialOutcome outcome;
  trials_run.add();

  // Simulation is the stand-in for the detector and is NOT part of the
  // flight pipeline's budget; only event reconstruction is timed (the
  // paper's "Reconstruction" row).
  const sim::Exposure exposure =
      setup_.include_background
          ? simulator_.simulate(setup_.grb, setup_.background, rng,
                                setup_.pileup)
          : simulator_.simulate_grb_only(setup_.grb, rng);
  const core::Vec3 true_source = exposure.true_source_direction;

  std::vector<recon::ComptonRing> rings;
  {
    const tm::ScopedTimer t(recon_ms, &outcome.timings.reconstruction_ms);
    rings = reconstructor_.reconstruct_all(exposure.events);
  }

  outcome.rings_total = rings.size();
  for (const auto& r : rings) {
    if (r.origin == detector::Origin::kGrb)
      ++outcome.rings_grb;
    else
      ++outcome.rings_background;
  }

  // Oracle interventions (Fig. 4): these are measurement upper bounds,
  // usable only because the simulation knows the truth.
  if (variant.oracle_remove_background) {
    std::erase_if(rings, [](const recon::ComptonRing& r) {
      return r.origin == detector::Origin::kBackground;
    });
  }
  if (variant.oracle_true_deta) {
    for (auto& r : rings) {
      r.d_eta = std::clamp(std::abs(r.eta_error(true_source)),
                           variant.deta_floor, variant.deta_cap);
    }
  }

  const pipeline::MlLocalizationResult result =
      ml_localizer_.run(rings, variant.background_net, variant.deta_net, rng,
                        &outcome.timings);
  outcome.rings_kept = result.rings_kept;
  outcome.background_iterations = result.background_iterations;
  if (!result.valid) return outcome;

  outcome.valid = true;
  trials_valid.add();
  outcome.error_deg = core::rad_to_deg(
      core::angle_between(result.direction, true_source));
  outcome.timings.total_ms += outcome.timings.reconstruction_ms;
  trial_total_ms.record(outcome.timings.total_ms);
  return outcome;
}

std::vector<TrialOutcome> run_trials(const TrialRunner& runner,
                                     const PipelineVariant& variant,
                                     std::uint64_t base_seed,
                                     std::size_t count, bool parallel,
                                     tm::Snapshot* telemetry_delta) {
  // Telemetry increments are commutative sums of per-trial work, and
  // each trial's work is fixed by its seed — so the delta's counter
  // and bin totals are identical for the serial and parallel paths.
  const tm::Snapshot before =
      telemetry_delta ? tm::snapshot() : tm::Snapshot{};
  std::vector<TrialOutcome> outcomes(count);
  const auto one = [&](std::size_t t) {
    core::Rng rng(base_seed + static_cast<std::uint64_t>(t));
    outcomes[t] = runner.run(variant, rng);
  };
  if (parallel) {
    core::parallel_for(count, one);
  } else {
    for (std::size_t t = 0; t < count; ++t) one(t);
  }
  if (telemetry_delta) *telemetry_delta = tm::snapshot().since(before);
  return outcomes;
}

}  // namespace adapt::eval
