#pragma once

/// \file containment.hpp
/// Containment-statistics harness: N localization trials per
/// meta-trial, M meta-trials for error bars — the measurement protocol
/// behind every accuracy figure in the paper (Sec. II: "68% and 95%
/// containment ... error bars are over ten meta-trials").

#include <vector>

#include "core/stats.hpp"
#include "eval/trial.hpp"

namespace adapt::eval {

struct ContainmentConfig {
  std::size_t trials = 100;       ///< Paper: 1000.
  std::size_t meta_trials = 3;    ///< Paper: 10.
  std::uint64_t seed = 0x5eed;    ///< Base seed; each trial derives an
                                  ///< independent stream.
};

/// Containment with meta-trial error bars.
struct ContainmentSummary {
  core::MeanStd c68;  ///< Mean/σ of the 68% containment [deg].
  core::MeanStd c95;  ///< Mean/σ of the 95% containment [deg].
  std::vector<core::Containment> per_meta;
  std::size_t failed_trials = 0;  ///< Trials with no valid estimate;
                                  ///< they count as 180 deg error.
  double mean_rings_total = 0.0;
  double mean_rings_grb = 0.0;
  double mean_rings_background = 0.0;
};

/// Run the protocol for one pipeline variant.
ContainmentSummary measure_containment(const TrialRunner& runner,
                                       const PipelineVariant& variant,
                                       const ContainmentConfig& config);

}  // namespace adapt::eval
