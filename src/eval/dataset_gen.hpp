#pragma once

/// \file dataset_gen.hpp
/// Training-set generation (paper Sec. III, Model Training).
///
/// The paper simulates GRB photons evenly over nine polar angles
/// (0..80 degrees in 10-degree steps) plus background particles, runs
/// them through the detector model and reconstruction, and keeps only
/// rings the pre-localization filters accept.  We reproduce that
/// protocol at configurable scale: the result is a set of truth-tagged
/// Compton rings, each with the polar angle of the burst it was
/// simulated with (the training-time stand-in for the pipeline's
/// runtime polar guess) and the burst's true source direction (for the
/// dEta regression target).

#include <vector>

#include "core/rng.hpp"
#include "core/vec3.hpp"
#include "eval/trial.hpp"
#include "nn/data.hpp"
#include "recon/ring.hpp"

namespace adapt::eval {

struct GeneratedRings {
  std::vector<recon::ComptonRing> rings;
  std::vector<double> polar_degs;      ///< Per ring: its burst's angle.
  std::vector<core::Vec3> true_sources;  ///< Per ring: burst direction.

  std::size_t size() const { return rings.size(); }
  std::size_t count_background() const;
};

struct DatasetGenConfig {
  std::vector<double> polar_angles_deg = {0,  10, 20, 30, 40,
                                          50, 60, 70, 80};
  std::size_t rings_per_angle = 5000;  ///< Collected per polar angle.
                                       ///< (Paper scale is ~110k; see
                                       ///< ADAPT_TRAIN_RINGS.)
  std::uint64_t seed = 0xda7a;
};

/// Simulate burst windows (GRB + background) at each polar angle until
/// the per-angle ring quota is met.
GeneratedRings generate_training_rings(const TrialSetup& setup,
                                       const DatasetGenConfig& config);

/// Assemble supervised datasets from generated rings.
///   * Background classification: all rings, label 1 = background.
///   * dEta regression: GRB rings only (the paper removes background
///     rings from the dEta training set), target ln(true eta error).
nn::Dataset make_background_dataset(const GeneratedRings& data,
                                    bool include_polar);
nn::Dataset make_deta_dataset(const GeneratedRings& data, bool include_polar,
                              double floor = 1e-4, double cap = 2.0);

/// Per-ring polar angles subset helper used by threshold fitting: the
/// polar guesses of the rows in a background dataset (same order as
/// make_background_dataset emits them).
std::vector<double> background_dataset_polars(const GeneratedRings& data);

}  // namespace adapt::eval
