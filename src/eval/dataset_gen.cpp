#include "eval/dataset_gen.hpp"

#include "core/require.hpp"
#include "pipeline/features.hpp"

namespace adapt::eval {

std::size_t GeneratedRings::count_background() const {
  std::size_t n = 0;
  for (const auto& r : rings)
    if (r.origin == detector::Origin::kBackground) ++n;
  return n;
}

GeneratedRings generate_training_rings(const TrialSetup& setup,
                                       const DatasetGenConfig& config) {
  ADAPT_REQUIRE(!config.polar_angles_deg.empty(), "no polar angles");
  ADAPT_REQUIRE(config.rings_per_angle >= 1, "ring quota must be >= 1");

  GeneratedRings out;
  out.rings.reserve(config.polar_angles_deg.size() * config.rings_per_angle);

  core::Rng master(config.seed);
  for (const double angle : config.polar_angles_deg) {
    TrialSetup angle_setup = setup;
    angle_setup.grb.polar_deg = angle;
    const TrialRunner runner(angle_setup);
    core::Rng rng = master.split();

    std::size_t collected = 0;
    // Cap the number of windows so a mis-calibrated configuration
    // cannot loop forever (e.g. zero-fluence bursts).
    const std::size_t max_windows = 64 + 4 * config.rings_per_angle;
    for (std::size_t window = 0;
         collected < config.rings_per_angle && window < max_windows;
         ++window) {
      core::Vec3 true_source;
      std::vector<recon::ComptonRing> rings =
          runner.reconstruct_window(rng, &true_source);
      // Shuffle within the window: reconstruction emits GRB rings
      // before background rings, and the quota may truncate the last
      // window — collecting in order would bias the class mix.
      for (std::size_t i = rings.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.uniform_index(i));
        std::swap(rings[i - 1], rings[j]);
      }
      for (auto& ring : rings) {
        out.rings.push_back(std::move(ring));
        out.polar_degs.push_back(angle);
        out.true_sources.push_back(true_source);
        ++collected;
        if (collected >= config.rings_per_angle) break;
      }
    }
    ADAPT_REQUIRE(collected > 0,
                  "no rings collected — instrument configuration yields no "
                  "reconstructable events");
  }
  return out;
}

nn::Dataset make_background_dataset(const GeneratedRings& data,
                                    bool include_polar) {
  ADAPT_REQUIRE(data.rings.size() == data.polar_degs.size(),
                "generated rings inconsistent");
  nn::Dataset ds;
  if (include_polar) {
    ds.x = pipeline::feature_matrix(
        data.rings, std::span<const double>(data.polar_degs));
  } else {
    ds.x = pipeline::feature_matrix(data.rings, false, 0.0);
  }
  ds.y.reserve(data.rings.size());
  for (const auto& ring : data.rings)
    ds.y.push_back(pipeline::background_label(ring));
  return ds;
}

nn::Dataset make_deta_dataset(const GeneratedRings& data, bool include_polar,
                              double floor, double cap) {
  ADAPT_REQUIRE(data.rings.size() == data.true_sources.size(),
                "generated rings inconsistent");
  // GRB rings only.
  std::vector<recon::ComptonRing> grb_rings;
  std::vector<double> polars;
  std::vector<float> targets;
  for (std::size_t i = 0; i < data.rings.size(); ++i) {
    if (data.rings[i].origin != detector::Origin::kGrb) continue;
    grb_rings.push_back(data.rings[i]);
    polars.push_back(data.polar_degs[i]);
    targets.push_back(pipeline::deta_target(data.rings[i],
                                            data.true_sources[i], floor, cap));
  }
  ADAPT_REQUIRE(!grb_rings.empty(), "no GRB rings for dEta training");

  nn::Dataset ds;
  if (include_polar) {
    ds.x = pipeline::feature_matrix(grb_rings,
                                    std::span<const double>(polars));
  } else {
    ds.x = pipeline::feature_matrix(grb_rings, false, 0.0);
  }
  ds.y = std::move(targets);
  return ds;
}

std::vector<double> background_dataset_polars(const GeneratedRings& data) {
  return data.polar_degs;
}

}  // namespace adapt::eval
