#include "eval/reject_gate.hpp"

#include <string_view>

#include "core/contract.hpp"

namespace adapt::eval {

RejectGateResult evaluate_reject_gate(
    const core::telemetry::Snapshot& snapshot, double max_reject_frac) {
  ADAPT_REQUIRE(max_reject_frac >= 0.0 && max_reject_frac <= 1.0,
                "max reject fraction must be in [0, 1]");
  RejectGateResult result;
  constexpr std::string_view kRejectedPrefix = "eval.ring_records_rejected.";
  for (const auto& [name, value] : snapshot.counters) {
    if (std::string_view(name).substr(0, kRejectedPrefix.size()) ==
        kRejectedPrefix) {
      result.rejected += value;
    } else if (name == "eval.rings_loaded") {
      result.loaded += value;
    }
  }
  const std::uint64_t total = result.rejected + result.loaded;
  if (total == 0) return result;
  result.fraction =
      static_cast<double>(result.rejected) / static_cast<double>(total);
  result.breached = result.fraction > max_reject_frac;
  return result;
}

}  // namespace adapt::eval
