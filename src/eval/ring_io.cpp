#include "eval/ring_io.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/telemetry.hpp"

namespace adapt::eval {

namespace tm = core::telemetry;

namespace {

constexpr char kMagic[4] = {'A', 'D', 'R', 'G'};
constexpr std::uint32_t kVersion = 1;

/// Fixed-size on-disk ring record.  Plain doubles, no padding games:
/// the struct is only used through explicit field copies.
struct RingRecord {
  double axis[3];
  double eta;
  double d_eta;
  double e_total;
  double sigma_e_total;
  double hit1_pos[3];
  double hit1_energy;
  double hit1_sigma_pos[3];
  double hit1_sigma_energy;
  double hit2_pos[3];
  double hit2_energy;
  double hit2_sigma_pos[3];
  double hit2_sigma_energy;
  double order_chi2;
  double true_direction[3];
  double polar_deg;
  double true_source[3];
  std::int32_t n_hits;
  std::int32_t origin;
};

void pack_vec(double out[3], const core::Vec3& v) {
  out[0] = v.x;
  out[1] = v.y;
  out[2] = v.z;
}

core::Vec3 unpack_vec(const double in[3]) { return {in[0], in[1], in[2]}; }

/// A record whose likelihood-critical fields are NaN/inf would poison
/// any consumer (training features, localization residuals); such
/// records are skipped on load and counted.
bool record_usable(const RingRecord& rec) {
  return std::isfinite(rec.eta) && std::isfinite(rec.d_eta) &&
         std::isfinite(rec.axis[0]) && std::isfinite(rec.axis[1]) &&
         std::isfinite(rec.axis[2]);
}

/// Shared parser behind the path and bytes entry points (defined after
/// them; the stream abstracts over ifstream and istringstream).
std::optional<GeneratedRings> load_rings_from_stream(std::istream& is);

}  // namespace

bool save_rings(const GeneratedRings& rings, const std::string& path) {
  if (rings.polar_degs.size() != rings.size() ||
      rings.true_sources.size() != rings.size()) {
    return false;
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(kMagic, sizeof(kMagic));
  os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = rings.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));

  for (std::size_t i = 0; i < rings.size(); ++i) {
    const recon::ComptonRing& r = rings.rings[i];
    RingRecord rec{};
    pack_vec(rec.axis, r.axis);
    rec.eta = r.eta;
    rec.d_eta = r.d_eta;
    rec.e_total = r.e_total;
    rec.sigma_e_total = r.sigma_e_total;
    pack_vec(rec.hit1_pos, r.hit1.position);
    rec.hit1_energy = r.hit1.energy;
    pack_vec(rec.hit1_sigma_pos, r.hit1.sigma_position);
    rec.hit1_sigma_energy = r.hit1.sigma_energy;
    pack_vec(rec.hit2_pos, r.hit2.position);
    rec.hit2_energy = r.hit2.energy;
    pack_vec(rec.hit2_sigma_pos, r.hit2.sigma_position);
    rec.hit2_sigma_energy = r.hit2.sigma_energy;
    rec.order_chi2 = r.order_chi2;
    pack_vec(rec.true_direction, r.true_direction);
    rec.polar_deg = rings.polar_degs[i];
    pack_vec(rec.true_source, rings.true_sources[i]);
    rec.n_hits = r.n_hits;
    rec.origin = r.origin == detector::Origin::kBackground ? 1 : 0;
    os.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  }
  return static_cast<bool>(os);
}

std::optional<GeneratedRings> load_rings(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  return load_rings_from_stream(is);
}

std::optional<GeneratedRings> load_rings_from_bytes(std::string_view bytes) {
  std::istringstream is(std::string(bytes), std::ios::binary);
  return load_rings_from_stream(is);
}

namespace {

std::optional<GeneratedRings> load_rings_from_stream(std::istream& is) {
  static tm::Counter& files_rejected =
      tm::counter("eval.ring_files_rejected");
  static tm::Counter& records_rejected =
      tm::counter("eval.ring_records_rejected.non_finite");
  static tm::Counter& rings_loaded = tm::counter("eval.rings_loaded");

  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    files_rejected.add();
    return std::nullopt;
  }
  std::uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is || version != kVersion) {
    files_rejected.add();
    return std::nullopt;
  }
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is) {
    files_rejected.add();
    return std::nullopt;
  }

  // The header count is untrusted: validate it against the actual file
  // size BEFORE sizing any allocation.  A corrupt/truncated header can
  // otherwise claim up to 2^64 records and reserve() terabytes ahead
  // of the first failed read.
  const std::istream::pos_type payload_start = is.tellg();
  is.seekg(0, std::ios::end);
  const std::istream::pos_type file_end = is.tellg();
  if (payload_start < 0 || file_end < payload_start) {
    files_rejected.add();
    return std::nullopt;
  }
  const std::uint64_t payload_bytes =
      static_cast<std::uint64_t>(file_end - payload_start);
  if (count > payload_bytes / sizeof(RingRecord)) {
    files_rejected.add();
    return std::nullopt;
  }
  is.seekg(payload_start);

  GeneratedRings out;
  out.rings.reserve(count);
  out.polar_degs.reserve(count);
  out.true_sources.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RingRecord rec;
    is.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (!is) {
      files_rejected.add();
      return std::nullopt;
    }
    if (!record_usable(rec)) {
      records_rejected.add();
      continue;
    }
    recon::ComptonRing r;
    r.axis = unpack_vec(rec.axis);
    r.eta = rec.eta;
    r.d_eta = rec.d_eta;
    r.e_total = rec.e_total;
    r.sigma_e_total = rec.sigma_e_total;
    r.hit1 = recon::RingHit{unpack_vec(rec.hit1_pos), rec.hit1_energy,
                            unpack_vec(rec.hit1_sigma_pos),
                            rec.hit1_sigma_energy};
    r.hit2 = recon::RingHit{unpack_vec(rec.hit2_pos), rec.hit2_energy,
                            unpack_vec(rec.hit2_sigma_pos),
                            rec.hit2_sigma_energy};
    r.order_chi2 = rec.order_chi2;
    r.true_direction = unpack_vec(rec.true_direction);
    r.n_hits = rec.n_hits;
    r.origin = rec.origin != 0 ? detector::Origin::kBackground
                               : detector::Origin::kGrb;
    out.rings.push_back(r);
    out.polar_degs.push_back(rec.polar_deg);
    out.true_sources.push_back(unpack_vec(rec.true_source));
  }
  rings_loaded.add(out.rings.size());
  return out;
}

}  // namespace

}  // namespace adapt::eval
