#pragma once

/// \file reject_gate.hpp
/// Exit-code gate on record-rejection telemetry.
///
/// The untrusted-input loaders (eval::ring_io, the model loaders) are
/// deliberately lenient: a corrupt record is skipped and counted, the
/// run continues.  That is right for a flight pipeline and wrong for a
/// scripted workflow — a dataset where *every* record was rejected
/// still exited 0, so CI jobs and calibration scripts silently ran on
/// empty inputs.  `adaptctl --max-reject-frac F` closes the gap: after
/// the command, the rejected fraction of ring records is compared
/// against F and a breach exits nonzero (exit code 3).

#include <cstdint>

#include "core/telemetry.hpp"

namespace adapt::eval {

struct RejectGateResult {
  std::uint64_t rejected = 0;  ///< Sum of eval.ring_records_rejected.*.
  std::uint64_t loaded = 0;    ///< eval.rings_loaded.
  double fraction = 0.0;       ///< rejected / (rejected + loaded); 0 when
                               ///< nothing was loaded at all.
  bool breached = false;       ///< fraction > max_reject_frac.
};

/// Evaluate the gate against a telemetry snapshot.  `max_reject_frac`
/// must be in [0, 1]: 0 tolerates no rejected record, 1 never breaches
/// (the legacy behavior).  A run that loaded nothing and rejected
/// nothing does not breach — the gate measures rejection, not absence
/// of input.
RejectGateResult evaluate_reject_gate(
    const core::telemetry::Snapshot& snapshot, double max_reject_frac);

}  // namespace adapt::eval
