#include "eval/containment.hpp"

#include "core/require.hpp"
#include "core/rng.hpp"

namespace adapt::eval {

ContainmentSummary measure_containment(const TrialRunner& runner,
                                       const PipelineVariant& variant,
                                       const ContainmentConfig& config) {
  ADAPT_REQUIRE(config.trials >= 1, "need at least one trial");
  ADAPT_REQUIRE(config.meta_trials >= 1, "need at least one meta-trial");

  ContainmentSummary summary;
  std::vector<double> c68s;
  std::vector<double> c95s;
  double sum_rings_total = 0.0;
  double sum_rings_grb = 0.0;
  double sum_rings_bkg = 0.0;
  std::size_t counted = 0;

  for (std::size_t meta = 0; meta < config.meta_trials; ++meta) {
    std::vector<double> errors(config.trials);
    // Each trial gets its own deterministic stream so results do not
    // depend on scheduling.
    const std::vector<TrialOutcome> outcomes = run_trials(
        runner, variant, config.seed + 1000003ULL * meta, config.trials);
    for (std::size_t t = 0; t < config.trials; ++t) {
      const TrialOutcome& o = outcomes[t];
      errors[t] = o.valid ? o.error_deg : 180.0;
      if (!o.valid) ++summary.failed_trials;
      sum_rings_total += static_cast<double>(o.rings_total);
      sum_rings_grb += static_cast<double>(o.rings_grb);
      sum_rings_bkg += static_cast<double>(o.rings_background);
      ++counted;
    }
    const core::Containment c = core::containment_68_95(std::move(errors));
    summary.per_meta.push_back(c);
    c68s.push_back(c.c68);
    c95s.push_back(c.c95);
  }

  summary.c68 = core::mean_std(c68s);
  summary.c95 = core::mean_std(c95s);
  if (counted > 0) {
    summary.mean_rings_total = sum_rings_total / static_cast<double>(counted);
    summary.mean_rings_grb = sum_rings_grb / static_cast<double>(counted);
    summary.mean_rings_background =
        sum_rings_bkg / static_cast<double>(counted);
  }
  return summary;
}

}  // namespace adapt::eval
