#pragma once

/// \file model_provider.hpp
/// Trains (or loads from an on-disk cache) every network variant the
/// experiments need:
///
///   * the background network (paper hyperparameters: batch 4096,
///     lr 5.204e-4, 4 FC layers, widths 256/128/64 tapering);
///   * the dEta network (batch 256, lr 4.375e-3, widths 8/16/8);
///   * a background network *without* the polar-angle feature
///     (Fig. 7's ablation);
///   * the layer-swapped background network and its QAT-calibrated
///     INT8 derivative (Sec. V / Fig. 11).
///
/// Training data come from the simulation per dataset_gen.hpp.  Every
/// bench shares one cache directory so the (single-core) training cost
/// is paid once; delete the directory to force retraining.

#include <memory>
#include <string>

#include "eval/dataset_gen.hpp"
#include "pipeline/models.hpp"
#include "quant/quantized_mlp.hpp"

namespace adapt::eval {

struct ModelProviderConfig {
  std::string cache_dir = "adaptml_models";
  DatasetGenConfig dataset;
  std::size_t max_epochs = 45;   ///< Paper: 120; reduced for the
                                 ///< single-core environment, override
                                 ///< with ADAPT_TRAIN_EPOCHS.
  std::size_t patience = 10;
  std::size_t qat_epochs = 4;    ///< QAT fine-tuning epochs.
  std::uint64_t seed = 0x7ea1;
  bool verbose = false;

  /// Apply the coverage calibration to the deployed dEta network.
  /// The calibration makes the quoted widths statistically honest
  /// (68% of rings within one width — what sky maps and credible radii
  /// need) but uniformly inflates them, which loosens the robust
  /// localizer's inlier cut and costs some containment; see
  /// bench_ablation_deta for the measured trade-off.  Off by default:
  /// the paper deploys the raw regression.
  bool calibrate_deta = false;
};

/// Owns the trained model set.  Wrappers hand out non-owning pointers
/// for PipelineVariant.
class ModelProvider {
 public:
  /// Build everything: load each artifact from cache when present,
  /// otherwise generate data, train, and populate the cache.  The
  /// instrument configuration must match the one used at evaluation
  /// time (`setup` is the template whose grb.polar_deg is swept).
  ModelProvider(const TrialSetup& setup, const ModelProviderConfig& config);

  pipeline::BackgroundNet& background_net() { return *background_; }
  pipeline::BackgroundNet& background_net_no_polar() {
    return *background_no_polar_;
  }
  pipeline::BackgroundNet& background_net_int8() { return *background_int8_; }
  pipeline::DEtaNet& deta_net() { return *deta_; }

  /// The fused layer stack of the (swapped) background net — input to
  /// the FPGA kernel model.
  const std::vector<quant::FusedLayer>& fused_background() const {
    return fused_background_;
  }

  /// Held-out test metrics gathered during training (0 when all
  /// models came from cache).
  double background_test_accuracy() const { return background_accuracy_; }
  double deta_test_mse() const { return deta_mse_; }

  /// Coverage-calibration factor fitted on validation (1.0 when the
  /// models came from a cache without one); applied to the deployed
  /// dEta net only when ModelProviderConfig::calibrate_deta is set.
  double deta_calibration() const { return deta_calibration_; }

 private:
  void train_all(const TrialSetup& setup);

  ModelProviderConfig config_;
  std::unique_ptr<pipeline::BackgroundNet> background_;
  std::unique_ptr<pipeline::BackgroundNet> background_no_polar_;
  std::unique_ptr<pipeline::BackgroundNet> background_int8_;
  std::unique_ptr<pipeline::DEtaNet> deta_;
  std::vector<quant::FusedLayer> fused_background_;
  double background_accuracy_ = 0.0;
  double deta_mse_ = 0.0;
  double deta_calibration_ = 1.0;
};

/// Environment-variable override helpers shared by the benches:
/// returns `fallback` when the variable is unset or blank, the parsed
/// value when it holds a positive number, and throws
/// std::invalid_argument on anything else (malformed text, trailing
/// garbage, zero/negative, out of range) — a mistyped scale knob must
/// not silently run a differently sized experiment.
std::size_t env_size(const char* name, std::size_t fallback);
double env_double(const char* name, double fallback);

}  // namespace adapt::eval
