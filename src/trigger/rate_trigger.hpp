#pragma once

/// \file rate_trigger.hpp
/// On-board burst detection: a multi-timescale Poisson rate trigger.
///
/// The paper's pipeline starts from a detected burst window;
/// upstream of it, ADAPT must first notice that a burst is happening.
/// This module implements the standard GRB-monitor approach (as flown
/// on Fermi-GBM and planned for APT): slide windows of several
/// timescales across the event-time stream, compare the count in each
/// window against the expected background count, and trigger when the
/// Poisson significance exceeds a threshold on any timescale.
///
/// The trigger feeds localization: its best window selects the events
/// handed to reconstruction (see examples/burst_alert.cpp for the full
/// alert chain).

#include <span>
#include <vector>

#include "detector/hit.hpp"

namespace adapt::trigger {

struct TriggerConfig {
  /// Window timescales to scan [s] (short-GRB regime).
  std::vector<double> window_sizes_s = {0.016, 0.032, 0.064, 0.128,
                                        0.256, 0.512};
  /// Window stride as a fraction of the window size.
  double stride_fraction = 0.25;
  /// Detection threshold [Gaussian sigma].
  double threshold_sigma = 5.0;
  /// Expected background *detected-event* rate [1/s].  On orbit this
  /// is estimated from pre-burst data; the simulation calibrates it
  /// from a background-only exposure.
  double background_rate_hz = 3000.0;
};

struct TriggerResult {
  bool triggered = false;
  double significance_sigma = 0.0;  ///< Best over all windows.
  double t_start = 0.0;             ///< Best window [s].
  double t_end = 0.0;
  std::size_t counts = 0;           ///< Events in the best window.
  double expected = 0.0;            ///< Background expectation there.
};

/// One merged over-threshold episode from scan_all(): the union of all
/// triggering windows (any timescale) that overlap each other, carrying
/// the most significant single window inside it.  A multi-burst or
/// hostile-sky exposure produces one interval per distinct rate excess
/// — the unit the scenario matrix scores purity/efficiency on.
struct TriggerInterval {
  double t_start = 0.0;             ///< Merged episode bounds [s].
  double t_end = 0.0;
  double significance_sigma = 0.0;  ///< Best window inside the episode.
  std::size_t counts = 0;           ///< Events in that best window.
  double expected = 0.0;            ///< Background expectation there.
};

class RateTrigger {
 public:
  explicit RateTrigger(const TriggerConfig& config = {});

  /// Scan sorted-or-unsorted event times over [0, exposure_s].
  TriggerResult scan(std::vector<double> event_times,
                     double exposure_s) const;

  /// Convenience overload extracting times from measured events.
  TriggerResult scan(std::span<const detector::MeasuredEvent> events,
                     double exposure_s) const;

  /// Every over-threshold episode in the exposure, not just the best
  /// one: all windows (all timescales) whose significance clears the
  /// threshold, merged when they overlap, ordered by start time.
  /// Non-finite timestamps are dropped exactly as in scan().
  std::vector<TriggerInterval> scan_all(std::vector<double> event_times,
                                        double exposure_s) const;

  std::vector<TriggerInterval> scan_all(
      std::span<const detector::MeasuredEvent> events,
      double exposure_s) const;

  /// Estimate the background detected-event rate from a (burst-free)
  /// exposure — what the flight software maintains as a running
  /// average.
  static double estimate_background_rate(
      std::span<const detector::MeasuredEvent> events, double exposure_s);

  const TriggerConfig& config() const { return config_; }

 private:
  TriggerConfig config_;
};

}  // namespace adapt::trigger
