#include "trigger/rate_trigger.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"
#include "core/stats.hpp"
#include "core/telemetry.hpp"

namespace adapt::trigger {

RateTrigger::RateTrigger(const TriggerConfig& config) : config_(config) {
  ADAPT_REQUIRE(!config.window_sizes_s.empty(), "no trigger timescales");
  for (const double w : config.window_sizes_s)
    ADAPT_REQUIRE(w > 0.0, "window sizes must be positive");
  ADAPT_REQUIRE(config.stride_fraction > 0.0 && config.stride_fraction <= 1.0,
                "stride fraction in (0, 1]");
  ADAPT_REQUIRE(config.background_rate_hz >= 0.0, "negative rate");
  ADAPT_REQUIRE(config.threshold_sigma > 0.0, "threshold must be positive");
}

TriggerResult RateTrigger::scan(std::vector<double> event_times,
                                double exposure_s) const {
  ADAPT_REQUIRE(exposure_s > 0.0, "exposure must be positive");
  // Readout streams arrive out of order (buffering, multiple front-end
  // links), so the scan sorts rather than requiring monotone input.
  // Non-finite timestamps must go first: a NaN breaks std::sort's
  // strict-weak-ordering contract (undefined behavior) and poisons the
  // lower_bound window counts below even when sort survives.
  static core::telemetry::Counter& rejected_times =
      core::telemetry::counter("trigger.times_rejected.non_finite");
  const auto finite_end =
      std::remove_if(event_times.begin(), event_times.end(),
                     [](double t) { return !std::isfinite(t); });
  rejected_times.add(static_cast<std::uint64_t>(
      std::distance(finite_end, event_times.end())));
  event_times.erase(finite_end, event_times.end());
  std::sort(event_times.begin(), event_times.end());

  TriggerResult best;
  for (const double window : config_.window_sizes_s) {
    if (window > exposure_s) continue;
    const double mu = config_.background_rate_hz * window;
    const double stride = window * config_.stride_fraction;
    for (double t0 = 0.0; t0 + window <= exposure_s + 1e-12; t0 += stride) {
      const double t1 = t0 + window;
      // Count events in [t0, t1) via binary search on the sorted times.
      const auto lo = std::lower_bound(event_times.begin(),
                                       event_times.end(), t0);
      const auto hi = std::lower_bound(lo, event_times.end(), t1);
      const auto counts = static_cast<std::size_t>(std::distance(lo, hi));
      const double sigma = core::poisson_significance_sigma(counts, mu);
      if (sigma > best.significance_sigma) {
        best.significance_sigma = sigma;
        best.t_start = t0;
        best.t_end = t1;
        best.counts = counts;
        best.expected = mu;
      }
    }
  }
  best.triggered = best.significance_sigma >= config_.threshold_sigma;
  return best;
}

TriggerResult RateTrigger::scan(
    std::span<const detector::MeasuredEvent> events,
    double exposure_s) const {
  std::vector<double> times;
  times.reserve(events.size());
  for (const auto& event : events) times.push_back(event.time_s);
  return scan(std::move(times), exposure_s);
}

std::vector<TriggerInterval> RateTrigger::scan_all(
    std::vector<double> event_times, double exposure_s) const {
  ADAPT_REQUIRE(exposure_s > 0.0, "exposure must be positive");
  const auto finite_end =
      std::remove_if(event_times.begin(), event_times.end(),
                     [](double t) { return !std::isfinite(t); });
  event_times.erase(finite_end, event_times.end());
  std::sort(event_times.begin(), event_times.end());

  // Same sliding scan as scan(), but collect EVERY window clearing the
  // threshold instead of keeping one champion.
  std::vector<TriggerInterval> hits;
  for (const double window : config_.window_sizes_s) {
    if (window > exposure_s) continue;
    const double mu = config_.background_rate_hz * window;
    const double stride = window * config_.stride_fraction;
    for (double t0 = 0.0; t0 + window <= exposure_s + 1e-12; t0 += stride) {
      const double t1 = t0 + window;
      const auto lo = std::lower_bound(event_times.begin(),
                                       event_times.end(), t0);
      const auto hi = std::lower_bound(lo, event_times.end(), t1);
      const auto counts = static_cast<std::size_t>(std::distance(lo, hi));
      const double sigma = core::poisson_significance_sigma(counts, mu);
      if (sigma >= config_.threshold_sigma)
        hits.push_back(TriggerInterval{t0, t1, sigma, counts, mu});
    }
  }
  if (hits.empty()) return hits;

  // Merge overlapping windows across timescales into disjoint episodes,
  // each keeping its most significant constituent window's statistics.
  std::sort(hits.begin(), hits.end(),
            [](const TriggerInterval& a, const TriggerInterval& b) {
              if (a.t_start != b.t_start) return a.t_start < b.t_start;
              return a.t_end < b.t_end;
            });
  std::vector<TriggerInterval> merged;
  for (const TriggerInterval& h : hits) {
    if (!merged.empty() && h.t_start <= merged.back().t_end + 1e-12) {
      TriggerInterval& episode = merged.back();
      episode.t_end = std::max(episode.t_end, h.t_end);
      if (h.significance_sigma > episode.significance_sigma) {
        episode.significance_sigma = h.significance_sigma;
        episode.counts = h.counts;
        episode.expected = h.expected;
      }
    } else {
      merged.push_back(h);
    }
  }
  return merged;
}

std::vector<TriggerInterval> RateTrigger::scan_all(
    std::span<const detector::MeasuredEvent> events, double exposure_s) const {
  std::vector<double> times;
  times.reserve(events.size());
  for (const auto& event : events) times.push_back(event.time_s);
  return scan_all(std::move(times), exposure_s);
}

double RateTrigger::estimate_background_rate(
    std::span<const detector::MeasuredEvent> events, double exposure_s) {
  ADAPT_REQUIRE(exposure_s > 0.0, "exposure must be positive");
  return static_cast<double>(events.size()) / exposure_s;
}

}  // namespace adapt::trigger
