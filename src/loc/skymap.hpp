#pragma once

/// \file skymap.hpp
/// Posterior sky maps: the localization product a GRB alert actually
/// ships (follow-up telescopes consume probability maps with credible
/// regions, not bare point estimates).
///
/// The map evaluates the rings' truncated joint likelihood on a
/// latitude/longitude grid over the visible (upper) hemisphere and
/// normalizes the per-pixel posterior with solid-angle weights.  From
/// it: the maximum-a-posteriori direction and the area of the smallest
/// credible region at a given probability content — the "error circle"
/// radius quoted in alerts.
///
/// Degenerate posteriors (every pixel's likelihood underflowing to
/// zero mass) no longer abort or divide into NaNs: the map comes back
/// uniform with degenerate() == true and the `loc.skymap.degenerate`
/// counter bumped — see normalize_log_posterior() in sky_grid.hpp.
/// Unusable rings (non-finite axis/eta, d_eta <= 0) are filtered out
/// before evaluation, matching the point-estimate localizer paths.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/vec3.hpp"
#include "loc/sky_grid.hpp"
#include "recon/ring.hpp"

namespace adapt::loc {

struct SkyMapConfig {
  double resolution_deg = 1.0;    ///< Pixel size in polar angle.
  double truncation_sigma = 3.0;  ///< Outlier cap of the likelihood.
  double max_polar_deg = 90.0;    ///< Field-of-view edge.
};

class SkyMap {
 public:
  /// Evaluate the posterior for a ring set.
  static SkyMap compute(std::span<const recon::ComptonRing> rings,
                        const SkyMapConfig& config = {});

  /// Build a map from an externally accumulated per-pixel log
  /// posterior on `grid` (the IncrementalLocalizer's snapshot path;
  /// any additive constant cancels in normalization).
  static SkyMap from_log_posterior(const SkyGrid& grid,
                                   std::span<const double> log_post,
                                   const SkyMapConfig& config);

  /// Maximum-a-posteriori direction.
  core::Vec3 peak() const;

  /// Area [deg^2] of the smallest set of pixels containing `content`
  /// of the posterior probability (e.g. 0.9 for the 90% region).
  /// `content` must be finite and strictly inside (0, 1).
  double credible_region_area_deg2(double content) const;

  /// Equivalent radius [deg] of a circle with the credible-region
  /// area — the alert's error-circle radius.
  double credible_radius_deg(double content) const;

  /// Posterior probability of the pixel containing `direction`
  /// (0 outside the field of view; the field-of-view edge itself is
  /// inside — see the SkyGrid boundary contract).
  double probability_at(const core::Vec3& direction) const;

  /// Dump as CSV (polar_deg, azimuth_deg, probability).  Returns false
  /// on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t n_pixels() const { return probability_.size(); }
  const SkyMapConfig& config() const { return config_; }
  const SkyGrid& grid() const { return grid_; }

  /// True when the posterior was degenerate (no pixel with finite
  /// mass) and the map is the uniform fallback.
  bool degenerate() const { return degenerate_; }

 private:
  SkyMap() = default;

  SkyMapConfig config_;
  SkyGrid grid_;
  std::vector<double> probability_;  ///< Normalized posterior mass
                                     ///< per pixel.
  bool degenerate_ = false;
};

}  // namespace adapt::loc
