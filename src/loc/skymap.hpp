#pragma once

/// \file skymap.hpp
/// Posterior sky maps: the localization product a GRB alert actually
/// ships (follow-up telescopes consume probability maps with credible
/// regions, not bare point estimates).
///
/// The map evaluates the rings' truncated joint likelihood on a
/// latitude/longitude grid over the visible (upper) hemisphere and
/// normalizes the per-pixel posterior with solid-angle weights.  From
/// it: the maximum-a-posteriori direction and the area of the smallest
/// credible region at a given probability content — the "error circle"
/// radius quoted in alerts.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/vec3.hpp"
#include "recon/ring.hpp"

namespace adapt::loc {

struct SkyMapConfig {
  double resolution_deg = 1.0;    ///< Pixel size in polar angle.
  double truncation_sigma = 3.0;  ///< Outlier cap of the likelihood.
  double max_polar_deg = 90.0;    ///< Field-of-view edge.
};

class SkyMap {
 public:
  /// Evaluate the posterior for a ring set.
  static SkyMap compute(std::span<const recon::ComptonRing> rings,
                        const SkyMapConfig& config = {});

  /// Maximum-a-posteriori direction.
  core::Vec3 peak() const;

  /// Area [deg^2] of the smallest set of pixels containing `content`
  /// of the posterior probability (e.g. 0.9 for the 90% region).
  double credible_region_area_deg2(double content) const;

  /// Equivalent radius [deg] of a circle with the credible-region
  /// area — the alert's error-circle radius.
  double credible_radius_deg(double content) const;

  /// Posterior probability of the pixel containing `direction`
  /// (0 outside the field of view).
  double probability_at(const core::Vec3& direction) const;

  /// Dump as CSV (polar_deg, azimuth_deg, probability).  Returns false
  /// on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t n_pixels() const { return probability_.size(); }
  const SkyMapConfig& config() const { return config_; }

 private:
  SkyMap() = default;

  std::optional<std::size_t> pixel_of(const core::Vec3& direction) const;
  core::Vec3 pixel_center(std::size_t index) const;
  double pixel_solid_angle_deg2(std::size_t index) const;

  SkyMapConfig config_;
  int n_polar_ = 0;
  std::vector<int> az_bins_per_row_;     ///< Azimuth bins per polar row.
  std::vector<std::size_t> row_offset_;  ///< Pixel index of each row.
  std::vector<double> probability_;      ///< Normalized posterior mass
                                         ///< per pixel.
};

}  // namespace adapt::loc
