#include "loc/skymap.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "core/units.hpp"
#include "loc/likelihood.hpp"

namespace adapt::loc {

using core::Vec3;

SkyMap SkyMap::compute(std::span<const recon::ComptonRing> rings,
                       const SkyMapConfig& config) {
  ADAPT_REQUIRE(config.resolution_deg > 0.0, "resolution must be positive");
  ADAPT_REQUIRE(config.max_polar_deg > 0.0 && config.max_polar_deg <= 180.0,
                "max polar out of range");
  ADAPT_REQUIRE(std::isfinite(config.truncation_sigma) &&
                    config.truncation_sigma > 0.0,
                "truncation sigma must be finite and positive");

  // Unusable rings (NaN axis, non-positive d_eta) would poison every
  // pixel identically; drop them up front like the point-estimate
  // localizer does so a single bad ring cannot degrade the whole map.
  std::vector<recon::ComptonRing> filtered_storage;
  const std::span<const recon::ComptonRing> usable =
      usable_rings(rings, filtered_storage);

  SkyMap map;
  map.config_ = config;
  map.grid_ = SkyGrid(config.resolution_deg, config.max_polar_deg);
  const std::size_t total = map.grid_.n_pixels();

  // Log-posterior per pixel, then a stable softmax with solid-angle
  // weights.  Each pixel is computed independently, so the result is
  // bit-identical regardless of thread count or SIMD dispatch.
  std::vector<double> log_post(total);
  core::parallel_for(
      total,
      [&](std::size_t i) {
        const Vec3 dir = map.grid_.pixel_center(i);
        log_post[i] = -truncated_neg_log_likelihood(usable, dir,
                                                    config.truncation_sigma);
      },
      /*grain=*/64);
  map.degenerate_ =
      !normalize_log_posterior(map.grid_, log_post, map.probability_);
  return map;
}

SkyMap SkyMap::from_log_posterior(const SkyGrid& grid,
                                  std::span<const double> log_post,
                                  const SkyMapConfig& config) {
  SkyMap map;
  map.config_ = config;
  map.grid_ = grid;
  map.degenerate_ =
      !normalize_log_posterior(map.grid_, log_post, map.probability_);
  return map;
}

Vec3 SkyMap::peak() const {
  ADAPT_REQUIRE(!probability_.empty(), "peak of an empty map");
  const auto it =
      std::max_element(probability_.begin(), probability_.end());
  return grid_.pixel_center(
      static_cast<std::size_t>(std::distance(probability_.begin(), it)));
}

double SkyMap::credible_region_area_deg2(double content) const {
  ADAPT_REQUIRE(std::isfinite(content) && content > 0.0 && content < 1.0,
                "credible content in (0, 1)");
  ADAPT_REQUIRE(!probability_.empty(), "credible region of an empty map");
  // Greedy: add pixels in decreasing posterior density until the mass
  // target is met.
  std::vector<std::size_t> order(probability_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return probability_[a] / grid_.pixel_solid_angle_deg2(a) >
           probability_[b] / grid_.pixel_solid_angle_deg2(b);
  });
  double mass = 0.0;
  double area = 0.0;
  for (const std::size_t i : order) {
    mass += probability_[i];
    area += grid_.pixel_solid_angle_deg2(i);
    if (mass >= content) break;
  }
  return area;
}

double SkyMap::credible_radius_deg(double content) const {
  return std::sqrt(credible_region_area_deg2(content) / core::kPi);
}

double SkyMap::probability_at(const Vec3& direction) const {
  const auto pixel = grid_.pixel_of(direction);
  return pixel ? probability_[*pixel] : 0.0;
}

bool SkyMap::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << "polar_deg,azimuth_deg,probability\n";
  for (std::size_t i = 0; i < probability_.size(); ++i) {
    const Vec3 dir = grid_.pixel_center(i);
    f << core::rad_to_deg(core::polar_of(dir)) << ','
      << core::rad_to_deg(core::azimuth_of(dir)) << ',' << probability_[i]
      << '\n';
  }
  return static_cast<bool>(f);
}

}  // namespace adapt::loc
