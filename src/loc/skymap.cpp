#include "loc/skymap.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "core/units.hpp"
#include "loc/likelihood.hpp"

namespace adapt::loc {

using core::Vec3;

SkyMap SkyMap::compute(std::span<const recon::ComptonRing> rings,
                       const SkyMapConfig& config) {
  ADAPT_REQUIRE(config.resolution_deg > 0.0, "resolution must be positive");
  ADAPT_REQUIRE(config.max_polar_deg > 0.0 && config.max_polar_deg <= 180.0,
                "max polar out of range");

  SkyMap map;
  map.config_ = config;
  map.n_polar_ = std::max(
      1, static_cast<int>(std::ceil(config.max_polar_deg /
                                    config.resolution_deg)));

  // Equal-angle rows; azimuth bins per row scale with sin(polar) so
  // pixels keep roughly equal solid angle (a poor man's equal-area
  // map — adequate for credible-region integrals at 1-degree scale).
  map.az_bins_per_row_.resize(static_cast<std::size_t>(map.n_polar_));
  map.row_offset_.resize(static_cast<std::size_t>(map.n_polar_));
  std::size_t total = 0;
  for (int row = 0; row < map.n_polar_; ++row) {
    const double polar_mid =
        core::deg_to_rad((row + 0.5) * config.resolution_deg);
    const int bins = std::max(
        1, static_cast<int>(std::ceil(360.0 / config.resolution_deg *
                                      std::sin(polar_mid))));
    map.az_bins_per_row_[static_cast<std::size_t>(row)] = bins;
    map.row_offset_[static_cast<std::size_t>(row)] = total;
    total += static_cast<std::size_t>(bins);
  }
  map.probability_.assign(total, 0.0);

  // Log-posterior per pixel, then a stable softmax with solid-angle
  // weights.
  std::vector<double> log_post(total);
  core::parallel_for(
      total,
      [&](std::size_t i) {
        const Vec3 dir = map.pixel_center(i);
        log_post[i] =
            -truncated_neg_log_likelihood(rings, dir, config.truncation_sigma);
      },
      /*grain=*/64);
  const double max_log =
      *std::max_element(log_post.begin(), log_post.end());
  double norm = 0.0;
  for (std::size_t i = 0; i < total; ++i) {
    const double mass = std::exp(log_post[i] - max_log) *
                        map.pixel_solid_angle_deg2(i);
    map.probability_[i] = mass;
    norm += mass;
  }
  ADAPT_REQUIRE(norm > 0.0, "degenerate posterior");
  for (double& p : map.probability_) p /= norm;
  return map;
}

Vec3 SkyMap::pixel_center(std::size_t index) const {
  // Find the row by binary search over row offsets.
  const auto row_it = std::upper_bound(row_offset_.begin(),
                                       row_offset_.end(), index);
  const auto row =
      static_cast<std::size_t>(std::distance(row_offset_.begin(), row_it)) -
      1;
  const std::size_t az = index - row_offset_[row];
  const double polar = core::deg_to_rad(
      (static_cast<double>(row) + 0.5) * config_.resolution_deg);
  const double azimuth =
      core::kTwoPi * (static_cast<double>(az) + 0.5) /
      static_cast<double>(az_bins_per_row_[row]);
  return core::from_spherical(polar, azimuth);
}

double SkyMap::pixel_solid_angle_deg2(std::size_t index) const {
  const auto row_it = std::upper_bound(row_offset_.begin(),
                                       row_offset_.end(), index);
  const auto row =
      static_cast<std::size_t>(std::distance(row_offset_.begin(), row_it)) -
      1;
  const double t0 = core::deg_to_rad(static_cast<double>(row) *
                                     config_.resolution_deg);
  const double t1 = core::deg_to_rad((static_cast<double>(row) + 1.0) *
                                     config_.resolution_deg);
  const double band_sr = core::kTwoPi * (std::cos(t0) - std::cos(t1));
  const double sr =
      band_sr / static_cast<double>(az_bins_per_row_[row]);
  constexpr double deg2_per_sr = 180.0 / core::kPi * 180.0 / core::kPi;
  return sr * deg2_per_sr;
}

std::optional<std::size_t> SkyMap::pixel_of(const Vec3& direction) const {
  const double polar_deg = core::rad_to_deg(core::polar_of(direction));
  if (polar_deg >= config_.max_polar_deg) return std::nullopt;
  const auto row = std::min(
      static_cast<std::size_t>(polar_deg / config_.resolution_deg),
      static_cast<std::size_t>(n_polar_ - 1));
  double az = core::azimuth_of(direction);
  if (az < 0.0) az += core::kTwoPi;
  const auto bins = static_cast<double>(az_bins_per_row_[row]);
  auto az_bin = static_cast<std::size_t>(az / core::kTwoPi * bins);
  if (az_bin >= static_cast<std::size_t>(az_bins_per_row_[row]))
    az_bin = static_cast<std::size_t>(az_bins_per_row_[row]) - 1;
  return row_offset_[row] + az_bin;
}

Vec3 SkyMap::peak() const {
  const auto it =
      std::max_element(probability_.begin(), probability_.end());
  return pixel_center(
      static_cast<std::size_t>(std::distance(probability_.begin(), it)));
}

double SkyMap::credible_region_area_deg2(double content) const {
  ADAPT_REQUIRE(content > 0.0 && content < 1.0,
                "credible content in (0, 1)");
  // Greedy: add pixels in decreasing posterior density until the mass
  // target is met.
  std::vector<std::size_t> order(probability_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return probability_[a] / pixel_solid_angle_deg2(a) >
           probability_[b] / pixel_solid_angle_deg2(b);
  });
  double mass = 0.0;
  double area = 0.0;
  for (const std::size_t i : order) {
    mass += probability_[i];
    area += pixel_solid_angle_deg2(i);
    if (mass >= content) break;
  }
  return area;
}

double SkyMap::credible_radius_deg(double content) const {
  return std::sqrt(credible_region_area_deg2(content) / core::kPi);
}

double SkyMap::probability_at(const Vec3& direction) const {
  const auto pixel = pixel_of(direction);
  return pixel ? probability_[*pixel] : 0.0;
}

bool SkyMap::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << "polar_deg,azimuth_deg,probability\n";
  for (std::size_t i = 0; i < probability_.size(); ++i) {
    const Vec3 dir = pixel_center(i);
    f << core::rad_to_deg(core::polar_of(dir)) << ','
      << core::rad_to_deg(core::azimuth_of(dir)) << ',' << probability_[i]
      << '\n';
  }
  return static_cast<bool>(f);
}

}  // namespace adapt::loc
