#include "loc/grid_search.hpp"

#include <cmath>
#include <limits>

#include "core/require.hpp"
#include "core/units.hpp"
#include "loc/likelihood.hpp"

namespace adapt::loc {

namespace {

using core::Vec3;

/// Scan a spherical cap (or the whole upper sky) at a given pitch and
/// return the best-scoring direction.
Vec3 scan(std::span<const recon::ComptonRing> rings, const Vec3& center,
          double radius_rad, double pitch_rad, bool upper_only,
          double truncation) {
  double best_nll = std::numeric_limits<double>::infinity();
  Vec3 best = center;
  const int n_radial = std::max(1, static_cast<int>(radius_rad / pitch_rad));
  for (int ir = 0; ir <= n_radial; ++ir) {
    const double theta = radius_rad * static_cast<double>(ir) /
                         static_cast<double>(n_radial);
    // Azimuthal steps sized to keep arc spacing ~ pitch.
    const int n_az = std::max(
        1, static_cast<int>(std::ceil(core::kTwoPi * std::sin(theta) /
                                      pitch_rad)));
    for (int ia = 0; ia < n_az; ++ia) {
      const double phi = core::kTwoPi * static_cast<double>(ia) /
                         static_cast<double>(n_az);
      const Vec3 dir = ir == 0
                           ? center
                           : core::rotate_about_axis(center, theta, phi);
      if (upper_only && dir.z < 0.0) continue;
      const double nll =
          truncated_neg_log_likelihood(rings, dir, truncation);
      if (nll < best_nll) {
        best_nll = nll;
        best = dir;
      }
    }
    if (ir == 0 && n_radial == 0) break;
  }
  return best;
}

}  // namespace

LocalizationResult grid_search_localize(
    std::span<const recon::ComptonRing> rings,
    const GridSearchConfig& config) {
  ADAPT_REQUIRE(config.coarse_resolution_deg > 0.0 &&
                    config.fine_resolution_deg > 0.0,
                "grid resolutions must be positive");
  LocalizationResult result;
  result.rings_total = rings.size();
  if (rings.size() < 2) return result;

  // Coarse: the whole visible sky, scanned as a 90-degree cap around
  // the zenith (or the full sphere when the horizon constraint is
  // off).
  const bool upper = config.restrict_to_upper_sky;
  const Vec3 coarse = scan(
      rings, Vec3{0, 0, 1}, upper ? core::kPi / 2.0 : core::kPi,
      core::deg_to_rad(config.coarse_resolution_deg), upper,
      config.truncation_sigma);

  // Fine: re-scan the winning neighbourhood.
  const Vec3 fine = scan(rings, coarse,
                         core::deg_to_rad(config.fine_radius_deg),
                         core::deg_to_rad(config.fine_resolution_deg), upper,
                         config.truncation_sigma);

  // Polish with the robust least-squares refinement.
  const Localizer localizer{LocalizerConfig{{}, config.refine}};
  LocalizationResult refined = localizer.refine(rings, fine);
  if (!refined.valid) {
    result.direction = fine;
    result.valid = true;
    result.rings_used = rings.size();
    return result;
  }
  return refined;
}

}  // namespace adapt::loc
