#include "loc/grid_search.hpp"

#include <cmath>
#include <limits>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"
#include "loc/likelihood.hpp"

namespace adapt::loc {

namespace {

namespace tm = core::telemetry;

using core::Vec3;

/// Precomputed scan grid for one (radius, pitch) configuration.  The
/// candidate directions depend only on the cap geometry — never on the
/// rings — so the coarse grid (identical for every localization) and
/// the fine grid (identical across the coarse/fine passes of repeated
/// localizations) are built once and reused.  Offsets are stored as
/// frame coefficients (dir = a*u + b*e1 + c*e2 for an orthonormal
/// frame {u, e1, e2} around the cap center), so re-centering the grid
/// costs three multiply-adds per candidate and no trigonometry.
struct ScanGrid {
  double radius_rad = -1.0;
  double pitch_rad = -1.0;
  struct Offset {
    double a, b, c;
  };
  std::vector<Offset> offsets;
};

const ScanGrid& cached_grid(double radius_rad, double pitch_rad) {
  thread_local std::vector<ScanGrid> cache;
  for (const auto& g : cache)
    if (g.radius_rad == radius_rad && g.pitch_rad == pitch_rad) return g;

  ScanGrid g;
  g.radius_rad = radius_rad;
  g.pitch_rad = pitch_rad;
  const int n_radial =
      std::max(1, static_cast<int>(radius_rad / pitch_rad));
  for (int ir = 0; ir <= n_radial; ++ir) {
    const double theta = radius_rad * static_cast<double>(ir) /
                         static_cast<double>(n_radial);
    // Azimuthal steps sized to keep arc spacing ~ pitch.
    const int n_az = std::max(
        1, static_cast<int>(std::ceil(core::kTwoPi * std::sin(theta) /
                                      pitch_rad)));
    for (int ia = 0; ia < n_az; ++ia) {
      const double phi = core::kTwoPi * static_cast<double>(ia) /
                         static_cast<double>(n_az);
      if (ir == 0) {
        g.offsets.push_back({1.0, 0.0, 0.0});  // The cap center itself.
      } else {
        g.offsets.push_back({std::cos(theta), std::sin(theta) * std::cos(phi),
                             std::sin(theta) * std::sin(phi)});
      }
    }
  }
  // The cache stays tiny (a handful of configurations per thread), but
  // bound it anyway so pathological sweeps cannot grow it unchecked.
  if (cache.size() >= 8) cache.erase(cache.begin());
  cache.push_back(std::move(g));
  return cache.back();
}

/// Scan a spherical cap (or the whole upper sky) at a given pitch and
/// return the best-scoring direction.  Candidates are scored in
/// parallel with a per-thread best reduction; ties break toward the
/// lowest candidate index, so the winner matches the serial scan
/// exactly for any thread count.
Vec3 scan(std::span<const recon::ComptonRing> rings, const Vec3& center,
          double radius_rad, double pitch_rad, bool upper_only,
          double truncation) {
  static tm::Histogram& scan_ms = tm::histogram("grid.scan_ms");
  static tm::Counter& scored = tm::counter("grid.candidates_scored");
  const tm::ScopedTimer timer(scan_ms);
  const ScanGrid& grid = cached_grid(radius_rad, pitch_rad);
  scored.add(grid.offsets.size());
  const Vec3 u = center.normalized();
  const Vec3 e1 = core::any_orthogonal(u);
  const Vec3 e2 = u.cross(e1);
  const auto dir_of = [&](std::size_t i) {
    const ScanGrid::Offset& o = grid.offsets[i];
    return u * o.a + e1 * o.b + e2 * o.c;
  };

  const auto [best_i, best_nll] = core::parallel_argmin(
      grid.offsets.size(), [&](std::size_t i) {
        const Vec3 dir = dir_of(i);
        if (upper_only && dir.z < 0.0)
          return std::numeric_limits<double>::infinity();
        return truncated_neg_log_likelihood(rings, dir, truncation);
      });
  if (best_i >= grid.offsets.size() ||
      !std::isfinite(best_nll)) {
    return center;  // Every candidate below the horizon.
  }
  const Vec3 best = dir_of(best_i);
  // Offsets are unit combinations of an orthonormal frame, so the
  // winning candidate must still be a direction (a drifting frame or a
  // corrupted grid cache would surface here, not as a skewed skymap).
  ADAPT_CHECK_UNIT_VECTOR(best, "grid-scan winning direction");
  return best;
}

}  // namespace

LocalizationResult grid_search_localize(
    std::span<const recon::ComptonRing> input,
    const GridSearchConfig& config) {
  ADAPT_REQUIRE(config.coarse_resolution_deg > 0.0 &&
                    config.fine_resolution_deg > 0.0,
                "grid resolutions must be positive");
  LocalizationResult result;
  result.rings_total = input.size();

  // Same ring hygiene as the fast localizer: NaN/zero d_eta must not
  // reach the likelihood scan.
  std::vector<recon::ComptonRing> storage;
  const std::span<const recon::ComptonRing> rings =
      usable_rings(input, storage);
  if (rings.size() < 2) return result;

  // Coarse: the whole visible sky, scanned as a 90-degree cap around
  // the zenith (or the full sphere when the horizon constraint is
  // off).
  const bool upper = config.restrict_to_upper_sky;
  const Vec3 coarse = scan(
      rings, Vec3{0, 0, 1}, upper ? core::kPi / 2.0 : core::kPi,
      core::deg_to_rad(config.coarse_resolution_deg), upper,
      config.truncation_sigma);

  // Fine: re-scan the winning neighbourhood.
  const Vec3 fine = scan(rings, coarse,
                         core::deg_to_rad(config.fine_radius_deg),
                         core::deg_to_rad(config.fine_resolution_deg), upper,
                         config.truncation_sigma);

  // Polish with the robust least-squares refinement.
  const Localizer localizer{LocalizerConfig{{}, config.refine}};
  LocalizationResult refined = localizer.refine(rings, fine);
  if (!refined.valid) {
    result.direction = fine;
    result.valid = true;
    result.rings_used = rings.size();
    return result;
  }
  refined.rings_total = input.size();
  return refined;
}

}  // namespace adapt::loc
