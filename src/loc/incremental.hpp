#pragma once

/// \file incremental.hpp
/// Incrementally updatable sky-posterior accumulator for streaming
/// localization — the NNUE incremental-accumulator idea applied to the
/// ring likelihood.
///
/// The batch SkyMap evaluates, per pixel s_i, the truncated joint NLL
///   nll_i = sum_rings 0.5 * min(r^2, cap^2),   r = (c.s_i - eta)/d_eta,
/// which costs O(pixels * rings) per recompute.  Observe that
///   -nll_i = -0.5 cap^2 N + excess_i,
///   excess_i = sum_rings max(0, 0.5 * (cap^2 - r^2)),
/// and the -0.5 cap^2 N term is pixel-independent, so it cancels in the
/// softmax normalization.  A ring therefore only changes the posterior
/// shape on the pixels where its residual is inside the truncation cap:
/// the band |c.s - eta| <= cap * d_eta, a thin small-circle annulus on
/// the sky.  IncrementalLocalizer keeps per-pixel `excess` sums and
/// adds each arriving ring to just that band, enumerated analytically
/// per grid row (at most two azimuth arcs per row), in O(band pixels)
/// instead of O(grid).
///
/// Coarse-to-fine: a coarse grid (`coarse_factor` x the resolution) is
/// always updated; full-resolution rows are materialized lazily — only
/// the coarse rows holding the top `refine_mass_fraction` of posterior
/// mass are refined, by replaying the stored rings over those rows.
/// Refinement is monotone (a refined row stays refined and is kept
/// current by subsequent updates) and replay happens in ring-arrival
/// order, so results are independent of *when* refinement happened.
///
/// Equivalence contract against the batch path (tested in
/// tests/loc/incremental_test.cpp):
///   - snapshot() — and every query when `refine_all` is set — agrees
///     with SkyMap::compute on the same rings up to floating-point
///     noise only: per-pixel probabilities within 1e-9 relative,
///     identical peak pixel, credible areas within one pixel of
///     greedy-cut tie-breaking.  Bit identity is NOT promised: the
///     batch path sums 0.5*min(r^2,cap^2) per pixel across rings while
///     the accumulator sums 0.5*(cap^2-r^2) per ring across pixels
///     (different association order), and the accumulator evaluates
///     the residual in the per-row closed form m + s*cos(phi - phi0),
///     which agrees with the batch dot product to ~1 ulp.
///   - adaptive queries (default config) additionally approximate the
///     unrefined tail by its coarse pixels; with the default
///     refine_mass_fraction = 0.999 the peak is exact and the 68%/90%
///     credible radii agree with batch within the coarse pixel scale.
///     Because rows are chosen from the posterior *at query time*, the
///     refined set — and with it the tail's share of the normalization
///     — depends on when queries happened.  The mass cut is taken on
///     the *coarse* posterior, whose pixel-center evaluation
///     misestimates a sharp peak, so the tail approximation can move
///     normalized probabilities by a few percent (credible radii and
///     the peak are far less sensitive).  Set `refine_all`, or use
///     snapshot(), where tight normalization matters.
///   - both paths are single-pixel deterministic: results are
///     bit-identical across thread counts and `ADAPT_SIMD` settings,
///     and (given the same query points, or under `refine_all`)
///     add_ring-one-at-a-time is bit-identical to add_rings.
///
/// Unusable rings (ring_usable() == false) are rejected and counted,
/// exactly like the batch and point-estimate paths.
///
/// Telemetry: `loc.incremental.rings`, `loc.incremental.rings_rejected`
/// counters; `loc.incremental.update_ms` and
/// `loc.incremental.pixels_touched` histograms per update;
/// `loc.incremental.rows_refined` counter.

#include <cstdint>
#include <span>
#include <vector>

#include "core/vec3.hpp"
#include "loc/sky_grid.hpp"
#include "loc/skymap.hpp"
#include "recon/ring.hpp"

namespace adapt::loc {

struct IncrementalConfig {
  double resolution_deg = 1.0;    ///< Fine-grid pixel size.
  double truncation_sigma = 3.0;  ///< Outlier cap of the likelihood.
  double max_polar_deg = 90.0;    ///< Field-of-view edge.
  /// Coarse grid is `coarse_factor` x coarser than fine (>= 1; 1 makes
  /// the two grids identical).
  int coarse_factor = 4;
  /// Fraction of coarse posterior mass whose rows get full-resolution
  /// refinement at query time, in (0, 1].
  double refine_mass_fraction = 0.999;
  /// Refine every row unconditionally — the tight-equivalence mode the
  /// tests use to pin the accumulator against SkyMap::compute.
  bool refine_all = false;
};

class IncrementalLocalizer {
 public:
  explicit IncrementalLocalizer(const IncrementalConfig& config = {});

  /// Fold one ring into the accumulator.  Returns the number of
  /// candidate pixels examined (the update cost); 0 and a counted
  /// rejection for unusable rings.
  std::size_t add_ring(const recon::ComptonRing& ring);

  /// Fold a batch; returns total candidate pixels examined.
  std::size_t add_rings(std::span<const recon::ComptonRing> rings);

  std::size_t n_rings() const { return rings_.size(); }
  std::size_t rings_rejected() const { return rings_rejected_; }
  std::uint64_t pixels_touched_total() const { return pixels_touched_; }

  /// Queries are non-const: they lazily refine rows and re-normalize
  /// the mixed coarse/fine posterior when the accumulator changed.
  core::Vec3 peak();
  double credible_region_area_deg2(double content);
  double credible_radius_deg(double content);
  double probability_at(const core::Vec3& direction);

  /// True when the last normalization was degenerate (uniform
  /// fallback posterior) — see normalize_log_posterior().
  bool degenerate();

  /// Materialize the full fine-resolution posterior as a SkyMap
  /// (refines every row).  This is the tight-tolerance equivalence
  /// point against SkyMap::compute.
  SkyMap snapshot();

  /// Fine rows currently materialized at full resolution.
  std::size_t refined_fine_rows() const;

  const SkyGrid& fine_grid() const { return fine_; }
  const SkyGrid& coarse_grid() const { return coarse_; }
  const IncrementalConfig& config() const { return config_; }

 private:
  void accumulate_band(const SkyGrid& grid, std::size_t row,
                       const recon::ComptonRing& ring, double cap2,
                       std::vector<double>& excess, std::size_t base,
                       std::size_t& touched);
  void refine_coarse_row(std::size_t coarse_row);
  std::size_t fine_rows_of(std::size_t coarse_row, std::size_t& first) const;
  void ensure_posterior();

  IncrementalConfig config_;
  SkyGrid fine_;
  SkyGrid coarse_;

  std::vector<double> coarse_excess_;          ///< Per coarse pixel.
  std::vector<std::uint8_t> coarse_refined_;   ///< Per coarse row.
  std::vector<std::vector<double>> fine_excess_;  ///< Per fine row
                                                  ///< (empty: not
                                                  ///< refined).
  std::vector<recon::ComptonRing> rings_;  ///< Replay log for
                                           ///< refinement backfill.

  std::size_t rings_rejected_ = 0;
  std::uint64_t pixels_touched_ = 0;

  // Lazily rebuilt mixed posterior (see ensure_posterior()).
  bool posterior_dirty_ = true;
  bool degenerate_ = false;
  std::vector<double> mixed_value_;  ///< Excess per mixed entry.
  std::vector<double> mixed_sa_;     ///< Solid angle [deg^2] per entry.
  std::vector<double> mixed_prob_;   ///< Normalized mass per entry.
  /// Offset of each fine row's pixels in the mixed arrays (npos when
  /// the row is not refined) and of each unrefined coarse row's pixels
  /// (npos when refined).
  std::vector<std::size_t> fine_row_off_;
  std::vector<std::size_t> coarse_row_off_;
};

}  // namespace adapt::loc
