#include "loc/sky_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/contract.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"

namespace adapt::loc {

using core::Vec3;

SkyGrid::SkyGrid(double resolution_deg, double max_polar_deg)
    : resolution_deg_(resolution_deg), max_polar_deg_(max_polar_deg) {
  ADAPT_REQUIRE(resolution_deg > 0.0, "resolution must be positive");
  ADAPT_REQUIRE(max_polar_deg > 0.0 && max_polar_deg <= 180.0,
                "max polar out of range");
  n_polar_ = std::max(
      1, static_cast<int>(std::ceil(max_polar_deg / resolution_deg)));

  // Equal-angle rows; azimuth bins per row scale with sin(polar) so
  // pixels keep roughly equal solid angle (a poor man's equal-area
  // map — adequate for credible-region integrals at 1-degree scale).
  az_bins_.resize(static_cast<std::size_t>(n_polar_));
  row_offset_.resize(static_cast<std::size_t>(n_polar_));
  row_sa_deg2_.resize(static_cast<std::size_t>(n_polar_));
  row_cos_.resize(static_cast<std::size_t>(n_polar_));
  row_sin_.resize(static_cast<std::size_t>(n_polar_));
  constexpr double deg2_per_sr = 180.0 / core::kPi * 180.0 / core::kPi;
  total_ = 0;
  for (int row = 0; row < n_polar_; ++row) {
    const double polar_mid = core::deg_to_rad((row + 0.5) * resolution_deg);
    const int bins = std::max(
        1, static_cast<int>(std::ceil(360.0 / resolution_deg *
                                      std::sin(polar_mid))));
    const auto r = static_cast<std::size_t>(row);
    az_bins_[r] = bins;
    row_offset_[r] = total_;
    total_ += static_cast<std::size_t>(bins);
    const double t0 = core::deg_to_rad(static_cast<double>(row) *
                                       resolution_deg);
    const double t1 = core::deg_to_rad((static_cast<double>(row) + 1.0) *
                                       resolution_deg);
    const double band_sr = core::kTwoPi * (std::cos(t0) - std::cos(t1));
    row_sa_deg2_[r] = band_sr / static_cast<double>(bins) * deg2_per_sr;
    row_cos_[r] = std::cos(polar_mid);
    row_sin_[r] = std::sin(polar_mid);
  }
}

std::size_t SkyGrid::row_of(std::size_t index) const {
  const auto row_it =
      std::upper_bound(row_offset_.begin(), row_offset_.end(), index);
  return static_cast<std::size_t>(
             std::distance(row_offset_.begin(), row_it)) - 1;
}

double SkyGrid::row_polar_rad(std::size_t row) const {
  return core::deg_to_rad((static_cast<double>(row) + 0.5) * resolution_deg_);
}

Vec3 SkyGrid::pixel_center(std::size_t index) const {
  const std::size_t row = row_of(index);
  return pixel_center(row, index - row_offset_[row]);
}

Vec3 SkyGrid::pixel_center(std::size_t row, std::size_t az) const {
  const double polar = row_polar_rad(row);
  const double azimuth = core::kTwoPi * (static_cast<double>(az) + 0.5) /
                         static_cast<double>(az_bins_[row]);
  return core::from_spherical(polar, azimuth);
}

std::optional<std::size_t> SkyGrid::pixel_of(const Vec3& direction) const {
  const double polar_deg = core::rad_to_deg(core::polar_of(direction));
  // Negated comparison so a NaN polar angle (non-finite direction)
  // falls through to nullopt; the edge itself is *inside* the map.
  if (!(polar_deg <= max_polar_deg_ + kFovEdgeTolDeg)) return std::nullopt;
  const auto row = std::min(
      static_cast<std::size_t>(polar_deg / resolution_deg_),
      static_cast<std::size_t>(n_polar_ - 1));
  double az = core::azimuth_of(direction);
  if (az < 0.0) az += core::kTwoPi;
  if (!std::isfinite(az)) return std::nullopt;
  const auto bins = static_cast<double>(az_bins_[row]);
  auto az_bin = static_cast<std::size_t>(az / core::kTwoPi * bins);
  if (az_bin >= static_cast<std::size_t>(az_bins_[row]))
    az_bin = static_cast<std::size_t>(az_bins_[row]) - 1;
  return row_offset_[row] + az_bin;
}

bool normalize_log_posterior(const SkyGrid& grid,
                             std::span<const double> log_post,
                             std::vector<double>& probability) {
  ADAPT_REQUIRE(log_post.size() == grid.n_pixels(),
                "log posterior size mismatch");
  const std::size_t total = log_post.size();
  probability.assign(total, 0.0);

  // Max over *finite* entries only: a stray -inf (underflowed pixel)
  // or NaN must not poison the softmax shift.
  double max_log = -std::numeric_limits<double>::infinity();
  bool any_finite = false;
  for (const double v : log_post) {
    if (std::isfinite(v) && (!any_finite || v > max_log)) {
      max_log = v;
      any_finite = true;
    }
  }

  double norm = 0.0;
  if (any_finite) {
    for (std::size_t i = 0; i < total; ++i) {
      const double v = log_post[i];
      const double mass = std::isfinite(v)
                              ? std::exp(v - max_log) *
                                    grid.pixel_solid_angle_deg2(i)
                              : 0.0;
      probability[i] = mass;
      norm += mass;
    }
  }

  if (!(norm > 0.0) || !std::isfinite(norm)) {
    // Degenerate posterior: no pixel carries finite mass.  Return the
    // uniform solid-angle posterior (a correct statement of total
    // ignorance) instead of dividing by zero into a NaN map.
    static auto& degenerate =
        core::telemetry::counter("loc.skymap.degenerate");
    degenerate.add(1);
    double total_sa = 0.0;
    for (std::size_t i = 0; i < total; ++i)
      total_sa += grid.pixel_solid_angle_deg2(i);
    for (std::size_t i = 0; i < total; ++i)
      probability[i] = grid.pixel_solid_angle_deg2(i) / total_sa;
    return false;
  }

  for (double& p : probability) p /= norm;
  return true;
}

}  // namespace adapt::loc
