#include "loc/incremental.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "core/contract.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"
#include "loc/likelihood.hpp"

namespace adapt::loc {

using core::Vec3;

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/// Candidate azimuth-bin ranges of one grid row for a ring band.
///
/// On the row at polar angle theta, the ring dot product is
///   c.s(phi) = m + s * cos(phi - phi0),
///   m = c_z cos(theta), s = hypot(c_x, c_y) sin(theta),
///   phi0 = atan2(c_y, c_x),
/// so |c.s - eta| <= w selects up to two azimuth arcs symmetric about
/// phi0.  The ranges returned are inclusive *unwrapped* bin intervals
/// (map with a positive modulo), conservative by at least one bin on
/// each end, and guaranteed duplicate-free mod bins; the caller applies
/// the exact per-pixel-center residual test, which is the same
/// condition the batch path evaluates, so over-inclusion costs only a
/// wasted test while under-inclusion cannot happen.
struct BinRanges {
  std::array<std::pair<long, long>, 2> r;
  int n = 0;
};

BinRanges band_bin_ranges(int bins, double m, double s, double phi0,
                          double eta, double w) {
  BinRanges out;
  const auto full = [&] {
    out.n = 1;
    out.r[0] = {0, bins - 1};
    return out;
  };
  if (s < 1e-12) {
    // Band is azimuth-independent on this row (ring axis on the polar
    // axis, or the zenith row itself).
    if (std::abs(m - eta) <= w + 1e-12) return full();
    return out;
  }
  const double lo = (eta - w - m) / s;
  const double hi = (eta + w - m) / s;
  if (lo > 1.0 || hi < -1.0) return out;  // band misses the row
  const double a_min = std::acos(std::clamp(hi, -1.0, 1.0));
  const double a_max = std::acos(std::clamp(lo, -1.0, 1.0));
  const double bin_w = core::kTwoPi / static_cast<double>(bins);
  const auto to_range = [&](double lo_phi, double hi_phi) {
    // Bin b centers at (b + 0.5) * bin_w; widen one bin each side.
    const long b0 = static_cast<long>(std::floor(lo_phi / bin_w - 0.5)) - 1;
    const long b1 = static_cast<long>(std::ceil(hi_phi / bin_w - 0.5)) + 1;
    return std::pair<long, long>{b0, b1};
  };
  const auto rp = to_range(phi0 + a_min, phi0 + a_max);
  const auto rm = to_range(phi0 - a_max, phi0 - a_min);
  const long len =
      (rp.second - rp.first + 1) + (rm.second - rm.first + 1);
  if (len >= bins) return full();
  if (rm.second + 1 >= rp.first) {
    // Arcs meet near delta-phi = 0 (band grazes its nearest approach).
    const std::pair<long, long> merged{rm.first, rp.second};
    if (merged.second - merged.first + 1 >= bins) return full();
    out.n = 1;
    out.r[0] = merged;
    return out;
  }
  if (rp.second + 1 >= rm.first + bins) {
    // Arcs meet across delta-phi = pi (band grazes its far point).
    const std::pair<long, long> merged{rp.first, rm.second + bins};
    if (merged.second - merged.first + 1 >= bins) return full();
    out.n = 1;
    out.r[0] = merged;
    return out;
  }
  out.n = 2;
  out.r[0] = rm;
  out.r[1] = rp;
  return out;
}

}  // namespace

IncrementalLocalizer::IncrementalLocalizer(const IncrementalConfig& config)
    : config_(config) {
  ADAPT_REQUIRE(config.resolution_deg > 0.0, "resolution must be positive");
  ADAPT_REQUIRE(config.max_polar_deg > 0.0 && config.max_polar_deg <= 180.0,
                "max polar out of range");
  ADAPT_REQUIRE(std::isfinite(config.truncation_sigma) &&
                    config.truncation_sigma > 0.0,
                "truncation sigma must be finite and positive");
  ADAPT_REQUIRE(config.coarse_factor >= 1, "coarse factor must be >= 1");
  ADAPT_REQUIRE(config.refine_mass_fraction > 0.0 &&
                    config.refine_mass_fraction <= 1.0,
                "refine mass fraction in (0, 1]");
  fine_ = SkyGrid(config.resolution_deg, config.max_polar_deg);
  coarse_ = SkyGrid(config.resolution_deg * config.coarse_factor,
                    config.max_polar_deg);
  coarse_excess_.assign(coarse_.n_pixels(), 0.0);
  coarse_refined_.assign(static_cast<std::size_t>(coarse_.n_rows()), 0);
  fine_excess_.resize(static_cast<std::size_t>(fine_.n_rows()));
}

void IncrementalLocalizer::accumulate_band(
    const SkyGrid& grid, std::size_t row, const recon::ComptonRing& ring,
    double cap2, std::vector<double>& excess, std::size_t base,
    std::size_t& touched) {
  const double w = config_.truncation_sigma * ring.d_eta;
  const int bins = grid.az_bins(row);
  // On this row the ring dot product is m + s * cos(phi - phi0); the
  // closed form lets each candidate pixel pay one cos() instead of a
  // full spherical-to-Cartesian conversion plus dot product.  It agrees
  // with the batch path's ring_residual to ~1 ulp, within the
  // documented equivalence tolerance (see incremental.hpp).
  const double m = ring.axis.z * grid.row_cos(row);
  const double s = std::hypot(ring.axis.x, ring.axis.y) * grid.row_sin(row);
  const double phi0 = std::atan2(ring.axis.y, ring.axis.x);
  const BinRanges ranges = band_bin_ranges(bins, m, s, phi0, ring.eta, w);
  const double bin_w = core::kTwoPi / static_cast<double>(bins);
  const long lbins = bins;
  for (int k = 0; k < ranges.n; ++k) {
    for (long b = ranges.r[static_cast<std::size_t>(k)].first;
         b <= ranges.r[static_cast<std::size_t>(k)].second; ++b) {
      const auto az =
          static_cast<std::size_t>(((b % lbins) + lbins) % lbins);
      const double phi_c = (static_cast<double>(az) + 0.5) * bin_w;
      // Same contribution rule as the batch likelihood: only residuals
      // strictly inside the cap add excess.
      const double r = (m + s * std::cos(phi_c - phi0) - ring.eta) /
                       ring.d_eta;
      const double r2 = r * r;
      if (r2 < cap2) excess[base + az] += 0.5 * (cap2 - r2);
      ++touched;
    }
  }
}

std::size_t IncrementalLocalizer::fine_rows_of(std::size_t coarse_row,
                                               std::size_t& first) const {
  const auto factor = static_cast<std::size_t>(config_.coarse_factor);
  first = coarse_row * factor;
  const auto n_fine = static_cast<std::size_t>(fine_.n_rows());
  const std::size_t end = std::min(first + factor, n_fine);
  return end > first ? end - first : 0;
}

std::size_t IncrementalLocalizer::add_ring(const recon::ComptonRing& ring) {
  namespace tm = core::telemetry;
  static tm::Counter& rings_ctr = tm::counter("loc.incremental.rings");
  static tm::Counter& rejected_ctr =
      tm::counter("loc.incremental.rings_rejected");
  static tm::Histogram& update_ms =
      tm::histogram("loc.incremental.update_ms");
  static tm::Histogram& touched_hist =
      tm::histogram("loc.incremental.pixels_touched");

  if (!ring_usable(ring)) {
    ++rings_rejected_;
    rejected_ctr.add();
    return 0;
  }
  const tm::ScopedTimer timer(update_ms);
  rings_.push_back(ring);
  const double cap2 = config_.truncation_sigma * config_.truncation_sigma;
  std::size_t touched = 0;

  for (std::size_t row = 0;
       row < static_cast<std::size_t>(coarse_.n_rows()); ++row) {
    accumulate_band(coarse_, row, ring, cap2, coarse_excess_,
                    coarse_.row_offset(row), touched);
  }
  for (std::size_t cr = 0;
       cr < static_cast<std::size_t>(coarse_.n_rows()); ++cr) {
    if (!coarse_refined_[cr]) continue;
    std::size_t first = 0;
    const std::size_t count = fine_rows_of(cr, first);
    for (std::size_t fr = first; fr < first + count; ++fr) {
      accumulate_band(fine_, fr, ring, cap2, fine_excess_[fr], 0, touched);
    }
  }

  pixels_touched_ += touched;
  posterior_dirty_ = true;
  rings_ctr.add();
  touched_hist.record(static_cast<double>(touched));
  return touched;
}

std::size_t IncrementalLocalizer::add_rings(
    std::span<const recon::ComptonRing> rings) {
  std::size_t touched = 0;
  for (const auto& ring : rings) touched += add_ring(ring);
  return touched;
}

void IncrementalLocalizer::refine_coarse_row(std::size_t coarse_row) {
  if (coarse_refined_[coarse_row]) return;
  namespace tm = core::telemetry;
  static tm::Counter& refined_ctr =
      tm::counter("loc.incremental.rows_refined");
  const double cap2 = config_.truncation_sigma * config_.truncation_sigma;
  std::size_t first = 0;
  const std::size_t count = fine_rows_of(coarse_row, first);
  for (std::size_t fr = first; fr < first + count; ++fr) {
    fine_excess_[fr].assign(static_cast<std::size_t>(fine_.az_bins(fr)),
                            0.0);
    // Replay in arrival order so the sums are bit-identical to the
    // ones a from-the-start refined row would have accumulated.
    std::size_t touched = 0;
    for (const auto& ring : rings_) {
      accumulate_band(fine_, fr, ring, cap2, fine_excess_[fr], 0, touched);
    }
    pixels_touched_ += touched;
    refined_ctr.add();
  }
  coarse_refined_[coarse_row] = 1;
  posterior_dirty_ = true;
}

void IncrementalLocalizer::ensure_posterior() {
  if (!posterior_dirty_) return;

  const auto n_coarse_rows = static_cast<std::size_t>(coarse_.n_rows());

  // Decide which coarse rows deserve full resolution: the smallest set
  // holding `refine_mass_fraction` of the coarse posterior mass
  // (refinement is monotone, so previously refined rows stay).
  if (config_.refine_all) {
    for (std::size_t cr = 0; cr < n_coarse_rows; ++cr)
      refine_coarse_row(cr);
  } else {
    std::vector<double> coarse_prob;
    normalize_log_posterior(coarse_, coarse_excess_, coarse_prob);
    std::vector<double> row_mass(n_coarse_rows, 0.0);
    for (std::size_t cr = 0; cr < n_coarse_rows; ++cr) {
      const std::size_t off = coarse_.row_offset(cr);
      const auto bins = static_cast<std::size_t>(coarse_.az_bins(cr));
      for (std::size_t b = 0; b < bins; ++b)
        row_mass[cr] += coarse_prob[off + b];
    }
    std::vector<std::size_t> order(n_coarse_rows);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (row_mass[a] != row_mass[b])
                  return row_mass[a] > row_mass[b];
                return a < b;  // deterministic tie-break
              });
    double mass = 0.0;
    for (const std::size_t cr : order) {
      refine_coarse_row(cr);
      mass += row_mass[cr];
      if (mass >= config_.refine_mass_fraction) break;
    }
  }

  // Assemble the mixed posterior: refined rows contribute their fine
  // pixels, unrefined rows their coarse pixels.
  mixed_value_.clear();
  mixed_sa_.clear();
  fine_row_off_.assign(static_cast<std::size_t>(fine_.n_rows()), kNpos);
  coarse_row_off_.assign(n_coarse_rows, kNpos);
  for (std::size_t cr = 0; cr < n_coarse_rows; ++cr) {
    if (coarse_refined_[cr]) {
      std::size_t first = 0;
      const std::size_t count = fine_rows_of(cr, first);
      for (std::size_t fr = first; fr < first + count; ++fr) {
        fine_row_off_[fr] = mixed_value_.size();
        const double sa = fine_.row_pixel_solid_angle_deg2(fr);
        for (const double v : fine_excess_[fr]) {
          mixed_value_.push_back(v);
          mixed_sa_.push_back(sa);
        }
      }
    } else {
      coarse_row_off_[cr] = mixed_value_.size();
      const std::size_t off = coarse_.row_offset(cr);
      const auto bins = static_cast<std::size_t>(coarse_.az_bins(cr));
      const double sa = coarse_.row_pixel_solid_angle_deg2(cr);
      for (std::size_t b = 0; b < bins; ++b) {
        mixed_value_.push_back(coarse_excess_[off + b]);
        mixed_sa_.push_back(sa);
      }
    }
  }

  // Stable softmax over the mixed entries with their solid-angle
  // weights; same degenerate semantics as normalize_log_posterior.
  const std::size_t total = mixed_value_.size();
  mixed_prob_.assign(total, 0.0);
  double max_v = -std::numeric_limits<double>::infinity();
  bool any_finite = false;
  for (const double v : mixed_value_) {
    if (std::isfinite(v) && (!any_finite || v > max_v)) {
      max_v = v;
      any_finite = true;
    }
  }
  double norm = 0.0;
  if (any_finite) {
    for (std::size_t i = 0; i < total; ++i) {
      const double v = mixed_value_[i];
      const double m =
          std::isfinite(v) ? std::exp(v - max_v) * mixed_sa_[i] : 0.0;
      mixed_prob_[i] = m;
      norm += m;
    }
  }
  if (!(norm > 0.0) || !std::isfinite(norm)) {
    static auto& degenerate_ctr =
        core::telemetry::counter("loc.skymap.degenerate");
    degenerate_ctr.add();
    double total_sa = 0.0;
    for (const double sa : mixed_sa_) total_sa += sa;
    for (std::size_t i = 0; i < total; ++i)
      mixed_prob_[i] = mixed_sa_[i] / total_sa;
    degenerate_ = true;
  } else {
    for (double& p : mixed_prob_) p /= norm;
    degenerate_ = false;
  }
  posterior_dirty_ = false;
}

Vec3 IncrementalLocalizer::peak() {
  ensure_posterior();
  // The peak lives in the refined set by construction (the refined
  // rows hold >= refine_mass_fraction of the posterior, and mass per
  // pixel peaks where density does at near-equal pixel areas).
  double best = -1.0;
  std::size_t best_row = kNpos;
  std::size_t best_az = 0;
  for (std::size_t fr = 0; fr < fine_row_off_.size(); ++fr) {
    const std::size_t off = fine_row_off_[fr];
    if (off == kNpos) continue;
    const auto bins = static_cast<std::size_t>(fine_.az_bins(fr));
    for (std::size_t b = 0; b < bins; ++b) {
      if (mixed_prob_[off + b] > best) {
        best = mixed_prob_[off + b];
        best_row = fr;
        best_az = b;
      }
    }
  }
  if (best_row != kNpos) return fine_.pixel_center(best_row, best_az);
  // No refined row (can only happen with refine_mass_fraction so small
  // the first row already covers it and zero-mass coarse posterior):
  // fall back to the coarse argmax.
  const auto it = std::max_element(mixed_prob_.begin(), mixed_prob_.end());
  const auto mi =
      static_cast<std::size_t>(std::distance(mixed_prob_.begin(), it));
  for (std::size_t cr = 0; cr < coarse_row_off_.size(); ++cr) {
    const std::size_t off = coarse_row_off_[cr];
    if (off == kNpos) continue;
    const auto bins = static_cast<std::size_t>(coarse_.az_bins(cr));
    if (mi >= off && mi < off + bins)
      return coarse_.pixel_center(cr, mi - off);
  }
  return Vec3{0.0, 0.0, 1.0};
}

double IncrementalLocalizer::credible_region_area_deg2(double content) {
  ADAPT_REQUIRE(std::isfinite(content) && content > 0.0 && content < 1.0,
                "credible content in (0, 1)");
  ensure_posterior();
  ADAPT_REQUIRE(!mixed_prob_.empty(), "credible region of an empty map");
  // Greedy density cut, like the batch map: posterior density is
  // monotone in the excess value, so sort by value (deterministic
  // index tie-break).
  std::vector<std::size_t> order(mixed_value_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (mixed_value_[a] != mixed_value_[b])
      return mixed_value_[a] > mixed_value_[b];
    return a < b;
  });
  double mass = 0.0;
  double area = 0.0;
  for (const std::size_t i : order) {
    mass += mixed_prob_[i];
    area += mixed_sa_[i];
    if (mass >= content) break;
  }
  return area;
}

double IncrementalLocalizer::credible_radius_deg(double content) {
  return std::sqrt(credible_region_area_deg2(content) / core::kPi);
}

double IncrementalLocalizer::probability_at(const Vec3& direction) {
  ensure_posterior();
  const auto pixel = fine_.pixel_of(direction);
  if (!pixel) return 0.0;
  const std::size_t fr = fine_.row_of(*pixel);
  const std::size_t az = *pixel - fine_.row_offset(fr);
  if (fine_row_off_[fr] != kNpos)
    return mixed_prob_[fine_row_off_[fr] + az];
  // Unrefined row: approximate the fine pixel's mass by its share of
  // the coarse pixel under locally uniform density.
  const auto cpixel = coarse_.pixel_of(direction);
  if (!cpixel) return 0.0;
  const std::size_t cr = coarse_.row_of(*cpixel);
  const std::size_t caz = *cpixel - coarse_.row_offset(cr);
  if (coarse_row_off_[cr] == kNpos) return 0.0;
  return mixed_prob_[coarse_row_off_[cr] + caz] *
         fine_.row_pixel_solid_angle_deg2(fr) /
         coarse_.row_pixel_solid_angle_deg2(cr);
}

bool IncrementalLocalizer::degenerate() {
  ensure_posterior();
  return degenerate_;
}

SkyMap IncrementalLocalizer::snapshot() {
  for (std::size_t cr = 0;
       cr < static_cast<std::size_t>(coarse_.n_rows()); ++cr) {
    refine_coarse_row(cr);
  }
  std::vector<double> log_post(fine_.n_pixels());
  for (std::size_t fr = 0;
       fr < static_cast<std::size_t>(fine_.n_rows()); ++fr) {
    std::copy(fine_excess_[fr].begin(), fine_excess_[fr].end(),
              log_post.begin() +
                  static_cast<std::ptrdiff_t>(fine_.row_offset(fr)));
  }
  return SkyMap::from_log_posterior(
      fine_, log_post,
      SkyMapConfig{config_.resolution_deg, config_.truncation_sigma,
                   config_.max_polar_deg});
}

std::size_t IncrementalLocalizer::refined_fine_rows() const {
  std::size_t n = 0;
  for (const auto& row : fine_excess_)
    if (!row.empty()) ++n;
  return n;
}

}  // namespace adapt::loc
