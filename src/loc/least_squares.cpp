#include "loc/least_squares.hpp"

#include <cmath>

#include "core/mat3.hpp"
#include "core/require.hpp"
#include "loc/likelihood.hpp"

namespace adapt::loc {

using core::Mat3;
using core::Vec3;

std::optional<Vec3> fit_direction(std::span<const recon::ComptonRing> rings,
                                  std::span<const std::uint8_t> mask,
                                  const LeastSquaresConfig& config,
                                  std::optional<Vec3> initial) {
  ADAPT_REQUIRE(mask.empty() || mask.size() == rings.size(),
                "mask size must match ring count");

  // Assemble the normal equations once; both the seed and every
  // Gauss-Newton step reuse them.
  Mat3 a = Mat3::zero();
  Vec3 b{};
  std::size_t used = 0;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const auto& ring = rings[i];
    const double w = ring_weight(ring);
    a += Mat3::outer(ring.axis, ring.axis) * w;
    b += ring.axis * (w * ring.eta);
    ++used;
  }
  if (used < 2) return std::nullopt;

  // Seed: normalized unconstrained minimizer (or the caller's guess).
  Vec3 s;
  if (initial) {
    s = initial->normalized();
  } else {
    Vec3 x;
    double damping = config.damping;
    bool ok = core::solve_damped(a, b, damping, x);
    while (!ok && damping < 1.0) {
      damping *= 100.0;
      ok = core::solve_damped(a, b, damping, x);
    }
    if (!ok || x.norm() < 1e-12) return std::nullopt;
    s = x.normalized();
  }

  // Tangent-plane Gauss-Newton.  For F(s) = sum w (c.s - eta)^2 the
  // gradient restricted to the sphere uses the projected axis
  // p_i = c_i - (c_i.s) s; the Gauss-Newton Hessian is sum w p p^T.
  for (int it = 0; it < config.max_iterations; ++it) {
    Mat3 h = Mat3::zero();
    Vec3 g{};
    for (std::size_t i = 0; i < rings.size(); ++i) {
      if (!mask.empty() && !mask[i]) continue;
      const auto& ring = rings[i];
      const double w = ring_weight(ring);
      const double cs = ring.axis.dot(s);
      const Vec3 p = ring.axis - s * cs;
      h += Mat3::outer(p, p) * w;
      g += p * (w * (cs - ring.eta));
    }
    Vec3 delta;
    // The Hessian is rank <= 2 (tangent plane); damping along s makes
    // the 3x3 solve well posed without biasing the tangent step.
    if (!core::solve_damped(h, -1.0 * g, config.damping + 1e-12, delta))
      return std::nullopt;
    delta -= s * delta.dot(s);  // Stay in the tangent plane.
    s = (s + delta).normalized();
    if (delta.norm() < config.step_tolerance) break;
  }
  return s;
}

}  // namespace adapt::loc
