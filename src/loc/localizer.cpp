#include "loc/localizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/require.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"
#include "loc/likelihood.hpp"

namespace adapt::loc {

namespace tm = core::telemetry;

using core::Vec3;

Localizer::Localizer(const LocalizerConfig& config) : config_(config) {
  ADAPT_REQUIRE(config.approximation.sample_rings >= 1,
                "approximation sample must be >= 1");
  ADAPT_REQUIRE(config.approximation.candidates_per_ring >= 4,
                "need at least a few candidates per ring");
  ADAPT_REQUIRE(config.refine.inclusion_sigma > 0.0,
                "inclusion sigma must be positive");
}

std::vector<Vec3> Localizer::approximate_candidates(
    std::span<const recon::ComptonRing> input, core::Rng& rng) const {
  // Rings with a NaN/zero d_eta or non-finite geometry would poison
  // every candidate's likelihood score; drop (and count) them up
  // front.
  std::vector<recon::ComptonRing> storage;
  const std::span<const recon::ComptonRing> rings =
      usable_rings(input, storage);
  if (rings.empty()) return {};
  const auto& cfg = config_.approximation;

  // Draw the random ring sample (without replacement via partial
  // Fisher-Yates over an index vector).
  std::vector<std::size_t> index(rings.size());
  for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
  const std::size_t m =
      std::min<std::size_t>(static_cast<std::size_t>(cfg.sample_rings),
                            rings.size());
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_index(index.size() - i));
    std::swap(index[i], index[j]);
  }

  // Candidate directions: points on each sampled ring's cone.  The
  // sample bounds the *candidate geometry*; scoring uses either the
  // sample (the paper's cheapest variant) or, by default, the full
  // ring set, which ranks the true mode far more reliably under heavy
  // background.
  std::vector<recon::ComptonRing> sample;
  sample.reserve(m);
  for (std::size_t i = 0; i < m; ++i) sample.push_back(rings[index[i]]);
  const std::span<const recon::ComptonRing> scoring_set =
      cfg.score_against_all ? rings
                            : std::span<const recon::ComptonRing>(sample);

  struct Scored {
    double nll;
    Vec3 dir;
  };
  std::vector<Scored> scored;
  scored.reserve(m * static_cast<std::size_t>(cfg.candidates_per_ring));
  for (const auto& ring : sample) {
    const double eta = std::clamp(ring.eta, -1.0, 1.0);
    const double theta = std::acos(eta);
    for (int k = 0; k < cfg.candidates_per_ring; ++k) {
      const double phi =
          core::kTwoPi * static_cast<double>(k) /
          static_cast<double>(cfg.candidates_per_ring);
      const Vec3 candidate = core::rotate_about_axis(ring.axis, theta, phi);
      if (cfg.restrict_to_upper_sky && candidate.z < 0.0) continue;
      scored.push_back(Scored{
          truncated_neg_log_likelihood(scoring_set, candidate,
                                       cfg.truncation_sigma),
          candidate});
    }
  }
  static tm::Counter& candidates_scored = tm::counter("loc.candidates_scored");
  candidates_scored.add(scored.size());
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.nll < b.nll; });

  // Keep the top n_starts candidates, skipping near-duplicates so the
  // starts actually explore distinct likelihood modes.
  constexpr double kMinSeparationCos = 0.995;  // ~5.7 degrees.
  std::vector<Vec3> seeds;
  for (const Scored& s : scored) {
    if (static_cast<int>(seeds.size()) >= cfg.n_starts) break;
    bool duplicate = false;
    for (const Vec3& kept : seeds) {
      if (kept.dot(s.dir) > kMinSeparationCos) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) seeds.push_back(s.dir);
  }
  return seeds;
}

std::optional<Vec3> Localizer::approximate(
    std::span<const recon::ComptonRing> rings, core::Rng& rng) const {
  const auto seeds = approximate_candidates(rings, rng);
  if (seeds.empty()) return std::nullopt;
  return seeds.front();
}

LocalizationResult Localizer::refine(std::span<const recon::ComptonRing> input,
                                     const Vec3& initial) const {
  const auto& cfg = config_.refine;
  LocalizationResult result;
  result.rings_total = input.size();
  result.direction = initial.normalized();

  // Same hygiene as the approximation stage: a single NaN d_eta in the
  // residual would silently wreck the inclusion cut and the fit.
  std::vector<recon::ComptonRing> storage;
  const std::span<const recon::ComptonRing> rings =
      usable_rings(input, storage);
  if (rings.size() < 2) return result;

  std::vector<std::uint8_t> mask(rings.size(), 1);
  Vec3 s = result.direction;

  for (int it = 0; it < cfg.max_iterations; ++it) {
    result.iterations = it + 1;

    // Select rings consistent with the current estimate; relax the cut
    // rather than proceed with too few.
    double cut = cfg.inclusion_sigma;
    std::size_t kept = 0;
    for (int relax = 0; relax <= cfg.max_relaxations; ++relax) {
      kept = 0;
      for (std::size_t i = 0; i < rings.size(); ++i) {
        const bool keep = std::abs(ring_residual(rings[i], s)) < cut;
        mask[i] = keep ? 1 : 0;
        if (keep) ++kept;
      }
      if (kept >= std::min(cfg.min_rings, rings.size())) break;
      cut *= cfg.relax_factor;
    }
    if (kept < 2) break;

    const auto next = fit_direction(
        rings, std::span<const std::uint8_t>(mask.data(), mask.size()),
        cfg.least_squares, s);
    if (!next) break;

    const double step = core::angle_between(s, *next);
    s = *next;
    result.direction = s;
    result.valid = true;
    result.rings_used = kept;
    if (step < cfg.convergence_angle_rad) {
      result.converged = true;
      break;
    }
  }
  static tm::Counter& refine_iterations = tm::counter("loc.refine_iterations");
  refine_iterations.add(static_cast<std::uint64_t>(result.iterations));
  return result;
}

LocalizationResult Localizer::localize(
    std::span<const recon::ComptonRing> input, core::Rng& rng) const {
  // Sanitize once here; the nested approximation/refinement calls then
  // see only usable rings (their own validation pass is a cheap
  // no-copy scan) and rejected rings are counted exactly once.
  std::vector<recon::ComptonRing> storage;
  const std::span<const recon::ComptonRing> rings =
      usable_rings(input, storage);

  // No seeds means no estimate is possible — every candidate was
  // filtered (e.g. restrict_to_upper_sky against a below-horizon cone
  // population) or no ring was usable.  The result must say so
  // explicitly: a default-constructed LocalizationResult carries
  // valid=false and a zero direction, never a stale estimate.
  const auto seeds = approximate_candidates(rings, rng);
  if (seeds.empty()) {
    static tm::Counter& no_seeds = tm::counter("loc.localize_invalid.no_seeds");
    no_seeds.add();
    LocalizationResult r;
    r.valid = false;
    r.rings_total = input.size();
    return r;
  }

  // Multi-start: refine each seed, keep the direction whose truncated
  // joint likelihood over *all* rings is best.
  LocalizationResult best;
  best.rings_total = input.size();
  double best_nll = std::numeric_limits<double>::infinity();
  for (const Vec3& seed : seeds) {
    const LocalizationResult candidate = refine(rings, seed);
    if (!candidate.valid) continue;
    const double nll = truncated_neg_log_likelihood(
        rings, candidate.direction, config_.approximation.truncation_sigma);
    if (nll < best_nll) {
      best_nll = nll;
      best = candidate;
    }
  }
  if (!best.valid) {
    // Every seed's refinement failed (fewer than two usable rings, or
    // no stable fit): surface the failure instead of a default
    // direction that looks like an estimate.
    static tm::Counter& refine_failed =
        tm::counter("loc.localize_invalid.refine_failed");
    refine_failed.add();
  }
  best.rings_total = input.size();  // Report against the raw input,
                                    // including any sanitized-away rings.
  return best;
}

}  // namespace adapt::loc
