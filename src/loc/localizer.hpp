#pragma once

/// \file localizer.hpp
/// GRB source localization from a set of Compton rings (paper
/// Sec. II-B): an approximation stage that seeds the estimate from a
/// small random sample of rings, followed by robust iterative
/// least-squares refinement over all rings.
///
/// Robustness matters because the input mix contains background rings
/// (2-3x the GRB rings) and mis-reconstructed rings; each refinement
/// pass re-selects the rings statistically consistent with the current
/// estimate before re-fitting.

#include <optional>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "core/vec3.hpp"
#include "loc/least_squares.hpp"
#include "recon/ring.hpp"

namespace adapt::loc {

struct ApproximationConfig {
  int sample_rings = 16;        ///< Size of the random ring sample.
  int candidates_per_ring = 48; ///< Azimuth steps around each cone.
  int n_starts = 6;             ///< Top candidates refined in the
                                ///< multi-start search.
  double truncation_sigma = 3.0;  ///< Residual cap of the robust
                                  ///< candidate score.
  bool score_against_all = true;  ///< Score candidates on every ring
                                  ///< rather than only the sample.
                                  ///< With 2-3x background the sample
                                  ///< alone is too noisy to rank the
                                  ///< true mode first; scoring is
                                  ///< O(candidates x rings) and cheap.
  bool restrict_to_upper_sky = true;  ///< Earth blocks sources below
                                      ///< the horizon (z < 0).
};

struct RefineConfig {
  int max_iterations = 10;
  double convergence_angle_rad = 1e-4;  ///< ~0.006 degrees.
  double inclusion_sigma = 3.0;  ///< Ring kept when |residual| < this.
  std::size_t min_rings = 5;     ///< Relax the cut rather than fit
                                 ///< fewer rings than this.
  double relax_factor = 1.6;     ///< Cut multiplier when relaxing.
  int max_relaxations = 6;
  LeastSquaresConfig least_squares;
};

struct LocalizerConfig {
  ApproximationConfig approximation;
  RefineConfig refine;
};

struct LocalizationResult {
  core::Vec3 direction;        ///< Estimated unit source direction.
  bool valid = false;          ///< False when no estimate possible.
  bool converged = false;      ///< Refinement met its tolerance.
  int iterations = 0;          ///< Refinement iterations executed.
  std::size_t rings_used = 0;  ///< Rings in the final inlier set.
  std::size_t rings_total = 0;
};

class Localizer {
 public:
  explicit Localizer(const LocalizerConfig& config = {});

  /// Approximation stage: candidate directions on a random sample of
  /// ring cones, scored by the sample's truncated joint likelihood.
  /// Returns the best candidate.
  std::optional<core::Vec3> approximate(
      std::span<const recon::ComptonRing> rings, core::Rng& rng) const;

  /// The `n_starts` best-scoring, mutually well-separated candidates
  /// (the multi-start seeds of localize()).
  std::vector<core::Vec3> approximate_candidates(
      std::span<const recon::ComptonRing> rings, core::Rng& rng) const;

  /// Robust refinement from an initial direction, using all rings.
  LocalizationResult refine(std::span<const recon::ComptonRing> rings,
                            const core::Vec3& initial) const;

  /// Full pipeline: multi-start — refine every approximation
  /// candidate, keep the result with the best truncated joint
  /// likelihood over all rings.  Multi-start matters because with
  /// 2-3x background a single seed can lock the robust refinement
  /// onto a coincidental background cluster.
  LocalizationResult localize(std::span<const recon::ComptonRing> rings,
                              core::Rng& rng) const;

  const LocalizerConfig& config() const { return config_; }

 private:
  LocalizerConfig config_;
};

}  // namespace adapt::loc
