#pragma once

/// \file grid_search.hpp
/// Brute-force reference localizer: exhaustively evaluate the
/// truncated joint likelihood over a fine directional grid, then polish
/// the winning cell with the constrained least-squares refinement.
///
/// Orders of magnitude slower than the production approximation +
/// refinement pipeline, but free of sampling and multi-start effects —
/// the gold standard the fast localizer is validated against (see
/// tests/loc and bench_ablation_localizer), and a debugging fallback
/// when a burst's geometry defeats the fast path.

#include <span>

#include "loc/localizer.hpp"
#include "recon/ring.hpp"

namespace adapt::loc {

struct GridSearchConfig {
  double coarse_resolution_deg = 2.0;  ///< Global scan pitch.
  double fine_resolution_deg = 0.25;   ///< Local re-scan pitch.
  double fine_radius_deg = 4.0;        ///< Re-scan radius around the
                                       ///< coarse winner.
  double truncation_sigma = 3.0;
  bool restrict_to_upper_sky = true;
  RefineConfig refine;  ///< Final least-squares polish.
};

/// Exhaustive maximum-likelihood localization.  Returns an invalid
/// result only for degenerate inputs (< 2 rings).
LocalizationResult grid_search_localize(
    std::span<const recon::ComptonRing> rings,
    const GridSearchConfig& config = {});

}  // namespace adapt::loc
