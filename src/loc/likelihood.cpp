#include "loc/likelihood.hpp"

#include "core/require.hpp"

namespace adapt::loc {

double ring_residual(const recon::ComptonRing& ring, const core::Vec3& s) {
  ADAPT_REQUIRE(ring.d_eta > 0.0, "ring has non-positive d_eta");
  return (ring.axis.dot(s) - ring.eta) / ring.d_eta;
}

double neg_log_likelihood(std::span<const recon::ComptonRing> rings,
                          const core::Vec3& s) {
  double nll = 0.0;
  for (const auto& ring : rings) {
    const double r = ring_residual(ring, s);
    nll += 0.5 * r * r;
  }
  return nll;
}

double truncated_neg_log_likelihood(std::span<const recon::ComptonRing> rings,
                                    const core::Vec3& s, double cap_sigma) {
  ADAPT_REQUIRE(cap_sigma > 0.0, "cap must be positive");
  const double cap2 = cap_sigma * cap_sigma;
  double nll = 0.0;
  for (const auto& ring : rings) {
    const double r = ring_residual(ring, s);
    const double r2 = r * r;
    nll += 0.5 * (r2 < cap2 ? r2 : cap2);
  }
  return nll;
}

double ring_weight(const recon::ComptonRing& ring) {
  ADAPT_REQUIRE(ring.d_eta > 0.0, "ring has non-positive d_eta");
  return 1.0 / (ring.d_eta * ring.d_eta);
}

}  // namespace adapt::loc
