#include "loc/likelihood.hpp"

#include <cmath>

#include "core/require.hpp"
#include "core/telemetry.hpp"

namespace adapt::loc {

bool ring_usable(const recon::ComptonRing& ring) {
  return std::isfinite(ring.d_eta) && ring.d_eta > 0.0 &&
         std::isfinite(ring.eta) && std::isfinite(ring.axis.x) &&
         std::isfinite(ring.axis.y) && std::isfinite(ring.axis.z);
}

std::span<const recon::ComptonRing> usable_rings(
    std::span<const recon::ComptonRing> rings,
    std::vector<recon::ComptonRing>& storage) {
  std::size_t bad = 0;
  for (const auto& r : rings)
    if (!ring_usable(r)) ++bad;
  if (bad == 0) return rings;

  namespace tm = core::telemetry;
  static tm::Counter& bad_deta = tm::counter("loc.rings_rejected.bad_deta");
  static tm::Counter& non_finite =
      tm::counter("loc.rings_rejected.non_finite");
  storage.clear();
  storage.reserve(rings.size() - bad);
  for (const auto& r : rings) {
    if (ring_usable(r)) {
      storage.push_back(r);
    } else if (!(std::isfinite(r.d_eta) && r.d_eta > 0.0)) {
      bad_deta.add();
    } else {
      non_finite.add();
    }
  }
  return storage;
}

double ring_residual(const recon::ComptonRing& ring, const core::Vec3& s) {
  ADAPT_REQUIRE(ring.d_eta > 0.0, "ring has non-positive d_eta");
  return (ring.axis.dot(s) - ring.eta) / ring.d_eta;
}

double neg_log_likelihood(std::span<const recon::ComptonRing> rings,
                          const core::Vec3& s) {
  double nll = 0.0;
  for (const auto& ring : rings) {
    const double r = ring_residual(ring, s);
    nll += 0.5 * r * r;
  }
  return nll;
}

double truncated_neg_log_likelihood(std::span<const recon::ComptonRing> rings,
                                    const core::Vec3& s, double cap_sigma) {
  ADAPT_REQUIRE(cap_sigma > 0.0, "cap must be positive");
  const double cap2 = cap_sigma * cap_sigma;
  double nll = 0.0;
  for (const auto& ring : rings) {
    const double r = ring_residual(ring, s);
    const double r2 = r * r;
    nll += 0.5 * (r2 < cap2 ? r2 : cap2);
  }
  return nll;
}

double ring_weight(const recon::ComptonRing& ring) {
  ADAPT_REQUIRE(ring.d_eta > 0.0, "ring has non-positive d_eta");
  return 1.0 / (ring.d_eta * ring.d_eta);
}

}  // namespace adapt::loc
