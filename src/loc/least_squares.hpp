#pragma once

/// \file least_squares.hpp
/// The "almost-linear least-squares" core of localization (paper
/// Sec. II-B and ref [4]).
///
/// Maximizing the joint ring likelihood over unit vectors s minimizes
///
///   F(s) = sum_i w_i (c_i . s - eta_i)^2,   w_i = 1 / d_eta_i^2,
///
/// subject to |s| = 1.  The problem is "almost linear": dropping the
/// unit constraint gives the 3x3 normal equations A s = b with
/// A = sum w c c^T and b = sum w eta c, whose normalized solution is
/// an excellent seed.  The constraint is then enforced exactly by a
/// few Gauss-Newton steps in the tangent plane of the sphere, which
/// converge quadratically.

#include <cstdint>
#include <optional>
#include <span>

#include "core/vec3.hpp"
#include "recon/ring.hpp"

namespace adapt::loc {

struct LeastSquaresConfig {
  int max_iterations = 16;       ///< Tangent Gauss-Newton steps.
  double step_tolerance = 1e-10; ///< Stop when |delta s| falls below.
  double damping = 1e-9;         ///< Tikhonov floor for degeneracy.
};

/// Weighted direction fit over `rings`, optionally restricted to the
/// subset flagged in `mask` (mask empty = use all; otherwise
/// mask.size() == rings.size()).  `initial`, when given, seeds the
/// constrained iteration (refinement passes the previous estimate).
/// Returns nullopt when fewer than two usable rings remain or the
/// system is degenerate.
std::optional<core::Vec3> fit_direction(
    std::span<const recon::ComptonRing> rings,
    std::span<const std::uint8_t> mask = {},
    const LeastSquaresConfig& config = {},
    std::optional<core::Vec3> initial = std::nullopt);

}  // namespace adapt::loc
