#pragma once

/// \file sky_grid.hpp
/// Shared sky-pixelization geometry for the posterior localizers.
///
/// Both the batch SkyMap (full-grid recompute, skymap.hpp) and the
/// streaming IncrementalLocalizer (per-ring accumulator,
/// incremental.hpp) evaluate the ring likelihood on the same
/// equal-angle-row / sin-scaled-azimuth grid.  Pixel indexing, center
/// directions, solid angles, and — critically — the direction->pixel
/// mapping live here so the two paths cannot disagree about which
/// pixel a boundary direction belongs to.
///
/// Boundary contract of pixel_of():
///   - polar angle in [0, max_polar_deg] maps to a valid pixel; the
///     field-of-view edge itself (polar == max_polar_deg, e.g. a
///     horizon vector with z == 0) belongs to the last row.  A
///     floating-point slop of kFovEdgeTolDeg absorbs rad->deg rounding
///     at the edge.
///   - beyond the edge (or a non-finite direction): std::nullopt.
///   - azimuth is wrapped into [0, 2*pi); values landing exactly on
///     2*pi (atan2 rounding) clamp into the row's last bin, never out
///     of range.
///
/// normalize_log_posterior() turns per-pixel log-likelihoods into a
/// normalized posterior with solid-angle weights, with explicit
/// degenerate handling: when no pixel carries finite mass (all
/// log-likelihoods -inf/NaN, or the normalization sum is zero or
/// non-finite) it returns false, produces the *uniform* solid-angle
/// posterior instead of NaNs, and counts `loc.skymap.degenerate`.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/vec3.hpp"

namespace adapt::loc {

/// Degrees of slop accepted past the field-of-view edge before a
/// direction stops mapping to a pixel (covers acos/rad_to_deg rounding
/// for directions mathematically on the edge).
inline constexpr double kFovEdgeTolDeg = 1e-9;

class SkyGrid {
 public:
  SkyGrid() = default;

  /// Equal-angle rows of `resolution_deg` pitch from the zenith down to
  /// `max_polar_deg`; azimuth bins per row scale with sin(polar) so
  /// pixels keep roughly equal solid angle.
  SkyGrid(double resolution_deg, double max_polar_deg);

  double resolution_deg() const { return resolution_deg_; }
  double max_polar_deg() const { return max_polar_deg_; }
  int n_rows() const { return n_polar_; }
  std::size_t n_pixels() const { return total_; }

  int az_bins(std::size_t row) const { return az_bins_[row]; }
  std::size_t row_offset(std::size_t row) const { return row_offset_[row]; }
  std::size_t row_of(std::size_t index) const;

  /// Polar angle [rad] of the row's pixel centers.
  double row_polar_rad(std::size_t row) const;

  /// Cached cos/sin of the row's center polar angle (hot in the
  /// incremental band updates, where every candidate pixel needs the
  /// ring dot product).
  double row_cos(std::size_t row) const { return row_cos_[row]; }
  double row_sin(std::size_t row) const { return row_sin_[row]; }

  core::Vec3 pixel_center(std::size_t index) const;
  core::Vec3 pixel_center(std::size_t row, std::size_t az) const;

  /// Solid angle [deg^2] of one pixel in `row` (all pixels of a row
  /// are congruent).
  double row_pixel_solid_angle_deg2(std::size_t row) const {
    return row_sa_deg2_[row];
  }
  double pixel_solid_angle_deg2(std::size_t index) const {
    return row_sa_deg2_[row_of(index)];
  }

  /// Pixel containing `direction`, or nullopt outside the field of
  /// view (see the boundary contract in the file comment).
  std::optional<std::size_t> pixel_of(const core::Vec3& direction) const;

 private:
  double resolution_deg_ = 0.0;
  double max_polar_deg_ = 0.0;
  int n_polar_ = 0;
  std::size_t total_ = 0;
  std::vector<int> az_bins_;
  std::vector<std::size_t> row_offset_;
  std::vector<double> row_sa_deg2_;
  std::vector<double> row_cos_;
  std::vector<double> row_sin_;
};

/// Normalize per-pixel log-posterior values into probability masses
/// with solid-angle weights (stable softmax).  Returns true on a valid
/// posterior.  Returns false on a degenerate one — no pixel with
/// finite mass, or a zero/non-finite normalization sum — in which case
/// `probability` holds the uniform solid-angle posterior (never NaN)
/// and the `loc.skymap.degenerate` telemetry counter is bumped.
/// Non-finite individual log values contribute zero mass; they poison
/// neither their neighbours nor the normalization.
bool normalize_log_posterior(const SkyGrid& grid,
                             std::span<const double> log_post,
                             std::vector<double>& probability);

}  // namespace adapt::loc
