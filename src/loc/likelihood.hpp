#pragma once

/// \file likelihood.hpp
/// Probabilistic model tying Compton rings to a source direction.
///
/// Per the paper (footnote 1), each ring defines a radially symmetric
/// Gaussian probability density for the source direction, centered on
/// the cone c.s = eta with width d_eta in cosine space:
///
///   -log P(s | ring_i) = (c_i . s - eta_i)^2 / (2 d_eta_i^2) + const.
///
/// Localization maximizes the joint likelihood over all rings, i.e.
/// minimizes the weighted sum of squared cosine residuals.

#include <span>
#include <vector>

#include "core/vec3.hpp"
#include "recon/ring.hpp"

namespace adapt::loc {

/// True when the ring can be fed to the likelihood: finite axis and
/// eta, finite positive d_eta.  A NaN d_eta (or d_eta == 0 from an
/// upstream bug or a corrupt ring file) would otherwise turn every
/// residual — and hence the whole NLL surface — into garbage.
bool ring_usable(const recon::ComptonRing& ring);

/// The usable subset of `rings`.  When every ring is usable the input
/// span itself is returned and `storage` is untouched (the common case
/// costs one validation pass, no copy).  Dropped rings are counted in
/// the `loc.rings_rejected.bad_deta` / `loc.rings_rejected.non_finite`
/// telemetry counters by reason.
std::span<const recon::ComptonRing> usable_rings(
    std::span<const recon::ComptonRing> rings,
    std::vector<recon::ComptonRing>& storage);

/// Standardized residual of one ring for a candidate direction:
/// (c.s - eta) / d_eta.
double ring_residual(const recon::ComptonRing& ring, const core::Vec3& s);

/// Joint negative log-likelihood (up to the ring-independent constant)
/// of direction `s` for a set of rings.
double neg_log_likelihood(std::span<const recon::ComptonRing> rings,
                          const core::Vec3& s);

/// Outlier-robust variant: each ring's squared residual is capped at
/// `cap_sigma`^2, so rings far from the candidate (background or
/// mis-reconstructed — routinely 2-3x the signal) contribute a bounded
/// penalty instead of dominating the sum.  This is the score the
/// approximation stage and the multi-start selection use; without the
/// cap a candidate near the true source is out-voted by the quadratic
/// penalty of every background ring.
double truncated_neg_log_likelihood(std::span<const recon::ComptonRing> rings,
                                    const core::Vec3& s,
                                    double cap_sigma = 3.0);

/// Per-ring Gaussian weight w = 1 / d_eta^2 used by the least-squares
/// normal equations.
double ring_weight(const recon::ComptonRing& ring);

}  // namespace adapt::loc
