#pragma once

/// \file stats.hpp
/// Statistics utilities used by the evaluation harness: running
/// moments for timing tables, and the 68%/95% containment estimator
/// that every localization figure in the paper reports.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adapt::core {

/// Streaming mean/variance/min/max (Welford).  Used for the timing
/// tables (mean + range over 300 runs).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of `values` by linear interpolation between order
/// statistics (type-7, the numpy default).  `q` in [0, 1].  The input
/// is copied; an empty input returns 0.
double quantile(std::vector<double> values, double q);

/// Containment statistic as defined in the paper (Sec. II): the
/// largest error observed in at most a fraction `level` of the trials.
/// That is the ceil(level*n)-th smallest value — a conservative
/// order-statistic rather than an interpolated quantile.
double containment(std::vector<double> errors, double level);

/// 68% and 95% containment of a set of angular errors, plus the trial
/// count — the tuple every localization figure plots.
struct Containment {
  double c68 = 0.0;
  double c95 = 0.0;
  std::size_t trials = 0;
};

Containment containment_68_95(std::vector<double> errors);

/// Mean and sample standard deviation of a vector (for meta-trial
/// error bars).  Empty input yields zeros.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};

MeanStd mean_std(const std::vector<double>& values);

/// Natural log of the Poisson upper tail, ln P(X >= k | mu).  Exact
/// series in log space for the tail (k > mu); returns 0 (p = 1) for
/// k = 0.  The burst trigger's core statistic.
double poisson_tail_log_p(std::uint64_t k, double mu);

/// Quantile (inverse CDF) of the standard normal distribution
/// (Acklam's rational approximation, |error| < 1.2e-9).
double normal_quantile(double p);

/// Gaussian-sigma significance of observing >= k events when mu are
/// expected: sigma = -Phi^-1(P(X >= k)).  Values below 0 are clamped
/// (an under-fluctuation is "not significant", not negatively so).
double poisson_significance_sigma(std::uint64_t k, double mu);

}  // namespace adapt::core
