#include "core/rng.hpp"

#include <cmath>

#include "core/require.hpp"
#include "core/units.hpp"

namespace adapt::core {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ADAPT_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Debiased modulo (Lemire-style rejection on the low range).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  ADAPT_REQUIRE(mean > 0.0, "exponential needs mean > 0");
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  ADAPT_REQUIRE(mean >= 0.0, "poisson needs mean >= 0");
  if (mean == 0.0) return 0;
  if (mean < 256.0) {
    // Knuth inversion in log space is unnecessary at this size.
    const double l = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double g = normal(mean, std::sqrt(mean));
  return g <= 0.0 ? 0 : static_cast<std::uint64_t>(g + 0.5);
}

Vec3 Rng::isotropic_direction() {
  const double z = uniform(-1.0, 1.0);
  const double phi = uniform(0.0, kTwoPi);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

Vec3 Rng::hemisphere_direction_up() {
  const double z = uniform();
  const double phi = uniform(0.0, kTwoPi);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

Vec3 Rng::uniform_disk(double radius) {
  const double r = radius * std::sqrt(uniform());
  const double phi = uniform(0.0, kTwoPi);
  return {r * std::cos(phi), r * std::sin(phi), 0.0};
}

Rng Rng::split() {
  // Two raw draws feed a SplitMix chain to decorrelate the child.
  std::uint64_t seed = next_u64() ^ rotl(next_u64(), 31);
  return Rng(splitmix64(seed));
}

}  // namespace adapt::core
