#include "core/contract.hpp"

#include <cmath>
#include <cstdio>

namespace adapt::core {

void contract_failed(const char* kind, const char* detail, const char* file,
                     int line, const std::string& msg) {
  std::string full(kind);
  full += " failed: ";
  full += detail;
  full += " at ";
  full += file;
  full += ':';
  full += std::to_string(line);
  if (!msg.empty()) {
    full += " — ";
    full += msg;
  }
  throw ContractViolation(full);
}

bool is_finite_value(double x) { return std::isfinite(x); }

bool is_prob(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }

bool is_cosine(double c) { return std::isfinite(c) && c >= -1.0 && c <= 1.0; }

bool is_quant_scale(double s) { return std::isfinite(s) && s > 0.0; }

bool is_unit_vector(const Vec3& v, double tol) {
  const double n = v.norm();
  return std::isfinite(n) && std::abs(n - 1.0) <= tol;
}

namespace {

/// Shared failure path for the domain checks: format the offending
/// value into the report so the exception is actionable on its own.
[[noreturn]] void value_check_failed(const char* what, double value,
                                     const char* expected, const char* file,
                                     int line) {
  char detail[160];
  std::snprintf(detail, sizeof(detail), "%s = %.17g (expected %s)", what,
                value, expected);
  contract_failed("invariant", detail, file, line, "");
}

}  // namespace

void check_finite(double x, const char* what, const char* file, int line) {
  if (!is_finite_value(x)) value_check_failed(what, x, "finite", file, line);
}

void check_prob(double p, const char* what, const char* file, int line) {
  if (!is_prob(p)) value_check_failed(what, p, "in [0, 1]", file, line);
}

void check_cosine(double c, const char* what, const char* file, int line) {
  if (!is_cosine(c)) value_check_failed(what, c, "in [-1, 1]", file, line);
}

void check_quant_scale(double s, const char* what, const char* file,
                       int line) {
  if (!is_quant_scale(s))
    value_check_failed(what, s, "> 0 and finite", file, line);
}

void check_unit_vector(const Vec3& v, const char* what, const char* file,
                       int line) {
  if (!is_unit_vector(v)) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "%s = (%.9g, %.9g, %.9g), |v| = %.17g (expected unit)",
                  what, v.x, v.y, v.z, v.norm());
    contract_failed("invariant", detail, file, line, "");
  }
}

}  // namespace adapt::core
