#pragma once

/// \file mat3.hpp
/// 3x3 matrix support for the localization normal equations
/// (sum of weighted outer products of ring axes) and for rotating
/// photon directions during Monte-Carlo transport.

#include <array>
#include <cmath>

#include "core/vec3.hpp"

namespace adapt::core {

struct Mat3 {
  // Row-major storage.
  std::array<double, 9> m{0, 0, 0, 0, 0, 0, 0, 0, 0};

  static constexpr Mat3 identity() {
    Mat3 r;
    r.m = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    return r;
  }

  static Mat3 zero() { return Mat3{}; }

  double& operator()(int r, int c) { return m[static_cast<size_t>(3 * r + c)]; }
  double operator()(int r, int c) const {
    return m[static_cast<size_t>(3 * r + c)];
  }

  Mat3 operator+(const Mat3& o) const {
    Mat3 r;
    for (size_t i = 0; i < 9; ++i) r.m[i] = m[i] + o.m[i];
    return r;
  }
  Mat3 operator-(const Mat3& o) const {
    Mat3 r;
    for (size_t i = 0; i < 9; ++i) r.m[i] = m[i] - o.m[i];
    return r;
  }
  Mat3 operator*(double s) const {
    Mat3 r;
    for (size_t i = 0; i < 9; ++i) r.m[i] = m[i] * s;
    return r;
  }
  Mat3& operator+=(const Mat3& o) {
    for (size_t i = 0; i < 9; ++i) m[i] += o.m[i];
    return *this;
  }

  Vec3 operator*(const Vec3& v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
  }

  Mat3 operator*(const Mat3& o) const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        double s = 0.0;
        for (int k = 0; k < 3; ++k) s += (*this)(i, k) * o(k, j);
        r(i, j) = s;
      }
    return r;
  }

  Mat3 transposed() const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r(i, j) = (*this)(j, i);
    return r;
  }

  double det() const {
    return m[0] * (m[4] * m[8] - m[5] * m[7]) -
           m[1] * (m[3] * m[8] - m[5] * m[6]) +
           m[2] * (m[3] * m[7] - m[4] * m[6]);
  }

  /// Adjugate-based inverse.  Returns false (and leaves `out`
  /// untouched) when the determinant is smaller than `eps`, which the
  /// localizer treats as "rings are degenerate, damp and retry".
  bool inverse(Mat3& out, double eps = 1e-300) const {
    const double d = det();
    if (std::abs(d) < eps) return false;
    const double inv_d = 1.0 / d;
    Mat3 r;
    r(0, 0) = (m[4] * m[8] - m[5] * m[7]) * inv_d;
    r(0, 1) = (m[2] * m[7] - m[1] * m[8]) * inv_d;
    r(0, 2) = (m[1] * m[5] - m[2] * m[4]) * inv_d;
    r(1, 0) = (m[5] * m[6] - m[3] * m[8]) * inv_d;
    r(1, 1) = (m[0] * m[8] - m[2] * m[6]) * inv_d;
    r(1, 2) = (m[2] * m[3] - m[0] * m[5]) * inv_d;
    r(2, 0) = (m[3] * m[7] - m[4] * m[6]) * inv_d;
    r(2, 1) = (m[1] * m[6] - m[0] * m[7]) * inv_d;
    r(2, 2) = (m[0] * m[4] - m[1] * m[3]) * inv_d;
    out = r;
    return true;
  }

  /// a * b^T.
  static Mat3 outer(const Vec3& a, const Vec3& b) {
    Mat3 r;
    r.m = {a.x * b.x, a.x * b.y, a.x * b.z, a.y * b.x, a.y * b.y,
           a.y * b.z, a.z * b.x, a.z * b.y, a.z * b.z};
    return r;
  }

  /// Rodrigues rotation matrix: rotate by `angle` about unit `axis`.
  static Mat3 rotation(const Vec3& axis, double angle) {
    const Vec3 u = axis.normalized();
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    const double t = 1.0 - c;
    Mat3 r;
    r.m = {c + u.x * u.x * t,       u.x * u.y * t - u.z * s, u.x * u.z * t + u.y * s,
           u.y * u.x * t + u.z * s, c + u.y * u.y * t,       u.y * u.z * t - u.x * s,
           u.z * u.x * t - u.y * s, u.z * u.y * t + u.x * s, c + u.z * u.z * t};
    return r;
  }

  /// Rotation taking +z onto unit vector `d` (any such rotation).
  /// Used to express a sampled scattering direction, generated in a
  /// frame where the incoming photon travels along +z, back in the
  /// detector frame.
  static Mat3 frame_to(const Vec3& d) {
    const Vec3 u = d.normalized();
    const Vec3 z{0, 0, 1};
    const double c = u.z;
    if (c > 1.0 - 1e-14) return identity();
    if (c < -1.0 + 1e-14) {
      // 180-degree rotation about x.
      Mat3 r;
      r.m = {1, 0, 0, 0, -1, 0, 0, 0, -1};
      return r;
    }
    const Vec3 axis = z.cross(u).normalized();
    return rotation(axis, std::acos(c));
  }
};

/// Solve the symmetric positive-(semi)definite system A x = b with a
/// Tikhonov damping term: (A + damping*I) x = b.  Returns false when
/// even the damped system is singular.
inline bool solve_damped(const Mat3& a, const Vec3& b, double damping,
                         Vec3& x) {
  Mat3 ad = a;
  ad(0, 0) += damping;
  ad(1, 1) += damping;
  ad(2, 2) += damping;
  Mat3 inv;
  if (!ad.inverse(inv, 1e-300)) return false;
  x = inv * b;
  return true;
}

}  // namespace adapt::core
