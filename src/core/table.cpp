#include "core/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/require.hpp"

namespace adapt::core {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ADAPT_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  ADAPT_REQUIRE(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::integer(long long v) { return std::to_string(v); }

void TextTable::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_sep = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  print_sep();
  print_cells(header_);
  print_sep();
  for (const auto& row : rows_) print_cells(row);
  print_sep();
}

bool TextTable::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  const auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) f << ',';
      // Quote cells containing separators.
      if (cells[c].find_first_of(",\"\n") != std::string::npos) {
        f << '"';
        for (char ch : cells[c]) {
          if (ch == '"') f << '"';
          f << ch;
        }
        f << '"';
      } else {
        f << cells[c];
      }
    }
    f << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(f);
}

}  // namespace adapt::core
