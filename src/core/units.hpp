#pragma once

/// \file units.hpp
/// Physical constants and unit conventions used throughout adaptml.
///
/// Conventions:
///   * energy   in MeV
///   * length   in cm
///   * time     in seconds
///   * angles   in radians internally; degrees only at API boundaries
///     that mirror the paper's figures (which are labeled in degrees).

#include <numbers>

namespace adapt::core {

/// Electron rest mass energy, m_e c^2 [MeV].  Compton kinematics pivot
/// on this constant.
inline constexpr double kElectronMassMeV = 0.51099895;

/// Classical electron radius [cm]; sets the scale of the Klein-Nishina
/// cross section.
inline constexpr double kClassicalElectronRadiusCm = 2.8179403262e-13;

/// Avogadro's number [1/mol].
inline constexpr double kAvogadro = 6.02214076e23;

/// Thomson cross section [cm^2] = (8/3) pi r_e^2.
inline constexpr double kThomsonCrossSectionCm2 =
    8.0 / 3.0 * std::numbers::pi * kClassicalElectronRadiusCm *
    kClassicalElectronRadiusCm;

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Degrees -> radians.
constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }

/// Radians -> degrees.
constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// keV -> MeV convenience (detector thresholds are quoted in keV).
constexpr double kev(double e_kev) { return e_kev * 1e-3; }

}  // namespace adapt::core
