#pragma once

/// \file parallel.hpp
/// The hot-path compute layer's threading primitives.
///
/// Everything performance-critical in adaptml (GEMM kernels, INT8
/// inference, grid-search localization, the evaluation trial harness)
/// funnels its parallelism through these helpers instead of raw
/// OpenMP pragmas, so that
///   - builds without OpenMP degrade to clean serial loops,
///   - results are deterministic and independent of the schedule
///     (work is indexed, reductions merge in index order), and
///   - thread-count and tile-size knobs live in one place
///     (`OMP_NUM_THREADS`, `ADAPT_GEMM_TILE_COLS`).

#include <cstddef>
#include <cstdlib>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace adapt::core {

/// Number of worker threads a parallel region may use (OpenMP's
/// max-threads setting, i.e. `OMP_NUM_THREADS`; 1 without OpenMP).
inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// True when called from inside a parallel region (used to avoid
/// nesting, which OpenMP would serialize anyway).
inline bool in_parallel_region() {
#ifdef _OPENMP
  return omp_in_parallel();
#else
  return false;
#endif
}

/// Positive-integer environment knob with a fallback, for tile sizes
/// and similar tuning parameters.  Malformed or non-positive values
/// fall back (tuning knobs should never abort a flight run).
inline std::size_t env_tuning_knob(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != v && *end == '\0' && parsed > 0)
             ? static_cast<std::size_t>(parsed)
             : fallback;
}

/// Run `fn(i)` for i in [0, n).  `grain` is the scheduling granularity
/// (dynamic chunks of `grain` iterations — trials and GEMM row blocks
/// have uneven cost).  Serial when OpenMP is absent, when already
/// inside a parallel region, or when `n` is too small to amortize the
/// fork.  `fn` must not depend on execution order.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 1) {
#ifdef _OPENMP
  if (!in_parallel_region() && max_threads() > 1 && n > grain) {
    const auto ni = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(dynamic, 1)
    for (std::ptrdiff_t chunk = 0;
         chunk < (ni + static_cast<std::ptrdiff_t>(grain) - 1) /
                     static_cast<std::ptrdiff_t>(grain);
         ++chunk) {
      const std::size_t begin =
          static_cast<std::size_t>(chunk) * grain;
      const std::size_t end = begin + grain < n ? begin + grain : n;
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

/// Minimize `score(i)` over i in [0, n) in parallel and return
/// {best_index, best_score}.  Ties break toward the smallest index, so
/// the winner is independent of the thread count and schedule.
/// Returns {n, +inf-ish score} only when n == 0 (callers guard).
template <typename ScoreFn>
std::pair<std::size_t, double> parallel_argmin(std::size_t n,
                                               ScoreFn&& score) {
  std::size_t best_i = n;
  double best_s = 0.0;
  bool have = false;
#ifdef _OPENMP
  if (!in_parallel_region() && max_threads() > 1 && n > 64) {
    const auto ni = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel
    {
      std::size_t local_i = n;
      double local_s = 0.0;
      bool local_have = false;
#pragma omp for schedule(static) nowait
      for (std::ptrdiff_t i = 0; i < ni; ++i) {
        const double s = score(static_cast<std::size_t>(i));
        if (!local_have || s < local_s) {
          local_have = true;
          local_s = s;
          local_i = static_cast<std::size_t>(i);
        }
      }
#pragma omp critical(adapt_parallel_argmin)
      {
        // Deterministic merge: better score wins; equal scores go to
        // the earlier index regardless of which thread merges first.
        if (local_have &&
            (!have || local_s < best_s ||
             (local_s == best_s && local_i < best_i))) {
          have = true;
          best_s = local_s;
          best_i = local_i;
        }
      }
    }
    return {best_i, best_s};
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double s = score(i);
    if (!have || s < best_s) {
      have = true;
      best_s = s;
      best_i = i;
    }
  }
  return {best_i, best_s};
}

}  // namespace adapt::core
