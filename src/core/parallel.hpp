#pragma once

/// \file parallel.hpp
/// The hot-path compute layer's threading primitives.
///
/// Everything performance-critical in adaptml (GEMM kernels, INT8
/// inference, grid-search localization, event reconstruction, the
/// evaluation trial harness) funnels its parallelism through these
/// helpers instead of raw OpenMP pragmas, so that
///   - results are deterministic and independent of the schedule
///     (work is indexed, reductions merge in index/score order),
///   - thread-count and tile-size knobs live in one place
///     (`OMP_NUM_THREADS` / `ADAPT_NUM_THREADS`,
///     `ADAPT_GEMM_TILE_COLS`), and
///   - the backend is swappable: OpenMP when compiled in, a portable
///     std::thread fork/join otherwise (or when ADAPT_PARALLEL_FORCE_STD
///     is defined — the TSan build does this, because libgomp's
///     futex-based barriers and criticals are invisible to
///     ThreadSanitizer and would drown real findings in false
///     positives; std::thread/std::mutex/std::atomic are fully
///     instrumented).
///
/// Memory-ordering contract
/// ------------------------
/// Callers hand parallel_for / parallel_argmin a set of *disjoint*
/// index-addressed work items; no iteration may touch another
/// iteration's state.  Under that contract the only synchronization
/// these helpers owe callers is fork/join ordering:
///
///   - Everything the caller wrote before the call happens-before
///     every `fn(i)` (thread creation / OpenMP region entry), and
///   - every `fn(i)` happens-before the return (thread join / OpenMP
///     barrier).
///
/// Both backends get this for free from their primitives, so worker
/// bookkeeping can be intentionally weak:
///   - the std backend's chunk cursor is fetch_add(relaxed) — it only
///     partitions indices, never publishes data; the join provides the
///     release/acquire edge for the results themselves;
///   - parallel_argmin merges thread-local minima under a mutex
///     (OpenMP: `omp critical`), and the merge is made *deterministic*
///     by value, not by timing: better score wins, equal scores go to
///     the smaller index, so the winner is independent of merge order.
///
/// Exceptions: a throw from `fn` (e.g. an ADAPT_CHECKED contract
/// firing inside a worker) is captured, the region drains, and the
/// first-thrown exception is rethrown on the calling thread — OpenMP
/// would otherwise std::terminate, and std::thread would call
/// std::terminate at destructor time.

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "core/sync.hpp"

#if defined(_OPENMP) && !defined(ADAPT_PARALLEL_FORCE_STD)
#define ADAPT_PARALLEL_BACKEND_OMP 1
#include <omp.h>
#else
#define ADAPT_PARALLEL_BACKEND_OMP 0
#endif

namespace adapt::core {

namespace detail {

/// Set while a std-backend worker (or the caller participating as one)
/// is inside a parallel region; mirrors omp_in_parallel().
inline bool& std_backend_in_parallel() {
  thread_local bool flag = false;
  return flag;
}

/// Thread budget for the std backend: ADAPT_NUM_THREADS, then
/// OMP_NUM_THREADS (so existing run scripts keep working), then
/// hardware_concurrency.  Parsed once; malformed values fall back.
inline int std_backend_max_threads() {
  static const int cached = [] {
    for (const char* name : {"ADAPT_NUM_THREADS", "OMP_NUM_THREADS"}) {
      const char* v = std::getenv(name);
      if (v == nullptr || *v == '\0') continue;
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end != v && *end == '\0' && parsed > 0 && parsed < 1024)
        return static_cast<int>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return cached;
}

/// First-exception capture shared by both backends: workers that catch
/// store the first exception_ptr and raise the (relaxed) stop flag so
/// remaining chunks are skipped; the caller rethrows after the join.
/// The mutex orders the exception_ptr write against the post-join read
/// (the join already provides the happens-before edge, but taking the
/// lock in rethrow_if_set keeps the guarded_by contract checkable —
/// it runs once per region, after the join, so the cost is nil).
struct ErrorSlot {
  Mutex mutex;
  std::exception_ptr first ADAPT_GUARDED_BY(mutex);
  std::atomic<bool> stop{false};

  void capture() noexcept {
    LockGuard lock(mutex);
    if (!first) first = std::current_exception();
    stop.store(true, std::memory_order_relaxed);
  }
  void rethrow_if_set() {
    std::exception_ptr eptr;
    {
      LockGuard lock(mutex);
      eptr = first;
    }
    if (eptr) std::rethrow_exception(eptr);
  }
};

}  // namespace detail

/// Number of worker threads a parallel region may use (OpenMP's
/// max-threads setting under the OpenMP backend, else the env-derived
/// std::thread budget; always >= 1).
inline int max_threads() {
#if ADAPT_PARALLEL_BACKEND_OMP
  return omp_get_max_threads();
#else
  return detail::std_backend_max_threads();
#endif
}

/// True when called from inside a parallel region (used to avoid
/// nesting, which would oversubscribe or deadlock either backend).
inline bool in_parallel_region() {
#if ADAPT_PARALLEL_BACKEND_OMP
  return omp_in_parallel();
#else
  return detail::std_backend_in_parallel();
#endif
}

/// Positive-integer environment knob with a fallback, for tile sizes
/// and similar tuning parameters.  Malformed or non-positive values
/// fall back (tuning knobs should never abort a flight run).
inline std::size_t env_tuning_knob(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != v && *end == '\0' && parsed > 0)
             ? static_cast<std::size_t>(parsed)
             : fallback;
}

/// Run `fn(i)` for i in [0, n).  `grain` is the scheduling granularity
/// (dynamic chunks of `grain` iterations — trials and GEMM row blocks
/// have uneven cost).  Serial when threading is unavailable, when
/// already inside a parallel region, or when `n` is too small to
/// amortize the fork.  `fn` must not depend on execution order and
/// must not touch another iteration's state.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 1) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;

#if ADAPT_PARALLEL_BACKEND_OMP
  if (!in_parallel_region() && max_threads() > 1 && n > grain) {
    detail::ErrorSlot err;
    const auto nc = static_cast<std::ptrdiff_t>(chunks);
#pragma omp parallel for schedule(dynamic, 1)
    for (std::ptrdiff_t chunk = 0; chunk < nc; ++chunk) {
      if (err.stop.load(std::memory_order_relaxed)) continue;
      const std::size_t begin = static_cast<std::size_t>(chunk) * grain;
      const std::size_t end = begin + grain < n ? begin + grain : n;
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        err.capture();
      }
    }
    err.rethrow_if_set();
    return;
  }
#else
  const int budget = max_threads();
  if (!in_parallel_region() && budget > 1 && n > grain) {
    // Fork/join with dynamic chunk self-scheduling: workers (the
    // caller included) pull chunk indices off a relaxed atomic cursor.
    // The cursor only partitions work; the joins below publish the
    // workers' writes to the caller.
    const std::size_t n_workers =
        std::min(static_cast<std::size_t>(budget), chunks);
    std::atomic<std::size_t> next{0};
    detail::ErrorSlot err;
    auto worker = [&]() noexcept {
      bool& in_par = detail::std_backend_in_parallel();
      const bool saved = in_par;
      in_par = true;
      for (;;) {
        if (err.stop.load(std::memory_order_relaxed)) break;
        const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= chunks) break;
        const std::size_t begin = chunk * grain;
        const std::size_t end = begin + grain < n ? begin + grain : n;
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          err.capture();
        }
      }
      in_par = saved;
    };
    std::vector<std::thread> threads;
    threads.reserve(n_workers - 1);
    for (std::size_t t = 0; t + 1 < n_workers; ++t)
      threads.emplace_back(worker);
    worker();  // The calling thread participates.
    for (std::thread& t : threads) t.join();
    err.rethrow_if_set();
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

/// Minimize `score(i)` over i in [0, n) in parallel and return
/// {best_index, best_score}.  Ties break toward the smallest index, so
/// the winner is independent of the thread count and schedule.
/// Returns {n, +inf-ish score} only when n == 0 (callers guard).
template <typename ScoreFn>
std::pair<std::size_t, double> parallel_argmin(std::size_t n,
                                               ScoreFn&& score) {
  std::size_t best_i = n;
  double best_s = 0.0;
  bool have = false;

#if ADAPT_PARALLEL_BACKEND_OMP
  if (!in_parallel_region() && max_threads() > 1 && n > 64) {
    const auto ni = static_cast<std::ptrdiff_t>(n);
    detail::ErrorSlot err;
#pragma omp parallel
    {
      std::size_t local_i = n;
      double local_s = 0.0;
      bool local_have = false;
#pragma omp for schedule(static) nowait
      for (std::ptrdiff_t i = 0; i < ni; ++i) {
        if (err.stop.load(std::memory_order_relaxed)) continue;
        try {
          const double s = score(static_cast<std::size_t>(i));
          if (!local_have || s < local_s) {
            local_have = true;
            local_s = s;
            local_i = static_cast<std::size_t>(i);
          }
        } catch (...) {
          err.capture();
        }
      }
#pragma omp critical(adapt_parallel_argmin)
      {
        // Deterministic merge: better score wins; equal scores go to
        // the earlier index regardless of which thread merges first.
        if (local_have &&
            (!have || local_s < best_s ||
             (local_s == best_s && local_i < best_i))) {
          have = true;
          best_s = local_s;
          best_i = local_i;
        }
      }
    }
    err.rethrow_if_set();
    return {best_i, best_s};
  }
#else
  const int budget = max_threads();
  if (!in_parallel_region() && budget > 1 && n > 64) {
    // Static contiguous split; each worker scans its range serially
    // and merges its local minimum under the mutex.  The merge rule
    // (score, then index) makes the result independent of merge order;
    // the joins publish everything else.
    const std::size_t n_workers =
        std::min<std::size_t>(static_cast<std::size_t>(budget), n);
    Mutex merge_mutex;
    detail::ErrorSlot err;
    auto worker = [&](std::size_t w) noexcept {
      bool& in_par = detail::std_backend_in_parallel();
      const bool saved = in_par;
      in_par = true;
      const std::size_t begin = w * n / n_workers;
      const std::size_t end = (w + 1) * n / n_workers;
      std::size_t local_i = n;
      double local_s = 0.0;
      bool local_have = false;
      try {
        for (std::size_t i = begin; i < end; ++i) {
          if (err.stop.load(std::memory_order_relaxed)) break;
          const double s = score(i);
          if (!local_have || s < local_s) {
            local_have = true;
            local_s = s;
            local_i = i;
          }
        }
      } catch (...) {
        err.capture();
      }
      if (local_have) {
        LockGuard lock(merge_mutex);
        if (!have || local_s < best_s ||
            (local_s == best_s && local_i < best_i)) {
          have = true;
          best_s = local_s;
          best_i = local_i;
        }
      }
      in_par = saved;
    };
    std::vector<std::thread> threads;
    threads.reserve(n_workers - 1);
    for (std::size_t w = 1; w < n_workers; ++w)
      threads.emplace_back(worker, w);
    worker(0);
    for (std::thread& t : threads) t.join();
    err.rethrow_if_set();
    return {best_i, best_s};
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double s = score(i);
    if (!have || s < best_s) {
      have = true;
      best_s = s;
      best_i = i;
    }
  }
  return {best_i, best_s};
}

}  // namespace adapt::core
