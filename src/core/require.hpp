#pragma once

/// \file require.hpp
/// Lightweight precondition checking.  ADAPT_REQUIRE is always active
/// (release builds included): the library is used in long statistical
/// runs where silently propagating a NaN costs far more than a branch.

#include <stdexcept>
#include <string>

namespace adapt::core {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(std::string("requirement failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace adapt::core

#define ADAPT_REQUIRE(expr, msg)                                   \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::adapt::core::require_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                              \
  } while (false)
