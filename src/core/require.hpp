#pragma once

/// \file require.hpp
/// Back-compat shim: ADAPT_REQUIRE and require_failed() moved into the
/// full contracts layer (preconditions + postconditions + invariants +
/// domain helpers).  Include "core/contract.hpp" directly in new code.

#include "core/contract.hpp"
