#pragma once

/// \file telemetry.hpp
/// Lightweight pipeline observability: named monotonic counters,
/// log-binned value histograms, and RAII scoped timers behind a single
/// process-wide enable flag.
///
/// Design constraints (in priority order):
///   - Zero overhead when disabled.  Every record path starts with one
///     relaxed atomic load and a predictable branch; no clock reads, no
///     locking, no allocation.
///   - Thread-safe when enabled.  All mutation is lock-free atomics, so
///     instrumented code can run inside `core::parallel_for` regions
///     (the eval trial harness, reconstruction) without serializing.
///   - Deterministic aggregation.  Counter increments and histogram bin
///     counts are commutative sums: a parallel batch of deterministic
///     trials produces bit-identical counter/bin totals regardless of
///     thread count or schedule.  (Timing *values* are wall-clock and
///     legitimately vary; their event counts do not.)
///
/// Usage pattern in instrumented code — resolve the metric once, then
/// hit the cached reference:
///
///   static core::telemetry::Counter& rejected =
///       core::telemetry::counter("recon.rings_rejected.energy_cut");
///   rejected.add();
///
/// Metric references stay valid for the life of the process; reset()
/// zeroes values but never invalidates references.
///
/// The initial enable state comes from the ADAPT_TELEMETRY environment
/// variable ("1"/"on" enables); `adaptctl --metrics` and the Table I/II
/// bench call set_enabled(true) themselves.
///
/// Memory ordering
/// ---------------
/// Every atomic here is intentionally `memory_order_relaxed`, and that
/// is sufficient — no metric value ever *publishes* other data:
///   - Counters and histogram bins are commutative sums read only by
///     snapshot()/accessors; readers need each value's total, not an
///     ordering between metrics.  Snapshots taken while workers run are
///     allowed to be mid-flight approximations; exact totals are read
///     after the parallel region's join, which already provides the
///     happens-before edge (see core/parallel.hpp).
///   - min_/max_/sum_ use relaxed CAS loops: each iteration only needs
///     atomicity of its own read-modify-write, not ordering.
///   - The enable flag is a control knob, not a synchronizer: a racing
///     reader may record or skip one sample around set_enabled(), and
///     either outcome is acceptable by design.
/// If a metric is ever used to hand data between threads (it must not
/// be), that transfer needs its own acquire/release pair.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <string_view>

namespace adapt::core::telemetry {

/// Process-wide enable flag (one relaxed load on every record path).
bool enabled();
void set_enabled(bool on);

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Value histogram with fixed log-spaced bins plus streaming
/// count/sum/min/max.  The bins cover [kBinFloor, kBinFloor * 2^kBins)
/// at a factor of 2 per bin — wide enough for sub-microsecond timer
/// ticks through multi-minute totals and for count-valued metrics
/// (ring survivors, iterations) alike.  Values below the floor
/// (including zero) land in bin 0; values beyond the top land in the
/// last bin.
class Histogram {
 public:
  static constexpr int kBins = 40;
  static constexpr double kBinFloor = 1e-4;

  void record(double value);

  /// Lower edge of bin `i` (the first bin also absorbs [0, floor)).
  static double bin_lower_edge(int i);
  /// Bin index a value falls into (clamped to [0, kBins)).
  static int bin_of(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< 0 when empty.
  double max() const;  ///< 0 when empty.
  std::uint64_t bin_count(int i) const {
    return bins_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  // min/max start at the opposing infinities so concurrent first
  // samples need no seeding handshake; the accessors report 0 while
  // the histogram is empty.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBins> bins_{};
};

/// Look up (registering on first use) a metric by name.  Returns a
/// reference that stays valid for the life of the process.  Lookup
/// takes a lock — cache the reference in hot paths (function-local
/// static).  Names are dotted lowercase, with the rejection reason as
/// the last segment (e.g. "loc.rings_rejected.bad_deta").
Counter& counter(std::string_view name);
Histogram& histogram(std::string_view name);

/// RAII timer recording elapsed milliseconds into a histogram.  The
/// optional `accumulate_ms` slot is always added to when non-null
/// (even with telemetry disabled) — it carries the per-trial
/// StageTimings that existing callers aggregate themselves.  With
/// telemetry disabled and no slot, the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist, double* accumulate_ms = nullptr)
      : hist_(&hist),
        slot_(accumulate_ms),
        active_(slot_ != nullptr || enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!active_) return;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    if (slot_) *slot_ += ms;
    hist_->record(ms);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  double* slot_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time copy of every registered metric, ordered by name (so
/// any serialization of it is deterministic given deterministic
/// counts).
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, Histogram::kBins> bins{};

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  /// Metrics accumulated since `earlier` was taken: counters and bin
  /// counts subtract exactly; histogram min/max cannot be un-merged, so
  /// the later snapshot's extremes are kept as-is.
  Snapshot since(const Snapshot& earlier) const;

  /// Element-wise sum (counters and bins add, min/max widen).
  Snapshot& merge(const Snapshot& other);

  /// `{"counters": {name: value...}, "histograms": {name: {count, sum,
  /// mean, min, max, bins: [...]}}}` — stable key order.
  void write_json(std::ostream& os) const;

  /// One row per metric: `kind,name,count,sum,mean,min,max` (counters
  /// fill count only).  Histogram bins are omitted from the CSV form.
  void write_csv(std::ostream& os) const;
};

/// Copy out every registered metric.
Snapshot snapshot();

/// Zero every registered metric (references stay valid).
void reset();

}  // namespace adapt::core::telemetry
