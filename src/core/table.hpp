#pragma once

/// \file table.hpp
/// Plain-text table / CSV emission for the benchmark harness.  Each
/// bench prints the same rows and series the paper's tables and
/// figures report, so the output is directly comparable.

#include <iosfwd>
#include <string>
#include <vector>

namespace adapt::core {

/// Column-aligned text table with an optional title, printed to any
/// ostream.  Cells are strings; numeric helpers format consistently.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Number formatting helpers (fixed precision, trailing-zero kept so
  /// columns line up).
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  void print(std::ostream& os, const std::string& title = "") const;

  /// Write as CSV (header + rows) to the given path.  Returns false on
  /// I/O failure instead of throwing: benches treat CSV dumps as
  /// best-effort artifacts.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adapt::core
