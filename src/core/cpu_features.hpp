#pragma once

/// \file cpu_features.hpp
/// Runtime CPU ISA probing for kernel dispatch.
///
/// The kernel registry (nn/kernels) must pick a SIMD variant on the
/// machine it actually runs on — the flight build and the dev build
/// are the same binary, so compile-time -march flags cannot make the
/// decision.  This probe reads cpuid once (cached) and, critically,
/// also checks OS state-save support via XCR0: a kernel that executes
/// AVX instructions the OS does not context-switch corrupts register
/// state, so "the bit is set in cpuid leaf 7" alone is not enough.
///
/// On non-x86 targets every flag is false and the registry falls back
/// to the scalar kernels.

#include <string>

namespace adapt::core {

/// One-time cpuid probe result.  All flags already account for OS
/// XSAVE support (a feature is reported only when its register state
/// is context-switched).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512vnni = false;

  /// The AVX-512 subset the kernels require as a unit: foundation for
  /// 512-bit float math, BW for byte/word integer ops, VL so masked
  /// tails compile, VNNI for the exact (non-saturating) u8*s8 dot
  /// instruction VPDPBUSD.
  bool avx512_kernel_class() const {
    return avx512f && avx512bw && avx512vl && avx512vnni;
  }
};

/// Cached probe of the current CPU (thread-safe; probes once).
const CpuFeatures& cpu_features();

/// Human-readable one-liner, e.g. "avx2 fma avx512f avx512bw avx512vl
/// avx512vnni" or "none (scalar only)" — for adaptctl and logs.
std::string cpu_features_summary();

}  // namespace adapt::core
