#pragma once

/// \file cli.hpp
/// Hardened `--key value` command-line parsing shared by the adaptml
/// tools (adaptctl today; any future driver binaries).
///
/// The parser exists because the original tool-local version had two
/// silent failure modes this library cannot afford in calibration
/// scripts:
///   - numeric flags went through atof(), so `--fluence banana`
///     became 0.0 without a word, and
///   - value/flag disambiguation keyed off a "--" prefix test that
///     made negative values fragile.
///
/// Rules:
///   - `--key value` binds `value` to `key`; `--key` followed by
///     another `--flag` (or nothing) is a boolean flag.
///   - A token after a key is a VALUE unless it starts with "--"; a
///     leading single '-' (negative numbers such as `--polar -30`)
///     is always a value.
///   - number()/positive_number()/count() parse strictly: the whole
///     token must consume as a finite number, otherwise CliError is
///     thrown with the offending flag and token named.  Callers catch
///     CliError and exit with usage (adaptctl uses exit code 2).

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace adapt::core {

/// Malformed invocation: unknown shape, unparsable or out-of-range
/// value.  what() names the flag and the offending token.
class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& msg) : std::runtime_error(msg) {}
};

class CliArgs {
 public:
  /// Parse argv[first..argc).  Throws CliError on a token that is
  /// neither a `--key` nor a value following one.
  CliArgs(int argc, const char* const* argv, int first);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// String value with fallback (empty/boolean occurrences fall back).
  std::string text(const std::string& key, const std::string& fallback) const;

  /// Strictly parsed finite double; `fallback` when the key is absent
  /// or given as a bare flag.  Throws CliError on malformed input —
  /// never silently 0.0.
  double number(const std::string& key, double fallback) const;

  /// number(), additionally requiring a value > 0.
  double positive_number(const std::string& key, double fallback) const;

  /// Strictly parsed positive integer (trial counts, epochs, bits...).
  std::uint64_t count(const std::string& key, std::uint64_t fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Strict full-token double parse used by CliArgs and available to
/// tools for free-standing tokens.  Throws CliError naming `what` on
/// malformed/non-finite input.
double parse_double(const std::string& token, const std::string& what);

}  // namespace adapt::core
