#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/require.hpp"

namespace adapt::core {

void RunningStat::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  ADAPT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level out of range");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double containment(std::vector<double> errors, double level) {
  if (errors.empty()) return 0.0;
  ADAPT_REQUIRE(level > 0.0 && level <= 1.0, "containment level out of range");
  std::sort(errors.begin(), errors.end());
  // Largest error among at most ceil(level * n) trials.
  auto k = static_cast<std::size_t>(
      std::ceil(level * static_cast<double>(errors.size())));
  if (k == 0) k = 1;
  if (k > errors.size()) k = errors.size();
  return errors[k - 1];
}

Containment containment_68_95(std::vector<double> errors) {
  Containment c;
  c.trials = errors.size();
  c.c68 = containment(errors, 0.68);
  c.c95 = containment(std::move(errors), 0.95);
  return c;
}

double poisson_tail_log_p(std::uint64_t k, double mu) {
  ADAPT_REQUIRE(mu >= 0.0, "poisson mean must be >= 0");
  if (k == 0) return 0.0;  // P(X >= 0) = 1.
  if (mu == 0.0) return -std::numeric_limits<double>::infinity();

  const double kd = static_cast<double>(k);
  if (kd <= mu && mu > 64.0) {
    // Deep in the bulk of a large-mu Poisson: p >= ~0.5 and a cheap
    // normal approximation is plenty (the trigger only cares about the
    // significant upper tail).  Small mu falls through to the exact
    // series, which converges absolutely for any k.
    const double z = (kd - 0.5 - mu) / std::sqrt(mu);
    return std::log(0.5 * std::erfc(z / std::sqrt(2.0)));
  }

  // Exact tail sum in log space:
  //   P(X >= k) = e^{-mu} mu^k / k! * (1 + mu/(k+1) + mu^2/((k+1)(k+2)) + ...)
  const double log_term0 = kd * std::log(mu) - mu - std::lgamma(kd + 1.0);
  double series = 1.0;
  double ratio = 1.0;
  for (std::uint64_t i = 1; i < 100000; ++i) {
    ratio *= mu / (kd + static_cast<double>(i));
    series += ratio;
    if (ratio < 1e-16 * series) break;
  }
  return log_term0 + std::log(series);
}

double normal_quantile(double p) {
  ADAPT_REQUIRE(p > 0.0 && p < 1.0, "quantile needs p in (0, 1)");
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q;
  double r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double poisson_significance_sigma(std::uint64_t k, double mu) {
  const double log_p = poisson_tail_log_p(k, mu);
  if (log_p >= std::log(0.5)) return 0.0;  // Not an excess.
  // sigma = -Phi^-1(p).  For very small p the quantile approximation
  // is applied to exp(log_p); below ~1e-300 use the asymptotic form
  // sigma ~ sqrt(-2 ln p).
  if (log_p < -650.0) return std::sqrt(-2.0 * log_p);
  return -normal_quantile(std::exp(log_p));
}

MeanStd mean_std(const std::vector<double>& values) {
  MeanStd r;
  if (values.empty()) return r;
  RunningStat s;
  for (double v : values) s.add(v);
  r.mean = s.mean();
  r.stddev = s.stddev();
  return r;
}

}  // namespace adapt::core
