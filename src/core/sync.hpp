#pragma once

/// \file sync.hpp
/// The repo's only locking layer: std::mutex-family primitives wrapped
/// in capability types that carry Clang Thread Safety Analysis (TSA)
/// attributes.  On Clang the `thread-safety` gate stage
/// (tools/check_static_analysis.sh) compiles src/ with
/// `-Werror=thread-safety -Werror=thread-safety-beta`, turning lock
/// discipline — which fields a mutex guards, which methods require it,
/// which must never be entered holding it — into a compile-time
/// invariant instead of a convention TSan may or may not catch at
/// runtime.  On GCC (and any compiler without the attributes) every
/// annotation expands to nothing and the wrappers are zero-cost
/// pass-throughs over the std primitives.
///
/// Raw std::mutex / std::shared_mutex / std::condition_variable /
/// std::lock_guard / std::unique_lock are banned outside this file
/// (adapt_lint rule 7, `no-naked-mutex`): locking the analysis cannot
/// see is locking that cannot be checked.
///
/// Usage sketch:
///
///   class Queue {
///     core::Mutex mutex_;
///     core::CondVar nonempty_;
///     std::size_t size_ ADAPT_GUARDED_BY(mutex_) = 0;
///
///     std::size_t depth() const {
///       core::LockGuard lock(mutex_);
///       return size_;                       // OK: capability held.
///     }
///     void drain() ADAPT_EXCLUDES(mutex_);  // Must NOT hold mutex_.
///     void compact_locked() ADAPT_REQUIRES(mutex_);  // Caller holds it.
///   };
///
/// Repo-wide lock-ordering rule (DESIGN.md "Lock ordering"): when two
/// of these locks must nest, acquire them in pipeline order —
/// queue -> batcher -> server -> supervisor — and NEVER invoke a
/// user-supplied callback (sink, batch observer, alert callback,
/// fault hook) while holding any of them.  The telemetry registry
/// mutex is a leaf: it guards only metric registration/snapshot and is
/// likewise never held across a callback.
///
/// Condition-variable waits and the analysis: TSA is scope-based, so a
/// `CondVar::wait(lock)` — which releases and reacquires the mutex
/// internally — leaves the static capability set unchanged.  That is
/// the standard TSA treatment of condvars; write wait loops explicitly
/// (`while (!ready_) cv_.wait(lock);`) so the guarded-field reads in
/// the loop condition sit visibly inside the locked scope.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------
// TSA attribute macros.  Clang-only; no-ops elsewhere.  The names
// mirror the upstream capability vocabulary with an ADAPT_ prefix so
// call sites read as contract, not compiler incantation.
// ---------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ADAPT_TSA(x) __attribute__((x))
#endif
#endif
#ifndef ADAPT_TSA
#define ADAPT_TSA(x)  // Not Clang: annotations compile away.
#endif

/// Marks a type as a lockable capability (shown as `kind` in
/// diagnostics, e.g. "mutex").
#define ADAPT_CAPABILITY(kind) ADAPT_TSA(capability(kind))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define ADAPT_SCOPED_CAPABILITY ADAPT_TSA(scoped_lockable)

/// Data member readable/writable only while `mu` is held.
#define ADAPT_GUARDED_BY(mu) ADAPT_TSA(guarded_by(mu))

/// Pointer member whose *pointee* is guarded by `mu`.
#define ADAPT_PT_GUARDED_BY(mu) ADAPT_TSA(pt_guarded_by(mu))

/// Function that may only be called while holding the capabilities.
#define ADAPT_REQUIRES(...) ADAPT_TSA(requires_capability(__VA_ARGS__))
#define ADAPT_REQUIRES_SHARED(...) \
  ADAPT_TSA(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capabilities (not held on entry, held on
/// exit) / releases them (held on entry, not on exit).
#define ADAPT_ACQUIRE(...) ADAPT_TSA(acquire_capability(__VA_ARGS__))
#define ADAPT_ACQUIRE_SHARED(...) ADAPT_TSA(acquire_shared_capability(__VA_ARGS__))
#define ADAPT_RELEASE(...) ADAPT_TSA(release_capability(__VA_ARGS__))
#define ADAPT_RELEASE_SHARED(...) ADAPT_TSA(release_shared_capability(__VA_ARGS__))

/// Function that attempts the acquisition; `result` is the return
/// value meaning success.
#define ADAPT_TRY_ACQUIRE(...) ADAPT_TSA(try_acquire_capability(__VA_ARGS__))
#define ADAPT_TRY_ACQUIRE_SHARED(...) \
  ADAPT_TSA(try_acquire_shared_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the capabilities —
/// the annotated form of "fire the callback outside the lock".
#define ADAPT_EXCLUDES(...) ADAPT_TSA(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its
/// result (lets accessors participate in the analysis).
#define ADAPT_RETURN_CAPABILITY(mu) ADAPT_TSA(lock_returned(mu))

/// Escape hatches: assert a capability the analysis cannot see is
/// held, or switch the analysis off for one function (use only with a
/// comment explaining why the analysis cannot follow).
#define ADAPT_ASSERT_CAPABILITY(mu) ADAPT_TSA(assert_capability(mu))
#define ADAPT_NO_THREAD_SAFETY_ANALYSIS ADAPT_TSA(no_thread_safety_analysis)

namespace adapt::core {

class CondVar;

/// Exclusive mutex capability.  Same semantics and cost as the
/// std::mutex it wraps; the wrapper exists so acquisitions are visible
/// to the analysis.  Prefer the RAII `LockGuard`/`UniqueLock` over
/// manual lock()/unlock() pairs.
class ADAPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADAPT_ACQUIRE() { raw_.lock(); }
  void unlock() ADAPT_RELEASE() { raw_.unlock(); }
  bool try_lock() ADAPT_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex raw_;
};

/// Reader/writer mutex capability over std::shared_mutex: any number
/// of shared holders or one exclusive holder.
class ADAPT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ADAPT_ACQUIRE() { raw_.lock(); }
  void unlock() ADAPT_RELEASE() { raw_.unlock(); }
  bool try_lock() ADAPT_TRY_ACQUIRE(true) { return raw_.try_lock(); }

  void lock_shared() ADAPT_ACQUIRE_SHARED() { raw_.lock_shared(); }
  void unlock_shared() ADAPT_RELEASE_SHARED() { raw_.unlock_shared(); }
  bool try_lock_shared() ADAPT_TRY_ACQUIRE_SHARED(true) {
    return raw_.try_lock_shared();
  }

 private:
  std::shared_mutex raw_;
};

/// RAII exclusive lock over a Mutex — the default way to hold one for
/// a full scope.
class ADAPT_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) ADAPT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() ADAPT_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII exclusive lock over a SharedMutex (the writer side).
class ADAPT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) ADAPT_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() ADAPT_RELEASE() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared (reader) lock over a SharedMutex.
class ADAPT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) ADAPT_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() ADAPT_RELEASE_SHARED() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII lock that can be dropped and retaken mid-scope (retry backoff
/// windows, condvar waits).  Constructed locked; track lock()/unlock()
/// pairs yourself — the destructor releases iff currently held, and on
/// Clang the analysis checks the pairing statically.
class ADAPT_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) ADAPT_ACQUIRE(mutex)
      : lock_(mutex.raw_) {}
  ~UniqueLock() ADAPT_RELEASE() {}  // lock_'s destructor releases if held.

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ADAPT_ACQUIRE() { lock_.lock(); }
  void unlock() ADAPT_RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/UniqueLock.  wait() atomically
/// releases the lock's mutex and reacquires it before returning; the
/// static capability set is unchanged across the call (the standard
/// TSA condvar treatment), so guarded state read in the wait loop's
/// condition type-checks.  Always wait in a loop — spurious wakeups.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { raw_.notify_one(); }
  void notify_all() noexcept { raw_.notify_all(); }

  /// `lock` must currently own its mutex.
  void wait(UniqueLock& lock) { raw_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return raw_.wait_until(lock.lock_, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return raw_.wait_for(lock.lock_, d);
  }

 private:
  std::condition_variable raw_;
};

}  // namespace adapt::core
