#pragma once

/// \file rng.hpp
/// Deterministic, splittable random number generation.
///
/// Every stochastic component in adaptml (Monte-Carlo transport,
/// readout smearing, NN weight init, data shuffling) draws from an
/// explicitly passed Rng so that trials, tests, and benches are
/// reproducible bit-for-bit given a seed.  The engine is
/// xoshiro256++, seeded through SplitMix64 per the reference
/// recommendation; `split()` derives statistically independent child
/// streams so parallel trials never share state.

#include <cstdint>

#include "core/vec3.hpp"

namespace adapt::core {

/// SplitMix64 step; used for seeding and stream splitting.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value (xoshiro256++).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller with one-value cache.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Poisson-distributed count with given mean.  Uses inversion for
  /// small means and a normal approximation above 256 (event counts in
  /// a 1 s exposure can reach tens of thousands).
  std::uint64_t poisson(double mean);

  /// Uniform direction on the unit sphere.
  Vec3 isotropic_direction();

  /// Uniform direction on the unit hemisphere around +z.
  Vec3 hemisphere_direction_up();

  /// Uniform point on a disk of given radius in the z=0 plane.
  Vec3 uniform_disk(double radius);

  /// Derive an independent child generator.  Children of the same
  /// parent with distinct call order are independent streams.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace adapt::core
