#pragma once

/// \file checksum.hpp
/// FNV-1a content hashing for corruption detection.
///
/// The flight environment exposes every byte of state to radiation
/// single-event upsets: serialized model files can arrive garbled from
/// the ground link, and weights resident in memory can flip bits while
/// the detector runs.  The fault-tolerance layer (serve::Supervisor,
/// src/fault) needs one cheap, deterministic fingerprint to answer
/// "are these bytes still the bytes we loaded?" — FNV-1a 64 is that
/// fingerprint.  It is not cryptographic (nothing here defends against
/// an adversary, only against physics); any single flipped bit changes
/// the digest, which is the property the checksum validation relies
/// on.
///
/// The streaming form lets callers fold multiple buffers (layer
/// weights, biases, scales) into one digest without concatenating:
///
///   core::Fnv1a64 h;
///   h.update(weights.data(), weights.size() * sizeof(float));
///   h.update(bias.data(), bias.size() * sizeof(float));
///   const std::uint64_t digest = h.digest();

#include <cstddef>
#include <cstdint>

namespace adapt::core {

/// Streaming FNV-1a 64-bit hasher.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  /// Fold `size` bytes at `data` into the digest.
  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t h = hash_;
    for (std::size_t i = 0; i < size; ++i) {
      h ^= static_cast<std::uint64_t>(bytes[i]);
      h *= kPrime;
    }
    hash_ = h;
  }

  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// One-shot digest of a single buffer.
inline std::uint64_t fnv1a64(const void* data, std::size_t size) {
  Fnv1a64 h;
  h.update(data, size);
  return h.digest();
}

}  // namespace adapt::core
