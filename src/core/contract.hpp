#pragma once

/// \file contract.hpp
/// Repo-wide contracts: preconditions, postconditions, and invariants
/// with an explicit cost model.
///
/// Three macro tiers, chosen by who is at fault when the condition
/// fails and how hot the call site is:
///
///   - ADAPT_REQUIRE(expr, msg) — precondition at a trust boundary
///     (caller handed us bad data: file contents, CLI values, public
///     API arguments).  ALWAYS checked, every build type: the library
///     runs long statistical campaigns where silently propagating a
///     NaN costs far more than a predictable branch.  Throws
///     core::ContractViolation (a std::invalid_argument).
///
///   - ADAPT_ENSURE(expr, msg) — postcondition: what this function
///     promises its caller (a sampled cosine is in [-1,1], a computed
///     scale is positive).  Compiled out of release builds; enabled by
///     the ADAPT_CHECKED CMake option.
///
///   - ADAPT_INVARIANT(expr, msg) — internal consistency mid-function
///     or on hot paths (per-ring, per-tensor-element conditions).
///     Same gating as ADAPT_ENSURE.
///
/// "Compiled out" is literal: the disabled form evaluates the
/// condition inside sizeof(), so it still type-checks (a contract
/// cannot rot into referencing renamed variables) but generates no
/// code and never evaluates side effects.
///
/// Domain helper macros wrap the recurring physics/NN invariants and
/// report the offending value in the exception message:
///
///   ADAPT_CHECK_UNIT_VECTOR(v, what)   |v| == 1 within 1e-6
///   ADAPT_CHECK_FINITE(x, what)        no NaN/inf
///   ADAPT_CHECK_PROB(p, what)          finite, in [0, 1]
///   ADAPT_CHECK_COSINE(c, what)        finite, in [-1, 1]
///   ADAPT_CHECK_QUANT_SCALE(s, what)   finite, strictly positive
///
/// They follow the ADAPT_ENSURE gating (zero-cost in release).  The
/// underlying predicates (core::is_finite_value, core::is_prob, ...)
/// are plain always-available functions — use them directly with
/// ADAPT_REQUIRE when validating untrusted input.
///
/// Failures throw (never abort): flight software wraps stages in
/// recovery scopes, and tests assert on the message, which always
/// carries file:line of the call site.

#include <string>

#include "core/vec3.hpp"

namespace adapt::core {

/// Thrown on any contract failure.  Derives std::invalid_argument so
/// pre-contract call sites catching that (or std::logic_error) keep
/// working.  what() carries kind, expression/value, and file:line.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& msg)
      : std::invalid_argument(msg) {}
};

/// [noreturn] failure sink shared by every macro tier.  `kind` is
/// "requirement" / "postcondition" / "invariant"; `detail` the failed
/// expression or a formatted value report.
[[noreturn]] void contract_failed(const char* kind, const char* detail,
                                  const char* file, int line,
                                  const std::string& msg);

/// Back-compat alias for the pre-contract require.hpp entry point.
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  contract_failed("requirement", expr, file, line, msg);
}

// --- always-available predicates (for ADAPT_REQUIRE at boundaries) ---

bool is_finite_value(double x);
/// Finite and in [0, 1] (probabilities, containment fractions).
bool is_prob(double p);
/// Finite and in [-1, 1] (cos eta, ring cosines, correlations).
bool is_cosine(double c);
/// Finite and strictly positive (quantization scales, energies).
bool is_quant_scale(double s);
/// |v| == 1 within `tol` (ring axes, photon directions).
bool is_unit_vector(const Vec3& v, double tol = 1e-6);

// --- throwing domain checks (called via the ADAPT_CHECK_* macros) ---

void check_finite(double x, const char* what, const char* file, int line);
void check_prob(double p, const char* what, const char* file, int line);
void check_cosine(double c, const char* what, const char* file, int line);
void check_quant_scale(double s, const char* what, const char* file,
                       int line);
void check_unit_vector(const Vec3& v, const char* what, const char* file,
                       int line);

}  // namespace adapt::core

/// Preconditions: always on (see file comment).
#define ADAPT_REQUIRE(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::adapt::core::contract_failed("requirement", #expr, __FILE__,    \
                                     __LINE__, msg);                    \
    }                                                                   \
  } while (false)

/// Type-check the contract expression without generating code or
/// evaluating side effects (sizeof operand is an unevaluated context).
#define ADAPT_CONTRACT_IGNORE(expr) \
  static_cast<void>(sizeof((expr) ? 1 : 0))

#ifndef ADAPT_CONTRACTS_CHECKED
#define ADAPT_CONTRACTS_CHECKED 0
#endif

#if ADAPT_CONTRACTS_CHECKED

#define ADAPT_ENSURE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::adapt::core::contract_failed("postcondition", #expr, __FILE__,  \
                                     __LINE__, msg);                    \
    }                                                                   \
  } while (false)

#define ADAPT_INVARIANT(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::adapt::core::contract_failed("invariant", #expr, __FILE__,      \
                                     __LINE__, msg);                    \
    }                                                                   \
  } while (false)

#define ADAPT_CHECK_FINITE(x, what) \
  ::adapt::core::check_finite((x), (what), __FILE__, __LINE__)
#define ADAPT_CHECK_PROB(p, what) \
  ::adapt::core::check_prob((p), (what), __FILE__, __LINE__)
#define ADAPT_CHECK_COSINE(c, what) \
  ::adapt::core::check_cosine((c), (what), __FILE__, __LINE__)
#define ADAPT_CHECK_QUANT_SCALE(s, what) \
  ::adapt::core::check_quant_scale((s), (what), __FILE__, __LINE__)
#define ADAPT_CHECK_UNIT_VECTOR(v, what) \
  ::adapt::core::check_unit_vector((v), (what), __FILE__, __LINE__)

#else  // !ADAPT_CONTRACTS_CHECKED

#define ADAPT_ENSURE(expr, msg) ADAPT_CONTRACT_IGNORE(expr)
#define ADAPT_INVARIANT(expr, msg) ADAPT_CONTRACT_IGNORE(expr)

#define ADAPT_CHECK_FINITE(x, what) ADAPT_CONTRACT_IGNORE((x) == 0.0)
#define ADAPT_CHECK_PROB(p, what) ADAPT_CONTRACT_IGNORE((p) == 0.0)
#define ADAPT_CHECK_COSINE(c, what) ADAPT_CONTRACT_IGNORE((c) == 0.0)
#define ADAPT_CHECK_QUANT_SCALE(s, what) ADAPT_CONTRACT_IGNORE((s) == 0.0)
#define ADAPT_CHECK_UNIT_VECTOR(v, what) \
  ADAPT_CONTRACT_IGNORE(::adapt::core::is_unit_vector(v))

#endif  // ADAPT_CONTRACTS_CHECKED
