#include "core/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace adapt::core {

namespace {

bool is_flag_token(const std::string& t) {
  // "--key" introduces a key.  A bare "--" or "---..." is nonsense the
  // constructor rejects, but it is still not a value.
  return t.size() >= 2 && t[0] == '-' && t[1] == '-';
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (!is_flag_token(token)) {
      throw CliError("unexpected argument '" + token +
                     "' (flags are --key [value])");
    }
    const std::string key = token.substr(2);
    if (key.empty()) {
      throw CliError("bare '--' is not a flag");
    }
    // Next token is this key's value unless it opens the next flag.
    // A single leading '-' (negative number) is a value.
    if (i + 1 < argc && !is_flag_token(argv[i + 1])) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";  // Boolean flag.
    }
  }
}

std::string CliArgs::text(const std::string& key,
                          const std::string& fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() && !it->second.empty() ? it->second : fallback;
}

double parse_double(const std::string& token, const std::string& what) {
  if (token.empty()) {
    throw CliError(what + " needs a value");
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed)) {
    throw CliError(what + "='" + token + "' is not a finite number");
  }
  return parsed;
}

double CliArgs::number(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return parse_double(it->second, "--" + key);
}

double CliArgs::positive_number(const std::string& key,
                                double fallback) const {
  const double v = number(key, fallback);
  if (!(v > 0.0)) {
    throw CliError("--" + key + "='" + text(key, "") + "' must be positive");
  }
  return v;
}

std::uint64_t CliArgs::count(const std::string& key,
                             std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  const std::string& token = it->second;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
      parsed <= 0) {
    throw CliError("--" + key + "='" + token +
                   "' is not a positive integer");
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace adapt::core
