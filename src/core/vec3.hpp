#pragma once

/// \file vec3.hpp
/// Minimal 3-vector used for hit positions, photon directions, Compton
/// ring axes, and source directions.  Double precision throughout: the
/// localization least-squares is sensitive to cancellation when rings
/// are nearly parallel.

#include <cmath>
#include <ostream>

#include "core/units.hpp"

namespace adapt::core {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction.  Degenerate (near-zero) input
  /// returns +z so downstream geometry stays finite; callers that care
  /// should check norm() first.
  Vec3 normalized() const {
    const double n = norm();
    if (n < 1e-300) return {0.0, 0.0, 1.0};
    return *this / n;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

/// Angle [rad] between two (not necessarily unit) vectors, numerically
/// robust for nearly parallel/antiparallel inputs via atan2 of the
/// cross/dot pair.
inline double angle_between(const Vec3& a, const Vec3& b) {
  return std::atan2(a.cross(b).norm(), a.dot(b));
}

/// Build a unit direction from spherical coordinates.
/// `polar` is measured from +z (the detector zenith in our frame),
/// matching the paper's convention where a 0-degree burst is normally
/// incident from above.
inline Vec3 from_spherical(double polar, double azimuth) {
  const double s = std::sin(polar);
  return {s * std::cos(azimuth), s * std::sin(azimuth), std::cos(polar)};
}

/// Polar angle [rad] of a unit direction (angle from +z).
inline double polar_of(const Vec3& unit_dir) {
  double c = unit_dir.z;
  if (c > 1.0) c = 1.0;
  if (c < -1.0) c = -1.0;
  return std::acos(c);
}

/// Azimuthal angle [rad] in [-pi, pi].
inline double azimuth_of(const Vec3& dir) { return std::atan2(dir.y, dir.x); }

/// Return any unit vector orthogonal to `v` (used to parameterize the
/// circle of candidate directions around a Compton ring axis).
inline Vec3 any_orthogonal(const Vec3& v) {
  const Vec3 u = v.normalized();
  // Pick the seed axis least aligned with u to avoid degeneracy.
  const Vec3 seed = std::abs(u.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  return u.cross(seed).normalized();
}

/// Point on the unit sphere at angular distance `theta` from unit axis
/// `axis`, at azimuth `phi` around it.  This is how we enumerate
/// candidate source directions lying on a Compton ring.
inline Vec3 rotate_about_axis(const Vec3& axis, double theta, double phi) {
  const Vec3 u = axis.normalized();
  const Vec3 e1 = any_orthogonal(u);
  const Vec3 e2 = u.cross(e1);
  return u * std::cos(theta) +
         (e1 * std::cos(phi) + e2 * std::sin(phi)) * std::sin(theta);
}

}  // namespace adapt::core
