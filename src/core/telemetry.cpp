#include "core/telemetry.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <ostream>

#include "core/sync.hpp"

namespace adapt::core::telemetry {

namespace {

/// Initial enable state: ADAPT_TELEMETRY=1/on/true turns collection on
/// from process start (useful for one-off diagnosis without touching
/// the caller).  Anything else — including unset — starts disabled.
bool env_enabled() {
  const char* v = std::getenv("ADAPT_TELEMETRY");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

/// Name -> metric maps.  Nodes are never erased, so references handed
/// out by counter()/histogram() stay valid forever; the mutex guards
/// only registration and snapshotting, never the record paths.  A
/// reader/writer capability: lookups of already-registered metrics
/// (the steady state — call sites cache the returned reference in a
/// static) share the lock; only first-registration writes take it
/// exclusively.  This is a leaf lock (DESIGN.md lock ordering): no
/// other lock is acquired while holding it and it is never held
/// across a callback.
struct Registry {
  SharedMutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      ADAPT_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      ADAPT_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry;  // Leaked: metrics outlive statics
                                      // in instrumented destructors.
  return *r;
}

/// fetch_add / fetch_min / fetch_max for atomic<double> via CAS (the
/// C++20 member fetch_add exists for floats, but min/max do not).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

int Histogram::bin_of(double value) {
  if (!(value > kBinFloor)) return 0;  // NaN and sub-floor -> bin 0.
  const int bin = static_cast<int>(std::log2(value / kBinFloor));
  return bin < 0 ? 0 : (bin >= kBins ? kBins - 1 : bin);
}

double Histogram::bin_lower_edge(int i) {
  return kBinFloor * std::exp2(static_cast<double>(i));
}

void Histogram::record(double value) {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
  bins_[static_cast<std::size_t>(bin_of(value))].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  {
    ReaderLock lock(r.mutex);
    const auto it = r.counters.find(name);
    if (it != r.counters.end()) return *it->second;
  }
  WriterLock lock(r.mutex);
  // Re-check: another registrar may have won between the two locks.
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  {
    ReaderLock lock(r.mutex);
    const auto it = r.histograms.find(name);
    if (it != r.histograms.end()) return *it->second;
  }
  WriterLock lock(r.mutex);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot snapshot() {
  Registry& r = registry();
  // Shared: snapshotting never mutates the maps (metric values are
  // atomics read through const pointers).
  ReaderLock lock(r.mutex);
  Snapshot s;
  for (const auto& [name, c] : r.counters) s.counters[name] = c->value();
  for (const auto& [name, h] : r.histograms) {
    HistogramData d;
    d.count = h->count();
    d.sum = h->sum();
    d.min = h->min();
    d.max = h->max();
    for (int i = 0; i < Histogram::kBins; ++i)
      d.bins[static_cast<std::size_t>(i)] = h->bin_count(i);
    s.histograms[name] = d;
  }
  return s;
}

void reset() {
  Registry& r = registry();
  // Shared: resets mutate the metrics (atomics), not the maps.
  ReaderLock lock(r.mutex);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

Snapshot Snapshot::since(const Snapshot& earlier) const {
  Snapshot out = *this;
  for (auto& [name, value] : out.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end() && it->second <= value)
      value -= it->second;
  }
  for (auto& [name, h] : out.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) continue;
    if (it->second.count <= h.count) h.count -= it->second.count;
    h.sum -= it->second.sum;
    for (std::size_t i = 0; i < h.bins.size(); ++i)
      if (it->second.bins[i] <= h.bins[i]) h.bins[i] -= it->second.bins[i];
    // min/max stay the later snapshot's global extremes.
  }
  return out;
}

Snapshot& Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, h] : other.histograms) {
    HistogramData& mine = histograms[name];
    if (mine.count == 0) {
      mine = h;
      continue;
    }
    if (h.count == 0) continue;
    mine.count += h.count;
    mine.sum += h.sum;
    if (h.min < mine.min) mine.min = h.min;
    if (h.max > mine.max) mine.max = h.max;
    for (std::size_t i = 0; i < mine.bins.size(); ++i) mine.bins[i] += h.bins[i];
  }
  return *this;
}

namespace {

/// Minimal JSON number formatting: finite doubles as %.17g (round-trip
/// exact), non-finite as null (JSON has no NaN/inf literal).
void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

/// Metric names are dotted identifiers (no quotes/backslashes/control
/// characters), so escaping is a no-op kept for safety.
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Snapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << value;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": ";
    json_number(os, h.sum);
    os << ", \"mean\": ";
    json_number(os, h.mean());
    os << ", \"min\": ";
    json_number(os, h.min);
    os << ", \"max\": ";
    json_number(os, h.max);
    os << ", \"bins\": [";
    // Trailing empty bins are elided; each entry is [lower_edge, count].
    std::size_t last = h.bins.size();
    while (last > 0 && h.bins[last - 1] == 0) --last;
    for (std::size_t i = 0; i < last; ++i) {
      if (i) os << ", ";
      os << '[';
      json_number(os, Histogram::bin_lower_edge(static_cast<int>(i)));
      os << ", " << h.bins[i] << ']';
    }
    os << "]}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

void Snapshot::write_csv(std::ostream& os) const {
  os << "kind,name,count,sum,mean,min,max\n";
  char buf[128];
  for (const auto& [name, value] : counters) {
    os << "counter," << name << ',' << value << ",,,,\n";
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof(buf), "%.6g,%.6g,%.6g,%.6g", h.sum, h.mean(),
                  h.min, h.max);
    os << "histogram," << name << ',' << h.count << ',' << buf << '\n';
  }
}

}  // namespace adapt::core::telemetry
