#include "core/cpu_features.hpp"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define ADAPT_CPU_FEATURES_X86 1
#endif

namespace adapt::core {

namespace {

#ifdef ADAPT_CPU_FEATURES_X86

// Leaf 1 ECX bits.
constexpr std::uint32_t kOsxsaveBit = 1u << 27;
constexpr std::uint32_t kFmaBit = 1u << 12;
// Leaf 7.0 EBX bits.
constexpr std::uint32_t kAvx2Bit = 1u << 5;
constexpr std::uint32_t kAvx512fBit = 1u << 16;
constexpr std::uint32_t kAvx512bwBit = 1u << 30;
constexpr std::uint32_t kAvx512vlBit = 1u << 31;
// Leaf 7.0 ECX bits.
constexpr std::uint32_t kAvx512vnniBit = 1u << 11;
// XCR0 state-component bits the OS must save/restore.
constexpr std::uint64_t kXcr0Ymm = 0x6;         // XMM + YMM
constexpr std::uint64_t kXcr0Zmm = 0xe0 | 0x6;  // + opmask, ZMM hi/lo

/// XCR0 via raw xgetbv: the <immintrin.h> _xgetbv wrapper needs
/// -mxsave, which would defeat the point of a baseline-ISA probe TU.
std::uint64_t read_xcr0() {
  std::uint32_t lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0u));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

CpuFeatures probe() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  if ((ecx & kOsxsaveBit) == 0) return f;  // no xgetbv, no AVX state
  const std::uint64_t xcr0 = read_xcr0();
  const bool os_ymm = (xcr0 & kXcr0Ymm) == kXcr0Ymm;
  const bool os_zmm = (xcr0 & kXcr0Zmm) == kXcr0Zmm;
  if (!os_ymm) return f;
  f.fma = (ecx & kFmaBit) != 0;

  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) == 0) return f;
  f.avx2 = (ebx7 & kAvx2Bit) != 0;
  if (os_zmm) {
    f.avx512f = (ebx7 & kAvx512fBit) != 0;
    f.avx512bw = (ebx7 & kAvx512bwBit) != 0;
    f.avx512vl = (ebx7 & kAvx512vlBit) != 0;
    f.avx512vnni = (ecx7 & kAvx512vnniBit) != 0;
  }
  return f;
}

#else

CpuFeatures probe() { return CpuFeatures{}; }

#endif  // ADAPT_CPU_FEATURES_X86

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures cached = probe();
  return cached;
}

std::string cpu_features_summary() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  const auto add = [&s](bool flag, const char* name) {
    if (!flag) return;
    if (!s.empty()) s += ' ';
    s += name;
  };
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  add(f.avx512bw, "avx512bw");
  add(f.avx512vl, "avx512vl");
  add(f.avx512vnni, "avx512vnni");
  if (s.empty()) s = "none (scalar only)";
  return s;
}

}  // namespace adapt::core
