#pragma once

/// \file campaign.hpp
/// The chaos campaign: one seeded, end-to-end fault-injection run
/// against a live supervised serve pipeline.
///
/// A campaign builds synthetic paper-architecture models (INT8
/// background net + FP32 dEta net), wraps them in a serve::Supervisor,
/// and drives a deterministic fault schedule through every class the
/// Injector supports, in sequenced phases so the resulting Ledger is
/// bit-identical for identical (seed, spec):
///
///   Phase A  stream `events` synthetic rings with per-event ring
///            corruption and queue drop/duplicate faults
///   Phase B  armed forward faults: transients (absorbed by retry),
///            persistents (analytic failover), stalls (watchdog
///            restart)
///   Phase C  SEU rounds: weight-bit flips alternating between the
///            INT8 and FP32 nets, detected by checksum health ticks,
///            recovered via restore — with flagged-fallback service in
///            between
///   Phase D  serialized-model faults: garbled ADNN / ADQT files that
///            the checksummed loaders must reject
///
/// After each phase the campaign drains the pipeline and credits the
/// supervisor's counter deltas back into the ledger as detected /
/// tolerated; `CampaignResult::ok` requires the ledger to balance,
/// every phase to drain without hanging, and the end state to be
/// healthy.  `adaptctl chaos` and tests/fault both run exactly this
/// entry point.

#include <chrono>
#include <cstdint>
#include <string>

#include "fault/injector.hpp"
#include "serve/supervisor.hpp"

namespace adapt::fault {

struct CampaignSpec {
  std::uint64_t seed = 1;
  /// Master switch: a disabled campaign streams the same events with
  /// no injection (the zero-fault baseline the acceptance criteria
  /// compare against).
  bool enabled = true;

  // Phase A.
  std::size_t events = 3000;
  double ring_fault_rate = 0.08;
  double queue_drop_rate = 0.06;
  double queue_duplicate_rate = 0.06;

  // Phase B.
  std::size_t transient_rounds = 8;
  std::size_t persistent_rounds = 3;
  std::size_t stall_rounds = 1;
  std::chrono::milliseconds stall_duration{600};

  // Phase C.
  std::size_t weight_bit_rounds = 6;
  /// Events served (flagged) while a model is quarantined, and events
  /// served (clean) after each restore, per round.
  std::size_t events_per_degraded_window = 4;

  // Phase D.
  std::size_t model_bytes_rounds = 8;
  /// Directory for the serialized-model fault files; empty = the
  /// system temp directory.  Files are removed afterwards.
  std::string scratch_dir;

  /// Recovery knobs of the supervised pipeline under test.
  serve::SupervisorConfig supervisor;

  /// Per-phase drain budget before the campaign declares a hang.
  std::chrono::milliseconds drain_timeout{10000};
};

struct CampaignResult {
  Ledger ledger;
  serve::SupervisorStats supervisor;
  /// Results delivered with no degradation flag of any kind.
  std::uint64_t delivered_clean = 0;
  /// Ledger balanced, no drain timed out, final state healthy.
  bool ok = false;
  /// Human-readable failure notes ("" when ok).
  std::string errors;
  /// Deterministic ledger + counter report (see Ledger::format).
  std::string report;
};

/// Run one campaign.  Deterministic: two calls with equal specs
/// produce equal `ledger`, `supervisor` counters, and `report` text.
CampaignResult run_campaign(const CampaignSpec& spec);

}  // namespace adapt::fault
