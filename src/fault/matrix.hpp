#pragma once

/// \file matrix.hpp
/// The fault-class x scenario campaign matrix: every hostile-sky
/// scenario crossed with every fault row, each cell a seeded,
/// replayable run of the scenario's ring stream through a live serve
/// pipeline with that row's faults injected — and the Ledger invariant
/// (injected == detected + tolerated) enforced per cell.
///
/// Rows:
///   none         clean serve path: StreamRouter with one stream per
///                burst, per-stream streaming localization and early
///                alerts — the golden-report row CI gates on
///   events       per-ring field corruption + queue drop/duplicate
///                faults on the scenario's own rings (Supervisor)
///   forward      armed transient faults spread through the stream,
///                plus persistent-failover and watchdog-stall probes
///   seu          a weight-bit flip mid-stream: detect via checksum
///                health tick, serve flagged, restore, finish clean
///   model_bytes  garbled serialized-model loads after the stream
///
/// Determinism contract: every cell derives its seed from (matrix
/// seed, scenario index, row index); serving uses max_batch = 1 so
/// each ring is its own batch (batch boundaries, localizer check
/// cadence, and per-batch counters are schedule-independent), queue
/// capacities exceed the stream length, overload degradation is off,
/// and no wall-clock value enters a report.  Two runs of
/// `adaptctl campaign --matrix --seed N` produce byte-identical
/// reports — the property the scenario-matrix CI job diffs.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "scenario/engine.hpp"
#include "serve/supervisor.hpp"

namespace adapt::fault {

/// Matrix rows (fault classes grouped by injection surface).
enum class MatrixRow : std::size_t {
  kNone = 0,
  kEvents,
  kForward,
  kSeu,
  kModelBytes,
};
inline constexpr std::size_t kMatrixRowCount = 5;

const char* to_string(MatrixRow row);

struct MatrixSpec {
  std::uint64_t seed = 2026;
  std::vector<scenario::ScenarioConfig> scenarios;
  /// Restrict to one row (by name) — empty runs all five.
  std::string only_row;
  /// Base recovery knobs; per-cell capacity/batch overrides are
  /// applied on top (see file comment).
  serve::SupervisorConfig supervisor;
  /// Per-phase drain budget before a cell declares a hang.
  std::chrono::milliseconds drain_timeout{10000};
  /// Scratch directory for model-byte fault files; empty = temp dir.
  std::string scratch_dir;
};

struct CellResult {
  std::string scenario;
  MatrixRow row = MatrixRow::kNone;
  std::uint64_t seed = 0;
  Ledger ledger;
  /// Ledger balanced, no drain timed out, healthy end state.
  bool ok = false;
  std::string errors;
  /// Deterministic per-cell report (sim + trigger + per-burst
  /// localization lines, serve counters, ledger table, status).
  std::string report;
};

struct MatrixResult {
  std::vector<CellResult> cells;
  bool ok = false;          ///< Every cell ok.
  std::string report;       ///< All cell reports + summary.
};

/// Run the full matrix.  Deterministic: two calls with equal specs
/// produce byte-identical `report` and equal cell ledgers.
MatrixResult run_matrix(const MatrixSpec& spec);

}  // namespace adapt::fault
