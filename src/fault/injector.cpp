#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>

#include "core/contract.hpp"
#include "core/telemetry.hpp"
#include "nn/sequential.hpp"

namespace adapt::fault {

namespace tm = core::telemetry;

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kRingField:
      return "ring_field";
    case FaultClass::kQueueDrop:
      return "queue_drop";
    case FaultClass::kQueueDuplicate:
      return "queue_duplicate";
    case FaultClass::kForwardTransient:
      return "forward_transient";
    case FaultClass::kForwardPersistent:
      return "forward_persistent";
    case FaultClass::kForwardStall:
      return "forward_stall";
    case FaultClass::kWeightBit:
      return "weight_bit";
    case FaultClass::kModelBytes:
      return "model_bytes";
  }
  return "unknown";
}

namespace {

std::uint64_t sum(const std::array<std::uint64_t, kFaultClassCount>& a) {
  std::uint64_t t = 0;
  for (std::uint64_t v : a) t += v;
  return t;
}

}  // namespace

std::uint64_t Ledger::total_injected() const { return sum(injected); }
std::uint64_t Ledger::total_detected() const { return sum(detected); }
std::uint64_t Ledger::total_tolerated() const { return sum(tolerated); }

std::uint64_t Ledger::unaccounted() const {
  std::uint64_t u = 0;
  for (std::size_t i = 0; i < kFaultClassCount; ++i) {
    const std::uint64_t credited = detected[i] + tolerated[i];
    if (injected[i] > credited) u += injected[i] - credited;
  }
  return u;
}

bool Ledger::balanced() const {
  for (std::size_t i = 0; i < kFaultClassCount; ++i)
    if (injected[i] != detected[i] + tolerated[i]) return false;
  return true;
}

std::string Ledger::format() const {
  // Fixed order and fixed-width columns: the chaos determinism test
  // compares this string byte-for-byte across two seeded runs.
  std::string out =
      "fault ledger (invariant: injected == detected + tolerated)\n";
  char line[128];
  std::snprintf(line, sizeof(line), "  %-20s %9s %9s %10s\n", "class",
                "injected", "detected", "tolerated");
  out += line;
  for (std::size_t i = 0; i < kFaultClassCount; ++i) {
    std::snprintf(line, sizeof(line), "  %-20s %9llu %9llu %10llu\n",
                  to_string(static_cast<FaultClass>(i)),
                  static_cast<unsigned long long>(injected[i]),
                  static_cast<unsigned long long>(detected[i]),
                  static_cast<unsigned long long>(tolerated[i]));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-20s %9llu %9llu %10llu\n", "TOTAL",
                static_cast<unsigned long long>(total_injected()),
                static_cast<unsigned long long>(total_detected()),
                static_cast<unsigned long long>(total_tolerated()));
  out += line;
  std::snprintf(line, sizeof(line), "  unaccounted %llu (%s)\n",
                static_cast<unsigned long long>(unaccounted()),
                balanced() ? "balanced" : "IMBALANCED");
  out += line;
  return out;
}

Injector::Injector(std::uint64_t seed, bool enabled)
    : rng_(seed), enabled_(enabled) {}

void Injector::count_injected(FaultClass c) {
  ledger_.injected[static_cast<std::size_t>(c)] += 1;
  tm::counter(std::string("fault.injected.") + to_string(c)).add();
}

void Injector::count_detected(FaultClass c, std::uint64_t n) {
  if (n == 0) return;
  ledger_.detected[static_cast<std::size_t>(c)] += n;
  tm::counter(std::string("fault.detected.") + to_string(c)).add(n);
}

void Injector::count_tolerated(FaultClass c, std::uint64_t n) {
  if (n == 0) return;
  ledger_.tolerated[static_cast<std::size_t>(c)] += n;
  tm::counter(std::string("fault.tolerated.") + to_string(c)).add(n);
}

bool Injector::maybe_corrupt_ring(recon::ComptonRing& ring, double rate) {
  if (!enabled_ || rate <= 0.0) return false;
  if (rng_.uniform() >= rate) return false;
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Each kind violates Supervisor::ring_admissible by construction —
  // an injected ring fault that ingress validation would *pass* is an
  // injector bug the ledger invariant exposes.
  switch (rng_.uniform_index(8)) {
    case 0:
      ring.hit1.energy = kNan;
      break;
    case 1:
      ring.hit2.energy = kInf;
      break;
    case 2:
      ring.e_total = -std::abs(ring.e_total) - 1.0;
      break;
    case 3:
      ring.eta = 1.0 + rng_.uniform(0.5, 2.0);
      break;
    case 4:
      ring.eta = kNan;
      break;
    case 5:
      ring.axis.x = kNan;
      break;
    case 6:
      ring.d_eta = kNan;
      break;
    default:
      ring.e_total = kNan;
      break;
  }
  count_injected(FaultClass::kRingField);
  return true;
}

serve::QueueFault Injector::next_queue_fault(double drop_rate,
                                             double duplicate_rate) {
  if (!enabled_) return serve::QueueFault::kNone;
  // One draw decides both: [0, drop) -> drop, [drop, drop+dup) ->
  // duplicate, rest clean.  A single draw keeps the stream consumption
  // rate identical whatever the rates are.
  const double u = rng_.uniform();
  if (u < drop_rate) {
    count_injected(FaultClass::kQueueDrop);
    return serve::QueueFault::kDrop;
  }
  if (u < drop_rate + duplicate_rate) {
    count_injected(FaultClass::kQueueDuplicate);
    return serve::QueueFault::kDuplicate;
  }
  return serve::QueueFault::kNone;
}

void Injector::arm_transient(std::size_t attempts) {
  if (!enabled_ || attempts == 0) return;
  count_injected(FaultClass::kForwardTransient);
  armed_failures_.fetch_add(attempts, std::memory_order_release);
}

void Injector::arm_persistent(std::size_t attempts) {
  if (!enabled_ || attempts == 0) return;
  count_injected(FaultClass::kForwardPersistent);
  armed_failures_.fetch_add(attempts, std::memory_order_release);
}

void Injector::arm_stall(std::chrono::milliseconds duration) {
  if (!enabled_ || duration.count() <= 0) return;
  count_injected(FaultClass::kForwardStall);
  armed_stall_ms_.store(duration.count(), std::memory_order_release);
}

void Injector::on_forward_attempt(std::size_t /*batch_size*/) {
  const std::int64_t stall_ms =
      armed_stall_ms_.exchange(0, std::memory_order_acq_rel);
  if (stall_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  std::uint64_t armed = armed_failures_.load(std::memory_order_acquire);
  while (armed > 0) {
    if (armed_failures_.compare_exchange_weak(armed, armed - 1,
                                              std::memory_order_acq_rel))
      throw InjectedFault("injected forward failure");
  }
}

Injector::BitFlip Injector::flip_int8_weight_bit(quant::QuantizedMlp& model) {
  ADAPT_REQUIRE(enabled_, "flip_int8_weight_bit on a disabled injector");
  ADAPT_REQUIRE(!model.layers().empty(), "model has no layers");
  BitFlip flip;
  flip.layer = rng_.uniform_index(model.layers().size());
  flip.byte_index = rng_.next_u64();
  flip.bit = static_cast<unsigned>(rng_.uniform_index(8));
  model.flip_weight_bit(flip.layer, flip.byte_index, flip.bit);
  count_injected(FaultClass::kWeightBit);
  return flip;
}

void Injector::flip_back(quant::QuantizedMlp& model, const BitFlip& flip) {
  model.flip_weight_bit(flip.layer, flip.byte_index, flip.bit);
}

void Injector::corrupt_fp32_weight(nn::Sequential& model) {
  ADAPT_REQUIRE(enabled_, "corrupt_fp32_weight on a disabled injector");
  auto params = model.params();
  ADAPT_REQUIRE(!params.empty(), "model has no parameters");
  auto& values = params[rng_.uniform_index(params.size())]->value.vec();
  ADAPT_REQUIRE(!values.empty(), "parameter tensor is empty");
  float& v = values[rng_.uniform_index(values.size())];
  // Flip one mantissa bit of the stored float: the value stays finite
  // (an exponent/sign upset could also happen in flight, but a finite
  // perturbation keeps the campaign independent of NaN propagation —
  // detection is the checksum's job either way).
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  bits ^= 1u << rng_.uniform_index(23);
  std::memcpy(&v, &bits, sizeof(bits));
  count_injected(FaultClass::kWeightBit);
}

std::string Injector::garble_bytes(std::string bytes) {
  if (!enabled_) return bytes;
  const std::string original = bytes;
  if (!bytes.empty()) {
    switch (rng_.uniform_index(4)) {
      case 0:  // Truncated upload.
        bytes.resize(rng_.uniform_index(bytes.size()));
        break;
      case 1: {  // Single bit flip anywhere.
        auto& b = bytes[rng_.uniform_index(bytes.size())];
        b = static_cast<char>(static_cast<unsigned char>(b) ^
                              (1u << rng_.uniform_index(8)));
        break;
      }
      case 2: {  // Zeroed span (dropped block).
        const std::size_t start = rng_.uniform_index(bytes.size());
        const std::size_t len =
            std::min<std::size_t>(bytes.size() - start,
                                  1 + rng_.uniform_index(16));
        for (std::size_t i = 0; i < len; ++i) bytes[start + i] = '\0';
        break;
      }
      default: {  // Corrupt the checksum footer itself.
        const std::size_t tail = std::min<std::size_t>(bytes.size(), 8);
        auto& b = bytes[bytes.size() - 1 - rng_.uniform_index(tail)];
        b = static_cast<char>(static_cast<unsigned char>(b) ^ 0xFFu);
        break;
      }
    }
  }
  if (bytes == original) {
    // A zeroed span of already-zero bytes is a no-op; force a change
    // so the loader has something to reject.
    if (bytes.empty())
      bytes.push_back('\x01');
    else
      bytes.back() = static_cast<char>(
          static_cast<unsigned char>(bytes.back()) ^ 0x01u);
  }
  count_injected(FaultClass::kModelBytes);
  return bytes;
}

}  // namespace adapt::fault
