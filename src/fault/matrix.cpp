#include "fault/matrix.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "core/contract.hpp"
#include "core/rng.hpp"
#include "loc/incremental.hpp"
#include "nn/serialize.hpp"
#include "serve/stream_router.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::fault {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr double kPi = 3.14159265358979323846;

/// Event-row injection rates (per submitted ring).
constexpr double kRingFaultRate = 0.05;
constexpr double kQueueDropRate = 0.03;
constexpr double kQueueDuplicateRate = 0.03;

/// Fixed-precision float formatting: snprintf is deterministic for a
/// given binary, which is all the two-run byte-diff gate requires.
std::string fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return std::string(buffer);
}

void append_counter(std::string& out, const char* name, std::uint64_t v) {
  out += "  ";
  out += name;
  out += '=';
  out += std::to_string(v);
  out += '\n';
}

std::uint64_t cell_seed(std::uint64_t matrix_seed, std::size_t scenario_idx,
                        std::size_t row_idx) {
  std::uint64_t state = matrix_seed ^
                        (0x9E3779B97F4A7C15ULL * (scenario_idx + 1)) ^
                        (0xBF58476D1CE4E5B9ULL * (row_idx + 1));
  return core::splitmix64(state);
}

/// Stream-localizer knobs shared by the clean row: cheap grid, short
/// cadence (max_batch = 1 makes the cadence exact in ring count).
serve::StreamLocalizerConfig localizer_template(double alert_radius_deg) {
  serve::StreamLocalizerConfig cfg;
  cfg.localizer.resolution_deg = 2.0;
  cfg.localizer.coarse_factor = 2;
  cfg.alert_radius_deg = alert_radius_deg;
  cfg.check_every = 16;
  cfg.min_rings = 8;
  // The scenario rings carry real analytic widths; the synthetic
  // models' served d_eta is seeded noise, and their background veto
  // must not censor the stream.
  cfg.feed_background = true;
  cfg.use_served_d_eta = false;
  return cfg;
}

double angle_deg(const core::Vec3& a, const core::Vec3& b) {
  const double c = std::clamp(a.dot(b), -1.0, 1.0);
  return std::acos(c) * 180.0 / kPi;
}

/// Row-independent scenario lines (sim accounting, trigger scoring,
/// per-burst offline localization) shared verbatim by every cell in
/// the scenario's row — the comparator sees identical physics text
/// across the column.
struct ScenarioSummary {
  std::string text;
  std::vector<std::vector<std::size_t>> burst_rings;  ///< Ring indices.
};

ScenarioSummary summarize_scenario(const scenario::ScenarioData& data) {
  ScenarioSummary summary;
  std::string& out = summary.text;

  out += "sim: events=" + std::to_string(data.events.size()) +
         " background=" + std::to_string(data.background_events) +
         " flare=" + std::to_string(data.flare_events) +
         " surge=" + std::to_string(data.surge_events) +
         " occulted=" + std::to_string(data.occulted_events) +
         " piled_up=" + std::to_string(data.piled_up_events) +
         " rings=" + std::to_string(data.rings.size()) + "\n";

  const scenario::TriggerScore score = scenario::score_trigger(data);
  out += "trigger: base_rate_hz=" + fmt(data.background_rate_hz, 1) +
         " episodes=" + std::to_string(score.intervals.size()) +
         " true_positives=" + std::to_string(score.true_positives) +
         " false_positives=" + std::to_string(score.false_positives) +
         " efficiency=" + fmt(score.efficiency, 2) +
         " purity=" + fmt(score.purity, 2) + "\n";

  for (std::size_t b = 0; b < data.bursts.size(); ++b) {
    const scenario::BurstTruth& burst = data.bursts[b];
    std::vector<std::size_t> indices =
        scenario::rings_in_window(data, burst.t_start, burst.t_end);
    loc::IncrementalConfig loc_cfg;
    loc::IncrementalLocalizer localizer(loc_cfg);
    for (const std::size_t idx : indices)
      localizer.add_ring(data.rings[idx]);
    double error_deg = 180.0;
    double radius68 = 180.0;
    if (localizer.n_rings() > 0) {
      error_deg = angle_deg(localizer.peak(), burst.direction);
      radius68 = localizer.credible_radius_deg(0.68);
    }
    out += "burst " + std::to_string(b + 1) + ": window=[" +
           fmt(burst.t_start, 2) + "," + fmt(burst.t_end, 2) +
           ") events=" + std::to_string(burst.events) +
           " rings=" + std::to_string(indices.size()) +
           " loc_error_deg=" + fmt(error_deg, 2) +
           " radius68_deg=" + fmt(radius68, 2) + "\n";
    summary.burst_rings.push_back(std::move(indices));
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Clean row: the full multi-stream serve path with streaming
// localization and early alerts — one router stream per burst.
// ---------------------------------------------------------------------------

std::string run_clean_row(const scenario::ScenarioData& data,
                          const ScenarioSummary& summary,
                          std::uint64_t seed, std::string& errors) {
  pipeline::BackgroundNet background =
      serve::synthetic_background_net_int8(seed ^ 0xB16B00B5ULL);
  pipeline::DEtaNet deta = serve::synthetic_deta_net(seed ^ 0xD37AULL);

  std::size_t total_rings = 0;
  for (const auto& indices : summary.burst_rings)
    total_rings += indices.size();

  serve::RouterConfig cfg;
  cfg.num_shards = std::max<std::size_t>(1, summary.burst_rings.size());
  cfg.num_workers = 1;
  cfg.shard_capacity = total_rings + 64;
  cfg.per_stream_cap = total_rings + 64;
  cfg.max_batch = 1;  // Every ring its own batch: schedule-independent.
  cfg.degrade_when_saturated = false;
  cfg.localize = true;
  cfg.localizer_template = localizer_template(data.config.alert_radius_deg);

  serve::StreamRouter router(pipeline::Models{&background, &deta}, cfg,
                             [](std::span<const serve::ServeResult>) {});
  router.start();
  for (std::size_t b = 0; b < summary.burst_rings.size(); ++b) {
    const double polar_guess = data.config.bursts[b].polar_deg;
    for (const std::size_t idx : summary.burst_rings[b]) {
      if (router.submit(static_cast<std::uint32_t>(b), data.rings[idx],
                        polar_guess) == 0) {
        if (!errors.empty()) errors += "; ";
        errors += "router rejected a clean ring";
      }
    }
  }
  router.stop();  // Drains every admitted request.

  std::string out;
  for (std::size_t b = 0; b < summary.burst_rings.size(); ++b) {
    const auto status = router.localizer_status(static_cast<std::uint32_t>(b));
    out += "stream " + std::to_string(b + 1) + ": fed=" +
           std::to_string(summary.burst_rings[b].size());
    if (!status) {
      out += " localizer=absent\n";
      if (summary.burst_rings[b].empty()) continue;
      if (!errors.empty()) errors += "; ";
      errors += "missing localizer status for stream " + std::to_string(b);
      continue;
    }
    out += " accepted=" + std::to_string(status->rings_accepted) +
           " checks=" + std::to_string(status->radius_checks) +
           " last_radius_deg=" + fmt(status->last_radius_deg, 2);
    if (status->alert_fired) {
      out += " alert=yes alert_rings=" + std::to_string(status->alert_rings) +
             " alert_radius_deg=" + fmt(status->alert_radius_deg, 2);
      // Alert latency on the SCENARIO clock: the alert fired once the
      // localizer had folded `alert_rings` rings, i.e. at the arrival
      // time of that ring in the stream — no wall clock involved.
      const auto& indices = summary.burst_rings[b];
      if (status->alert_rings >= 1 && status->alert_rings <= indices.size()) {
        const double t_alert =
            data.ring_times[indices[status->alert_rings - 1]];
        out += " alert_t_s=" + fmt(t_alert, 3) + " alert_latency_s=" +
               fmt(t_alert - data.bursts[b].t_start, 3);
      }
    } else {
      out += " alert=no";
    }
    out += "\n";
  }

  const auto stats = router.stats();
  out += "serve counters:\n";
  append_counter(out, "submitted", stats.submitted);
  append_counter(out, "processed", stats.processed);
  append_counter(out, "batches", stats.batches);
  append_counter(out, "shed", stats.shed);
  append_counter(out, "rejected", stats.rejected);
  append_counter(out, "degraded", stats.degraded);
  append_counter(out, "background", stats.background);
  append_counter(out, "fallback", stats.fallback);
  append_counter(out, "streams", stats.streams);
  if (stats.shed != 0) {
    if (!errors.empty()) errors += "; ";
    errors += "clean row shed events";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fault rows: the scenario ring stream through a Supervisor with the
// row's fault class injected (campaign Run idiom, per cell).
// ---------------------------------------------------------------------------

struct CellRun {
  Injector injector;
  serve::Supervisor& sup;
  core::Rng probe_rng;
  std::chrono::milliseconds drain_timeout;
  std::atomic<bool> queue_faults_active{false};
  std::uint64_t admitted = 0;
  std::string errors;

  CellRun(std::uint64_t seed, serve::Supervisor& supervisor,
          std::chrono::milliseconds timeout)
      : injector(seed, true),
        sup(supervisor),
        probe_rng(seed ^ 0x5eedBULL),
        drain_timeout(timeout) {}

  void note(const std::string& msg) {
    if (!errors.empty()) errors += "; ";
    errors += msg;
  }

  bool drain() {
    const std::uint64_t dups =
        injector.ledger()
            .injected[static_cast<std::size_t>(FaultClass::kQueueDuplicate)];
    const auto deadline = Clock::now() + drain_timeout;
    for (;;) {
      const auto s = sup.stats();
      if (s.delivered >= admitted && s.duplicates_suppressed >= dups)
        return true;
      if (Clock::now() >= deadline) {
        note("drain timed out (delivered " + std::to_string(s.delivered) +
             " of " + std::to_string(admitted) + ")");
        return false;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  /// Submit one scenario ring (clean) and count the admission.
  void feed(const recon::ComptonRing& ring, double polar_guess) {
    if (sup.submit(ring, polar_guess) == 0) {
      note("clean scenario ring rejected");
      return;
    }
    ++admitted;
  }

  /// One synthetic probe ring, drained through as its own batch.
  bool probe() {
    recon::ComptonRing ring = serve::synthetic_ring(probe_rng);
    const double polar = probe_rng.uniform(5.0, 85.0);
    if (sup.submit(ring, polar) == 0) {
      note("probe ring rejected");
      return false;
    }
    ++admitted;
    return drain();
  }
};

/// Flat (ring index, polar guess) stream over all burst windows.
struct StreamItem {
  std::size_t ring_index;
  double polar_guess;
};

std::vector<StreamItem> flatten_stream(const scenario::ScenarioData& data,
                                       const ScenarioSummary& summary) {
  std::vector<StreamItem> stream;
  for (std::size_t b = 0; b < summary.burst_rings.size(); ++b)
    for (const std::size_t idx : summary.burst_rings[b])
      stream.push_back(StreamItem{idx, data.config.bursts[b].polar_deg});
  return stream;
}

void run_events_row(CellRun& run, const scenario::ScenarioData& data,
                    const std::vector<StreamItem>& stream) {
  run.queue_faults_active.store(true, std::memory_order_release);
  for (const StreamItem& item : stream) {
    recon::ComptonRing ring = data.rings[item.ring_index];
    const bool corrupted =
        run.injector.maybe_corrupt_ring(ring, kRingFaultRate);
    const std::uint64_t seq = run.sup.submit(ring, item.polar_guess);
    if (corrupted) {
      if (seq == 0) {
        run.injector.count_detected(FaultClass::kRingField);
      } else {
        run.note("corrupt ring admitted by ingress validation");
        ++run.admitted;
      }
    } else if (seq != 0) {
      ++run.admitted;
    }
    // seq == 0 on a clean ring is an injected queue drop, credited
    // from the supervisor counter after the drain.
  }
  run.drain();
  run.queue_faults_active.store(false, std::memory_order_release);

  const auto stats = run.sup.stats();
  run.injector.count_detected(FaultClass::kQueueDrop, stats.queue_drops);
  run.injector.count_detected(FaultClass::kQueueDuplicate,
                              stats.duplicates_suppressed);
  run.sup.health_tick();
}

void run_forward_row(CellRun& run, const scenario::ScenarioData& data,
                     const std::vector<StreamItem>& stream) {
  // Transients spread through the stream: every kArmStride-th ring is
  // drained to a batch boundary, armed, and drained through alone, so
  // the armed fault lands on exactly that ring's batch.
  constexpr std::size_t kArmStride = 64;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const StreamItem& item = stream[i];
    if (i % kArmStride == kArmStride - 1) {
      run.drain();
      run.injector.arm_transient(1);
      run.feed(data.rings[item.ring_index], item.polar_guess);
      run.drain();
    } else {
      run.feed(data.rings[item.ring_index], item.polar_guess);
    }
  }
  run.drain();
  run.injector.count_tolerated(FaultClass::kForwardTransient,
                               run.sup.stats().transient_recovered);

  const std::size_t retry_budget = run.sup.config().max_retries;
  for (std::size_t r = 0; r < 2; ++r) {
    run.injector.arm_persistent(retry_budget + 1);
    run.probe();
  }
  run.injector.count_detected(FaultClass::kForwardPersistent,
                              run.sup.stats().fallback_batches);

  const std::uint64_t restarts_before = run.sup.stats().watchdog_restarts;
  run.injector.arm_stall(std::chrono::milliseconds(450));
  run.probe();
  const auto deadline = Clock::now() + run.drain_timeout;
  while (run.sup.stats().watchdog_restarts <= restarts_before) {
    if (Clock::now() >= deadline) {
      run.note("watchdog missed an injected stall");
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  run.injector.count_detected(
      FaultClass::kForwardStall,
      run.sup.stats().watchdog_restarts - restarts_before);
}

void run_seu_row(CellRun& run, const scenario::ScenarioData& data,
                 const std::vector<StreamItem>& stream,
                 pipeline::BackgroundNet& background) {
  constexpr std::size_t kDegradedWindow = 16;
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    run.feed(data.rings[stream[i].ring_index], stream[i].polar_guess);
  run.drain();

  Injector::BitFlip flip;
  run.sup.with_models_quiesced([&](pipeline::Models& models) {
    flip = run.injector.flip_int8_weight_bit(*models.background->int8_model());
  });
  run.sup.health_tick();
  if (run.sup.state() != serve::HealthState::kDegraded)
    run.note("SEU not detected by health tick");

  // Flagged-but-served window while quarantined.
  const std::size_t window_end = std::min(half + kDegradedWindow,
                                          stream.size());
  for (std::size_t i = half; i < window_end; ++i)
    run.feed(data.rings[stream[i].ring_index], stream[i].polar_guess);
  run.drain();

  run.sup.with_models_quiesced([&](pipeline::Models& models) {
    Injector::flip_back(*models.background->int8_model(), flip);
  });
  run.sup.restore_background(&background);

  for (std::size_t i = window_end; i < stream.size(); ++i)
    run.feed(data.rings[stream[i].ring_index], stream[i].polar_guess);
  if (stream.empty() || window_end == stream.size()) run.probe();
  run.drain();
  run.sup.health_tick();
  if (run.sup.state() != serve::HealthState::kHealthy)
    run.note("pipeline did not return to healthy after restore");
  run.injector.count_detected(FaultClass::kWeightBit,
                              run.sup.stats().checksum_failures);
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

bool write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(os);
}

void run_model_bytes_row(CellRun& run, const scenario::ScenarioData& data,
                         const std::vector<StreamItem>& stream,
                         pipeline::DEtaNet& deta,
                         const std::string& scratch_dir,
                         std::uint64_t seed) {
  constexpr std::size_t kRounds = 4;
  for (const StreamItem& item : stream)
    run.feed(data.rings[item.ring_index], item.polar_guess);
  run.drain();

  fs::path dir;
  if (scratch_dir.empty()) {
    std::error_code ec;
    dir = fs::temp_directory_path(ec);
    if (ec) dir = ".";
    dir /= "adapt_matrix_" + std::to_string(seed) + "_" +
           std::to_string(static_cast<long>(::getpid()));
  } else {
    dir = scratch_dir;
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    run.note("cannot create scratch dir " + dir.string());
    return;
  }
  const fs::path good = dir / "good_model.adnn";
  const fs::path bad = dir / "garbled_model.bin";
  if (!deta.save(good.string())) {
    run.note("cannot write ADNN fixture");
    return;
  }
  const std::string bytes = read_file(good);
  for (std::size_t r = 0; r < kRounds; ++r) {
    if (bytes.empty()) {
      run.note("model fixture unreadable");
      break;
    }
    const std::string garbled = run.injector.garble_bytes(bytes);
    if (!write_file(bad, garbled)) {
      run.note("cannot write garbled model");
      continue;
    }
    if (nn::load_model(bad.string()).has_value())
      run.note("garbled model bytes were accepted by the loader");
    else
      run.injector.count_detected(FaultClass::kModelBytes);
  }
  fs::remove(good, ec);
  fs::remove(bad, ec);
  if (scratch_dir.empty()) fs::remove(dir, ec);
}

std::string run_fault_row(const scenario::ScenarioData& data,
                          const ScenarioSummary& summary, MatrixRow row,
                          std::uint64_t seed, const MatrixSpec& spec,
                          Ledger& ledger, std::string& errors) {
  pipeline::BackgroundNet background =
      serve::synthetic_background_net_int8(seed ^ 0xB16B00B5ULL);
  pipeline::DEtaNet deta = serve::synthetic_deta_net(seed ^ 0xD37AULL);
  pipeline::Models models{&background, &deta};

  const std::vector<StreamItem> stream = flatten_stream(data, summary);

  serve::SupervisorConfig cfg = spec.supervisor;
  cfg.serve.queue_capacity =
      std::max<std::size_t>(cfg.serve.queue_capacity, stream.size() + 256);
  cfg.serve.max_batch = 1;  // Every ring its own batch (see matrix.hpp).
  cfg.serve.degrade_when_saturated = false;
  cfg.checksum_every_n_ticks = 0;  // Campaign ticks manually.

  serve::Supervisor sup(models, cfg,
                        [](std::span<const serve::ServeResult>) {});
  std::string out;
  serve::SupervisorStats stats;
  {
    CellRun run(seed, sup, spec.drain_timeout);
    sup.set_queue_fault_hook([&run] {
      if (!run.queue_faults_active.load(std::memory_order_acquire))
        return serve::QueueFault::kNone;
      return run.injector.next_queue_fault(kQueueDropRate,
                                           kQueueDuplicateRate);
    });
    sup.set_forward_hook(
        [&run](std::size_t n) { run.injector.on_forward_attempt(n); });
    sup.start();

    switch (row) {
      case MatrixRow::kEvents:
        run_events_row(run, data, stream);
        break;
      case MatrixRow::kForward:
        run_forward_row(run, data, stream);
        break;
      case MatrixRow::kSeu:
        run_seu_row(run, data, stream, background);
        break;
      case MatrixRow::kModelBytes:
        run_model_bytes_row(run, data, stream, deta, spec.scratch_dir, seed);
        break;
      case MatrixRow::kNone:
        break;  // Handled by run_clean_row.
    }

    run.drain();
    sup.health_tick();
    sup.stop();

    ledger = run.injector.ledger();
    stats = sup.stats();
    if (stats.state != serve::HealthState::kHealthy)
      run.note("cell ended in state " +
               std::string(serve::to_string(stats.state)));
    errors = run.errors;
  }

  out += "serve counters:\n";
  append_counter(out, "submitted", stats.submitted);
  append_counter(out, "input_rejected", stats.input_rejected);
  append_counter(out, "queue_drops", stats.queue_drops);
  append_counter(out, "duplicates_suppressed", stats.duplicates_suppressed);
  append_counter(out, "retries", stats.retries);
  append_counter(out, "transient_recovered", stats.transient_recovered);
  append_counter(out, "fallback_batches", stats.fallback_batches);
  append_counter(out, "checksum_failures", stats.checksum_failures);
  append_counter(out, "restores", stats.restores);
  append_counter(out, "watchdog_restarts", stats.watchdog_restarts);
  append_counter(out, "delivered", stats.delivered);
  append_counter(out, "delivered_fallback", stats.delivered_fallback);
  append_counter(out, "delivered_degraded", stats.delivered_degraded);
  out += std::string("final state: ") + serve::to_string(stats.state) + "\n";
  return out;
}

}  // namespace

const char* to_string(MatrixRow row) {
  switch (row) {
    case MatrixRow::kNone:
      return "none";
    case MatrixRow::kEvents:
      return "events";
    case MatrixRow::kForward:
      return "forward";
    case MatrixRow::kSeu:
      return "seu";
    case MatrixRow::kModelBytes:
      return "model_bytes";
  }
  return "?";
}

MatrixResult run_matrix(const MatrixSpec& spec) {
  ADAPT_REQUIRE(!spec.scenarios.empty(), "matrix needs at least one scenario");

  MatrixResult result;
  result.ok = true;
  result.report = "fault x scenario matrix seed=" + std::to_string(spec.seed) +
                  " scenarios=" + std::to_string(spec.scenarios.size()) +
                  " rows=" + std::to_string(kMatrixRowCount) + "\n\n";

  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    const scenario::ScenarioConfig& config = spec.scenarios[s];
    // The scenario realization depends only on (matrix seed, scenario
    // index): every row replays the identical timeline.
    std::uint64_t sim_chain = spec.seed ^
                              (0x94D049BB133111EBULL * (s + 1));
    const std::uint64_t sim_seed = core::splitmix64(sim_chain);
    const scenario::ScenarioData data =
        scenario::simulate_scenario(config, sim_seed);
    const ScenarioSummary summary = summarize_scenario(data);

    for (std::size_t r = 0; r < kMatrixRowCount; ++r) {
      const MatrixRow row = static_cast<MatrixRow>(r);
      if (!spec.only_row.empty() && spec.only_row != to_string(row)) continue;

      CellResult cell;
      cell.scenario = config.name;
      cell.row = row;
      cell.seed = cell_seed(spec.seed, s, r);

      std::string body;
      if (row == MatrixRow::kNone) {
        body = run_clean_row(data, summary, cell.seed, cell.errors);
        // No injector in the clean row: the ledger stays all-zero,
        // which is balanced by definition.
      } else {
        body = run_fault_row(data, summary, row, cell.seed, spec,
                             cell.ledger, cell.errors);
      }

      cell.ok = cell.errors.empty() && cell.ledger.balanced();
      cell.report = "=== cell scenario=" + cell.scenario +
                    " fault=" + to_string(row) +
                    " seed=" + std::to_string(cell.seed) + "\n" +
                    summary.text + body;
      if (row != MatrixRow::kNone) cell.report += cell.ledger.format();
      cell.report += std::string("ledger invariant: ") +
                     (cell.ledger.balanced() ? "balanced" : "IMBALANCED") +
                     "\n";
      cell.report += std::string("cell status: ") +
                     (cell.ok ? "ok" : ("FAILED (" + cell.errors + ")")) +
                     "\n\n";

      result.report += cell.report;
      result.ok = result.ok && cell.ok;
      result.cells.push_back(std::move(cell));
    }
  }

  std::size_t failed = 0;
  for (const CellResult& cell : result.cells)
    if (!cell.ok) ++failed;
  result.report += "matrix: cells=" + std::to_string(result.cells.size()) +
                   " ok=" + std::to_string(result.cells.size() - failed) +
                   " failed=" + std::to_string(failed) + "\n";
  result.report += std::string("matrix status: ") +
                   (result.ok ? "ok" : "FAILED") + "\n";
  return result;
}

}  // namespace adapt::fault
