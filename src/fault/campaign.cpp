#include "fault/campaign.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/contract.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "quant/fuse.hpp"
#include "quant/qat_io.hpp"
#include "quant/quantized_mlp.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::fault {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// Campaign-side orchestration state threaded through the phases.
struct Run {
  const CampaignSpec& spec;
  Injector injector;
  serve::Supervisor& sup;
  core::Rng ring_rng;
  std::atomic<bool> queue_faults_active{false};
  std::uint64_t admitted = 0;
  std::string errors;

  Run(const CampaignSpec& s, serve::Supervisor& supervisor)
      : spec(s),
        injector(s.seed, s.enabled),
        sup(supervisor),
        ring_rng(s.seed ^ 0x5eedBULL) {}

  void note(const std::string& msg) {
    if (!errors.empty()) errors += "; ";
    errors += msg;
  }

  /// Wait until every admitted event has been delivered (and every
  /// injected duplicate suppressed).  Returns false on timeout — a
  /// hang, which the campaign reports instead of deadlocking CI.
  bool drain() {
    const std::uint64_t dups =
        injector.ledger()
            .injected[static_cast<std::size_t>(FaultClass::kQueueDuplicate)];
    const auto deadline = Clock::now() + spec.drain_timeout;
    for (;;) {
      const auto s = sup.stats();
      if (s.delivered >= admitted && s.duplicates_suppressed >= dups)
        return true;
      if (Clock::now() >= deadline) {
        note("drain timed out (delivered " + std::to_string(s.delivered) +
             " of " + std::to_string(admitted) + ")");
        return false;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  /// Submit one known-good probe ring and drain it through, so each
  /// probe is its own batch — keeping per-batch counters (retries,
  /// fallback batches) deterministic for the report.
  bool probe() {
    recon::ComptonRing ring = serve::synthetic_ring(ring_rng);
    const double polar = ring_rng.uniform(5.0, 85.0);
    if (sup.submit(ring, polar) == 0) {
      note("probe ring rejected");
      return false;
    }
    ++admitted;
    return drain();
  }
};

void stream_with_event_faults(Run& run) {
  run.queue_faults_active.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < run.spec.events; ++i) {
    recon::ComptonRing ring = serve::synthetic_ring(run.ring_rng);
    const double polar = run.ring_rng.uniform(5.0, 85.0);
    const bool corrupted =
        run.injector.maybe_corrupt_ring(ring, run.spec.ring_fault_rate);
    const std::uint64_t seq = run.sup.submit(ring, polar);
    if (corrupted) {
      if (seq == 0) {
        run.injector.count_detected(FaultClass::kRingField);
      } else {
        run.note("corrupt ring admitted by ingress validation");
        ++run.admitted;
      }
    } else if (seq != 0) {
      ++run.admitted;
    }
    // seq == 0 on a clean ring is an injected queue drop; credited
    // from the supervisor's counter after the drain.
  }
  run.drain();
  run.queue_faults_active.store(false, std::memory_order_release);

  const auto stats = run.sup.stats();
  run.injector.count_detected(FaultClass::kQueueDrop, stats.queue_drops);
  run.injector.count_detected(FaultClass::kQueueDuplicate,
                              stats.duplicates_suppressed);
  run.sup.health_tick();
}

void run_forward_faults(Run& run) {
  const std::size_t retry_budget = run.spec.supervisor.max_retries;

  const std::uint64_t recovered_before =
      run.sup.stats().transient_recovered;
  for (std::size_t r = 0; r < run.spec.transient_rounds; ++r) {
    run.injector.arm_transient(1);
    run.probe();
  }
  run.injector.count_tolerated(
      FaultClass::kForwardTransient,
      run.sup.stats().transient_recovered - recovered_before);

  const std::uint64_t fallback_before = run.sup.stats().fallback_batches;
  for (std::size_t r = 0; r < run.spec.persistent_rounds; ++r) {
    run.injector.arm_persistent(retry_budget + 1);
    run.probe();
  }
  run.injector.count_detected(
      FaultClass::kForwardPersistent,
      run.sup.stats().fallback_batches - fallback_before);

  for (std::size_t r = 0; r < run.spec.stall_rounds; ++r) {
    const std::uint64_t restarts_before = run.sup.stats().watchdog_restarts;
    run.injector.arm_stall(run.spec.stall_duration);
    run.probe();
    // The restart lands once the stalled forward returns; give the
    // watchdog its own deadline rather than assuming ordering against
    // the delivery.
    const auto deadline = Clock::now() + run.spec.drain_timeout;
    while (run.sup.stats().watchdog_restarts <= restarts_before &&
           run.spec.enabled) {
      if (Clock::now() >= deadline) {
        run.note("watchdog missed an injected stall");
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    run.injector.count_detected(
        FaultClass::kForwardStall,
        run.sup.stats().watchdog_restarts - restarts_before);
  }
}

void run_weight_faults(Run& run, pipeline::BackgroundNet& background,
                       pipeline::DEtaNet& deta) {
  if (!run.spec.enabled) {
    // Disabled campaigns stream the same probe traffic with no flips,
    // so the delivered totals stay comparable to an enabled run.
    for (std::size_t r = 0; r < run.spec.weight_bit_rounds; ++r)
      for (std::size_t e = 0; e < 2 * run.spec.events_per_degraded_window;
           ++e)
        run.probe();
    return;
  }

  const std::uint64_t checksum_before = run.sup.stats().checksum_failures;
  for (std::size_t r = 0; r < run.spec.weight_bit_rounds; ++r) {
    const bool hit_int8 = (r % 2 == 0);
    Injector::BitFlip flip;
    std::vector<std::vector<float>> fp32_snapshot;
    run.sup.with_models_quiesced([&](pipeline::Models& m) {
      if (hit_int8) {
        flip = run.injector.flip_int8_weight_bit(*m.background->int8_model());
      } else {
        fp32_snapshot = m.deta->model()->snapshot_weights();
        run.injector.corrupt_fp32_weight(*m.deta->model());
      }
    });

    // The flip is invisible until a health tick compares digests.
    run.sup.health_tick();
    if (run.sup.state() != serve::HealthState::kDegraded)
      run.note("SEU not detected by health tick");

    // Service continues while quarantined — flagged, never silent.
    for (std::size_t e = 0; e < run.spec.events_per_degraded_window; ++e)
      run.probe();

    // Restore pristine weights (XOR flip-back / snapshot), then re-arm.
    run.sup.with_models_quiesced([&](pipeline::Models& m) {
      if (hit_int8)
        Injector::flip_back(*m.background->int8_model(), flip);
      else
        m.deta->model()->restore_weights(fp32_snapshot);
    });
    if (hit_int8)
      run.sup.restore_background(&background);
    else
      run.sup.restore_deta(&deta);

    // The first clean batch completes the recovery.
    for (std::size_t e = 0; e < run.spec.events_per_degraded_window; ++e)
      run.probe();
    if (run.sup.state() != serve::HealthState::kHealthy)
      run.note("pipeline did not return to healthy after restore");
  }
  run.injector.count_detected(
      FaultClass::kWeightBit,
      run.sup.stats().checksum_failures - checksum_before);
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

bool write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(os);
}

/// A calibrated QAT stack at the paper architecture, built the same
/// way the export pipeline does (build_mlp -> fuse_bn ->
/// build_qat_model -> calibration forwards), so the serialized ADQT
/// file the campaign garbles is structurally real.
nn::Sequential build_calibrated_qat(std::uint64_t seed) {
  core::Rng rng(seed);
  nn::Sequential fp32 = nn::build_mlp(nn::background_net_spec(13, true), rng);
  const auto batch = [&](std::uint64_t s) {
    core::Rng brng(s);
    nn::Tensor x(64, 13);
    for (auto& v : x.vec()) v = static_cast<float>(brng.uniform(-2.0, 2.0));
    return x;
  };
  for (int pass = 0; pass < 4; ++pass)
    (void)fp32.forward(batch(seed + 1 + static_cast<std::uint64_t>(pass)),
                       true);
  const auto fused = quant::fuse_bn(fp32);
  core::Rng qrng(seed + 99);
  nn::Sequential qat = quant::build_qat_model(fused, qrng);
  for (int pass = 0; pass < 4; ++pass)
    (void)qat.forward(batch(seed + 50 + static_cast<std::uint64_t>(pass)),
                      true);
  return qat;
}

void run_model_byte_faults(Run& run, pipeline::DEtaNet& deta) {
  if (run.spec.model_bytes_rounds == 0) return;

  fs::path dir;
  if (run.spec.scratch_dir.empty()) {
    std::error_code ec;
    dir = fs::temp_directory_path(ec);
    if (ec) dir = ".";
    dir /= "adapt_chaos_" + std::to_string(run.spec.seed) + "_" +
           std::to_string(static_cast<long>(::getpid()));
  } else {
    dir = run.spec.scratch_dir;
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    run.note("cannot create scratch dir " + dir.string());
    return;
  }

  const fs::path good_nn = dir / "good_model.adnn";
  const fs::path good_qat = dir / "good_model.adqt";
  const fs::path bad = dir / "garbled_model.bin";
  if (!deta.save(good_nn.string())) run.note("cannot write ADNN fixture");
  nn::Sequential qat = build_calibrated_qat(run.spec.seed ^ 0xDEADULL);
  nn::Standardizer qat_std;
  if (!quant::save_qat_model(qat, qat_std, {{"fixture", 1.0}},
                             good_qat.string()))
    run.note("cannot write ADQT fixture");

  for (std::size_t r = 0; r < run.spec.model_bytes_rounds; ++r) {
    const bool use_qat = (r % 2 == 1);
    const std::string bytes = read_file(use_qat ? good_qat : good_nn);
    if (bytes.empty()) {
      run.note("model fixture unreadable");
      continue;
    }
    if (!run.spec.enabled) {
      // Baseline: untouched files must load.
      const bool loaded = use_qat
                              ? quant::load_qat_model(good_qat.string())
                                    .has_value()
                              : nn::load_model(good_nn.string()).has_value();
      if (!loaded) run.note("pristine model failed to load");
      continue;
    }
    const std::string garbled = run.injector.garble_bytes(bytes);
    if (!write_file(bad, garbled)) {
      run.note("cannot write garbled model");
      continue;
    }
    const bool accepted =
        use_qat ? quant::load_qat_model(bad.string()).has_value()
                : nn::load_model(bad.string()).has_value();
    if (accepted)
      run.note("garbled model bytes were accepted by the loader");
    else
      run.injector.count_detected(FaultClass::kModelBytes);
  }

  fs::remove(good_nn, ec);
  fs::remove(good_qat, ec);
  fs::remove(bad, ec);
  if (run.spec.scratch_dir.empty()) fs::remove(dir, ec);
}

void append_counter(std::string& out, const char* name, std::uint64_t v) {
  out += "  ";
  out += name;
  out += '=';
  out += std::to_string(v);
  out += '\n';
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec) {
  ADAPT_REQUIRE(spec.events > 0, "campaign needs a nonzero event stream");

  // Serving knobs the accounting depends on: the queue must never
  // shed (every admitted event is part of the ledger), and overload
  // degradation would make flag counts timing-dependent.
  serve::SupervisorConfig cfg = spec.supervisor;
  cfg.serve.queue_capacity =
      std::max(cfg.serve.queue_capacity, spec.events + 64);
  cfg.serve.max_batch = std::min(cfg.serve.max_batch, cfg.serve.queue_capacity);
  cfg.serve.degrade_when_saturated = false;

  pipeline::BackgroundNet background =
      serve::synthetic_background_net_int8(spec.seed ^ 0xB16B00B5ULL);
  pipeline::DEtaNet deta = serve::synthetic_deta_net(spec.seed ^ 0xD37AULL);
  pipeline::Models models{&background, &deta};

  serve::Supervisor sup(models, cfg, [](std::span<const serve::ServeResult>) {
    // The campaign reads delivery totals from SupervisorStats; results
    // themselves need no further routing here.
  });

  CampaignResult result;
  {
    Run run(spec, sup);
    sup.set_queue_fault_hook([&run] {
      if (!run.queue_faults_active.load(std::memory_order_acquire))
        return serve::QueueFault::kNone;
      return run.injector.next_queue_fault(run.spec.queue_drop_rate,
                                           run.spec.queue_duplicate_rate);
    });
    sup.set_forward_hook(
        [&run](std::size_t n) { run.injector.on_forward_attempt(n); });
    sup.start();

    stream_with_event_faults(run);
    run_forward_faults(run);
    run_weight_faults(run, background, deta);
    run_model_byte_faults(run, deta);

    run.drain();
    sup.health_tick();
    sup.stop();

    result.ledger = run.injector.ledger();
    result.supervisor = sup.stats();
    result.delivered_clean = result.supervisor.delivered -
                             result.supervisor.delivered_fallback -
                             result.supervisor.delivered_degraded;
    if (result.supervisor.state != serve::HealthState::kHealthy)
      run.note("campaign ended in state " +
               std::string(to_string(result.supervisor.state)));
    result.ok = run.errors.empty() && result.ledger.balanced();
    result.errors = run.errors;
  }

  std::string report = "chaos campaign seed=" + std::to_string(spec.seed) +
                       " events=" + std::to_string(spec.events) +
                       (spec.enabled ? "" : " (injection disabled)") + "\n";
  report += result.ledger.format();
  report += "supervisor counters:\n";
  const auto& s = result.supervisor;
  append_counter(report, "submitted", s.submitted);
  append_counter(report, "input_rejected", s.input_rejected);
  append_counter(report, "queue_drops", s.queue_drops);
  append_counter(report, "duplicates_suppressed", s.duplicates_suppressed);
  append_counter(report, "retries", s.retries);
  append_counter(report, "transient_recovered", s.transient_recovered);
  append_counter(report, "fallback_batches", s.fallback_batches);
  append_counter(report, "checksum_failures", s.checksum_failures);
  append_counter(report, "restores", s.restores);
  append_counter(report, "watchdog_restarts", s.watchdog_restarts);
  append_counter(report, "state_degraded_entered", s.degraded_entered);
  append_counter(report, "state_recovering_entered", s.recovering_entered);
  append_counter(report, "state_healthy_entered", s.healthy_entered);
  append_counter(report, "delivered", s.delivered);
  append_counter(report, "delivered_fallback", s.delivered_fallback);
  append_counter(report, "delivered_degraded", s.delivered_degraded);
  append_counter(report, "delivered_clean", result.delivered_clean);
  report += std::string("final state: ") + to_string(s.state) + "\n";
  report += std::string("ledger invariant: ") +
            (result.ledger.balanced() ? "balanced" : "IMBALANCED") + "\n";
  result.report = report;
  return result;
}

}  // namespace adapt::fault
