#pragma once

/// \file injector.hpp
/// Deterministic, seeded fault injection for the serve pipeline.
///
/// Flight hardware fails in enumerable ways — radiation flips weight
/// bits, uplinks truncate model files, a forward wedges, events vanish
/// or duplicate in a queue handoff — and the recovery layer
/// (serve::Supervisor) must be tested against *exactly* those faults,
/// reproducibly.  The Injector turns a single seed into a
/// deterministic fault stream across every class:
///
///   kRingField         NaN / inf / negative energies, out-of-range
///                      cosines, NaN axis components on a ComptonRing
///   kQueueDrop         an event vanishes at the queue handoff
///   kQueueDuplicate    an event is enqueued twice
///   kForwardTransient  a forward attempt throws; retry succeeds
///   kForwardPersistent forward attempts throw until retries exhaust
///   kForwardStall      a forward sleeps long enough to trip the
///                      watchdog
///   kWeightBit         an SEU bit flip in live weight memory
///   kModelBytes        serialized model bytes truncated or garbled
///
/// Accounting contract: every injected fault is counted at the moment
/// it is *committed* (a ring corrupted, a hook armed, a bit flipped),
/// always on the campaign thread, so the Ledger is bit-identical for
/// identical seeds regardless of worker scheduling.  The campaign
/// credits each class back as `detected` (the pipeline observed and
/// handled it) or `tolerated` (recovered invisibly, e.g. a transient
/// absorbed by retry); `Ledger::balanced()` is the invariant
///   injected == detected + tolerated   (per class)
/// that the chaos tests and `adaptctl chaos` enforce.
///
/// A disabled Injector (`enabled = false`) commits nothing: every
/// decision returns "no fault", arming is a no-op, and `garble_bytes`
/// returns its input unchanged — the zero-cost off switch the
/// acceptance criteria require.
///
/// Thread model: decision/corruption/arming methods run on the
/// campaign (producer) thread only.  `on_forward_attempt` is the one
/// member invoked from the server worker thread (via the Supervisor's
/// ForwardHook); it touches only the atomic armed counters.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/rng.hpp"
#include "quant/quantized_mlp.hpp"
#include "recon/ring.hpp"
#include "serve/supervisor.hpp"

namespace adapt::fault {

enum class FaultClass : std::size_t {
  kRingField = 0,
  kQueueDrop,
  kQueueDuplicate,
  kForwardTransient,
  kForwardPersistent,
  kForwardStall,
  kWeightBit,
  kModelBytes,
};
inline constexpr std::size_t kFaultClassCount = 8;

const char* to_string(FaultClass c);

/// Thrown by an armed forward hook to simulate a failed inference
/// attempt (the Supervisor's retry path catches it).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Per-class fault accounting.  All counts are committed on the
/// campaign thread; two runs with the same seed and spec produce
/// equal Ledgers bit-for-bit.
struct Ledger {
  std::array<std::uint64_t, kFaultClassCount> injected{};
  std::array<std::uint64_t, kFaultClassCount> detected{};
  std::array<std::uint64_t, kFaultClassCount> tolerated{};

  std::uint64_t total_injected() const;
  std::uint64_t total_detected() const;
  std::uint64_t total_tolerated() const;
  /// Injected faults not yet credited back (0 when balanced).
  std::uint64_t unaccounted() const;
  /// injected == detected + tolerated for every class.
  bool balanced() const;

  /// Deterministic fixed-order text table (one line per class plus a
  /// total line) — the artifact `adaptctl chaos` prints and the
  /// two-run determinism test compares byte-for-byte.
  std::string format() const;

  bool operator==(const Ledger&) const = default;
};

class Injector {
 public:
  explicit Injector(std::uint64_t seed, bool enabled = true);

  bool enabled() const { return enabled_; }

  // --- event-stream faults (campaign thread) ---

  /// With probability `rate`, corrupt one field of `ring` (the kind is
  /// drawn uniformly from the ring-field corruption menu) and count
  /// one kRingField injection.  Returns true when corrupted.  Every
  /// corruption kind violates Supervisor::ring_admissible, so ingress
  /// validation must reject the ring.
  bool maybe_corrupt_ring(recon::ComptonRing& ring, double rate);

  /// Queue-slot fault decision for one submit (counts the injection).
  serve::QueueFault next_queue_fault(double drop_rate,
                                     double duplicate_rate);

  // --- forward-path faults ---

  /// Arm the next `attempts` forward attempts to throw InjectedFault.
  /// Counted as one kForwardTransient injection (the caller sizes
  /// `attempts` below the retry budget so the batch recovers).
  void arm_transient(std::size_t attempts);

  /// Same mechanism, counted as one kForwardPersistent injection (the
  /// caller sizes `attempts` past the retry budget so the batch fails
  /// over to the analytic path).
  void arm_persistent(std::size_t attempts);

  /// Arm the next forward attempt to sleep for `duration` — long
  /// enough, by the caller's choice, to trip the Supervisor watchdog.
  /// Counted as one kForwardStall injection.
  void arm_stall(std::chrono::milliseconds duration);

  /// The Supervisor ForwardHook body: called once per forward attempt
  /// on the *worker* thread.  Consumes an armed stall (sleeps), then
  /// an armed failure (throws InjectedFault).  Touches only atomics.
  void on_forward_attempt(std::size_t batch_size);

  // --- state corruption (campaign thread, under
  //     Supervisor::with_models_quiesced) ---

  /// Coordinates of one SEU so the campaign can flip the same bit
  /// back to restore the pristine weights.
  struct BitFlip {
    std::size_t layer = 0;
    std::size_t byte_index = 0;
    unsigned bit = 0;
  };

  /// Flip one seeded bit of one INT8 weight (counts kWeightBit).
  BitFlip flip_int8_weight_bit(quant::QuantizedMlp& model);

  /// Undo a flip (XOR is an involution).  Not an injection; no count.
  static void flip_back(quant::QuantizedMlp& model, const BitFlip& flip);

  /// Scribble one seeded FP32 parameter scalar of the stack (counts
  /// kWeightBit — an SEU in float weight memory).  The caller restores
  /// from a snapshot taken beforehand.
  void corrupt_fp32_weight(nn::Sequential& model);

  // --- serialized-model faults (campaign thread) ---

  /// Garble serialized model bytes: truncate, flip a bit, zero a span,
  /// or corrupt the checksum footer (mode drawn from the seed; counts
  /// kModelBytes).  Guaranteed to differ from the input, so a
  /// checksummed loader must reject the result.  Disabled injectors
  /// return the input unchanged and count nothing.
  std::string garble_bytes(std::string bytes);

  // --- accounting (campaign thread) ---

  void count_detected(FaultClass c, std::uint64_t n = 1);
  void count_tolerated(FaultClass c, std::uint64_t n = 1);
  const Ledger& ledger() const { return ledger_; }

 private:
  void count_injected(FaultClass c);

  core::Rng rng_;
  bool enabled_;
  Ledger ledger_;

  // Armed forward faults; the only state the worker thread touches.
  std::atomic<std::uint64_t> armed_failures_{0};
  std::atomic<std::int64_t> armed_stall_ms_{0};
};

}  // namespace adapt::fault
