#pragma once

/// \file geometry.hpp
/// ADAPT detector geometry: a vertical stack of square scintillating
/// tile layers (paper Fig. 1).  The top tile surface sits at z = 0 and
/// layers extend downward; a normally incident (0-degree polar) GRB
/// photon travels in -z.
///
/// The geometry also provides the ray tracing the Monte-Carlo
/// transport needs: the ordered list of path segments a ray spends
/// inside scintillator material.

#include <optional>
#include <vector>

#include "core/vec3.hpp"

namespace adapt::detector {

/// One scintillator layer: a square tile slab.
struct Layer {
  double z_top = 0.0;     ///< Upper surface [cm].
  double z_bottom = 0.0;  ///< Lower surface [cm] (z_bottom < z_top).
};

/// A contiguous stretch of a ray inside scintillator.
struct PathSegment {
  double t_enter = 0.0;  ///< Ray parameter at entry [cm].
  double t_exit = 0.0;   ///< Ray parameter at exit [cm].
  int layer = -1;        ///< Which layer the segment crosses.
};

/// Geometry configuration.  Defaults model the ADAPT demonstrator
/// scale: four layers of 40 cm x 40 cm x 1.5 cm tiles on a 10 cm
/// vertical pitch.
struct GeometryConfig {
  int n_layers = 4;
  double tile_half_width = 20.0;  ///< Half extent in x and y [cm].
  double tile_thickness = 1.5;    ///< Slab thickness [cm].
  double layer_pitch = 10.0;      ///< Top-to-top spacing [cm].
};

class Geometry {
 public:
  explicit Geometry(const GeometryConfig& config = {});

  const GeometryConfig& config() const { return config_; }
  int n_layers() const { return config_.n_layers; }
  const Layer& layer(int i) const { return layers_[static_cast<size_t>(i)]; }

  /// Index of the layer whose slab contains z, or -1.
  int layer_at(double z) const;

  /// True if the point lies inside scintillator material.
  bool contains(const core::Vec3& p) const;

  /// z of the lowest material surface (bottom of the last layer).
  double z_min() const;

  /// Radius of a sphere (centered on the stack axis midpoint) that
  /// encloses the whole detector; used to aim source photons.
  double bounding_radius() const;
  core::Vec3 center() const;

  /// All material segments of the ray p(t) = origin + t * dir for
  /// t >= t_min, ordered by increasing t.  `dir` must be unit length.
  std::vector<PathSegment> trace(const core::Vec3& origin,
                                 const core::Vec3& dir,
                                 double t_min = 0.0) const;

 private:
  /// Clip the ray against one layer slab; returns the t-interval (if
  /// any) spent inside it.
  std::optional<PathSegment> clip_to_layer(const core::Vec3& origin,
                                           const core::Vec3& dir, int layer,
                                           double t_min) const;

  GeometryConfig config_;
  std::vector<Layer> layers_;
};

}  // namespace adapt::detector
