#include "detector/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"

namespace adapt::detector {

Geometry::Geometry(const GeometryConfig& config) : config_(config) {
  ADAPT_REQUIRE(config.n_layers >= 1, "need at least one layer");
  ADAPT_REQUIRE(config.tile_half_width > 0.0, "tile half width must be > 0");
  ADAPT_REQUIRE(config.tile_thickness > 0.0, "tile thickness must be > 0");
  ADAPT_REQUIRE(config.layer_pitch >= config.tile_thickness,
                "layers must not overlap");
  layers_.reserve(static_cast<size_t>(config.n_layers));
  for (int i = 0; i < config.n_layers; ++i) {
    const double z_top = -static_cast<double>(i) * config.layer_pitch;
    layers_.push_back(Layer{z_top, z_top - config.tile_thickness});
  }
}

int Geometry::layer_at(double z) const {
  for (int i = 0; i < n_layers(); ++i) {
    const Layer& l = layers_[static_cast<size_t>(i)];
    if (z <= l.z_top && z >= l.z_bottom) return i;
  }
  return -1;
}

bool Geometry::contains(const core::Vec3& p) const {
  if (std::abs(p.x) > config_.tile_half_width ||
      std::abs(p.y) > config_.tile_half_width)
    return false;
  return layer_at(p.z) >= 0;
}

double Geometry::z_min() const { return layers_.back().z_bottom; }

core::Vec3 Geometry::center() const { return {0.0, 0.0, z_min() / 2.0}; }

double Geometry::bounding_radius() const {
  const double half_height = -z_min() / 2.0;
  const double w = config_.tile_half_width;
  return std::sqrt(2.0 * w * w + half_height * half_height) + 1.0;
}

std::optional<PathSegment> Geometry::clip_to_layer(const core::Vec3& origin,
                                                   const core::Vec3& dir,
                                                   int layer,
                                                   double t_min) const {
  const Layer& l = layers_[static_cast<size_t>(layer)];
  double t0 = t_min;
  double t1 = std::numeric_limits<double>::infinity();

  // Clip against a pair of axis-aligned planes lo <= coord <= hi for a
  // ray component p + t*d.  Shrinks [t0, t1]; returns false when the
  // interval empties.
  const auto clip_axis = [&](double p, double d, double lo, double hi) {
    constexpr double kParallelEps = 1e-12;
    if (std::abs(d) < kParallelEps) return p >= lo && p <= hi;
    double ta = (lo - p) / d;
    double tb = (hi - p) / d;
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    return t0 < t1;
  };

  const double w = config_.tile_half_width;
  if (!clip_axis(origin.z, dir.z, l.z_bottom, l.z_top)) return std::nullopt;
  if (!clip_axis(origin.x, dir.x, -w, w)) return std::nullopt;
  if (!clip_axis(origin.y, dir.y, -w, w)) return std::nullopt;
  if (t1 <= t0 + 1e-12) return std::nullopt;
  return PathSegment{t0, t1, layer};
}

std::vector<PathSegment> Geometry::trace(const core::Vec3& origin,
                                         const core::Vec3& dir,
                                         double t_min) const {
  std::vector<PathSegment> segments;
  segments.reserve(static_cast<size_t>(n_layers()));
  for (int i = 0; i < n_layers(); ++i) {
    if (auto seg = clip_to_layer(origin, dir, i, t_min)) {
      segments.push_back(*seg);
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const PathSegment& a, const PathSegment& b) {
              return a.t_enter < b.t_enter;
            });
  return segments;
}

}  // namespace adapt::detector
