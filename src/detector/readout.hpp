#pragma once

/// \file readout.hpp
/// Electronics / readout model: converts true energy depositions into
/// measured hits the way ADAPT's WLS-fiber + SiPM front end would
/// (paper Fig. 1 and ref [9]).
///
/// Effects modeled:
///  * position quantization to the fiber pitch in x/y; Gaussian depth
///    resolution in z (the tile resolves depth by the light-sharing
///    ratio between its top and bottom fiber arrays);
///  * stochastic energy resolution sigma_E/E = a/sqrt(E) (+) b
///    (photon-counting term plus a calibration floor);
///  * per-hit detection threshold (30 keV, matching the paper's
///    minimum simulated energy);
///  * merging of deposits that land on the same fiber crossing
///    (unresolvable by the readout);
///  * the Fig. 10 robustness knob: extra Gaussian noise of eps% of
///    each value applied to hit positions and energies.
///
/// The model also *quotes* its measurement uncertainties per hit;
/// those quoted sigmas feed the propagation-of-error d-eta estimate
/// and are among the networks' input features, exactly as in the
/// paper.

#include <optional>

#include "core/rng.hpp"
#include "detector/geometry.hpp"
#include "detector/hit.hpp"

namespace adapt::detector {

struct ReadoutConfig {
  double fiber_pitch = 0.5;        ///< WLS fiber spacing [cm].
  double z_resolution = 0.3;       ///< Depth (light-sharing) sigma [cm].
  double energy_res_stochastic = 0.025;  ///< a in sigma_E/E = a/sqrt(E).
  double energy_res_floor = 0.02;        ///< b, constant relative term.
  double hit_threshold = 0.030;    ///< Minimum detectable deposit [MeV].
  double perturbation_percent = 0.0;  ///< Fig. 10 eps (0, 1, 5, 10).

  /// Mean number of spurious hits per read-out event from SiPM dark
  /// counts / afterpulsing coincidences surviving the threshold.
  /// Sampled Poisson per event, placed uniformly in the detector with
  /// a near-threshold exponential energy spectrum.
  double noise_hits_per_event = 0.0;

  /// Maximum number of hits the DAQ reports per event; brighter
  /// showers are truncated to the largest deposits (rare in the MeV
  /// band).
  int max_hits = 8;
};

class ReadoutModel {
 public:
  ReadoutModel(const Geometry& geometry, const ReadoutConfig& config = {});

  const ReadoutConfig& config() const { return config_; }

  /// Apply the readout chain to one raw event.  Returns nullopt when
  /// the event is undetectable (fewer than one hit above threshold).
  /// Hit order is preserved (chronological) — downstream
  /// reconstruction is responsible for re-deriving ordering from the
  /// measurements alone.
  std::optional<MeasuredEvent> read_out(const RawEvent& event,
                                        core::Rng& rng) const;

  /// Quoted energy uncertainty for a measured energy [MeV].
  double energy_sigma(double energy) const;

  /// Quoted per-axis position uncertainty [cm].
  core::Vec3 position_sigma() const;

 private:
  /// Snap a coordinate to the fiber grid.
  double quantize_xy(double v) const;

  const Geometry* geometry_;
  ReadoutConfig config_;
};

}  // namespace adapt::detector
