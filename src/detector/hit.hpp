#pragma once

/// \file hit.hpp
/// Event/hit data model shared by the simulator, readout, and
/// reconstruction.
///
/// Terminology follows the paper (Sec. II-B): an *event* is the set of
/// measurements of a single gamma-ray photon; each *hit* is one
/// interaction (Compton scatter or photoabsorption) with a 3-D
/// position and a deposited energy.

#include <cstdint>
#include <vector>

#include "core/vec3.hpp"

namespace adapt::detector {

/// Where a photon came from.  Ground truth carried through the
/// simulation chain; available to training/evaluation only (a real
/// flight event obviously has no such tag — the background network's
/// job is to infer it).
enum class Origin : std::uint8_t {
  kGrb,         ///< Photon from the simulated gamma-ray burst.
  kBackground,  ///< Atmospheric / albedo background particle.
};

/// One energy deposition exactly as the physics Monte Carlo produced
/// it (no measurement effects).
struct TrueHit {
  core::Vec3 position;   ///< Interaction point [cm].
  double energy = 0.0;   ///< Deposited energy [MeV].
  int layer = -1;        ///< Index of the detector layer hit.
};

/// A full photon interaction history before readout.
struct RawEvent {
  std::vector<TrueHit> hits;      ///< In true chronological order.
  Origin origin = Origin::kGrb;
  core::Vec3 true_direction;      ///< Unit vector of photon travel.
  double true_energy = 0.0;       ///< Incident photon energy [MeV].
  bool fully_absorbed = false;    ///< True if no energy escaped.
};

/// One hit after the readout model: quantized position, smeared
/// energy, and the measurement uncertainties the electronics model
/// quotes for it.  The three energy uncertainties (total + first two
/// deposits) are part of the networks' 12 base input features.
struct MeasuredHit {
  core::Vec3 position;      ///< Reported interaction point [cm].
  double energy = 0.0;      ///< Reported deposited energy [MeV].
  core::Vec3 sigma_position;  ///< Per-axis position uncertainty [cm].
  double sigma_energy = 0.0;  ///< Energy uncertainty [MeV].
  int layer = -1;
};

/// A photon event as seen by the data acquisition, with simulation
/// ground truth carried alongside for training and evaluation.
struct MeasuredEvent {
  std::vector<MeasuredHit> hits;  ///< Order as reported (chronological
                                  ///< in simulation; reconstruction
                                  ///< must re-derive ordering).
  double time_s = 0.0;            ///< Arrival time within the exposure
                                  ///< window [s] (drives the burst
                                  ///< trigger and pileup).
  Origin origin = Origin::kGrb;
  core::Vec3 true_direction;
  double true_energy = 0.0;
  bool fully_absorbed = false;
};

}  // namespace adapt::detector
