#include "detector/readout.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"
#include "core/units.hpp"

namespace adapt::detector {

ReadoutModel::ReadoutModel(const Geometry& geometry,
                           const ReadoutConfig& config)
    : geometry_(&geometry), config_(config) {
  ADAPT_REQUIRE(config.fiber_pitch > 0.0, "fiber pitch must be > 0");
  ADAPT_REQUIRE(config.hit_threshold >= 0.0, "threshold must be >= 0");
  ADAPT_REQUIRE(config.max_hits >= 1, "max_hits must be >= 1");
  ADAPT_REQUIRE(config.perturbation_percent >= 0.0,
                "perturbation must be >= 0");
}

double ReadoutModel::quantize_xy(double v) const {
  const double p = config_.fiber_pitch;
  return std::round(v / p) * p;
}

double ReadoutModel::energy_sigma(double energy) const {
  if (energy <= 0.0) return 0.0;
  const double a = config_.energy_res_stochastic;
  const double b = config_.energy_res_floor;
  // Relative resolution: stochastic term in quadrature with a floor.
  const double rel =
      std::sqrt(a * a / energy + b * b);
  return rel * energy;
}

core::Vec3 ReadoutModel::position_sigma() const {
  const double sxy = config_.fiber_pitch / std::sqrt(12.0);
  return {sxy, sxy, config_.z_resolution};
}

std::optional<MeasuredEvent> ReadoutModel::read_out(const RawEvent& event,
                                                    core::Rng& rng) const {
  // Pass 1: digitize each deposit, applying the optional Fig. 10
  // perturbation *before* quantization (the paper perturbs inputs
  // "prior to reconstruction", i.e. at the measurement level).
  struct Digit {
    core::Vec3 pos;
    double energy;
    int layer;
    std::size_t order;  // Chronological index, kept through merging.
  };
  std::vector<Digit> digits;
  digits.reserve(event.hits.size());

  const double eps = config_.perturbation_percent / 100.0;
  for (std::size_t i = 0; i < event.hits.size(); ++i) {
    const TrueHit& h = event.hits[i];
    core::Vec3 p = h.position;
    double e = h.energy;

    if (eps > 0.0) {
      p.x = rng.normal(p.x, std::abs(p.x) * eps);
      p.y = rng.normal(p.y, std::abs(p.y) * eps);
      p.z = rng.normal(p.z, std::abs(p.z) * eps);
      e = rng.normal(e, std::abs(e) * eps);
    }

    // Energy smearing per the resolution model.
    e = rng.normal(e, energy_sigma(h.energy));
    if (e < 0.0) e = 0.0;

    // Position digitization: fiber grid in x/y; in z the tile's
    // top/bottom light-sharing ratio resolves depth with Gaussian
    // resolution, clamped to the tile volume.
    const int layer = h.layer >= 0 ? h.layer : geometry_->layer_at(p.z);
    if (layer < 0) continue;  // Perturbed out of any tile: lost.
    const Layer& l = geometry_->layer(layer);
    const double z = std::clamp(rng.normal(p.z, config_.z_resolution),
                                l.z_bottom, l.z_top);
    core::Vec3 q{quantize_xy(p.x), quantize_xy(p.y), z};
    digits.push_back(Digit{q, e, layer, i});
  }

  // Pass 2: merge digits that landed on the same fiber crossing of the
  // same tile — the readout cannot separate them.  Energy-weighted
  // order keeps the earliest contribution's rank.
  std::vector<Digit> merged;
  for (const Digit& d : digits) {
    bool absorbed = false;
    for (Digit& m : merged) {
      const bool same_cell = m.layer == d.layer &&
                             std::abs(m.pos.x - d.pos.x) < 1e-9 &&
                             std::abs(m.pos.y - d.pos.y) < 1e-9;
      if (same_cell) {
        m.energy += d.energy;
        m.order = std::min(m.order, d.order);
        absorbed = true;
        break;
      }
    }
    if (!absorbed) merged.push_back(d);
  }

  // Pass 3: spurious SiPM noise hits (uniform position, exponential
  // near-threshold energies), appended after the real deposits so
  // reconstruction has to cope with them like flight data would.
  if (config_.noise_hits_per_event > 0.0) {
    const auto n_noise = rng.poisson(config_.noise_hits_per_event);
    const double w = geometry_->config().tile_half_width;
    for (std::uint64_t i = 0; i < n_noise; ++i) {
      const int layer =
          static_cast<int>(rng.uniform_index(
              static_cast<std::uint64_t>(geometry_->n_layers())));
      const Layer& l = geometry_->layer(layer);
      Digit d;
      d.pos = {quantize_xy(rng.uniform(-w, w)), quantize_xy(rng.uniform(-w, w)),
               rng.uniform(l.z_bottom, l.z_top)};
      d.energy = config_.hit_threshold + rng.exponential(0.02);
      d.layer = layer;
      d.order = event.hits.size() + i;  // After all real deposits.
      merged.push_back(d);
    }
  }

  // Pass 4: threshold, cap, and emit in chronological order.
  std::erase_if(merged,
                [&](const Digit& d) { return d.energy < config_.hit_threshold; });
  if (merged.empty()) return std::nullopt;

  std::sort(merged.begin(), merged.end(),
            [](const Digit& a, const Digit& b) { return a.order < b.order; });
  if (static_cast<int>(merged.size()) > config_.max_hits) {
    // Keep the largest deposits, then restore chronological order.
    std::sort(merged.begin(), merged.end(),
              [](const Digit& a, const Digit& b) { return a.energy > b.energy; });
    merged.resize(static_cast<std::size_t>(config_.max_hits));
    std::sort(merged.begin(), merged.end(),
              [](const Digit& a, const Digit& b) { return a.order < b.order; });
  }

  MeasuredEvent out;
  out.origin = event.origin;
  out.true_direction = event.true_direction;
  out.true_energy = event.true_energy;
  out.fully_absorbed = event.fully_absorbed;
  out.hits.reserve(merged.size());
  const core::Vec3 sp = position_sigma();
  for (const Digit& d : merged) {
    MeasuredHit h;
    h.position = d.pos;
    h.energy = d.energy;
    h.sigma_position = sp;
    h.sigma_energy = energy_sigma(d.energy);
    h.layer = d.layer;
    out.hits.push_back(h);
  }
  return out;
}

}  // namespace adapt::detector
