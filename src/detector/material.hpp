#pragma once

/// \file material.hpp
/// Scintillator material model.  ADAPT's tiles are CsI:Na crystals;
/// the transport Monte Carlo needs the electron density (for the exact
/// Klein-Nishina Compton attenuation) and calibrated parameterizations
/// of the photoelectric and pair-production attenuation coefficients.
///
/// The photoelectric/pair parameterizations are fits with the correct
/// qualitative energy dependence (photoabsorption dominant below
/// ~0.3 MeV, Compton dominant through the MeV band, pair production
/// appearing above 1.022 MeV), anchored to NIST XCOM-scale values for
/// CsI.  See DESIGN.md for the substitution rationale versus Geant4.

namespace adapt::detector {

struct Material {
  /// Human-readable name for reports.
  const char* name = "CsI";

  /// Mass density [g/cm^3].
  double density = 4.51;

  /// Electrons per cm^3 = density * N_A * (Z/A).  For CsI,
  /// Z/A = (55 + 53) / (132.91 + 126.90) ~= 0.4157.
  double electron_density = 1.129e24;

  /// Photoelectric attenuation calibration: mu_pe(E) [1/cm] =
  /// photo_coeff * E^-3 below photo_knee [MeV], continued as a
  /// shallower power law (photo_high_exponent) above the knee, where
  /// the cross section flattens.
  double photo_coeff = 0.0068;
  double photo_knee = 0.5;
  double photo_high_exponent = 1.2;

  /// Pair-production calibration: mu_pp(E) [1/cm] =
  /// pair_coeff * ln(E / threshold) above threshold = 2 m_e c^2.
  double pair_coeff = 0.012;

  /// Standard CsI scintillator.
  static Material csi() { return Material{}; }

  /// A light plastic scintillator (EJ-200-like) used by tests to check
  /// the cross-section model scales with material properties.
  static Material plastic() {
    Material m;
    m.name = "plastic";
    m.density = 1.02;
    m.electron_density = 3.37e23;
    m.photo_coeff = 2.2e-5;  // Z^~4.5 suppression relative to CsI.
    m.photo_knee = 0.15;
    m.photo_high_exponent = 1.0;
    m.pair_coeff = 0.0016;
    return m;
  }
};

}  // namespace adapt::detector
