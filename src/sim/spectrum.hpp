#pragma once

/// \file spectrum.hpp
/// Photon energy spectra for the GRB source and the atmospheric
/// background.
///
/// The GRB uses the Band function with the paper's parameters
/// (Sec. IV footnote 2: beta fixed at -2.35, minimum simulated energy
/// 30 keV); the background uses a falling power law.  Both are sampled
/// through a tabulated inverse CDF on a logarithmic energy grid, which
/// is exact to interpolation error and costs one binary search per
/// draw.

#include <memory>
#include <vector>

#include "core/rng.hpp"

namespace adapt::sim {

/// Abstract photon-number spectrum dN/dE on [e_min, e_max].
class Spectrum {
 public:
  virtual ~Spectrum() = default;

  /// Unnormalized dN/dE at energy e [MeV].
  virtual double density(double e) const = 0;

  virtual double e_min() const = 0;
  virtual double e_max() const = 0;

  /// Draw a photon energy [MeV].
  double sample(core::Rng& rng) const;

  /// Mean photon energy [MeV] under the normalized spectrum; used to
  /// convert a fluence [MeV/cm^2] into an expected photon count.
  double mean_energy() const;

 protected:
  /// Build the inverse-CDF table; concrete spectra call this from
  /// their constructors after their parameters are set.
  void build_table(int n_points = 1024);

 private:
  std::vector<double> log_e_;   ///< Log-energy grid.
  std::vector<double> cdf_;     ///< CDF at grid points (cdf_[last]=1).
  double mean_energy_ = 0.0;
};

/// The Band GRB spectrum: a smoothly broken power law
///   N(E) ~ E^alpha exp(-E (2+alpha)/E_peak)         for E <  E_break
///   N(E) ~ E^beta * C                               for E >= E_break
/// with E_break = (alpha - beta) E_peak / (2 + alpha) and C chosen for
/// continuity.  Defaults follow the paper: beta = -2.35, 30 keV floor.
struct BandParams {
  double alpha = -1.0;
  double beta = -2.35;
  double e_peak = 0.300;  ///< nu-F-nu peak energy [MeV].
  double e_min = 0.030;
  double e_max = 10.0;
};

class BandSpectrum : public Spectrum {
 public:
  explicit BandSpectrum(const BandParams& params = {});

  double density(double e) const override;
  double e_min() const override { return params_.e_min; }
  double e_max() const override { return params_.e_max; }
  const BandParams& params() const { return params_; }

 private:
  BandParams params_;
  double e_break_ = 0.0;
  double high_norm_ = 0.0;
};

/// Falling power law N(E) ~ E^-index, the background continuum shape.
class PowerLawSpectrum : public Spectrum {
 public:
  PowerLawSpectrum(double index, double e_min, double e_max);

  double density(double e) const override;
  double e_min() const override { return e_min_; }
  double e_max() const override { return e_max_; }
  double index() const { return index_; }

 private:
  double index_;
  double e_min_;
  double e_max_;
};

}  // namespace adapt::sim
