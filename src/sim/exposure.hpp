#pragma once

/// \file exposure.hpp
/// End-to-end exposure simulation: one burst window's worth of GRB and
/// background photons, transported through the detector and digitized
/// by the readout model.  This is the data source for every experiment
/// in the paper: localization trials, NN training sets, and timing
/// runs all start from a simulated exposure.

#include <vector>

#include "core/rng.hpp"
#include "detector/geometry.hpp"
#include "detector/hit.hpp"
#include "detector/material.hpp"
#include "detector/readout.hpp"
#include "physics/transport.hpp"
#include "sim/background.hpp"
#include "sim/grb_source.hpp"

namespace adapt::sim {

/// Event pileup model (the paper's first listed piece of future work:
/// "multiple events that arrive simultaneously to within the detection
/// latency of the instrument").  Two photons whose arrival times fall
/// within the detection latency are read out as ONE event whose hit
/// lists are merged — producing a corrupted trajectory that
/// reconstruction cannot order correctly.
struct PileupConfig {
  /// Detection latency window [s]; 0 disables pileup.  With N events
  /// uniformly distributed over the exposure, the expected number of
  /// piled-up pairs is ~ N^2 * window / (2 * exposure).
  double detection_latency_s = 0.0;
};

/// Everything produced by one simulated 1-second window.
struct Exposure {
  std::vector<detector::MeasuredEvent> events;  ///< Detected events
                                                ///< (GRB + background,
                                                ///< truth-tagged).
  core::Vec3 true_source_direction;  ///< Ground-truth GRB direction.
  std::uint64_t grb_photons = 0;     ///< Photons thrown at the aperture.
  std::uint64_t background_photons = 0;
  std::uint64_t piled_up_events = 0;  ///< Event pairs merged by pileup.
};

class ExposureSimulator {
 public:
  ExposureSimulator(const detector::Geometry& geometry,
                    const detector::Material& material,
                    const detector::ReadoutConfig& readout_config = {},
                    const physics::TransportConfig& transport_config = {});

  /// Simulate a full window: GRB photons plus background photons.
  /// When `pileup` enables a detection-latency window, coincident
  /// events are merged before readout ordering is lost.
  Exposure simulate(const GrbConfig& grb, const BackgroundConfig& background,
                    core::Rng& rng, const PileupConfig& pileup = {}) const;

  /// GRB photons only (used for oracle/no-background experiments and
  /// for building labeled training sets).
  Exposure simulate_grb_only(const GrbConfig& grb, core::Rng& rng) const;

  /// Background photons only.
  Exposure simulate_background_only(const BackgroundConfig& background,
                                    core::Rng& rng) const;

  const detector::Geometry& geometry() const { return *geometry_; }
  const detector::ReadoutModel& readout() const { return readout_; }
  const physics::Transport& transport() const { return transport_; }

 private:
  /// Throw `count` photons from a generator, transport, digitize, and
  /// append detected events tagged with `origin`.
  template <typename PhotonFn>
  void run_photons(std::uint64_t count, PhotonFn&& next_photon,
                   detector::Origin origin, core::Rng& rng,
                   std::vector<detector::MeasuredEvent>& out) const;

  const detector::Geometry* geometry_;
  detector::Material material_;
  physics::Transport transport_;
  detector::ReadoutModel readout_;
};

}  // namespace adapt::sim
