#include "sim/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"

namespace adapt::sim {

void Spectrum::build_table(int n_points) {
  ADAPT_REQUIRE(n_points >= 8, "inverse-CDF table too small");
  ADAPT_REQUIRE(e_min() > 0.0 && e_max() > e_min(), "bad spectrum bounds");

  log_e_.resize(static_cast<size_t>(n_points));
  cdf_.resize(static_cast<size_t>(n_points));
  const double lmin = std::log(e_min());
  const double lmax = std::log(e_max());
  for (int i = 0; i < n_points; ++i) {
    log_e_[static_cast<size_t>(i)] =
        lmin + (lmax - lmin) * static_cast<double>(i) /
                   static_cast<double>(n_points - 1);
  }

  // Trapezoidal CDF in log-energy space: integrand = E * dN/dE since
  // dE = E dlogE.  Accumulate the first moment alongside for the mean.
  double cum = 0.0;
  double moment = 0.0;
  cdf_[0] = 0.0;
  double prev_e = std::exp(log_e_[0]);
  double prev_f = prev_e * density(prev_e);
  for (size_t i = 1; i < log_e_.size(); ++i) {
    const double e = std::exp(log_e_[i]);
    const double f = e * density(e);
    const double dl = log_e_[i] - log_e_[i - 1];
    const double area = 0.5 * (prev_f + f) * dl;
    cum += area;
    moment += 0.5 * (prev_f * prev_e + f * e) * dl;
    cdf_[i] = cum;
    prev_e = e;
    prev_f = f;
  }
  ADAPT_REQUIRE(cum > 0.0, "spectrum integrates to zero");
  for (double& c : cdf_) c /= cum;
  cdf_.back() = 1.0;
  mean_energy_ = moment / cum;
}

double Spectrum::sample(core::Rng& rng) const {
  ADAPT_REQUIRE(!cdf_.empty(), "spectrum table not built");
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const size_t hi = std::min(
      static_cast<size_t>(std::distance(cdf_.begin(), it)), cdf_.size() - 1);
  if (hi == 0) return std::exp(log_e_[0]);
  const size_t lo = hi - 1;
  const double span = cdf_[hi] - cdf_[lo];
  const double frac = span > 0.0 ? (u - cdf_[lo]) / span : 0.0;
  return std::exp(log_e_[lo] + frac * (log_e_[hi] - log_e_[lo]));
}

double Spectrum::mean_energy() const {
  ADAPT_REQUIRE(!cdf_.empty(), "spectrum table not built");
  return mean_energy_;
}

BandSpectrum::BandSpectrum(const BandParams& params) : params_(params) {
  ADAPT_REQUIRE(params.alpha > -2.0, "Band alpha must exceed -2");
  ADAPT_REQUIRE(params.beta < params.alpha,
                "Band beta must be steeper than alpha");
  ADAPT_REQUIRE(params.e_peak > 0.0, "Band E_peak must be positive");
  e_break_ =
      (params.alpha - params.beta) * params.e_peak / (2.0 + params.alpha);
  // Continuity factor at the break: match the low- and high-energy
  // branches at E = e_break_.
  const double low_at_break =
      std::pow(e_break_, params.alpha) *
      std::exp(-e_break_ * (2.0 + params.alpha) / params.e_peak);
  high_norm_ = low_at_break / std::pow(e_break_, params.beta);
  build_table();
}

double BandSpectrum::density(double e) const {
  if (e < e_break_) {
    return std::pow(e, params_.alpha) *
           std::exp(-e * (2.0 + params_.alpha) / params_.e_peak);
  }
  return high_norm_ * std::pow(e, params_.beta);
}

PowerLawSpectrum::PowerLawSpectrum(double index, double e_min, double e_max)
    : index_(index), e_min_(e_min), e_max_(e_max) {
  ADAPT_REQUIRE(e_min > 0.0 && e_max > e_min, "bad power-law bounds");
  build_table();
}

double PowerLawSpectrum::density(double e) const {
  return std::pow(e, -index_);
}

}  // namespace adapt::sim
