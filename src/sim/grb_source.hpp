#pragma once

/// \file grb_source.hpp
/// GRB plane-wave source model.
///
/// A gamma-ray burst at cosmological distance illuminates the detector
/// as a plane wave from direction `s` (the unit vector *toward* the
/// source).  The paper parameterizes bursts by fluence — the
/// time-integrated brightness in MeV/cm^2 over a 1-second window — and
/// by the source polar angle (0 degrees = normally incident from
/// above; Earth blocks everything below the horizon).

#include <memory>

#include "core/rng.hpp"
#include "core/vec3.hpp"
#include "detector/geometry.hpp"
#include "sim/light_curve.hpp"
#include "sim/spectrum.hpp"

namespace adapt::sim {

struct GrbConfig {
  double fluence = 1.0;       ///< [MeV/cm^2] over the burst window.
  double polar_deg = 0.0;     ///< Source polar angle [deg], 0..90.
  double azimuth_deg = 0.0;   ///< Source azimuth [deg].
  BandParams spectrum;        ///< Band spectral parameters.
  LightCurveParams light_curve;  ///< Temporal pulse profile.
};

/// One photon ready for transport.
struct SourcePhoton {
  core::Vec3 origin;     ///< Starting point outside the detector [cm].
  core::Vec3 direction;  ///< Unit travel direction.
  double energy = 0.0;   ///< [MeV].
};

class GrbSource {
 public:
  GrbSource(const GrbConfig& config, const detector::Geometry& geometry);

  /// Unit vector pointing from the detector toward the source.
  core::Vec3 source_direction() const { return source_dir_; }

  /// Expected number of photons crossing the sampling aperture for the
  /// configured fluence (fluence * aperture_area / mean photon
  /// energy).
  double expected_photons() const;

  /// Draw the photon count for one burst realization (Poisson).
  std::uint64_t sample_photon_count(core::Rng& rng) const;

  /// Generate one incident photon: a point on a disk aperture
  /// perpendicular to the propagation direction, upstream of the
  /// detector, with a Band-sampled energy.
  SourcePhoton sample_photon(core::Rng& rng) const;

  const GrbConfig& config() const { return config_; }

  /// Radius [cm] of the circular sampling aperture (encloses the
  /// detector's silhouette from every incidence angle).
  double aperture_radius() const { return aperture_radius_; }

 private:
  GrbConfig config_;
  core::Vec3 source_dir_;    ///< Toward the source.
  core::Vec3 travel_dir_;    ///< Photon travel direction = -source_dir_.
  core::Vec3 detector_center_;
  double aperture_radius_ = 0.0;
  double standoff_ = 0.0;    ///< Distance of the aperture plane upstream.
  std::unique_ptr<BandSpectrum> spectrum_;
};

}  // namespace adapt::sim
