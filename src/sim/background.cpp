#include "sim/background.hpp"

#include <cmath>

#include "core/mat3.hpp"
#include "core/require.hpp"
#include "core/units.hpp"

namespace adapt::sim {

using core::Mat3;
using core::Vec3;

BackgroundModel::BackgroundModel(const BackgroundConfig& config,
                                 const detector::Geometry& geometry)
    : config_(config) {
  ADAPT_REQUIRE(config.photons_per_second >= 0.0, "rate must be >= 0");
  ADAPT_REQUIRE(config.albedo_fraction >= 0.0 && config.albedo_fraction <= 1.0,
                "albedo fraction must be in [0, 1]");
  ADAPT_REQUIRE(config.exposure_seconds > 0.0, "exposure must be positive");
  detector_center_ = geometry.center();
  aperture_radius_ = geometry.bounding_radius();
  spectrum_ = std::make_unique<PowerLawSpectrum>(config.spectral_index,
                                                 config.e_min, config.e_max);
}

double BackgroundModel::expected_photons() const {
  return config_.photons_per_second * config_.exposure_seconds;
}

std::uint64_t BackgroundModel::sample_photon_count(core::Rng& rng) const {
  return rng.poisson(expected_photons());
}

SourcePhoton BackgroundModel::sample_photon(core::Rng& rng) const {
  // Travel direction: upward-going for the albedo component (source
  // below the horizon), downward-going for the diffuse sky component.
  Vec3 travel;
  if (rng.uniform() < config_.albedo_fraction) {
    travel = rng.hemisphere_direction_up();  // +z: coming from below.
  } else {
    travel = -rng.hemisphere_direction_up();  // -z: from the sky.
  }

  const Vec3 disk_point = rng.uniform_disk(aperture_radius_);
  const Vec3 offset = Mat3::frame_to(travel) * disk_point;

  SourcePhoton p;
  p.origin = detector_center_ - travel * (2.0 * aperture_radius_) + offset;
  p.direction = travel;
  // Spectrum: power-law continuum plus the 511 keV annihilation line.
  p.energy = rng.uniform() < config_.annihilation_line_fraction
                 ? 0.511
                 : spectrum_->sample(rng);
  return p;
}

}  // namespace adapt::sim
