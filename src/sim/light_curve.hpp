#pragma once

/// \file light_curve.hpp
/// Temporal profile of the burst: a FRED (fast-rise exponential-decay)
/// light curve, the canonical short-GRB pulse shape (Norris profile).
/// The paper's evaluation uses 1-second windows with light curves from
/// its refs [4], [9]; a FRED pulse inside the window reproduces the
/// relevant structure: a sharp onset the trigger must find, and a
/// concentration of source photons over a fraction of the exposure.
///
///   f(t) ~ exp( -rise/(t - t_start) - (t - t_start)/decay ),  t > t_start
///
/// peaking at t_start + sqrt(rise * decay).

#include "core/rng.hpp"

namespace adapt::sim {

struct LightCurveParams {
  double t_start = 0.2;  ///< Burst onset within the window [s].
  double rise = 0.01;    ///< Rise timescale [s].
  double decay = 0.15;   ///< Decay timescale [s].
};

class FredLightCurve {
 public:
  FredLightCurve(const LightCurveParams& params, double window_s);

  /// Unnormalized profile value at time t.
  double density(double t) const;

  /// Peak time of the pulse [s].
  double peak_time() const;

  /// Draw a photon arrival time in [0, window) by rejection sampling
  /// against the peak value.
  double sample(core::Rng& rng) const;

  const LightCurveParams& params() const { return params_; }
  double window() const { return window_s_; }

 private:
  LightCurveParams params_;
  double window_s_;
  double peak_value_;
};

}  // namespace adapt::sim
