#include "sim/light_curve.hpp"

#include <cmath>

#include "core/require.hpp"

namespace adapt::sim {

FredLightCurve::FredLightCurve(const LightCurveParams& params,
                               double window_s)
    : params_(params), window_s_(window_s) {
  ADAPT_REQUIRE(params.rise > 0.0 && params.decay > 0.0,
                "light-curve timescales must be positive");
  ADAPT_REQUIRE(window_s > 0.0, "window must be positive");
  ADAPT_REQUIRE(params.t_start >= 0.0 && params.t_start < window_s,
                "burst onset must lie inside the window");
  peak_value_ = density(peak_time());
  ADAPT_REQUIRE(peak_value_ > 0.0, "degenerate light curve");
}

double FredLightCurve::density(double t) const {
  const double dt = t - params_.t_start;
  if (dt <= 0.0 || t >= window_s_) return 0.0;
  return std::exp(-params_.rise / dt - dt / params_.decay);
}

double FredLightCurve::peak_time() const {
  return params_.t_start + std::sqrt(params_.rise * params_.decay);
}

double FredLightCurve::sample(core::Rng& rng) const {
  // Rejection against the peak; the FRED envelope makes this efficient
  // for pulse widths that fit the window (typical acceptance > 10%).
  for (int i = 0; i < 10000; ++i) {
    const double t = rng.uniform(params_.t_start, window_s_);
    if (rng.uniform() * peak_value_ < density(t)) return t;
  }
  return peak_time();  // Pathological parameters: pile at the peak.
}

}  // namespace adapt::sim
