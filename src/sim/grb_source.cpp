#include "sim/grb_source.hpp"

#include <cmath>

#include "core/mat3.hpp"
#include "core/require.hpp"
#include "core/units.hpp"

namespace adapt::sim {

using core::Mat3;
using core::Vec3;

GrbSource::GrbSource(const GrbConfig& config,
                     const detector::Geometry& geometry)
    : config_(config) {
  ADAPT_REQUIRE(config.fluence > 0.0, "fluence must be positive");
  ADAPT_REQUIRE(config.polar_deg >= 0.0 && config.polar_deg <= 90.0,
                "GRB polar angle must be in [0, 90] degrees "
                "(Earth obscures the lower hemisphere)");
  source_dir_ = core::from_spherical(core::deg_to_rad(config.polar_deg),
                                     core::deg_to_rad(config.azimuth_deg));
  travel_dir_ = -source_dir_;
  detector_center_ = geometry.center();
  aperture_radius_ = geometry.bounding_radius();
  standoff_ = 2.0 * aperture_radius_;
  spectrum_ = std::make_unique<BandSpectrum>(config.spectrum);
}

double GrbSource::expected_photons() const {
  const double area = core::kPi * aperture_radius_ * aperture_radius_;
  return config_.fluence * area / spectrum_->mean_energy();
}

std::uint64_t GrbSource::sample_photon_count(core::Rng& rng) const {
  return rng.poisson(expected_photons());
}

SourcePhoton GrbSource::sample_photon(core::Rng& rng) const {
  // A uniform point on the aperture disk, expressed in a frame whose
  // +z is the travel direction, then placed upstream of the detector.
  const Vec3 disk_point = rng.uniform_disk(aperture_radius_);
  const Vec3 offset = Mat3::frame_to(travel_dir_) * disk_point;
  SourcePhoton p;
  p.origin = detector_center_ - travel_dir_ * standoff_ + offset;
  p.direction = travel_dir_;
  p.energy = spectrum_->sample(rng);
  return p;
}

}  // namespace adapt::sim
