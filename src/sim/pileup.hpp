#pragma once

/// \file pileup.hpp
/// Detection-latency pileup as a reusable timeline transform.
///
/// Two photons whose arrival times fall within the instrument's
/// detection latency are read out as ONE event whose hit lists are
/// merged — a corrupted trajectory that reconstruction cannot order
/// correctly (the paper's first listed piece of future work).  The
/// merge used to live inside ExposureSimulator::simulate; the scenario
/// engine needs the same physics on timelines it assembles itself
/// (overlapping bursts + flare trains + surges share one DAQ), so the
/// transform is public: sort-by-time, group events closer than the
/// latency window to the group anchor, concatenate hits.
///
/// Semantics (unchanged from the original exposure-internal version):
/// grouping is anchor-based — an event joins the group when it arrives
/// within `window_s` of the group's FIRST event, and the next group
/// starts at the first event past that window.  The merged event keeps
/// the anchor's arrival time and truth tag, except that any background
/// contribution poisons the tag to kBackground; `fully_absorbed` is
/// cleared because the combined trajectory is no longer one photon's.

#include <cstdint>
#include <vector>

#include "detector/hit.hpp"

namespace adapt::sim {

/// Merge time-coincident events in place.  Returns the number of
/// events absorbed into an earlier anchor (== the drop in
/// events.size()); 0 when `window_s <= 0` or fewer than two events.
std::uint64_t merge_coincident(std::vector<detector::MeasuredEvent>& events,
                               double window_s);

}  // namespace adapt::sim
