#include "sim/exposure.hpp"

#include "core/telemetry.hpp"
#include "sim/pileup.hpp"

namespace adapt::sim {

namespace {

namespace tm = core::telemetry;

/// Per-origin photon/event accounting shared by the three simulate
/// entry points.
void count_photons(detector::Origin origin, std::uint64_t generated,
                   std::size_t detected) {
  static tm::Counter& grb_generated = tm::counter("sim.photons_generated.grb");
  static tm::Counter& bkg_generated =
      tm::counter("sim.photons_generated.background");
  static tm::Counter& grb_detected = tm::counter("sim.events_detected.grb");
  static tm::Counter& bkg_detected =
      tm::counter("sim.events_detected.background");
  if (origin == detector::Origin::kGrb) {
    grb_generated.add(generated);
    grb_detected.add(detected);
  } else {
    bkg_generated.add(generated);
    bkg_detected.add(detected);
  }
}

}  // namespace

ExposureSimulator::ExposureSimulator(
    const detector::Geometry& geometry, const detector::Material& material,
    const detector::ReadoutConfig& readout_config,
    const physics::TransportConfig& transport_config)
    : geometry_(&geometry),
      material_(material),
      transport_(geometry, material_, transport_config),
      readout_(geometry, readout_config) {}

template <typename PhotonFn>
void ExposureSimulator::run_photons(
    std::uint64_t count, PhotonFn&& next_photon, detector::Origin origin,
    core::Rng& rng, std::vector<detector::MeasuredEvent>& out) const {
  for (std::uint64_t i = 0; i < count; ++i) {
    const SourcePhoton p = next_photon(rng);
    detector::RawEvent raw =
        transport_.propagate(p.origin, p.direction, p.energy, rng);
    if (raw.hits.empty()) continue;  // Crossed without interacting.
    raw.origin = origin;
    if (auto measured = readout_.read_out(raw, rng)) {
      out.push_back(std::move(*measured));
    }
  }
}

Exposure ExposureSimulator::simulate(const GrbConfig& grb,
                                     const BackgroundConfig& background,
                                     core::Rng& rng,
                                     const PileupConfig& pileup) const {
  static tm::Histogram& window_ms = tm::histogram("sim.window_ms");
  static tm::Counter& piled_up = tm::counter("sim.events_piled_up");
  const tm::ScopedTimer timer(window_ms);
  const GrbSource source(grb, *geometry_);
  const BackgroundModel bkg(background, *geometry_);

  Exposure exposure;
  exposure.true_source_direction = source.source_direction();
  exposure.grb_photons = source.sample_photon_count(rng);
  exposure.background_photons = bkg.sample_photon_count(rng);
  exposure.events.reserve(256);

  run_photons(
      exposure.grb_photons,
      [&source](core::Rng& r) { return source.sample_photon(r); },
      detector::Origin::kGrb, rng, exposure.events);
  // Arrival times: the GRB pulse follows its light curve, the
  // background is uniform over the window.
  const double window = background.exposure_seconds;
  const FredLightCurve light_curve(grb.light_curve, window);
  std::size_t grb_detected = exposure.events.size();
  for (std::size_t i = 0; i < grb_detected; ++i)
    exposure.events[i].time_s = light_curve.sample(rng);

  run_photons(
      exposure.background_photons,
      [&bkg](core::Rng& r) { return bkg.sample_photon(r); },
      detector::Origin::kBackground, rng, exposure.events);
  for (std::size_t i = grb_detected; i < exposure.events.size(); ++i)
    exposure.events[i].time_s = rng.uniform(0.0, window);

  count_photons(detector::Origin::kGrb, exposure.grb_photons, grb_detected);
  count_photons(detector::Origin::kBackground, exposure.background_photons,
                exposure.events.size() - grb_detected);

  exposure.piled_up_events +=
      merge_coincident(exposure.events, pileup.detection_latency_s);
  piled_up.add(exposure.piled_up_events);
  return exposure;
}

Exposure ExposureSimulator::simulate_grb_only(const GrbConfig& grb,
                                              core::Rng& rng) const {
  const GrbSource source(grb, *geometry_);
  Exposure exposure;
  exposure.true_source_direction = source.source_direction();
  exposure.grb_photons = source.sample_photon_count(rng);
  run_photons(
      exposure.grb_photons,
      [&source](core::Rng& r) { return source.sample_photon(r); },
      detector::Origin::kGrb, rng, exposure.events);
  const FredLightCurve light_curve(grb.light_curve, 1.0);
  for (auto& event : exposure.events)
    event.time_s = light_curve.sample(rng);
  count_photons(detector::Origin::kGrb, exposure.grb_photons,
                exposure.events.size());
  return exposure;
}

Exposure ExposureSimulator::simulate_background_only(
    const BackgroundConfig& background, core::Rng& rng) const {
  const BackgroundModel bkg(background, *geometry_);
  Exposure exposure;
  exposure.background_photons = bkg.sample_photon_count(rng);
  run_photons(
      exposure.background_photons,
      [&bkg](core::Rng& r) { return bkg.sample_photon(r); },
      detector::Origin::kBackground, rng, exposure.events);
  for (auto& event : exposure.events)
    event.time_s = rng.uniform(0.0, background.exposure_seconds);
  count_photons(detector::Origin::kBackground, exposure.background_photons,
                exposure.events.size());
  return exposure;
}

}  // namespace adapt::sim
