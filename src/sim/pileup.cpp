#include "sim/pileup.hpp"

#include <algorithm>
#include <utility>

namespace adapt::sim {

std::uint64_t merge_coincident(std::vector<detector::MeasuredEvent>& events,
                               double window_s) {
  if (window_s <= 0.0 || events.size() < 2) return 0;

  struct Timed {
    double t;
    std::size_t index;
  };
  std::vector<Timed> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = Timed{events[i].time_s, i};
  // stable_sort: equal arrival times keep their assembly order, so the
  // merge result is independent of how the timeline was concatenated.
  std::stable_sort(order.begin(), order.end(),
                   [](const Timed& a, const Timed& b) { return a.t < b.t; });

  std::uint64_t merged_away = 0;
  std::vector<detector::MeasuredEvent> merged;
  merged.reserve(events.size());
  std::size_t i = 0;
  while (i < order.size()) {
    detector::MeasuredEvent event = std::move(events[order[i].index]);
    std::size_t j = i + 1;
    while (j < order.size() && order[j].t - order[i].t < window_s) {
      const detector::MeasuredEvent& other = events[order[j].index];
      // The DAQ sees one event: concatenated hits, summed energy.  The
      // trajectory is no longer a single photon's — mark it partially
      // absorbed and keep the earlier photon's truth (the tag the
      // networks would ideally learn to reject).
      event.hits.insert(event.hits.end(), other.hits.begin(),
                        other.hits.end());
      event.fully_absorbed = false;
      if (other.origin == detector::Origin::kBackground)
        event.origin = detector::Origin::kBackground;
      ++merged_away;
      ++j;
    }
    merged.push_back(std::move(event));
    i = j;
  }
  events = std::move(merged);
  return merged_away;
}

}  // namespace adapt::sim
