#pragma once

/// \file background.hpp
/// Atmospheric MeV background model (stand-in for the paper's ref [8]
/// environment model).
///
/// At balloon altitude the dominant MeV photon background is diffuse:
/// a mixture of atmospheric albedo radiation coming *up* from the
/// Earth below and a roughly isotropic cosmic/diffuse component from
/// above.  ADAPT cannot carry an anticoincidence shield, so these
/// particles reach the detector and produce Compton rings uncorrelated
/// with any GRB.  The rate constant is calibrated (see
/// tests/sim/background_ratio_test) so that a 1-second window yields
/// 2-3x as many background rings as a 1 MeV/cm^2 GRB yields source
/// rings — the ratio the paper reports for localization inputs.

#include <memory>

#include "core/rng.hpp"
#include "detector/geometry.hpp"
#include "sim/grb_source.hpp"
#include "sim/spectrum.hpp"

namespace adapt::sim {

struct BackgroundConfig {
  /// Expected incident background photons per second crossing the
  /// sampling aperture.  The default is calibrated against the paper's
  /// 2-3x ring-count ratio at 1 MeV/cm^2 (see tests/sim).
  double photons_per_second = 15500.0;

  /// Fraction of background photons arriving from the lower hemisphere
  /// (Earth albedo, traveling upward).  At balloon float altitude the
  /// MeV background is dominated by cosmic-ray-induced atmospheric
  /// emission from below.
  double albedo_fraction = 0.75;

  /// Power-law photon index of the continuum (dN/dE ~ E^-index).
  double spectral_index = 1.4;

  /// Fraction of background photons in the 511 keV positron
  /// annihilation line — a strong, real feature of Earth's albedo
  /// spectrum and a key spectral handle for background rejection.
  double annihilation_line_fraction = 0.18;

  double e_min = 0.030;  ///< [MeV].
  double e_max = 10.0;   ///< [MeV].

  double exposure_seconds = 1.0;  ///< Window length (short GRBs: 1 s).
};

class BackgroundModel {
 public:
  BackgroundModel(const BackgroundConfig& config,
                  const detector::Geometry& geometry);

  /// Expected photon count over the exposure window.
  double expected_photons() const;

  std::uint64_t sample_photon_count(core::Rng& rng) const;

  /// Generate one background photon: direction drawn from the
  /// albedo/diffuse mixture, aimed through a disk aperture enclosing
  /// the detector.
  SourcePhoton sample_photon(core::Rng& rng) const;

  const BackgroundConfig& config() const { return config_; }

 private:
  BackgroundConfig config_;
  core::Vec3 detector_center_;
  double aperture_radius_ = 0.0;
  std::unique_ptr<PowerLawSpectrum> spectrum_;
};

}  // namespace adapt::sim
