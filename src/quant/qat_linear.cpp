#include "quant/qat_linear.hpp"

#include <sstream>

#include "core/require.hpp"

namespace adapt::quant {

QatLinear::QatLinear(std::size_t in_features, std::size_t out_features,
                     core::Rng& rng)
    : in_(in_features), out_(out_features) {
  ADAPT_REQUIRE(in_features > 0 && out_features > 0,
                "qat linear dims must be positive");
  weight_.name = "weight";
  weight_.value = nn::Tensor(out_, in_);
  weight_.value.he_init(in_, rng);
  weight_.zero_grad();
  bias_.name = "bias";
  bias_.value = nn::Tensor(1, out_);
  bias_.zero_grad();
}

void QatLinear::load_weights(const nn::Tensor& weight,
                             const std::vector<float>& bias) {
  ADAPT_REQUIRE(weight.rows() == out_ && weight.cols() == in_,
                "weight shape mismatch");
  ADAPT_REQUIRE(bias.size() == out_, "bias size mismatch");
  weight_.value = weight;
  bias_.value.vec() = bias;
}

std::vector<ChannelQParams> QatLinear::channel_qparams() const {
  return weight_qparams(weight_.value, weight_bits_, per_channel_);
}

nn::Tensor QatLinear::quantized_weight() const {
  const auto qp = channel_qparams();
  nn::Tensor qw(out_, in_);
  for (std::size_t r = 0; r < out_; ++r)
    for (std::size_t c = 0; c < in_; ++c)
      qw(r, c) = qp[r].fake(weight_.value(r, c));
  return qw;
}

nn::Tensor QatLinear::forward(const nn::Tensor& x, bool training) {
  ADAPT_REQUIRE(x.cols() == in_, "qat linear input width mismatch");
  if (training) {
    // Backward needs the fake-quantized weight and the input; caching
    // them is only legal on the (single-threaded) training path.
    qweight_cache_ = quantized_weight();
    input_cache_ = x;
    nn::Tensor y;
    nn::matmul_abt(x, qweight_cache_, y);
    nn::add_row_broadcast(y, bias_.value.vec());
    return y;
  }
  // Inference writes no member state so concurrent callers can share
  // the layer (same rule as Linear / BatchNorm1d).
  const nn::Tensor qw = quantized_weight();
  nn::Tensor y;
  nn::matmul_abt(x, qw, y);
  nn::add_row_broadcast(y, bias_.value.vec());
  return y;
}

nn::Tensor QatLinear::backward(const nn::Tensor& grad_out) {
  ADAPT_REQUIRE(grad_out.cols() == out_, "qat linear grad width mismatch");
  ADAPT_REQUIRE(grad_out.rows() == input_cache_.rows(),
                "backward batch mismatch (forward(training=true) first?)");

  nn::Tensor dw;
  nn::matmul_atb(grad_out, input_cache_, dw);
  for (std::size_t i = 0; i < dw.size(); ++i)
    weight_.grad.vec()[i] += dw.vec()[i];

  for (std::size_t r = 0; r < grad_out.rows(); ++r)
    for (std::size_t c = 0; c < out_; ++c)
      bias_.grad(0, c) += grad_out(r, c);

  nn::Tensor dx;
  nn::matmul_ab(grad_out, qweight_cache_, dx);
  return dx;
}

std::string QatLinear::describe() const {
  std::ostringstream os;
  os << "qat_linear(" << in_ << " -> " << out_ << ")";
  return os.str();
}

}  // namespace adapt::quant
