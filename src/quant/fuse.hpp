#pragma once

/// \file fuse.hpp
/// Linear + BatchNorm fusion (paper Sec. V).
///
/// Quantization requires the "layer-swapped" block order
/// FC -> BatchNorm -> ReLU so the batchnorm can be folded into the
/// preceding fully connected layer:
///
///   BN(W x + b) = gamma/sqrt(var+eps) * (W x + b - mean) + beta
///               = W' x + b',
///   W'[oc,:] = W[oc,:] * g_oc,   b'[oc] = (b[oc] - mean[oc]) * g_oc + beta[oc],
///   g_oc = gamma[oc] / sqrt(var[oc] + eps).
///
/// The folded stack is a plain sequence of Linear(+ReLU) stages — the
/// form both the INT8 engine and the FPGA kernel model consume.

#include <vector>

#include "nn/sequential.hpp"
#include "nn/tensor.hpp"

namespace adapt::quant {

/// One fused stage: y = W x + b, optionally ReLU-activated.
struct FusedLayer {
  nn::Tensor weight;          ///< (out x in).
  std::vector<float> bias;    ///< out entries.
  bool relu = false;

  std::size_t in_features() const { return weight.cols(); }
  std::size_t out_features() const { return weight.rows(); }
};

/// Fold a layer-swapped model (blocks of Linear -> BatchNorm1d -> ReLU
/// with a final bare Linear) into fused stages.  Throws on any other
/// layer pattern — fusion of the paper's original (BN-first) blocks is
/// exactly what the layer swap exists to avoid.
std::vector<FusedLayer> fuse_bn(nn::Sequential& model);

/// Run the fused stack in FP32 (reference for fusion-correctness tests
/// and the FP32 FPGA kernel baseline).
nn::Tensor fused_forward(const std::vector<FusedLayer>& layers,
                         const nn::Tensor& x);

}  // namespace adapt::quant
