#pragma once

/// \file fake_quant.hpp
/// Activation fake-quantization layer for quantization-aware training
/// (paper Sec. V: PyTorch Eager-mode QAT).
///
/// During training the layer tracks the activation range with an
/// exponential moving average, quantize-dequantizes the forward pass
/// so the network learns around the rounding error, and passes
/// gradients straight through inside the representable range (zero
/// outside — the straight-through estimator with clipping).  At
/// inference the frozen range emulates INT8 numerics in FP32; the true
/// integer path lives in quantized_mlp.hpp.

#include "nn/layer.hpp"
#include "quant/qparams.hpp"

namespace adapt::quant {

class FakeQuant : public nn::Layer {
 public:
  /// `ema_momentum` weights new observations into the running range.
  explicit FakeQuant(double ema_momentum = 0.05);

  nn::Tensor forward(const nn::Tensor& x, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  std::string type() const override { return "fake_quant"; }

  /// Current activation quantization parameters.
  QParams qparams() const;

  bool observed() const { return observed_; }

  /// Freeze/override the observed range (used when importing
  /// calibration from another run).
  void set_range(float lo, float hi);

 private:
  double momentum_;
  bool observed_ = false;
  float running_lo_ = 0.0f;
  float running_hi_ = 0.0f;
  nn::Tensor pass_mask_;  ///< 1 where input was inside the range.
};

}  // namespace adapt::quant
