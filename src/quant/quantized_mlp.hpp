#pragma once

/// \file quantized_mlp.hpp
/// The INT8 integer inference engine and the QAT assembly/export flow
/// (paper Sec. V).
///
/// Flow mirroring PyTorch's Eager-mode QAT with the 'x86' config:
///   1. train the layer-swapped FP32 model (nn::mlp, swap_bn_fc=true);
///   2. fold BatchNorm into the Linears (quant::fuse_bn);
///   3. build_qat_model() inserts activation FakeQuant observers and
///      weight-fake-quantizing QatLinears;
///   4. calibrate / fine-tune with nn::Trainer;
///   5. export_quantized() emits this integer engine: uint8 affine
///      activations, per-channel symmetric int8 weights, int32
///      accumulation and bias, float requantization multipliers.
///
/// The engine computes genuinely in integers (the only float per layer
/// is the requantization multiply), so its outputs quantify the real
/// INT8 accuracy cost in Fig. 11 — not a float emulation.

#include <cstdint>
#include <vector>

#include "nn/sequential.hpp"
#include "quant/fuse.hpp"
#include "quant/qparams.hpp"

namespace adapt::quant {

struct QuantizedLayer {
  std::size_t in_features = 0;
  std::size_t out_features = 0;
  std::vector<std::int8_t> weight;    ///< (out x in), row-major.
  std::vector<std::int32_t> bias;     ///< In s_in * s_w[oc] units.
  std::vector<float> weight_scales;   ///< Per output channel.
  QParams input_q;                    ///< uint8 params of this layer's
                                      ///< input activation.
  bool relu = false;
};

class QuantizedMlp {
 public:
  explicit QuantizedMlp(std::vector<QuantizedLayer> layers);

  /// Run a float batch through the integer pipeline; returns float
  /// outputs (n x out_features of the last layer) — for the
  /// background network, pre-sigmoid logits.
  nn::Tensor forward(const nn::Tensor& x) const;

  /// Weight + bias storage in bytes (INT8 footprint; the number the
  /// paper's BRAM comparison cares about).
  std::size_t model_size_bytes() const;

  const std::vector<QuantizedLayer>& layers() const { return layers_; }

  /// FNV-1a digest of every weight/bias/scale byte, in layer order.
  /// Recorded at deploy time and recomputed on supervisor health
  /// ticks: any in-memory bit flip changes the digest.
  std::uint64_t weight_checksum() const;

  /// SEU-emulation hook for fault injection (src/fault): flips one bit
  /// of one stored int8 weight, exactly as an upset in weight memory
  /// would.  Deliberately does NOT refresh the precomputed zero-point
  /// row sums — a real upset would not either; the folded constants
  /// going stale is part of the corruption the checksum must catch.
  /// `byte_index` wraps modulo the layer's weight count.
  void flip_weight_bit(std::size_t layer, std::size_t byte_index,
                       unsigned bit);

 private:
  std::vector<QuantizedLayer> layers_;
  /// Per-layer, per-output-channel weight row sums, precomputed at
  /// construction so the inner inference loop is a pure q_x * q_w dot
  /// product: sum (q_x - zp) * q_w == sum q_x * q_w - zp * row_sum.
  std::vector<std::vector<std::int32_t>> weight_row_sums_;
  std::size_t max_width_ = 0;  ///< Widest activation, for the ping-pong
                               ///< buffers forward() allocates once.
};

/// Weight-quantization strategy (paper Sec. VI future work: "a broader
/// range of quantization strategies").  The default reproduces the
/// paper's PyTorch 'x86' setup.
struct QuantStrategy {
  int weight_bits = 8;      ///< Symmetric weight bit width, [2, 16].
  bool per_channel = true;  ///< Per-output-channel vs per-tensor scale.
};

/// Step 3: wrap fused FP32 stages into a QAT-trainable Sequential:
/// FakeQuant -> [QatLinear -> (ReLU) -> FakeQuant]* -> QatLinear.
/// The final layer's output is left unquantized (it feeds a threshold,
/// not another integer layer).
nn::Sequential build_qat_model(const std::vector<FusedLayer>& fused,
                               core::Rng& rng,
                               const QuantStrategy& strategy = {});

/// Step 5: read the calibrated observers and quantized weights out of
/// a QAT model produced by build_qat_model.
QuantizedMlp export_quantized(nn::Sequential& qat_model);

}  // namespace adapt::quant
