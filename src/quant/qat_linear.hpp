#pragma once

/// \file qat_linear.hpp
/// Fully connected layer with fake-quantized weights for QAT.
///
/// The latent weights stay FP32 (the optimizer updates them), but each
/// forward pass uses their per-channel symmetric INT8 projection, so
/// the training loss sees the rounding the deployed kernel will apply.
/// Gradients use the straight-through estimator: backward behaves as
/// if the quantizer were the identity, computed against the quantized
/// weights.

#include "nn/layer.hpp"
#include "quant/qparams.hpp"

namespace adapt::quant {

class QatLinear : public nn::Layer {
 public:
  QatLinear(std::size_t in_features, std::size_t out_features,
            core::Rng& rng);

  /// Initialize from pre-trained fused weights (the usual QAT flow:
  /// train FP32, fold BN, fine-tune quantized).
  void load_weights(const nn::Tensor& weight, const std::vector<float>& bias);

  nn::Tensor forward(const nn::Tensor& x, bool training) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  std::vector<nn::Param*> params() override { return {&weight_, &bias_}; }
  std::string type() const override { return "qat_linear"; }
  std::string describe() const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  const nn::Param& weight() const { return weight_; }
  const nn::Param& bias() const { return bias_; }

  /// Quantized projection of the current weights (what export uses).
  nn::Tensor quantized_weight() const;
  std::vector<ChannelQParams> channel_qparams() const;

  /// Quantization strategy knobs (paper future work: "a broader range
  /// of quantization strategies").  Defaults match PyTorch's x86
  /// backend: 8-bit, per-output-channel symmetric.
  void set_weight_bits(int bits) { weight_bits_ = bits; }
  int weight_bits() const { return weight_bits_; }
  void set_per_channel(bool per_channel) { per_channel_ = per_channel; }
  bool per_channel() const { return per_channel_; }

 private:
  std::size_t in_;
  std::size_t out_;
  int weight_bits_ = 8;
  bool per_channel_ = true;
  nn::Param weight_;
  nn::Param bias_;
  nn::Tensor input_cache_;
  nn::Tensor qweight_cache_;
};

}  // namespace adapt::quant
