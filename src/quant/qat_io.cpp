#include "quant/qat_io.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/checksum.hpp"
#include "core/contract.hpp"
#include "core/telemetry.hpp"
#include "nn/activations.hpp"
#include "quant/fake_quant.hpp"
#include "quant/qat_linear.hpp"

namespace adapt::quant {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'Q', 'T'};
// Version 2 appends a u64 FNV-1a checksum footer (same rationale and
// layout as nn::serialize); version-1 files still load.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;

enum class Tag : std::uint32_t {
  kQatLinear = 1,
  kFakeQuant = 2,
  kReLU = 3,
};

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f32(std::ostream& os, float v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_floats(std::ostream& os, const std::vector<float>& v) {
  write_u32(os, static_cast<std::uint32_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}
bool read_u32(std::istream& is, std::uint32_t& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}
bool read_f32(std::istream& is, float& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}
bool read_f64(std::istream& is, double& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}
/// Bytes between the stream's current position and its end.  Header
/// counts and dimensions are untrusted (same hardening as
/// eval::load_rings and nn::load_model): every claimed element count
/// is validated against this budget BEFORE any allocation is sized
/// from it.
std::uint64_t bytes_left(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos < 0) return 0;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(pos);
  if (end < pos) return 0;
  return static_cast<std::uint64_t>(end - pos);
}

bool read_floats(std::istream& is, std::vector<float>& v) {
  std::uint32_t n = 0;
  if (!read_u32(is, n)) return false;
  if (static_cast<std::uint64_t>(n) * sizeof(float) > bytes_left(is))
    return false;
  v.resize(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  return static_cast<bool>(is);
}

}  // namespace

bool save_qat_model(nn::Sequential& model,
                    const nn::Standardizer& standardizer,
                    const std::map<std::string, double>& metadata,
                    const std::string& path) {
  // Serialize into memory first: the checksum footer covers every
  // body byte, so the body must be complete before the digest.
  std::ostringstream os(std::ios::binary);
  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kVersion);

  if (standardizer.fitted()) {
    write_u32(os, static_cast<std::uint32_t>(standardizer.mean().size()));
    os.write(reinterpret_cast<const char*>(standardizer.mean().data()),
             static_cast<std::streamsize>(standardizer.mean().size() *
                                          sizeof(float)));
    os.write(reinterpret_cast<const char*>(standardizer.inv_std().data()),
             static_cast<std::streamsize>(standardizer.inv_std().size() *
                                          sizeof(float)));
  } else {
    write_u32(os, 0);
  }

  write_u32(os, static_cast<std::uint32_t>(model.n_layers()));
  for (std::size_t i = 0; i < model.n_layers(); ++i) {
    nn::Layer& layer = model.layer(i);
    if (auto* lin = dynamic_cast<QatLinear*>(&layer)) {
      write_u32(os, static_cast<std::uint32_t>(Tag::kQatLinear));
      write_u32(os, static_cast<std::uint32_t>(lin->in_features()));
      write_u32(os, static_cast<std::uint32_t>(lin->out_features()));
      write_floats(os, lin->weight().value.vec());
      write_floats(os, lin->bias().value.vec());
    } else if (auto* fq = dynamic_cast<FakeQuant*>(&layer)) {
      ADAPT_REQUIRE(fq->observed(), "cannot save uncalibrated FakeQuant");
      write_u32(os, static_cast<std::uint32_t>(Tag::kFakeQuant));
      const QParams p = fq->qparams();
      write_f32(os, p.min_value());
      write_f32(os, p.max_value());
    } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      write_u32(os, static_cast<std::uint32_t>(Tag::kReLU));
    } else {
      return false;
    }
  }

  write_u32(os, static_cast<std::uint32_t>(metadata.size()));
  for (const auto& [key, value] : metadata) {
    write_u32(os, static_cast<std::uint32_t>(key.size()));
    os.write(key.data(), static_cast<std::streamsize>(key.size()));
    write_f64(os, value);
  }
  if (!os) return false;

  const std::string body = os.str();
  const std::uint64_t digest = core::fnv1a64(body.data(), body.size());
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  file.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  return static_cast<bool>(file);
}

std::optional<SavedQatModel> load_qat_model(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream raw;
  raw << file.rdbuf();
  const std::string data = raw.str();
  return load_qat_model_from_bytes(data);
}

std::optional<SavedQatModel> load_qat_model_from_bytes(
    std::string_view in_bytes) {
  // Rejected files are counted, not thrown: callers fall back to
  // retraining, and the counter names the load path that went bad.
  static core::telemetry::Counter& files_rejected =
      core::telemetry::counter("quant.qat_files_rejected");
  static core::telemetry::Counter& checksum_failures =
      core::telemetry::counter("quant.qat_checksum_failures");

  std::string bytes(in_bytes);

  const auto reject = [&]() -> std::optional<SavedQatModel> {
    files_rejected.add();
    return std::nullopt;
  };
  constexpr std::size_t kHeaderBytes = sizeof(kMagic) + sizeof(std::uint32_t);
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return reject();
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version < kMinVersion || version > kVersion) return reject();
  if (version >= 2) {
    // Verify the whole-file digest before parsing a single field.
    if (bytes.size() < kHeaderBytes + sizeof(std::uint64_t)) return reject();
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
                sizeof(stored));
    if (stored != core::fnv1a64(bytes.data(), bytes.size() - sizeof(stored))) {
      checksum_failures.add();
      return reject();
    }
    bytes.resize(bytes.size() - sizeof(std::uint64_t));
  }
  std::istringstream is(bytes, std::ios::binary);
  is.seekg(static_cast<std::streamoff>(kHeaderBytes));

  SavedQatModel out;
  std::uint32_t std_dim = 0;
  if (!read_u32(is, std_dim)) return reject();
  if (std_dim > 0) {
    if (static_cast<std::uint64_t>(std_dim) * 2 * sizeof(float) >
        bytes_left(is))
      return reject();
    std::vector<float> mean(std_dim);
    std::vector<float> inv_std(std_dim);
    is.read(reinterpret_cast<char*>(mean.data()),
            static_cast<std::streamsize>(std_dim * sizeof(float)));
    is.read(reinterpret_cast<char*>(inv_std.data()),
            static_cast<std::streamsize>(std_dim * sizeof(float)));
    if (!is) return reject();
    out.standardizer.set(std::move(mean), std::move(inv_std));
  }

  std::uint32_t n_layers = 0;
  if (!read_u32(is, n_layers) || n_layers > 1024) return reject();
  core::Rng dummy_rng(0);
  for (std::uint32_t i = 0; i < n_layers; ++i) {
    std::uint32_t tag = 0;
    if (!read_u32(is, tag)) return reject();
    switch (static_cast<Tag>(tag)) {
      case Tag::kQatLinear: {
        std::uint32_t in = 0;
        std::uint32_t out_f = 0;
        if (!read_u32(is, in) || !read_u32(is, out_f)) return reject();
        // Validate the claimed shape (non-zero, product consistent
        // with the size-checked payloads) BEFORE constructing the
        // layer — QatLinear allocates in*out floats from these dims.
        if (in == 0 || out_f == 0) return reject();
        std::vector<float> w;
        std::vector<float> b;
        if (!read_floats(is, w) || !read_floats(is, b)) return reject();
        if (w.size() != static_cast<std::size_t>(in) * out_f ||
            b.size() != out_f)
          return reject();
        auto lin = std::make_unique<QatLinear>(in, out_f, dummy_rng);
        nn::Tensor weight(out_f, in);
        weight.vec() = std::move(w);
        lin->load_weights(weight, b);
        out.model.add(std::move(lin));
        break;
      }
      case Tag::kFakeQuant: {
        float lo = 0.0f;
        float hi = 0.0f;
        if (!read_f32(is, lo) || !read_f32(is, hi)) return reject();
        // The range is untrusted input: set_range enforces lo <= hi
        // with an always-on throwing contract, so a corrupt (or
        // fuzzed) file with an inverted or non-finite range must be
        // rejected HERE, not allowed to escape as ContractViolation.
        if (!std::isfinite(lo) || !std::isfinite(hi) || lo > hi)
          return reject();
        auto fq = std::make_unique<FakeQuant>();
        fq->set_range(lo, hi);
        out.model.add(std::move(fq));
        break;
      }
      case Tag::kReLU:
        out.model.add(std::make_unique<nn::ReLU>());
        break;
      default:
        return reject();
    }
  }

  std::uint32_t n_meta = 0;
  if (!read_u32(is, n_meta) || n_meta > 4096) return reject();
  for (std::uint32_t i = 0; i < n_meta; ++i) {
    std::uint32_t len = 0;
    if (!read_u32(is, len) || len > 4096 || len > bytes_left(is))
      return reject();
    std::string key(len, '\0');
    is.read(key.data(), static_cast<std::streamsize>(len));
    double value = 0.0;
    if (!is || !read_f64(is, value)) return reject();
    out.metadata.emplace(std::move(key), value);
  }
  return out;
}

}  // namespace adapt::quant
