#include "quant/qparams.hpp"

#include <algorithm>
#include <cmath>

#include "core/contract.hpp"
#include "nn/kernels/kernels.hpp"

namespace adapt::quant {

QParams QParams::from_range(float lo, float hi) {
  // Zero must be representable: widen the range to include it.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  QParams p;
  const float span = hi - lo;
  if (span < 1e-12f) {
    p.scale = 1.0f;
    p.zero_point = 0;
    return p;
  }
  p.scale = span / static_cast<float>(kQMax - kQMin);
  const float zp = static_cast<float>(kQMin) - lo / p.scale;
  p.zero_point = static_cast<std::int32_t>(std::lround(
      std::clamp(zp, static_cast<float>(kQMin), static_cast<float>(kQMax))));
  ADAPT_CHECK_QUANT_SCALE(p.scale, "QParams.scale");
  ADAPT_ENSURE(p.zero_point >= kQMin && p.zero_point <= kQMax,
               "zero point must be a representable quantized value");
  return p;
}

std::int32_t QParams::quantize(float x) const {
  // round_half_away_saturated is the exact branchy form of the
  // original lround(x / scale) (the saturation at ±512 is absorbed by
  // this clamp for any zero_point in [kQMin, kQMax], which from_range
  // ENSUREs) — it just skips the libm call, which matters on the
  // serve path where every input feature funnels through here.  It is
  // also the same rounding the dispatched u8_requant kernel applies
  // between layers, so the whole INT8 engine rounds one way.
  const std::int32_t q =
      nn::kernels::round_half_away_saturated(x / scale) + zero_point;
  return std::clamp(q, kQMin, kQMax);
}

ChannelQParams ChannelQParams::from_max_abs(float max_abs, int bits) {
  ADAPT_REQUIRE(bits >= 2 && bits <= 16, "weight bits must be in [2, 16]");
  ChannelQParams p;
  p.q_max = (1 << (bits - 1)) - 1;
  p.scale = max_abs > 1e-12f ? max_abs / static_cast<float>(p.q_max) : 1.0f;
  ADAPT_CHECK_QUANT_SCALE(p.scale, "ChannelQParams.scale");
  return p;
}

std::int32_t ChannelQParams::quantize(float x) const {
  const auto q = static_cast<std::int32_t>(std::lround(x / scale));
  return std::clamp(q, -q_max, q_max);
}

std::vector<ChannelQParams> weight_qparams(const nn::Tensor& weight,
                                           int bits, bool per_channel) {
  ADAPT_REQUIRE(weight.rows() > 0 && weight.cols() > 0, "empty weight");
  std::vector<ChannelQParams> out;
  out.reserve(weight.rows());
  if (per_channel) {
    for (std::size_t r = 0; r < weight.rows(); ++r) {
      float max_abs = 0.0f;
      for (std::size_t c = 0; c < weight.cols(); ++c)
        max_abs = std::max(max_abs, std::abs(weight(r, c)));
      out.push_back(ChannelQParams::from_max_abs(max_abs, bits));
    }
  } else {
    float max_abs = 0.0f;
    for (const float v : weight.vec()) max_abs = std::max(max_abs, std::abs(v));
    const ChannelQParams shared = ChannelQParams::from_max_abs(max_abs, bits);
    out.assign(weight.rows(), shared);
  }
  return out;
}

}  // namespace adapt::quant
