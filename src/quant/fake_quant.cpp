#include "quant/fake_quant.hpp"

#include <algorithm>

#include "core/require.hpp"

namespace adapt::quant {

FakeQuant::FakeQuant(double ema_momentum) : momentum_(ema_momentum) {
  ADAPT_REQUIRE(ema_momentum > 0.0 && ema_momentum <= 1.0,
                "EMA momentum must be in (0, 1]");
}

QParams FakeQuant::qparams() const {
  return QParams::from_range(running_lo_, running_hi_);
}

void FakeQuant::set_range(float lo, float hi) {
  ADAPT_REQUIRE(lo <= hi, "invalid range");
  running_lo_ = lo;
  running_hi_ = hi;
  observed_ = true;
}

nn::Tensor FakeQuant::forward(const nn::Tensor& x, bool training) {
  if (training) {
    float lo = x.vec().empty() ? 0.0f : x.vec()[0];
    float hi = lo;
    for (float v : x.vec()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!observed_) {
      running_lo_ = lo;
      running_hi_ = hi;
      observed_ = true;
    } else {
      const auto m = static_cast<float>(momentum_);
      running_lo_ = (1.0f - m) * running_lo_ + m * lo;
      running_hi_ = (1.0f - m) * running_hi_ + m * hi;
    }
  }
  if (!observed_) return x;  // Inference before any observation: no-op.

  const QParams p = qparams();
  const float lo_rep = p.min_value();
  const float hi_rep = p.max_value();
  nn::Tensor y(x.rows(), x.cols());
  if (training) pass_mask_ = nn::Tensor(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.vec()[i];
    y.vec()[i] = p.fake(v);
    if (training)
      pass_mask_.vec()[i] = (v >= lo_rep && v <= hi_rep) ? 1.0f : 0.0f;
  }
  return y;
}

nn::Tensor FakeQuant::backward(const nn::Tensor& grad_out) {
  if (pass_mask_.empty()) return grad_out;  // Was a no-op forward.
  ADAPT_REQUIRE(grad_out.rows() == pass_mask_.rows() &&
                    grad_out.cols() == pass_mask_.cols(),
                "fake_quant backward shape mismatch");
  nn::Tensor dx(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < dx.size(); ++i)
    dx.vec()[i] = grad_out.vec()[i] * pass_mask_.vec()[i];
  return dx;
}

}  // namespace adapt::quant
