#pragma once

/// \file qat_io.hpp
/// (De)serialization of calibrated QAT models (the stacks produced by
/// build_qat_model: FakeQuant / QatLinear / ReLU).  Persisting the QAT
/// model rather than the exported integer engine keeps one source of
/// truth: the INT8 engine is always re-exported from the calibrated
/// QAT weights, so the serialized form and the deployed form cannot
/// drift apart.
///
/// Format: magic "ADQT", version, standardizer block, layer list with
/// per-type payloads (QatLinear: dims + weights + bias; FakeQuant:
/// observed range; ReLU: nothing), metadata key/value block, and since
/// version 2 a u64 FNV-1a checksum footer over every preceding byte —
/// the same conventions as nn::serialize.  A checksum mismatch rejects
/// the file (counted under `quant.qat_checksum_failures`); version-1
/// files without a footer still load.

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "nn/data.hpp"
#include "nn/sequential.hpp"

namespace adapt::quant {

struct SavedQatModel {
  nn::Sequential model;
  nn::Standardizer standardizer;
  std::map<std::string, double> metadata;
};

bool save_qat_model(nn::Sequential& model,
                    const nn::Standardizer& standardizer,
                    const std::map<std::string, double>& metadata,
                    const std::string& path);

std::optional<SavedQatModel> load_qat_model(const std::string& path);

/// Parse a serialized QAT model from an in-memory buffer — the actual
/// parser behind load_qat_model, exposed so untrusted inputs can be
/// exercised without touching the filesystem (tests/fuzz).  Every
/// claimed count is validated against the remaining bytes before any
/// allocation; malformed input returns nullopt, never throws.
std::optional<SavedQatModel> load_qat_model_from_bytes(
    std::string_view bytes);

}  // namespace adapt::quant
