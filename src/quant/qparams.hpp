#pragma once

/// \file qparams.hpp
/// Affine quantization parameters, mirroring the PyTorch x86 backend
/// the paper quantizes with (Sec. V): uint8 affine activations
/// (q = round(x/scale) + zero_point) and symmetric per-channel int8
/// weights.

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace adapt::quant {

/// Per-tensor affine parameters for uint8 activations.
struct QParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;

  static constexpr std::int32_t kQMin = 0;
  static constexpr std::int32_t kQMax = 255;

  /// Parameters covering the range [lo, hi] (expanded to include 0 so
  /// that zero is exactly representable, as PyTorch requires).
  static QParams from_range(float lo, float hi);

  std::int32_t quantize(float x) const;
  float dequantize(std::int32_t q) const { return scale * static_cast<float>(q - zero_point); }

  /// Fake-quantize: quantize then dequantize (QAT forward).
  float fake(float x) const { return dequantize(quantize(x)); }

  /// The float range representable by these parameters.
  float min_value() const { return dequantize(kQMin); }
  float max_value() const { return dequantize(kQMax); }
};

/// Symmetric integer parameters for one weight row (output channel).
/// The bit width is variable (default 8): the paper's future work
/// includes "a broader range of quantization strategies", and narrower
/// weights trade accuracy for FPGA resources (see
/// bench_ext_quant_strategies).
struct ChannelQParams {
  float scale = 1.0f;
  std::int32_t q_max = 127;  ///< Symmetric range [-q_max, q_max].

  static ChannelQParams from_max_abs(float max_abs, int bits = 8);

  std::int32_t quantize(float x) const;
  float dequantize(std::int32_t q) const { return scale * static_cast<float>(q); }
  float fake(float x) const { return dequantize(quantize(x)); }
};

/// Symmetric scales for a (out x in) weight tensor.  `per_channel`
/// gives each output channel its own scale (PyTorch x86 default);
/// otherwise one tensor-wide scale is shared — coarser, but cheaper to
/// implement in hardware.
std::vector<ChannelQParams> weight_qparams(const nn::Tensor& weight,
                                           int bits = 8,
                                           bool per_channel = true);

}  // namespace adapt::quant
