#include "quant/fuse.hpp"

#include <cmath>

#include "core/require.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"

namespace adapt::quant {

std::vector<FusedLayer> fuse_bn(nn::Sequential& model) {
  std::vector<FusedLayer> fused;
  std::size_t i = 0;
  const std::size_t n = model.n_layers();
  while (i < n) {
    auto* lin = dynamic_cast<nn::Linear*>(&model.layer(i));
    ADAPT_REQUIRE(lin != nullptr,
                  "fuse_bn expects a layer-swapped model (Linear first in "
                  "each block)");
    FusedLayer stage;
    stage.weight = lin->weight().value;
    stage.bias = lin->bias().value.vec();
    ++i;

    // Optional BatchNorm to fold.
    if (i < n) {
      if (auto* bn = dynamic_cast<nn::BatchNorm1d*>(&model.layer(i))) {
        ADAPT_REQUIRE(bn->features() == lin->out_features(),
                      "BN width does not match Linear output");
        for (std::size_t oc = 0; oc < stage.weight.rows(); ++oc) {
          const float g =
              bn->gamma().value(0, oc) /
              std::sqrt(bn->running_var()[oc] +
                        static_cast<float>(bn->eps()));
          for (std::size_t ic = 0; ic < stage.weight.cols(); ++ic)
            stage.weight(oc, ic) *= g;
          stage.bias[oc] = (stage.bias[oc] - bn->running_mean()[oc]) * g +
                           bn->beta().value(0, oc);
        }
        ++i;
      }
    }

    // Optional ReLU to fold.
    if (i < n && dynamic_cast<nn::ReLU*>(&model.layer(i)) != nullptr) {
      stage.relu = true;
      ++i;
    }
    fused.push_back(std::move(stage));
  }
  ADAPT_REQUIRE(!fused.empty(), "nothing to fuse");
  return fused;
}

nn::Tensor fused_forward(const std::vector<FusedLayer>& layers,
                         const nn::Tensor& x) {
  nn::Tensor y = x;
  nn::Tensor next;
  for (const FusedLayer& stage : layers) {
    nn::matmul_abt(y, stage.weight, next);
    nn::add_row_broadcast(next, stage.bias);
    if (stage.relu) {
      for (float& v : next.vec())
        if (v < 0.0f) v = 0.0f;
    }
    y = next;
  }
  return y;
}

}  // namespace adapt::quant
