#include "quant/quantized_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/checksum.hpp"
#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "nn/activations.hpp"
#include "quant/fake_quant.hpp"
#include "quant/qat_linear.hpp"

namespace adapt::quant {

QuantizedMlp::QuantizedMlp(std::vector<QuantizedLayer> layers)
    : layers_(std::move(layers)) {
  ADAPT_REQUIRE(!layers_.empty(), "quantized model needs layers");
  max_width_ = layers_.front().in_features;
  for (const auto& l : layers_) {
    ADAPT_REQUIRE(l.weight.size() == l.in_features * l.out_features,
                  "quantized weight size mismatch");
    ADAPT_REQUIRE(l.bias.size() == l.out_features, "bias size mismatch");
    ADAPT_REQUIRE(l.weight_scales.size() == l.out_features,
                  "scale count mismatch");
    // A zero, negative, or non-finite scale silently zeroes (or NaNs)
    // every requantized activation downstream — checked builds refuse
    // the model here instead of producing garbage scores in flight.
    ADAPT_CHECK_QUANT_SCALE(l.input_q.scale, "QuantizedLayer.input_q.scale");
    for (const float s : l.weight_scales)
      ADAPT_CHECK_QUANT_SCALE(s, "QuantizedLayer.weight_scales[oc]");
    max_width_ = std::max(max_width_, l.out_features);
  }
  // Fold the activation zero point out of the inner loop:
  // sum (q_x - zp) * q_w == sum q_x * q_w - zp * sum q_w, and the
  // weight row sums are input-independent.
  weight_row_sums_.reserve(layers_.size());
  for (const auto& l : layers_) {
    std::vector<std::int32_t> sums(l.out_features, 0);
    for (std::size_t oc = 0; oc < l.out_features; ++oc) {
      const std::int8_t* w = l.weight.data() + oc * l.in_features;
      std::int32_t s = 0;
      for (std::size_t ic = 0; ic < l.in_features; ++ic)
        s += static_cast<std::int32_t>(w[ic]);
      sums[oc] = s;
    }
    weight_row_sums_.push_back(std::move(sums));
  }
}

namespace {

/// Integer accumulation panel: out_block output channels of one row,
/// as pure uint8 x int8 dot products over the packed weight rows (the
/// zero-point term is folded in afterwards from the precomputed row
/// sums).  Blocking four channels shares every activation load four
/// ways and gives the vectorizer four independent accumulator chains.
inline void int8_dot_panel(const std::uint8_t* __restrict xi,
                           const std::int8_t* __restrict w,
                           std::size_t in_features, std::size_t out_features,
                           std::int32_t* __restrict acc) {
  std::size_t oc = 0;
  for (; oc + 4 <= out_features; oc += 4) {
    const std::int8_t* __restrict w0 = w + (oc + 0) * in_features;
    const std::int8_t* __restrict w1 = w + (oc + 1) * in_features;
    const std::int8_t* __restrict w2 = w + (oc + 2) * in_features;
    const std::int8_t* __restrict w3 = w + (oc + 3) * in_features;
    std::int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
#pragma omp simd reduction(+ : a0, a1, a2, a3)
    for (std::size_t ic = 0; ic < in_features; ++ic) {
      const std::int32_t xv = xi[ic];
      a0 += xv * w0[ic];
      a1 += xv * w1[ic];
      a2 += xv * w2[ic];
      a3 += xv * w3[ic];
    }
    acc[oc + 0] = a0;
    acc[oc + 1] = a1;
    acc[oc + 2] = a2;
    acc[oc + 3] = a3;
  }
  for (; oc < out_features; ++oc) {
    const std::int8_t* __restrict wr = w + oc * in_features;
    std::int32_t a = 0;
#pragma omp simd reduction(+ : a)
    for (std::size_t ic = 0; ic < in_features; ++ic)
      a += static_cast<std::int32_t>(xi[ic]) * wr[ic];
    acc[oc] = a;
  }
}

}  // namespace

nn::Tensor QuantizedMlp::forward(const nn::Tensor& x) const {
  ADAPT_REQUIRE(x.cols() == layers_.front().in_features,
                "input width mismatch");
  const std::size_t n = x.rows();

  // Activations travel between layers as uint8 plus their qparams, in
  // two thread_local ping-pong buffers (sized for the widest layer):
  // no per-call heap traffic on the serving hot path, and each
  // concurrent caller gets its own scratch — forward() is const and
  // must stay safe on a shared engine.
  thread_local std::vector<std::uint8_t> ping;
  thread_local std::vector<std::uint8_t> pong;
  ping.resize(n * max_width_);
  pong.resize(n * max_width_);
  std::uint8_t* act = ping.data();
  std::uint8_t* next_act = pong.data();
  {
    const QParams& q = layers_.front().input_q;
    const std::size_t in0 = n * x.cols();
    for (std::size_t i = 0; i < in0; ++i)
      act[i] = static_cast<std::uint8_t>(q.quantize(x.vec()[i]));
  }

  nn::Tensor out;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const QuantizedLayer& layer = layers_[li];
    const bool last = li + 1 == layers_.size();
    const std::int32_t zp_in = layer.input_q.zero_point;
    const float s_in = layer.input_q.scale;
    const std::int32_t* row_sums = weight_row_sums_[li].data();
    const QParams* next_q = last ? nullptr : &layers_[li + 1].input_q;
    if (last) out = nn::Tensor(n, layer.out_features);

    core::parallel_for(
        n,
        [&](std::size_t r) {
          // Per-thread int32 accumulator row, reused across rows.
          thread_local std::vector<std::int32_t> acc_buf;
          acc_buf.resize(layer.out_features);
          std::int32_t* __restrict acc = acc_buf.data();
          const std::uint8_t* xi = act + r * layer.in_features;

          int8_dot_panel(xi, layer.weight.data(), layer.in_features,
                         layer.out_features, acc);

          // Zero-point correction, bias, ReLU — batched over the row.
          const std::int32_t* __restrict bias = layer.bias.data();
          for (std::size_t oc = 0; oc < layer.out_features; ++oc) {
            std::int32_t a = acc[oc] - zp_in * row_sums[oc] + bias[oc];
            if (layer.relu && a < 0) a = 0;
            acc[oc] = a;
          }

          // Requantization, batched per row instead of per element.
          const float* __restrict ws = layer.weight_scales.data();
          if (last) {
            float* __restrict or_ = out.data() + r * layer.out_features;
            for (std::size_t oc = 0; oc < layer.out_features; ++oc)
              or_[oc] = static_cast<float>(acc[oc]) * s_in * ws[oc];
          } else {
            std::uint8_t* __restrict nr = next_act + r * layer.out_features;
            for (std::size_t oc = 0; oc < layer.out_features; ++oc) {
              const float real = static_cast<float>(acc[oc]) * s_in * ws[oc];
              nr[oc] = static_cast<std::uint8_t>(next_q->quantize(real));
            }
          }
        },
        64);
    if (!last) std::swap(act, next_act);
  }
  return out;
}

std::size_t QuantizedMlp::model_size_bytes() const {
  std::size_t bytes = 0;
  for (const auto& l : layers_) {
    bytes += l.weight.size() * sizeof(std::int8_t);
    bytes += l.bias.size() * sizeof(std::int32_t);
    bytes += l.weight_scales.size() * sizeof(float);
  }
  return bytes;
}

std::uint64_t QuantizedMlp::weight_checksum() const {
  core::Fnv1a64 h;
  for (const auto& l : layers_) {
    h.update(l.weight.data(), l.weight.size() * sizeof(std::int8_t));
    h.update(l.bias.data(), l.bias.size() * sizeof(std::int32_t));
    h.update(l.weight_scales.data(), l.weight_scales.size() * sizeof(float));
  }
  return h.digest();
}

void QuantizedMlp::flip_weight_bit(std::size_t layer, std::size_t byte_index,
                                   unsigned bit) {
  ADAPT_REQUIRE(layer < layers_.size(), "flip_weight_bit: layer out of range");
  auto& weights = layers_[layer].weight;
  ADAPT_REQUIRE(!weights.empty(), "flip_weight_bit: layer has no weights");
  auto& w = weights[byte_index % weights.size()];
  w = static_cast<std::int8_t>(static_cast<std::uint8_t>(w) ^
                               static_cast<std::uint8_t>(1u << (bit % 8u)));
}

nn::Sequential build_qat_model(const std::vector<FusedLayer>& fused,
                               core::Rng& rng,
                               const QuantStrategy& strategy) {
  ADAPT_REQUIRE(!fused.empty(), "no fused layers");
  nn::Sequential model;
  model.add(std::make_unique<FakeQuant>());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    const FusedLayer& stage = fused[i];
    auto lin = std::make_unique<QatLinear>(stage.in_features(),
                                           stage.out_features(), rng);
    lin->load_weights(stage.weight, stage.bias);
    lin->set_weight_bits(strategy.weight_bits);
    lin->set_per_channel(strategy.per_channel);
    model.add(std::move(lin));
    if (stage.relu) model.add(std::make_unique<nn::ReLU>());
    if (i + 1 < fused.size()) model.add(std::make_unique<FakeQuant>());
  }
  return model;
}

QuantizedMlp export_quantized(nn::Sequential& qat_model) {
  std::vector<QuantizedLayer> layers;
  const FakeQuant* pending_q = nullptr;

  for (std::size_t i = 0; i < qat_model.n_layers(); ++i) {
    nn::Layer& layer = qat_model.layer(i);
    if (auto* fq = dynamic_cast<FakeQuant*>(&layer)) {
      ADAPT_REQUIRE(fq->observed(),
                    "FakeQuant never calibrated — run data through the QAT "
                    "model first");
      pending_q = fq;
      continue;
    }
    if (auto* lin = dynamic_cast<QatLinear*>(&layer)) {
      ADAPT_REQUIRE(pending_q != nullptr,
                    "QatLinear without a preceding FakeQuant");
      QuantizedLayer out;
      out.in_features = lin->in_features();
      out.out_features = lin->out_features();
      out.input_q = pending_q->qparams();

      const auto qp = lin->channel_qparams();
      out.weight.resize(out.in_features * out.out_features);
      out.weight_scales.resize(out.out_features);
      out.bias.resize(out.out_features);
      for (std::size_t oc = 0; oc < out.out_features; ++oc) {
        out.weight_scales[oc] = qp[oc].scale;
        for (std::size_t ic = 0; ic < out.in_features; ++ic) {
          out.weight[oc * out.in_features + ic] = static_cast<std::int8_t>(
              qp[oc].quantize(lin->weight().value(oc, ic)));
        }
        const float bias_scale = out.input_q.scale * qp[oc].scale;
        out.bias[oc] = static_cast<std::int32_t>(
            std::lround(lin->bias().value(0, oc) / bias_scale));
      }
      layers.push_back(std::move(out));
      continue;
    }
    if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      ADAPT_REQUIRE(!layers.empty(), "ReLU before any linear layer");
      layers.back().relu = true;
      continue;
    }
    ADAPT_REQUIRE(false, "unexpected layer type in QAT model");
  }
  return QuantizedMlp(std::move(layers));
}

}  // namespace adapt::quant
