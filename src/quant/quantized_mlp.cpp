#include "quant/quantized_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/checksum.hpp"
#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "nn/activations.hpp"
#include "nn/kernels/kernels.hpp"
#include "quant/fake_quant.hpp"
#include "quant/qat_linear.hpp"

namespace adapt::quant {

QuantizedMlp::QuantizedMlp(std::vector<QuantizedLayer> layers)
    : layers_(std::move(layers)) {
  ADAPT_REQUIRE(!layers_.empty(), "quantized model needs layers");
  max_width_ = layers_.front().in_features;
  for (const auto& l : layers_) {
    ADAPT_REQUIRE(l.weight.size() == l.in_features * l.out_features,
                  "quantized weight size mismatch");
    ADAPT_REQUIRE(l.bias.size() == l.out_features, "bias size mismatch");
    ADAPT_REQUIRE(l.weight_scales.size() == l.out_features,
                  "scale count mismatch");
    // A zero, negative, or non-finite scale silently zeroes (or NaNs)
    // every requantized activation downstream — checked builds refuse
    // the model here instead of producing garbage scores in flight.
    ADAPT_CHECK_QUANT_SCALE(l.input_q.scale, "QuantizedLayer.input_q.scale");
    for (const float s : l.weight_scales)
      ADAPT_CHECK_QUANT_SCALE(s, "QuantizedLayer.weight_scales[oc]");
    max_width_ = std::max(max_width_, l.out_features);
  }
  // Fold the activation zero point out of the inner loop:
  // sum (q_x - zp) * q_w == sum q_x * q_w - zp * sum q_w, and the
  // weight row sums are input-independent.
  weight_row_sums_.reserve(layers_.size());
  for (const auto& l : layers_) {
    std::vector<std::int32_t> sums(l.out_features, 0);
    for (std::size_t oc = 0; oc < l.out_features; ++oc) {
      const std::int8_t* w = l.weight.data() + oc * l.in_features;
      std::int32_t s = 0;
      for (std::size_t ic = 0; ic < l.in_features; ++ic)
        s += static_cast<std::int32_t>(w[ic]);
      sums[oc] = s;
    }
    weight_row_sums_.push_back(std::move(sums));
  }
}

nn::Tensor QuantizedMlp::forward(const nn::Tensor& x) const {
  ADAPT_REQUIRE(x.cols() == layers_.front().in_features,
                "input width mismatch");
  const std::size_t n = x.rows();
  const nn::kernels::KernelSet& kset = nn::kernels::active();

  // Activations travel between layers as uint8 plus their qparams, in
  // two thread_local ping-pong buffers: no per-call heap traffic on
  // the serving hot path, and each concurrent caller gets its own
  // scratch — forward() is const and must stay safe on a shared
  // engine.  The panels are sized for THIS call's batch and THIS
  // model's widest layer on every entry (resize, never a cached
  // capacity assumption): one thread may serve engines of different
  // widths back to back, and a stale smaller capacity would be an
  // out-of-bounds write (see quantized_mlp_simd_test's cross-width
  // regression case).
  thread_local std::vector<std::uint8_t> ping;
  thread_local std::vector<std::uint8_t> pong;
  ping.resize(n * max_width_);
  pong.resize(n * max_width_);
  std::uint8_t* act = ping.data();
  std::uint8_t* next_act = pong.data();
  {
    const QParams& q = layers_.front().input_q;
    const std::size_t in0 = n * x.cols();
    for (std::size_t i = 0; i < in0; ++i)
      act[i] = static_cast<std::uint8_t>(q.quantize(x.vec()[i]));
  }

  nn::Tensor out;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const QuantizedLayer& layer = layers_[li];
    const bool last = li + 1 == layers_.size();
    const std::int32_t zp_in = layer.input_q.zero_point;
    const float s_in = layer.input_q.scale;
    const std::int32_t* row_sums = weight_row_sums_[li].data();
    const QParams* next_q = last ? nullptr : &layers_[li + 1].input_q;
    if (last) out = nn::Tensor(n, layer.out_features);

    // One quantized GEMM per layer over the whole activation panel,
    // handed out in multi-row blocks (~128k MACs each) so the kernel
    // amortizes its setup and parallel_for its scheduling.  The
    // integer accumulation is associative, so block shape cannot
    // change results.
    const std::size_t macs = layer.in_features * layer.out_features;
    const std::size_t block_rows = std::max<std::size_t>(
        1, (128 * 1024) / std::max<std::size_t>(macs, 1));
    const std::size_t n_blocks = (n + block_rows - 1) / block_rows;
    kset.u8i8_calls->add();
    if (!last) kset.requant_calls->add();
    core::parallel_for(
        n_blocks,
        [&](std::size_t blk) {
          const std::size_t r0 = blk * block_rows;
          const std::size_t r1 = std::min(n, r0 + block_rows);
          const std::size_t rows = r1 - r0;
          // Per-thread int32 accumulator panel, reused across blocks.
          thread_local std::vector<std::int32_t> acc_buf;
          acc_buf.resize(rows * layer.out_features);
          std::int32_t* __restrict acc = acc_buf.data();

          kset.u8i8_gemm(act + r0 * layer.in_features, layer.weight.data(),
                         acc, rows, layer.in_features, layer.out_features);

          // Epilogue: zero-point correction, bias, ReLU, then
          // requantization.  Hidden layers go through the dispatched
          // u8_requant kernel — bit-identical to the scalar reference
          // by the kernels.hpp contract — because at ~450 outputs per
          // event the rounding math dominates once the GEMM is
          // vectorized.  The last layer stays scalar: it emits a
          // handful of floats per row, not a panel.
          const std::int32_t* __restrict bias = layer.bias.data();
          const float* __restrict ws = layer.weight_scales.data();
          if (last) {
            for (std::size_t r = r0; r < r1; ++r) {
              const std::int32_t* __restrict ar =
                  acc + (r - r0) * layer.out_features;
              float* __restrict or_ = out.data() + r * layer.out_features;
              for (std::size_t oc = 0; oc < layer.out_features; ++oc) {
                std::int32_t a = ar[oc] - zp_in * row_sums[oc] + bias[oc];
                if (layer.relu && a < 0) a = 0;
                or_[oc] = static_cast<float>(a) * s_in * ws[oc];
              }
            }
          } else {
            kset.u8_requant(acc, rows, layer.out_features, zp_in, row_sums,
                            bias, layer.relu, s_in, ws, next_q->scale,
                            next_q->zero_point,
                            next_act + r0 * layer.out_features);
          }
        },
        1);
    if (!last) std::swap(act, next_act);
  }
  return out;
}

std::size_t QuantizedMlp::model_size_bytes() const {
  std::size_t bytes = 0;
  for (const auto& l : layers_) {
    bytes += l.weight.size() * sizeof(std::int8_t);
    bytes += l.bias.size() * sizeof(std::int32_t);
    bytes += l.weight_scales.size() * sizeof(float);
  }
  return bytes;
}

std::uint64_t QuantizedMlp::weight_checksum() const {
  core::Fnv1a64 h;
  for (const auto& l : layers_) {
    h.update(l.weight.data(), l.weight.size() * sizeof(std::int8_t));
    h.update(l.bias.data(), l.bias.size() * sizeof(std::int32_t));
    h.update(l.weight_scales.data(), l.weight_scales.size() * sizeof(float));
  }
  return h.digest();
}

void QuantizedMlp::flip_weight_bit(std::size_t layer, std::size_t byte_index,
                                   unsigned bit) {
  ADAPT_REQUIRE(layer < layers_.size(), "flip_weight_bit: layer out of range");
  auto& weights = layers_[layer].weight;
  ADAPT_REQUIRE(!weights.empty(), "flip_weight_bit: layer has no weights");
  auto& w = weights[byte_index % weights.size()];
  w = static_cast<std::int8_t>(static_cast<std::uint8_t>(w) ^
                               static_cast<std::uint8_t>(1u << (bit % 8u)));
}

nn::Sequential build_qat_model(const std::vector<FusedLayer>& fused,
                               core::Rng& rng,
                               const QuantStrategy& strategy) {
  ADAPT_REQUIRE(!fused.empty(), "no fused layers");
  nn::Sequential model;
  model.add(std::make_unique<FakeQuant>());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    const FusedLayer& stage = fused[i];
    auto lin = std::make_unique<QatLinear>(stage.in_features(),
                                           stage.out_features(), rng);
    lin->load_weights(stage.weight, stage.bias);
    lin->set_weight_bits(strategy.weight_bits);
    lin->set_per_channel(strategy.per_channel);
    model.add(std::move(lin));
    if (stage.relu) model.add(std::make_unique<nn::ReLU>());
    if (i + 1 < fused.size()) model.add(std::make_unique<FakeQuant>());
  }
  return model;
}

QuantizedMlp export_quantized(nn::Sequential& qat_model) {
  std::vector<QuantizedLayer> layers;
  const FakeQuant* pending_q = nullptr;

  for (std::size_t i = 0; i < qat_model.n_layers(); ++i) {
    nn::Layer& layer = qat_model.layer(i);
    if (auto* fq = dynamic_cast<FakeQuant*>(&layer)) {
      ADAPT_REQUIRE(fq->observed(),
                    "FakeQuant never calibrated — run data through the QAT "
                    "model first");
      pending_q = fq;
      continue;
    }
    if (auto* lin = dynamic_cast<QatLinear*>(&layer)) {
      ADAPT_REQUIRE(pending_q != nullptr,
                    "QatLinear without a preceding FakeQuant");
      QuantizedLayer out;
      out.in_features = lin->in_features();
      out.out_features = lin->out_features();
      out.input_q = pending_q->qparams();

      const auto qp = lin->channel_qparams();
      out.weight.resize(out.in_features * out.out_features);
      out.weight_scales.resize(out.out_features);
      out.bias.resize(out.out_features);
      for (std::size_t oc = 0; oc < out.out_features; ++oc) {
        out.weight_scales[oc] = qp[oc].scale;
        for (std::size_t ic = 0; ic < out.in_features; ++ic) {
          out.weight[oc * out.in_features + ic] = static_cast<std::int8_t>(
              qp[oc].quantize(lin->weight().value(oc, ic)));
        }
        const float bias_scale = out.input_q.scale * qp[oc].scale;
        out.bias[oc] = static_cast<std::int32_t>(
            std::lround(lin->bias().value(0, oc) / bias_scale));
      }
      layers.push_back(std::move(out));
      continue;
    }
    if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      ADAPT_REQUIRE(!layers.empty(), "ReLU before any linear layer");
      layers.back().relu = true;
      continue;
    }
    ADAPT_REQUIRE(false, "unexpected layer type in QAT model");
  }
  return QuantizedMlp(std::move(layers));
}

}  // namespace adapt::quant
