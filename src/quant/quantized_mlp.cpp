#include "quant/quantized_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/require.hpp"
#include "nn/activations.hpp"
#include "quant/fake_quant.hpp"
#include "quant/qat_linear.hpp"

namespace adapt::quant {

QuantizedMlp::QuantizedMlp(std::vector<QuantizedLayer> layers)
    : layers_(std::move(layers)) {
  ADAPT_REQUIRE(!layers_.empty(), "quantized model needs layers");
  for (const auto& l : layers_) {
    ADAPT_REQUIRE(l.weight.size() == l.in_features * l.out_features,
                  "quantized weight size mismatch");
    ADAPT_REQUIRE(l.bias.size() == l.out_features, "bias size mismatch");
    ADAPT_REQUIRE(l.weight_scales.size() == l.out_features,
                  "scale count mismatch");
  }
}

nn::Tensor QuantizedMlp::forward(const nn::Tensor& x) const {
  ADAPT_REQUIRE(x.cols() == layers_.front().in_features,
                "input width mismatch");
  const std::size_t n = x.rows();

  // Activations travel between layers as uint8 plus their qparams.
  std::vector<std::uint8_t> act(n * x.cols());
  {
    const QParams& q = layers_.front().input_q;
    for (std::size_t i = 0; i < act.size(); ++i)
      act[i] = static_cast<std::uint8_t>(q.quantize(x.vec()[i]));
  }

  nn::Tensor out;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const QuantizedLayer& layer = layers_[li];
    const bool last = li + 1 == layers_.size();
    const std::int32_t zp_in = layer.input_q.zero_point;
    const float s_in = layer.input_q.scale;

    const QParams* next_q = last ? nullptr : &layers_[li + 1].input_q;
    std::vector<std::uint8_t> next_act;
    if (!last) next_act.resize(n * layer.out_features);
    if (last) out = nn::Tensor(n, layer.out_features);

    const auto rows = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static) if (n > 64)
    for (std::ptrdiff_t r = 0; r < rows; ++r) {
      const std::uint8_t* xi =
          act.data() + static_cast<std::size_t>(r) * layer.in_features;
      for (std::size_t oc = 0; oc < layer.out_features; ++oc) {
        const std::int8_t* w =
            layer.weight.data() + oc * layer.in_features;
        // Integer accumulation: sum (q_x - zp_in) * q_w in int32.
        std::int32_t acc = 0;
        for (std::size_t ic = 0; ic < layer.in_features; ++ic)
          acc += (static_cast<std::int32_t>(xi[ic]) - zp_in) *
                 static_cast<std::int32_t>(w[ic]);
        acc += layer.bias[oc];
        if (layer.relu && acc < 0) acc = 0;

        const float real = static_cast<float>(acc) * s_in *
                           layer.weight_scales[oc];
        if (last) {
          out(static_cast<std::size_t>(r), oc) = real;
        } else {
          next_act[static_cast<std::size_t>(r) * layer.out_features + oc] =
              static_cast<std::uint8_t>(next_q->quantize(real));
        }
      }
    }
    if (!last) act = std::move(next_act);
  }
  return out;
}

std::size_t QuantizedMlp::model_size_bytes() const {
  std::size_t bytes = 0;
  for (const auto& l : layers_) {
    bytes += l.weight.size() * sizeof(std::int8_t);
    bytes += l.bias.size() * sizeof(std::int32_t);
    bytes += l.weight_scales.size() * sizeof(float);
  }
  return bytes;
}

nn::Sequential build_qat_model(const std::vector<FusedLayer>& fused,
                               core::Rng& rng,
                               const QuantStrategy& strategy) {
  ADAPT_REQUIRE(!fused.empty(), "no fused layers");
  nn::Sequential model;
  model.add(std::make_unique<FakeQuant>());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    const FusedLayer& stage = fused[i];
    auto lin = std::make_unique<QatLinear>(stage.in_features(),
                                           stage.out_features(), rng);
    lin->load_weights(stage.weight, stage.bias);
    lin->set_weight_bits(strategy.weight_bits);
    lin->set_per_channel(strategy.per_channel);
    model.add(std::move(lin));
    if (stage.relu) model.add(std::make_unique<nn::ReLU>());
    if (i + 1 < fused.size()) model.add(std::make_unique<FakeQuant>());
  }
  return model;
}

QuantizedMlp export_quantized(nn::Sequential& qat_model) {
  std::vector<QuantizedLayer> layers;
  const FakeQuant* pending_q = nullptr;

  for (std::size_t i = 0; i < qat_model.n_layers(); ++i) {
    nn::Layer& layer = qat_model.layer(i);
    if (auto* fq = dynamic_cast<FakeQuant*>(&layer)) {
      ADAPT_REQUIRE(fq->observed(),
                    "FakeQuant never calibrated — run data through the QAT "
                    "model first");
      pending_q = fq;
      continue;
    }
    if (auto* lin = dynamic_cast<QatLinear*>(&layer)) {
      ADAPT_REQUIRE(pending_q != nullptr,
                    "QatLinear without a preceding FakeQuant");
      QuantizedLayer out;
      out.in_features = lin->in_features();
      out.out_features = lin->out_features();
      out.input_q = pending_q->qparams();

      const auto qp = lin->channel_qparams();
      out.weight.resize(out.in_features * out.out_features);
      out.weight_scales.resize(out.out_features);
      out.bias.resize(out.out_features);
      for (std::size_t oc = 0; oc < out.out_features; ++oc) {
        out.weight_scales[oc] = qp[oc].scale;
        for (std::size_t ic = 0; ic < out.in_features; ++ic) {
          out.weight[oc * out.in_features + ic] = static_cast<std::int8_t>(
              qp[oc].quantize(lin->weight().value(oc, ic)));
        }
        const float bias_scale = out.input_q.scale * qp[oc].scale;
        out.bias[oc] = static_cast<std::int32_t>(
            std::lround(lin->bias().value(0, oc) / bias_scale));
      }
      layers.push_back(std::move(out));
      continue;
    }
    if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      ADAPT_REQUIRE(!layers.empty(), "ReLU before any linear layer");
      layers.back().relu = true;
      continue;
    }
    ADAPT_REQUIRE(false, "unexpected layer type in QAT model");
  }
  return QuantizedMlp(std::move(layers));
}

}  // namespace adapt::quant
