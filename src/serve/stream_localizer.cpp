#include "serve/stream_localizer.hpp"

#include <utility>

#include "core/contract.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {

namespace tm = core::telemetry;

StreamLocalizer::StreamLocalizer(StreamLocalizerConfig config,
                                 AlertCallback on_alert)
    : config_(config),
      on_alert_(std::move(on_alert)),
      localizer_(config.localizer) {
  ADAPT_REQUIRE(config.alert_radius_deg >= 0.0,
                "alert radius must be non-negative");
  ADAPT_REQUIRE(config.alert_content > 0.0 && config.alert_content < 1.0,
                "alert content in (0, 1)");
  ADAPT_REQUIRE(config.check_every > 0, "check cadence must be positive");
}

void StreamLocalizer::observe(std::span<const ServeRequest> requests,
                              std::span<const ServeResult> results) {
  ADAPT_REQUIRE(requests.size() == results.size(),
                "observer spans must pair up");
  bool fire = false;
  AlertInfo info;
  {
    core::LockGuard lock(mutex_);
    fire = fold_batch_locked(requests, results, info);
  }
  // Outside the mutex so the callback may query this localizer.
  if (fire && on_alert_) on_alert_(info);
}

bool StreamLocalizer::fold_batch_locked(std::span<const ServeRequest> requests,
                                        std::span<const ServeResult> results,
                                        AlertInfo& info) {
  static tm::Histogram& radius_hist =
      tm::histogram("loc.incremental.radius_deg");
  static tm::Counter& alerts_ctr = tm::counter("loc.incremental.alerts");

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].is_background && !config_.feed_background) {
      ++status_.rings_skipped_background;
      continue;
    }
    // By default the sky accumulator sees what was actually served:
    // the ring with its NN-refined (or analytic-fallback) cone width.
    recon::ComptonRing ring = requests[i].ring;
    if (config_.use_served_d_eta) ring.d_eta = results[i].d_eta;
    const std::size_t before = localizer_.n_rings();
    localizer_.add_ring(ring);
    if (localizer_.n_rings() == before) {
      ++status_.rings_rejected;
      continue;
    }
    ++status_.rings_accepted;
    ++since_check_;
  }

  if (since_check_ < config_.check_every ||
      status_.rings_accepted < config_.min_rings) {
    return false;
  }
  since_check_ = 0;
  const double radius = localizer_.credible_radius_deg(config_.alert_content);
  ++status_.radius_checks;
  status_.last_radius_deg = radius;
  radius_hist.record(radius);
  if (config_.alert_radius_deg > 0.0 && !status_.alert_fired &&
      radius <= config_.alert_radius_deg) {
    status_.alert_fired = true;
    status_.alert_rings = status_.rings_accepted;
    status_.alert_radius_deg = radius;
    alerts_ctr.add();
    info.n_rings = status_.rings_accepted;
    info.radius_deg = radius;
    info.content = config_.alert_content;
    info.direction = localizer_.peak();
    return true;
  }
  return false;
}

StreamLocalizer::Status StreamLocalizer::status() const {
  core::LockGuard lock(mutex_);
  return status_;
}

double StreamLocalizer::credible_radius_deg(double content) {
  core::LockGuard lock(mutex_);
  return localizer_.credible_radius_deg(content);
}

core::Vec3 StreamLocalizer::peak() {
  core::LockGuard lock(mutex_);
  return localizer_.peak();
}

}  // namespace adapt::serve
