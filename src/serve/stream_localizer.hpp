#pragma once

/// \file stream_localizer.hpp
/// Streaming localization riding the serve layer: a BatchObserver that
/// feeds every flushed micro-batch into a loc::IncrementalLocalizer
/// and fires an early alert the first time the credible radius shrinks
/// below a configured threshold — "alert while the burst is still
/// bright" instead of localize-at-end.
///
/// Per observed batch, on the server's worker thread:
///   - results flagged `is_background` are skipped (unless
///     `feed_background`); the NN veto is exactly the filter the batch
///     localizer applies offline,
///   - each surviving request's ring is folded into the accumulator
///     with its *served* d_eta (the NN-refined width when available,
///     analytic otherwise) so the sky weight reflects what was
///     actually served,
///   - every `check_every` accepted rings (and at least `min_rings`
///     total), the 68% (configurable) credible radius is evaluated,
///     recorded into the `loc.incremental.radius_deg` histogram as the
///     containment trajectory, and compared against
///     `alert_radius_deg`; the first crossing invokes the callback
///     exactly once (counted in `loc.incremental.alerts`).
///
/// The callback runs outside the internal mutex (on the worker
/// thread), so it may query this StreamLocalizer, but it stalls
/// inference while it runs — keep it cheap.
///
/// Thread-safety: observe() runs on the server worker; status() and
/// the query helpers are safe from any thread.  The
/// fire-the-callback-outside-the-lock rule is not a comment: observe()
/// and every query helper are ADAPT_EXCLUDES(mutex_), the guarded fold
/// lives in fold_batch_locked() ADAPT_REQUIRES(mutex_), and the Clang
/// thread-safety gate rejects any edit that moves the `on_alert_`
/// invocation back under the lock (the callback legitimately re-enters
/// the query helpers, which would self-deadlock on the non-recursive
/// mutex).

#include <cstdint>
#include <functional>
#include <span>

#include "core/sync.hpp"
#include "core/vec3.hpp"
#include "loc/incremental.hpp"
#include "serve/inference_server.hpp"

namespace adapt::serve {

struct StreamLocalizerConfig {
  loc::IncrementalConfig localizer;
  /// Fire the alert when the credible radius first drops to or below
  /// this [deg]; 0 disables alerting (trajectory still recorded).
  double alert_radius_deg = 0.0;
  /// Probability content of the alert radius (0.68 = the 68%
  /// containment the paper quotes).
  double alert_content = 0.68;
  /// Radius-check cadence in accepted rings (checks cost a posterior
  /// normalization; updates stay cheap between them).
  std::size_t check_every = 64;
  /// Minimum accepted rings before the first radius check.
  std::size_t min_rings = 8;
  /// Also feed rings the server classified as background.
  bool feed_background = false;
  /// Override each ring's cone width with the served d_eta (the
  /// NN-refined width) before folding it into the accumulator.  Turn
  /// off to localize with the rings' own analytic widths — e.g. the
  /// synthetic-model benches, where served widths are seeded noise.
  bool use_served_d_eta = true;
};

struct AlertInfo {
  std::uint64_t n_rings = 0;      ///< Accepted rings at the crossing.
  double radius_deg = 0.0;        ///< Radius that crossed the threshold.
  double content = 0.0;           ///< Probability content of the radius.
  core::Vec3 direction;           ///< Posterior peak at the crossing.
};

using AlertCallback = std::function<void(const AlertInfo&)>;

class StreamLocalizer {
 public:
  explicit StreamLocalizer(StreamLocalizerConfig config,
                           AlertCallback on_alert = {});

  /// BatchObserver entry (results[i] answers requests[i]).  Wire with
  /// `server.set_batch_observer(stream_localizer.observer())` or the
  /// Supervisor equivalent.  EXCLUDES(mutex_): the fold runs under the
  /// lock, but the alert callback fires strictly after it is released,
  /// so observe() must never be entered holding it.
  void observe(std::span<const ServeRequest> requests,
               std::span<const ServeResult> results) ADAPT_EXCLUDES(mutex_);

  BatchObserver observer() {
    return [this](std::span<const ServeRequest> requests,
                  std::span<const ServeResult> results) {
      observe(requests, results);
    };
  }

  struct Status {
    std::uint64_t rings_accepted = 0;
    std::uint64_t rings_skipped_background = 0;
    std::uint64_t rings_rejected = 0;  ///< Unusable for the likelihood.
    std::uint64_t radius_checks = 0;
    double last_radius_deg = 0.0;  ///< 0 until the first check.
    bool alert_fired = false;
    std::uint64_t alert_rings = 0;
    double alert_radius_deg = 0.0;
  };
  Status status() const ADAPT_EXCLUDES(mutex_);

  /// On-demand posterior queries (any thread).
  double credible_radius_deg(double content) ADAPT_EXCLUDES(mutex_);
  core::Vec3 peak() ADAPT_EXCLUDES(mutex_);

  const StreamLocalizerConfig& config() const { return config_; }

 private:
  /// Folds one batch into the accumulator and runs any due radius
  /// check.  Returns true iff this batch crossed the alert threshold
  /// for the first time, filling `info` — the caller fires the
  /// callback AFTER releasing mutex_.
  bool fold_batch_locked(std::span<const ServeRequest> requests,
                         std::span<const ServeResult> results,
                         AlertInfo& info) ADAPT_REQUIRES(mutex_);

  // Immutable after construction; read without the lock.
  StreamLocalizerConfig config_;
  AlertCallback on_alert_;

  mutable core::Mutex mutex_;
  loc::IncrementalLocalizer localizer_ ADAPT_GUARDED_BY(mutex_);
  Status status_ ADAPT_GUARDED_BY(mutex_);
  std::size_t since_check_ ADAPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace adapt::serve
