#pragma once

/// \file supervisor.hpp
/// Supervised recovery around the streaming inference server.
///
/// The plain InferenceServer assumes its models are sound and its
/// worker never wedges.  On a balloon (and eventually in orbit) that
/// assumption fails in specific, enumerable ways: SEUs flip weight
/// bits, a serialized model arrives truncated, a forward call throws
/// or stalls, events vanish or duplicate in the handoff.  The
/// Supervisor owns one InferenceServer and layers the recovery
/// policies the fault-injection campaign (src/fault) exercises:
///
///   - **Checksum gating.**  Reference digests of the attached models
///     are captured at attach (`BackgroundNet::weight_checksum`) and
///     revalidated on every `health_tick()`.  A model whose digest
///     drifts is quarantined: the engine stops calling it and serves
///     the analytic path (null-model semantics of pipeline::Models)
///     with every result flagged `fallback` — degraded data is always
///     labeled, never silently substituted.
///   - **Retry with backoff.**  A forward that throws is retried up to
///     `max_retries` times with exponential backoff; transient faults
///     recover invisibly (counted, not surfaced).  A batch that
///     exhausts its retries is served analytically, flagged.
///   - **Restore.**  `restore_background` / `restore_deta` swap in a
///     replacement (loader-validated) model, re-arm its reference
///     digest, and move the state machine to kRecovering; the first
///     clean batch (or an idle health tick) completes the transition
///     back to kHealthy.  After a restore, no subsequently processed
///     batch may be flagged fallback — the recovery-ordering invariant
///     tests/fault pins down.
///   - **Watchdog.**  A background thread samples the server's
///     heartbeat/in_flight liveness signals; a worker that sits
///     in-flight with a frozen heartbeat past `stall_timeout` is
///     declared wedged and the server is restarted (stop() drains the
///     queue, so admitted events survive the restart).
///   - **Ingress hygiene.**  `submit()` validates ring fields (NaN /
///     inf / out-of-range energies and cosines never reach a forward)
///     and absorbs injected queue faults: drops are counted, injected
///     duplicates are tracked by sequence number and suppressed at the
///     sink so downstream consumers see each event at most once.
///
/// State machine (see DESIGN.md):
///
///   kHealthy --corrupt model detected--> kDegraded
///   kDegraded --good model restored---> kRecovering
///   kRecovering --first clean batch---> kHealthy
///
/// Every transition and recovery action is counted under
/// `serve.supervisor.*` telemetry and mirrored in SupervisorStats so a
/// seeded campaign can assert exact, bit-identical ledgers.
///
/// Thread-safety: submit() from any producer thread; the engine runs
/// on the server's worker thread; the watchdog is its own thread.
/// Model state (pointers, ok flags, health state) lives behind
/// `state_mutex_`, which the engine holds for the whole forward — a
/// health tick therefore observes either pre- or post-batch state,
/// never a torn middle.  All three mutexes are core::sync capabilities
/// with every guarded field annotated; the Clang thread-safety gate
/// checks the discipline.  Lock ordering (DESIGN.md): server_mutex_ ->
/// sink_mutex_ (submit's duplicate registration); state_mutex_ never
/// nests with either.  User callbacks (sink, batch observer) run with
/// NO supervisor lock held — the one deliberate exception is the
/// campaign-only forward hook, which stands in for the forward itself
/// and therefore runs under state_mutex_ like the forward it
/// simulates (it must never call back into the Supervisor).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/sync.hpp"
#include "serve/inference_server.hpp"

namespace adapt::serve {

/// Where the supervised pipeline currently sits (DESIGN.md state
/// machine).  Transitions are counted, not just the resting state.
enum class HealthState { kHealthy, kDegraded, kRecovering };

const char* to_string(HealthState state);

/// Injected queue-slot fault, decided per submit by the installed
/// hook (fault::Injector in campaigns; absent in production).
enum class QueueFault { kNone, kDrop, kDuplicate };

using QueueFaultHook = std::function<QueueFault()>;

/// Called once per forward *attempt* with the batch size.  A hook that
/// throws simulates a failed forward (retry path); a hook that sleeps
/// simulates a stalled forward (watchdog path).  Campaign-only.
using ForwardHook = std::function<void(std::size_t batch_size)>;

struct SupervisorConfig {
  ServeConfig serve;

  /// Retries per batch after the first failed attempt.
  std::size_t max_retries = 2;
  /// Backoff before retry k is `retry_backoff << k` (exponential).
  std::chrono::microseconds retry_backoff{50};

  /// Watchdog sampling period; 0 disables the watchdog thread.
  std::chrono::milliseconds watchdog_interval{10};
  /// In-flight with a frozen heartbeat for longer than this = wedged.
  std::chrono::milliseconds stall_timeout{250};
  /// Run a checksum health_tick() every N watchdog samples (0 = only
  /// when called explicitly — campaigns tick manually so the ledger
  /// does not depend on wall-clock alignment).
  std::size_t checksum_every_n_ticks = 0;

  /// Reject rings with non-finite or out-of-range fields at submit.
  bool validate_inputs = true;
};

/// Exact mirror of the `serve.supervisor.*` counters, readable without
/// telemetry enabled; a seeded campaign asserts these bit-identically.
struct SupervisorStats {
  std::uint64_t submitted = 0;          ///< Admitted to the server.
  std::uint64_t input_rejected = 0;     ///< Failed ring validation.
  std::uint64_t queue_drops = 0;        ///< Injected drops absorbed.
  std::uint64_t duplicates_suppressed = 0;  ///< Injected dups filtered.
  std::uint64_t retries = 0;            ///< Forward attempts re-issued.
  std::uint64_t transient_recovered = 0;    ///< Batches saved by retry.
  std::uint64_t fallback_batches = 0;   ///< Batches served analytically.
  std::uint64_t checksum_failures = 0;  ///< Digest drifts detected.
  std::uint64_t restores = 0;           ///< Good models re-attached.
  std::uint64_t watchdog_restarts = 0;  ///< Wedged workers replaced.
  std::uint64_t degraded_entered = 0;   ///< kHealthy/kRecovering -> kDegraded.
  std::uint64_t recovering_entered = 0; ///< kDegraded -> kRecovering.
  std::uint64_t healthy_entered = 0;    ///< kRecovering -> kHealthy.
  std::uint64_t delivered = 0;          ///< Results forwarded downstream.
  std::uint64_t delivered_fallback = 0; ///< ...of which flagged fallback.
  std::uint64_t delivered_degraded = 0; ///< ...of which flagged degraded.
  HealthState state = HealthState::kHealthy;
};

class Supervisor {
 public:
  /// Captures reference checksums of the attached models (either may
  /// be null) and builds — but does not start — the wrapped server.
  Supervisor(pipeline::Models models, SupervisorConfig config,
             ResultSink sink);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Launch the server worker and (if configured) the watchdog.
  void start();

  /// Drain and join everything.  Idempotent.
  void stop();

  /// Validated, fault-absorbing ingress.  Returns the assigned
  /// sequence number, or 0 when the ring was rejected, dropped, or the
  /// server is stopped.  `stream_id` is carried through to the result
  /// (see InferenceServer::submit).
  std::uint64_t submit(const recon::ComptonRing& ring,
                       double polar_deg_guess, std::uint32_t stream_id = 0);

  /// Revalidate model digests against their attach-time references and
  /// advance the state machine.  Cheap enough for a periodic tick;
  /// campaigns call it manually after each injection round.
  void health_tick() ADAPT_EXCLUDES(state_mutex_);

  /// health_tick() via try-lock: returns false (skipping the tick)
  /// when the worker holds state_mutex_ mid-forward.  This is what the
  /// watchdog calls, and it must NEVER block on state_mutex_: a
  /// stalled forward holds that mutex, and the watchdog has to stay
  /// live to detect exactly that stall (regression-tested in
  /// tests/serve/supervisor_test.cpp).
  bool try_health_tick() ADAPT_EXCLUDES(state_mutex_);

  /// Swap in a replacement model (presumed good — its loader already
  /// verified the serialized checksum), re-arm the reference digest,
  /// and enter kRecovering.  Passing the currently attached pointer
  /// re-validates it in place (e.g. after re-loading weights from a
  /// good file into the same object).
  void restore_background(pipeline::BackgroundNet* net);
  void restore_deta(pipeline::DEtaNet* net);

  /// Campaign hooks (install before start()).
  void set_queue_fault_hook(QueueFaultHook hook);
  void set_forward_hook(ForwardHook hook);

  /// Install a batch observer (install before start()).  It sees the
  /// same at-most-once stream the sink does: injected duplicates are
  /// filtered out of the observed batch (without consuming the
  /// suppression bookkeeping deliver() owns), and the observer is
  /// re-installed onto the replacement server after a watchdog
  /// restart.
  void set_batch_observer(BatchObserver observer);

  /// Run `fn` with exclusive access to the attached models.  The
  /// engine holds the same mutex for the whole forward, so mutating
  /// weights inside `fn` (the campaign's SEU injection) is race-free
  /// even while the server is live — the flip lands strictly between
  /// batches.
  void with_models_quiesced(const std::function<void(pipeline::Models&)>& fn);

  SupervisorStats stats() const;
  HealthState state() const;

  /// Underlying server stats (heartbeats, shed counts, batches).
  InferenceServer::Stats server_stats() const;

  const SupervisorConfig& config() const { return config_; }

  /// True when `ring`/`polar_deg_guess` would pass ingress validation:
  /// finite axis, eta in [-1, 1], finite non-negative energies, finite
  /// d_eta and polar guess.
  static bool ring_admissible(const recon::ComptonRing& ring,
                              double polar_deg_guess);

 private:
  std::unique_ptr<InferenceServer> make_server();
  BatchOutputs engine(std::span<const recon::ComptonRing> rings,
                      std::span<const double> polar, bool degrade_requested)
      ADAPT_EXCLUDES(state_mutex_);
  BatchOutputs analytic_outputs(std::span<const recon::ComptonRing> rings)
      const;
  void deliver(std::span<const ServeResult> results)
      ADAPT_EXCLUDES(sink_mutex_);
  void observe_batch(std::span<const ServeRequest> requests,
                     std::span<const ServeResult> results)
      ADAPT_EXCLUDES(sink_mutex_);
  void watchdog_loop();
  void restart_server() ADAPT_EXCLUDES(server_mutex_);
  /// Digest revalidation + state advance.  Caller holds state_mutex_
  /// (health_tick takes it; try_health_tick try-takes it).
  void health_tick_locked() ADAPT_REQUIRES(state_mutex_);
  /// Recompute state from the ok flags; counts transitions.  Caller
  /// holds state_mutex_.
  void update_state_locked(bool all_ok_now) ADAPT_REQUIRES(state_mutex_);

  SupervisorConfig config_;
  ResultSink user_sink_;

  // --- model state (state_mutex_) ---
  mutable core::Mutex state_mutex_;
  pipeline::Models models_ ADAPT_GUARDED_BY(state_mutex_);
  std::uint64_t background_ref_ ADAPT_GUARDED_BY(state_mutex_) = 0;
  std::uint64_t deta_ref_ ADAPT_GUARDED_BY(state_mutex_) = 0;
  bool background_ok_ ADAPT_GUARDED_BY(state_mutex_) = true;
  bool deta_ok_ ADAPT_GUARDED_BY(state_mutex_) = true;
  HealthState state_ ADAPT_GUARDED_BY(state_mutex_) =
      HealthState::kHealthy;

  // --- server lifecycle (server_mutex_) ---
  mutable core::Mutex server_mutex_;
  std::unique_ptr<InferenceServer> server_ ADAPT_GUARDED_BY(server_mutex_);

  // --- sink-side bookkeeping (sink_mutex_) ---
  core::Mutex sink_mutex_;
  std::unordered_set<std::uint64_t> expected_duplicates_
      ADAPT_GUARDED_BY(sink_mutex_);
  // Scratch buffers confined to the server worker thread (deliver and
  // observe_batch only run there, and restart_server joins the old
  // worker before the replacement starts).  They are filled under
  // sink_mutex_ but handed to the user callback AFTER it is released —
  // no supervisor lock is ever held across a callback.
  std::vector<ServeResult> filtered_;
  std::vector<ServeRequest> observed_requests_;
  std::vector<ServeResult> observed_results_;

  QueueFaultHook queue_fault_hook_;
  ForwardHook forward_hook_;
  BatchObserver batch_observer_;

  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Counters are atomics so stats() needs no lock ordering story.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> input_rejected_{0};
  std::atomic<std::uint64_t> queue_drops_{0};
  std::atomic<std::uint64_t> duplicates_suppressed_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> transient_recovered_{0};
  std::atomic<std::uint64_t> fallback_batches_{0};
  std::atomic<std::uint64_t> checksum_failures_{0};
  std::atomic<std::uint64_t> restores_{0};
  std::atomic<std::uint64_t> watchdog_restarts_{0};
  std::atomic<std::uint64_t> degraded_entered_{0};
  std::atomic<std::uint64_t> recovering_entered_{0};
  std::atomic<std::uint64_t> healthy_entered_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> delivered_fallback_{0};
  std::atomic<std::uint64_t> delivered_degraded_{0};
};

}  // namespace adapt::serve
