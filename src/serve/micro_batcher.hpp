#pragma once

/// \file micro_batcher.hpp
/// Batch-assembly policy on top of the EventQueue.
///
/// Production inference servers amortize per-call cost by batching:
/// one N-row forward through the GEMM kernels is far cheaper than N
/// single-row forwards (see bench_serve_throughput).  The batcher
/// flushes on whichever comes first:
///
///   * size   — `max_batch` requests are waiting, or
///   * deadline — `flush_deadline` elapsed since the first request of
///     the forming batch (bounds tail latency when traffic is light),
///   * drain  — the queue was closed; whatever is left ships at once.
///
/// The batcher also owns the serving layer's batch observability: the
/// `serve.batch_size` / `serve.queue_depth` histograms and the
/// per-reason `serve.flush.{size,deadline,drain}` counters.  A zero
/// `flush_deadline` is the documented "flush whatever is visible now"
/// mode: those flushes are counted by the queue itself under
/// `serve.flush.immediate`, never as deadline expiries.
///
/// Thread-safety: stateless beyond the policy — it holds no lock of
/// its own and delegates all blocking to EventQueue::pop_batch, so in
/// the repo's lock-ordering story (DESIGN.md) the "batcher" slot is
/// occupied entirely by the queue capability it borrows.

#include <chrono>
#include <cstddef>
#include <vector>

#include "serve/event_queue.hpp"

namespace adapt::serve {

struct BatchPolicy {
  std::size_t max_batch = 64;
  std::chrono::microseconds flush_deadline{200};
};

class MicroBatcher {
 public:
  MicroBatcher(EventQueue& queue, const BatchPolicy& policy);

  /// Blocks for the next micro-batch; appends it to `out` and returns
  /// its size.  Returns 0 exactly once the queue is closed and fully
  /// drained.
  std::size_t next_batch(std::vector<ServeRequest>& out);

  const BatchPolicy& policy() const { return policy_; }

 private:
  EventQueue& queue_;
  BatchPolicy policy_;
};

}  // namespace adapt::serve
