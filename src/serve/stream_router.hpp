#pragma once

/// \file stream_router.hpp
/// Fleet-scale multi-stream serving: N logical event streams (many
/// telescopes / many replayed bursts) multiplexed over S ShardQueues
/// and drained by W shared model workers.
///
/// Topology.  A stream lives on exactly one shard (`stream_id %
/// num_shards`) and a shard is owned by exactly one worker (`shard %
/// num_workers`), so per-stream FIFO order is preserved end to end
/// and two workers never contend on a shard.  Each worker cycles its
/// shards round-robin, popping micro-batches with the zero-deadline
/// "flush what is visible now" semantics; inside a shard the batch is
/// filled by quantum round-robin across the resident streams (see
/// shard_queue.hpp), so one flooding stream cannot starve its
/// neighbors at either level.  A batch may therefore mix streams —
/// results carry `stream_id` and per-stream runs stay contiguous and
/// in stream order.
///
/// Fairness + admission control: per-stream depth caps with
/// shed-oldest-within-the-stream (the flooding stream absorbs all of
/// its own shedding), shard capacity as the backstop, and the same
/// degrade-to-analytic-dEta watermark as the single-stream server,
/// evaluated per shard.
///
/// Equivalence contract: with one stream, one shard, and one worker
/// the router is bit-identical to the single-stream InferenceServer on
/// the same submit sequence — same `Models::infer_batch` call, same
/// d_eta clamp, same degrade rule (proved by
/// tests/serve/stream_router_test.cpp's exact-equality suite).  The
/// single-stream API is untouched; the router is a parallel entry
/// point, not a replacement.
///
/// Localization: when `localize` is set, every stream gets its OWN
/// StreamLocalizer (independent sky accumulator, independent one-shot
/// early alert) fed from the worker thread with that stream's slice of
/// each batch; alerts arrive on `StreamAlertCallback` tagged with the
/// stream id, fired with no router lock held.
///
/// Sink contract: ONE sink shared by all workers.  Calls for the same
/// stream are serialized and in order (stream -> shard -> worker is
/// static); calls for different streams may be CONCURRENT — a sink
/// that aggregates across streams must lock or partition by
/// `ServeResult::stream_id`.
///
/// Telemetry (`serve.stream.*`): submitted / events / batches /
/// mixed_batches / shed / degraded_events / fallback_events /
/// batch_errors counters, plus latency_ms, batch_streams (distinct
/// streams per batch), and shard_depth histograms.
///
/// Thread-safety: shard mutexes are the innermost serve locks (leaf);
/// the router's own `streams_mutex_` guards only the stream registry
/// map — populated worker-side on first processing, so the submit hot
/// path touches nothing but its shard — and is never held across a
/// forward, a sink call, or an alert callback (DESIGN.md Sec. 5
/// registry).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "pipeline/models.hpp"
#include "serve/inference_server.hpp"
#include "serve/shard_queue.hpp"
#include "serve/stream_localizer.hpp"

namespace adapt::serve {

struct RouterConfig {
  std::size_t num_shards = 4;
  std::size_t num_workers = 2;
  /// Resident capacity per shard (not global — capacity scales with
  /// the shard count).
  std::size_t shard_capacity = 4096;
  /// Admission control: max resident requests per stream.
  std::size_t per_stream_cap = 1024;
  /// Requests taken per stream per round-robin visit when filling a
  /// batch (shard_queue.hpp).
  std::size_t quantum = 16;
  std::size_t max_batch = 64;
  /// Worker idle wait when all its shards are empty; also the upper
  /// bound on how stale a worker's view of a quiet shard can be.
  std::chrono::microseconds flush_deadline{200};
  /// Same overload semantics as ServeConfig, keyed on the owning
  /// shard's post-pop depth.
  double degrade_watermark = 0.75;
  bool degrade_when_saturated = true;
  double d_eta_floor = 1e-4;
  double d_eta_cap = 2.0;
  /// Give every stream its own StreamLocalizer built from
  /// `localizer_template` (alert threshold, cadence, resolution...).
  bool localize = false;
  StreamLocalizerConfig localizer_template;
};

/// Early-alert delivery for a specific stream's localizer.  Runs on
/// the worker thread that owns the stream, with no router lock held.
using StreamAlertCallback =
    std::function<void(std::uint32_t stream_id, const AlertInfo&)>;

class StreamRouter {
 public:
  /// `models` pointers must outlive the router; either may be null
  /// (pipeline::Models null semantics).  The sink contract is in the
  /// file comment: per-stream serialized, cross-stream concurrent.
  StreamRouter(pipeline::Models models, RouterConfig config, ResultSink sink);
  ~StreamRouter();

  StreamRouter(const StreamRouter&) = delete;
  StreamRouter& operator=(const StreamRouter&) = delete;

  /// Launch the workers.  Call once.
  void start();

  /// Install a replacement inference engine (shared by all workers —
  /// it must be thread-safe if num_workers > 1).  Must precede start().
  void set_engine(InferenceEngine engine);

  /// Install the per-stream alert callback.  Must precede start().
  void set_alert_callback(StreamAlertCallback on_alert);

  /// Enqueue one ring onto `stream_id`'s shard (thread-safe,
  /// non-blocking; any producer thread).  Returns the assigned
  /// globally monotone sequence number, or 0 when the router is
  /// stopped.
  std::uint64_t submit(std::uint32_t stream_id,
                       const recon::ComptonRing& ring, double polar_deg_guess);

  /// Close every shard, drain them, and join the workers.  Every
  /// request admitted before stop() is delivered or counted as shed.
  /// Idempotent.
  void stop();

  struct Stats {
    std::uint64_t submitted = 0;   ///< Sequence numbers handed out.
    std::uint64_t processed = 0;
    std::uint64_t batches = 0;
    std::uint64_t mixed_batches = 0;  ///< Batches spanning >1 stream.
    std::uint64_t shed = 0;           ///< Across all shards.
    std::uint64_t rejected = 0;       ///< Submitted after stop().
    std::uint64_t degraded = 0;
    std::uint64_t background = 0;
    std::uint64_t fallback = 0;
    std::uint64_t batch_errors = 0;
    std::uint64_t streams = 0;     ///< Distinct stream ids seen.
  };
  Stats stats() const;

  /// Per-stream accounting rows, grouped by shard (shard index order,
  /// first-push order within a shard).  `submitted` counts admissions
  /// (shed happens later, inside the shard), so submitted ==
  /// processed + shed + resident at quiescence.
  struct StreamStats {
    std::uint32_t stream_id = 0;
    std::uint64_t submitted = 0;
    std::uint64_t processed = 0;
    std::uint64_t shed = 0;
    std::uint64_t resident = 0;
    std::uint64_t background = 0;
    std::uint64_t degraded = 0;
    std::uint64_t fallback = 0;
    bool alert_fired = false;
  };
  std::vector<StreamStats> stream_stats() const;

  /// Localizer status for one stream (nullopt when localization is off
  /// or the stream has not been seen).
  std::optional<StreamLocalizer::Status> localizer_status(
      std::uint32_t stream_id) const;

  std::size_t queue_depth() const;  ///< Sum over shards.
  const RouterConfig& config() const { return config_; }
  std::size_t shard_of(std::uint32_t stream_id) const {
    return stream_id % config_.num_shards;
  }

 private:
  /// Per-stream registry entry, created lazily by the OWNING WORKER
  /// the first time it processes the stream (account_batch) — the
  /// submit hot path never touches the registry; per-stream submission
  /// counts live in the shard ledger (`ShardQueue::StreamStats.pushed`,
  /// which counts admissions).  The counters are atomics so stats
  /// readers race the worker safely; the localizer pointer is
  /// immutable once the entry is constructed.
  struct PerStream {
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> background{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> fallback{0};
    std::unique_ptr<StreamLocalizer> localizer;  ///< Null unless localize.
  };

  PerStream& stream_entry(std::uint32_t stream_id)
      ADAPT_EXCLUDES(streams_mutex_);
  void worker_loop(std::size_t worker_index);
  void process_batch(std::span<const ServeRequest> batch, bool degraded,
                     std::vector<ServeResult>& results);
  void emergency_results(std::span<const ServeRequest> batch,
                         std::vector<ServeResult>& results);
  /// Demultiplex the batch into contiguous per-stream runs: per-stream
  /// accounting, localizer feed, mixed-batch telemetry.
  void account_batch(std::span<const ServeRequest> batch,
                     std::span<const ServeResult> results);

  pipeline::Models models_;
  RouterConfig config_;
  ResultSink sink_;
  InferenceEngine engine_;
  StreamAlertCallback on_alert_;
  std::vector<std::unique_ptr<ShardQueue>> shards_;
  std::vector<std::thread> workers_;

  mutable core::SharedMutex streams_mutex_;
  std::unordered_map<std::uint32_t, std::unique_ptr<PerStream>> streams_
      ADAPT_GUARDED_BY(streams_mutex_);

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> next_sequence_{1};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> mixed_batches_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> background_{0};
  std::atomic<std::uint64_t> fallback_{0};
  std::atomic<std::uint64_t> batch_errors_{0};
};

}  // namespace adapt::serve
