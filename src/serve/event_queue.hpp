#pragma once

/// \file event_queue.hpp
/// Bounded MPSC ring-buffer queue feeding the inference server.
///
/// Multiple producers (readout / simulator / trigger threads) push
/// ServeRequests; one consumer (the InferenceServer worker) pops them
/// in micro-batches.  The buffer is a fixed-capacity circular array —
/// no allocation after construction — guarded by one mutex and one
/// condition variable, which keeps both backends of the repo's
/// concurrency story honest: std::mutex/std::condition_variable are
/// fully visible to ThreadSanitizer (see core/parallel.hpp for why
/// that matters to this codebase).
///
/// Overload policy: `push` on a full queue sheds the OLDEST queued
/// request and admits the new one.  For a real-time telescope stream
/// the newest event is always the most valuable — an old ring that the
/// server cannot keep up with belongs to a burst estimate that has
/// already moved on — and shedding at the tail would instead starve
/// the stream under sustained overload.  Every shed is counted (local
/// counter + `serve.queue_shed` telemetry) so saturation is visible,
/// never silent.
///
/// Lock discipline: every mutable field is ADAPT_GUARDED_BY(mutex_)
/// and checked by the Clang thread-safety gate.  The queue mutex is
/// the innermost lock of the serve layer (DESIGN.md "Lock ordering"):
/// nothing is acquired while holding it, and no callback ever runs
/// under it.

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/sync.hpp"
#include "serve/request.hpp"

namespace adapt::serve {

class EventQueue {
 public:
  explicit EventQueue(std::size_t capacity);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Producer side.  Returns false iff the queue is closed (the
  /// request is dropped and counted as rejected).  On a full queue the
  /// oldest element is shed to make room — push itself never blocks.
  bool push(ServeRequest request);

  /// Consumer side: micro-batched pop.  Blocks until at least one
  /// request is queued (or the queue is closed and drained, returning
  /// 0).  Once the first request is visible, keeps waiting up to
  /// `flush_deadline` for the batch to fill to `max_items`, then
  /// appends the oldest min(depth, max_items) requests to `out`.
  /// Returns the number of requests popped.
  ///
  /// A zero `flush_deadline` means "flush whatever is visible NOW": the
  /// fill-the-batch wait is skipped entirely (counted under
  /// `serve.flush.immediate`) instead of entering the timed wait with
  /// an already-expired deadline — the router workers poll shards this
  /// way.  Either way pop_batch never returns 0 while the queue is
  /// open: 0 strictly means closed-and-drained, so a consumer can use
  /// it as its shutdown signal without racing producers mid-push.
  std::size_t pop_batch(std::vector<ServeRequest>& out, std::size_t max_items,
                        std::chrono::microseconds flush_deadline);

  /// Close the queue: producers are refused from now on; the consumer
  /// drains what is left and then gets 0 from pop_batch.
  void close();

  /// Destructor checks the conservation ledger in checked builds:
  /// every admitted request must be accounted for as popped, shed, or
  /// still resident — pushed == popped + shed + resident.  A burst of
  /// shed-oldest racing a partially drained pop must not lose or
  /// double-count events (tests/serve/event_queue_test.cpp stresses
  /// exactly that overlap).
  ~EventQueue();

  /// Conservation-ledger snapshot (one lock, mutually consistent).
  struct Stats {
    std::uint64_t pushed = 0;    ///< Admitted by push().
    std::uint64_t popped = 0;    ///< Handed to a consumer.
    std::uint64_t shed = 0;      ///< Dropped by shed-oldest.
    std::uint64_t rejected = 0;  ///< Refused after close().
    std::uint64_t resident = 0;  ///< Currently queued.
  };
  Stats stats() const;

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;
  std::uint64_t shed_count() const;
  std::uint64_t rejected_count() const;

 private:
  const std::size_t capacity_;
  mutable core::Mutex mutex_;
  core::CondVar nonempty_;
  /// Fixed-size circular storage.
  std::vector<ServeRequest> ring_ ADAPT_GUARDED_BY(mutex_);
  /// Index of the oldest element.
  std::size_t head_ ADAPT_GUARDED_BY(mutex_) = 0;
  std::size_t size_ ADAPT_GUARDED_BY(mutex_) = 0;
  bool closed_ ADAPT_GUARDED_BY(mutex_) = false;
  /// Requests admitted by push() — the ledger's debit side.
  std::uint64_t pushed_ ADAPT_GUARDED_BY(mutex_) = 0;
  /// Requests handed to a consumer via pop_batch.
  std::uint64_t popped_ ADAPT_GUARDED_BY(mutex_) = 0;
  /// Requests dropped by shed-oldest.
  std::uint64_t shed_ ADAPT_GUARDED_BY(mutex_) = 0;
  /// Pushes refused after close() (never entered the ledger).
  std::uint64_t rejected_ ADAPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace adapt::serve
