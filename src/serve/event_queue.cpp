#include "serve/event_queue.hpp"

#include "core/contract.hpp"
#include "core/require.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {

namespace tm = core::telemetry;

EventQueue::EventQueue(std::size_t capacity)
    : capacity_(capacity), ring_(capacity) {
  ADAPT_REQUIRE(capacity >= 1, "event queue needs capacity >= 1");
}

EventQueue::~EventQueue() {
  // Teardown ledger check (checked builds): every admitted request is
  // popped, shed, or still resident.  An imbalance means an event was
  // lost or double-counted somewhere between push's shed-oldest and a
  // partially drained pop — the overlap the stress suite hammers.
  core::LockGuard lock(mutex_);
  ADAPT_INVARIANT(pushed_ == popped_ + shed_ + size_,
                  "event queue ledger imbalance at teardown "
                  "(pushed != popped + shed + resident)");
}

bool EventQueue::push(ServeRequest request) {
  static tm::Counter& shed_metric = tm::counter("serve.queue_shed");
  {
    core::LockGuard lock(mutex_);
    if (closed_) {
      ++rejected_;
      return false;
    }
    if (size_ == capacity_) {
      // Shed-oldest: advance past the stalest request.  The slot it
      // occupied becomes the tail slot the new request lands in.
      head_ = (head_ + 1) % capacity_;
      --size_;
      ++shed_;
      shed_metric.add();
    }
    ring_[(head_ + size_) % capacity_] = std::move(request);
    ++size_;
    ++pushed_;
  }
  nonempty_.notify_one();
  return true;
}

std::size_t EventQueue::pop_batch(std::vector<ServeRequest>& out,
                                  std::size_t max_items,
                                  std::chrono::microseconds flush_deadline) {
  ADAPT_REQUIRE(max_items >= 1, "pop_batch needs max_items >= 1");
  static tm::Counter& flush_immediate = tm::counter("serve.flush.immediate");
  core::UniqueLock lock(mutex_);
  while (size_ == 0 && !closed_) nonempty_.wait(lock);
  if (size_ == 0) {
    ADAPT_INVARIANT(closed_, "pop_batch returning 0 on an open queue");
    return 0;  // Closed and drained.
  }

  // The flush deadline starts at the first visible request, so a
  // trickle of events never waits longer than one deadline.  A zero
  // deadline skips the wait entirely — "flush whatever is visible
  // now" — instead of calling wait_until with an already-expired
  // deadline, which burns a futex round-trip per spurious wakeup and
  // (on implementations that report such wakeups as no_timeout) could
  // re-enter the wait with the deadline still in the past.
  if (flush_deadline.count() == 0) {
    flush_immediate.add();
  } else if (size_ < max_items && !closed_) {
    const auto deadline = std::chrono::steady_clock::now() + flush_deadline;
    while (size_ < max_items && !closed_) {
      if (nonempty_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;
    }
  }

  const std::size_t n = size_ < max_items ? size_ : max_items;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(ring_[head_]));
    head_ = (head_ + 1) % capacity_;
  }
  size_ -= n;
  popped_ += n;
  return n;
}

void EventQueue::close() {
  {
    core::LockGuard lock(mutex_);
    closed_ = true;
  }
  nonempty_.notify_all();
}

EventQueue::Stats EventQueue::stats() const {
  core::LockGuard lock(mutex_);
  Stats s;
  s.pushed = pushed_;
  s.popped = popped_;
  s.shed = shed_;
  s.rejected = rejected_;
  s.resident = size_;
  return s;
}

std::size_t EventQueue::depth() const {
  core::LockGuard lock(mutex_);
  return size_;
}

bool EventQueue::closed() const {
  core::LockGuard lock(mutex_);
  return closed_;
}

std::uint64_t EventQueue::shed_count() const {
  core::LockGuard lock(mutex_);
  return shed_;
}

std::uint64_t EventQueue::rejected_count() const {
  core::LockGuard lock(mutex_);
  return rejected_;
}

}  // namespace adapt::serve
