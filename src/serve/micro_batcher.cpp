#include "serve/micro_batcher.hpp"

#include "core/require.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {

namespace tm = core::telemetry;

MicroBatcher::MicroBatcher(EventQueue& queue, const BatchPolicy& policy)
    : queue_(queue), policy_(policy) {
  ADAPT_REQUIRE(policy.max_batch >= 1, "batch size must be >= 1");
  ADAPT_REQUIRE(policy.flush_deadline.count() >= 0,
                "flush deadline must be non-negative");
}

std::size_t MicroBatcher::next_batch(std::vector<ServeRequest>& out) {
  static tm::Histogram& batch_size = tm::histogram("serve.batch_size");
  static tm::Histogram& queue_depth = tm::histogram("serve.queue_depth");
  static tm::Counter& flush_size = tm::counter("serve.flush.size");
  static tm::Counter& flush_deadline = tm::counter("serve.flush.deadline");
  static tm::Counter& flush_drain = tm::counter("serve.flush.drain");

  const std::size_t n =
      queue_.pop_batch(out, policy_.max_batch, policy_.flush_deadline);
  if (n == 0) return 0;

  batch_size.record(static_cast<double>(n));
  // Depth AFTER the pop: what the next batch already has waiting — the
  // backlog signal the overload policy keys on.
  queue_depth.record(static_cast<double>(queue_.depth()));
  if (n == policy_.max_batch) {
    flush_size.add();
  } else if (queue_.closed()) {
    flush_drain.add();
  } else if (policy_.flush_deadline.count() != 0) {
    flush_deadline.add();
  }
  // A non-full flush from an open queue under a zero deadline is an
  // immediate flush — EventQueue::pop_batch already counted it under
  // serve.flush.immediate; calling it a deadline expiry here would
  // misattribute the reason.
  return n;
}

}  // namespace adapt::serve
