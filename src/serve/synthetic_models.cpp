#include "serve/synthetic_models.hpp"

#include <cstddef>
#include <utility>
#include <vector>

#include "nn/data.hpp"
#include "nn/mlp.hpp"
#include "pipeline/features.hpp"
#include "pipeline/thresholds.hpp"
#include "quant/qparams.hpp"
#include "quant/quantized_mlp.hpp"

namespace adapt::serve {

namespace {

/// Standardizer fit on a seeded synthetic ring population so the
/// network sees roughly unit-scale inputs (matters for the INT8
/// activation ranges below).
nn::Standardizer fitted_standardizer(core::Rng& rng) {
  constexpr std::size_t kFitRings = 256;
  std::vector<recon::ComptonRing> rings;
  std::vector<double> polar;
  rings.reserve(kFitRings);
  for (std::size_t i = 0; i < kFitRings; ++i) {
    rings.push_back(synthetic_ring(rng));
    polar.push_back(rng.uniform(0.0, 90.0));
  }
  nn::Standardizer standardizer;
  standardizer.fit(pipeline::feature_matrix(rings, polar));
  return standardizer;
}

pipeline::PolarThresholds seeded_thresholds(core::Rng& rng) {
  pipeline::PolarThresholds thresholds;
  for (int bin = 0; bin < pipeline::PolarThresholds::kNumBins; ++bin)
    thresholds.set_logit_threshold(bin, rng.uniform(-0.5, 0.5));
  return thresholds;
}

}  // namespace

pipeline::BackgroundNet synthetic_background_net(std::uint64_t seed) {
  core::Rng rng(seed);
  nn::Sequential model = nn::build_mlp(nn::background_net_spec(), rng);
  nn::Standardizer standardizer = fitted_standardizer(rng);
  pipeline::PolarThresholds thresholds = seeded_thresholds(rng);
  return pipeline::BackgroundNet(std::move(model), std::move(standardizer),
                                 std::move(thresholds), /*uses_polar=*/true);
}

pipeline::BackgroundNet synthetic_background_net_int8(std::uint64_t seed) {
  core::Rng rng(seed);
  // Paper dimensions: 13 -> 256 -> 128 -> 64 -> 1, ReLU between.
  const std::vector<std::size_t> dims = {13, 256, 128, 64, 1};
  std::vector<quant::QuantizedLayer> layers;
  for (std::size_t li = 0; li + 1 < dims.size(); ++li) {
    quant::QuantizedLayer layer;
    layer.in_features = dims[li];
    layer.out_features = dims[li + 1];
    layer.relu = li + 2 < dims.size();
    // First layer sees standardized (~N(0,1)) features; later layers
    // see post-ReLU uint8 activations of the previous requant range.
    layer.input_q = li == 0 ? quant::QParams::from_range(-4.0f, 4.0f)
                            : quant::QParams::from_range(0.0f, 8.0f);
    layer.weight.resize(layer.in_features * layer.out_features);
    for (std::int8_t& w : layer.weight)
      w = static_cast<std::int8_t>(
          static_cast<std::int64_t>(rng.uniform_index(41)) - 20);
    layer.weight_scales.assign(layer.out_features, 0.02f);
    layer.bias.resize(layer.out_features);
    for (std::int32_t& b : layer.bias)
      b = static_cast<std::int32_t>(
          static_cast<std::int64_t>(rng.uniform_index(201)) - 100);
    layers.push_back(std::move(layer));
  }
  quant::QuantizedMlp engine(std::move(layers));
  nn::Standardizer standardizer = fitted_standardizer(rng);
  pipeline::PolarThresholds thresholds = seeded_thresholds(rng);
  return pipeline::BackgroundNet(std::move(engine), std::move(standardizer),
                                 std::move(thresholds), /*uses_polar=*/true);
}

pipeline::DEtaNet synthetic_deta_net(std::uint64_t seed) {
  core::Rng rng(seed);
  nn::Sequential model = nn::build_mlp(nn::deta_net_spec(), rng);
  nn::Standardizer standardizer = fitted_standardizer(rng);
  return pipeline::DEtaNet(std::move(model), std::move(standardizer),
                           /*uses_polar=*/true, /*calibration=*/1.0);
}

recon::ComptonRing synthetic_ring(core::Rng& rng) {
  recon::ComptonRing ring;
  ring.axis = rng.isotropic_direction();
  ring.eta = rng.uniform(-0.95, 0.95);
  ring.d_eta = rng.uniform(0.005, 0.4);
  ring.hit1.position = {rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0),
                        rng.uniform(0.0, 40.0)};
  ring.hit2.position = {rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0),
                        rng.uniform(0.0, 40.0)};
  ring.hit1.energy = rng.uniform(0.05, 2.0);
  ring.hit2.energy = rng.uniform(0.05, 2.0);
  ring.hit1.sigma_energy = rng.uniform(0.005, 0.1);
  ring.hit2.sigma_energy = rng.uniform(0.005, 0.1);
  ring.e_total = ring.hit1.energy + ring.hit2.energy;
  ring.sigma_e_total = ring.hit1.sigma_energy + ring.hit2.sigma_energy;
  ring.n_hits = 2 + static_cast<int>(rng.uniform_index(4));
  ring.order_chi2 = rng.uniform(0.0, 5.0);
  ring.true_direction = rng.hemisphere_direction_up();
  return ring;
}

}  // namespace adapt::serve
