#pragma once

/// \file throughput.hpp
/// Measurement harness for the serving layer, shared by
/// bench_serve_throughput and `adaptctl serve-bench`.
///
/// Two measurement modes on the same pre-generated event stream:
///   * serve mode — producers submit into a running InferenceServer;
///     events/s and per-event latency quantiles come out of the sink.
///   * per-ring baseline — the same forwards issued one ring at a time
///     with no queue or batching: the cost the serving layer exists to
///     amortize.

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "pipeline/models.hpp"

namespace adapt::serve {

struct ThroughputConfig {
  std::size_t events = 20000;
  std::size_t producers = 1;
  std::size_t queue_capacity = 32768;
  std::size_t max_batch = 64;
  std::chrono::microseconds flush_deadline{200};
  double degrade_watermark = 0.75;
  bool degrade_when_saturated = true;
  std::uint64_t seed = 42;

  /// --- streaming-localization alert mode (serve-bench --alert-deg) ---
  /// When > 0, the event stream becomes a synthetic burst (rings
  /// consistent with one source direction plus a background fraction),
  /// a StreamLocalizer observes every flushed batch, and the report
  /// carries the first crossing of the 68% credible radius below this
  /// threshold [deg].
  double alert_deg = 0.0;
  double alert_content = 0.68;
  std::size_t alert_check_every = 32;
  double source_polar_deg = 35.0;
  double source_azimuth_deg = 120.0;
  double source_d_eta = 0.05;
  double background_fraction = 0.25;
  double loc_resolution_deg = 1.0;
};

struct ThroughputReport {
  double events_per_s = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double wall_ms = 0.0;
  std::uint64_t processed = 0;
  std::uint64_t batches = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;

  /// Alert-mode outputs (meaningful when ThroughputConfig::alert_deg > 0).
  bool alert_fired = false;
  std::uint64_t alert_rings = 0;      ///< Accepted rings at the crossing.
  double alert_radius_deg = 0.0;      ///< Radius at the crossing.
  double alert_wall_ms = 0.0;         ///< Server start -> alert callback.
  double final_radius_deg = 0.0;      ///< Last trajectory point.
  std::uint64_t loc_rings = 0;        ///< Rings fed to the localizer.
  std::uint64_t loc_skipped = 0;      ///< Background-vetoed, not fed.
};

/// Run the full queue -> batcher -> batched-forward path.
ThroughputReport measure_serve_throughput(pipeline::Models models,
                                          const ThroughputConfig& config);

/// Same events, one single-ring forward pair per event, no serving
/// machinery.  `events` and `seed` are read from `config`.
ThroughputReport measure_per_ring_baseline(pipeline::Models models,
                                           const ThroughputConfig& config);

}  // namespace adapt::serve
