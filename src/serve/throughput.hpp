#pragma once

/// \file throughput.hpp
/// Measurement harness for the serving layer, shared by
/// bench_serve_throughput and `adaptctl serve-bench`.
///
/// Two measurement modes on the same pre-generated event stream:
///   * serve mode — producers submit into a running InferenceServer;
///     events/s and per-event latency quantiles come out of the sink.
///   * per-ring baseline — the same forwards issued one ring at a time
///     with no queue or batching: the cost the serving layer exists to
///     amortize.

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "pipeline/models.hpp"

namespace adapt::serve {

struct ThroughputConfig {
  std::size_t events = 20000;
  std::size_t producers = 1;
  std::size_t queue_capacity = 32768;
  std::size_t max_batch = 64;
  std::chrono::microseconds flush_deadline{200};
  double degrade_watermark = 0.75;
  bool degrade_when_saturated = true;
  std::uint64_t seed = 42;
};

struct ThroughputReport {
  double events_per_s = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double wall_ms = 0.0;
  std::uint64_t processed = 0;
  std::uint64_t batches = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
};

/// Run the full queue -> batcher -> batched-forward path.
ThroughputReport measure_serve_throughput(pipeline::Models models,
                                          const ThroughputConfig& config);

/// Same events, one single-ring forward pair per event, no serving
/// machinery.  `events` and `seed` are read from `config`.
ThroughputReport measure_per_ring_baseline(pipeline::Models models,
                                           const ThroughputConfig& config);

}  // namespace adapt::serve
