#include "serve/throughput.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "core/require.hpp"
#include "core/rng.hpp"
#include "serve/inference_server.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::serve {

namespace {

struct Event {
  recon::ComptonRing ring;
  double polar_deg = 0.0;
};

std::vector<Event> make_stream(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<Event> events(n);
  for (Event& e : events) {
    e.ring = synthetic_ring(rng);
    e.polar_deg = rng.uniform(0.0, 90.0);
  }
  return events;
}

double percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[idx];
}

}  // namespace

ThroughputReport measure_serve_throughput(pipeline::Models models,
                                          const ThroughputConfig& config) {
  ADAPT_REQUIRE(config.events >= 1, "need at least one event");
  ADAPT_REQUIRE(config.producers >= 1, "need at least one producer");
  const std::vector<Event> events = make_stream(config.events, config.seed);

  ServeConfig sc;
  sc.queue_capacity = config.queue_capacity;
  sc.max_batch = config.max_batch;
  sc.flush_deadline = config.flush_deadline;
  sc.degrade_watermark = config.degrade_watermark;
  sc.degrade_when_saturated = config.degrade_when_saturated;

  // The sink runs on the single worker thread, so plain vectors are
  // safe; they are read only after stop() joins the worker.
  std::vector<double> latencies;
  latencies.reserve(config.events);
  InferenceServer server(models, sc,
                         [&](std::span<const ServeResult> results) {
                           for (const ServeResult& r : results)
                             latencies.push_back(r.latency_ms);
                         });

  const auto t0 = std::chrono::steady_clock::now();
  server.start();
  {
    std::vector<std::thread> producers;
    const std::size_t per =
        (events.size() + config.producers - 1) / config.producers;
    for (std::size_t p = 0; p < config.producers; ++p) {
      const std::size_t lo = p * per;
      const std::size_t hi = std::min(events.size(), lo + per);
      if (lo >= hi) break;
      producers.emplace_back([&, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i)
          server.submit(events[i].ring, events[i].polar_deg);
      });
    }
    for (std::thread& t : producers) t.join();
  }
  server.stop();
  const auto t1 = std::chrono::steady_clock::now();

  const auto stats = server.stats();
  ThroughputReport report;
  report.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  report.processed = stats.processed;
  report.batches = stats.batches;
  report.shed = stats.shed;
  report.degraded = stats.degraded;
  report.events_per_s = report.wall_ms > 0.0
                            ? static_cast<double>(stats.processed) * 1e3 /
                                  report.wall_ms
                            : 0.0;
  report.p50_latency_ms = percentile(latencies, 0.50);
  report.p99_latency_ms = percentile(latencies, 0.99);
  return report;
}

ThroughputReport measure_per_ring_baseline(pipeline::Models models,
                                           const ThroughputConfig& config) {
  ADAPT_REQUIRE(config.events >= 1, "need at least one event");
  const std::vector<Event> events = make_stream(config.events, config.seed);

  std::vector<double> latencies;
  latencies.reserve(events.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const Event& e : events) {
    const auto e0 = std::chrono::steady_clock::now();
    const std::span<const recon::ComptonRing> ring(&e.ring, 1);
    const std::span<const double> polar(&e.polar_deg, 1);
    (void)models.classify_background_batch(ring, polar);
    (void)models.predict_deta_batch(ring, polar);
    latencies.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - e0)
                            .count());
  }
  const auto t1 = std::chrono::steady_clock::now();

  ThroughputReport report;
  report.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  report.processed = events.size();
  report.batches = events.size();
  report.events_per_s =
      report.wall_ms > 0.0
          ? static_cast<double>(events.size()) * 1e3 / report.wall_ms
          : 0.0;
  report.p50_latency_ms = percentile(latencies, 0.50);
  report.p99_latency_ms = percentile(latencies, 0.99);
  return report;
}

}  // namespace adapt::serve
