#include "serve/throughput.hpp"

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "core/require.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "serve/inference_server.hpp"
#include "serve/stream_localizer.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::serve {

namespace {

struct Event {
  recon::ComptonRing ring;
  double polar_deg = 0.0;
};

std::vector<Event> make_stream(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<Event> events(n);
  for (Event& e : events) {
    e.ring = synthetic_ring(rng);
    e.polar_deg = rng.uniform(0.0, 90.0);
  }
  return events;
}

/// Synthetic burst for the alert mode: rings whose cones are
/// consistent with one source direction (eta = axis . source + noise)
/// mixed with a fraction of pure background cones.  Detector-side
/// fields still come from synthetic_ring so the NN feature extractors
/// see realistic inputs.
std::vector<Event> make_burst_stream(std::size_t n,
                                     const ThroughputConfig& config) {
  core::Rng rng(config.seed);
  const core::Vec3 source =
      core::from_spherical(core::deg_to_rad(config.source_polar_deg),
                           core::deg_to_rad(config.source_azimuth_deg));
  std::vector<Event> events(n);
  for (Event& e : events) {
    e.ring = synthetic_ring(rng);
    e.ring.axis = rng.isotropic_direction();
    e.ring.d_eta = config.source_d_eta;
    if (rng.uniform() < config.background_fraction) {
      e.ring.eta = rng.uniform(-1.0, 1.0);
    } else {
      e.ring.eta = std::clamp(
          e.ring.axis.dot(source) + rng.normal(0.0, config.source_d_eta),
          -1.0, 1.0);
    }
    e.polar_deg = rng.uniform(0.0, 90.0);
  }
  return events;
}

double percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[idx];
}

}  // namespace

ThroughputReport measure_serve_throughput(pipeline::Models models,
                                          const ThroughputConfig& config) {
  ADAPT_REQUIRE(config.events >= 1, "need at least one event");
  ADAPT_REQUIRE(config.producers >= 1, "need at least one producer");
  const bool alert_mode = config.alert_deg > 0.0;
  const std::vector<Event> events =
      alert_mode ? make_burst_stream(config.events, config)
                 : make_stream(config.events, config.seed);

  ServeConfig sc;
  sc.queue_capacity = config.queue_capacity;
  sc.max_batch = config.max_batch;
  sc.flush_deadline = config.flush_deadline;
  sc.degrade_watermark = config.degrade_watermark;
  sc.degrade_when_saturated = config.degrade_when_saturated;

  // The sink runs on the single worker thread, so plain vectors are
  // safe; they are read only after stop() joins the worker.
  std::vector<double> latencies;
  latencies.reserve(config.events);
  InferenceServer server(models, sc,
                         [&](std::span<const ServeResult> results) {
                           for (const ServeResult& r : results)
                             latencies.push_back(r.latency_ms);
                         });

  // The alert clock starts with the server: alert_wall_ms is the
  // end-to-end "how long until we could have alerted" number.
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_ptr<StreamLocalizer> localizer;
  double alert_wall_ms = 0.0;
  if (alert_mode) {
    StreamLocalizerConfig lc;
    lc.localizer.resolution_deg = config.loc_resolution_deg;
    lc.alert_radius_deg = config.alert_deg;
    lc.alert_content = config.alert_content;
    lc.check_every = config.alert_check_every;
    // Synthetic-model benches localize with the stream's own analytic
    // widths; the seeded-random NN d_eta would decalibrate the cones.
    lc.use_served_d_eta = false;
    localizer = std::make_unique<StreamLocalizer>(
        lc, [&alert_wall_ms, t0](const AlertInfo&) {
          alert_wall_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        });
    server.set_batch_observer(localizer->observer());
  }
  server.start();
  {
    std::vector<std::thread> producers;
    const std::size_t per =
        (events.size() + config.producers - 1) / config.producers;
    for (std::size_t p = 0; p < config.producers; ++p) {
      const std::size_t lo = p * per;
      const std::size_t hi = std::min(events.size(), lo + per);
      if (lo >= hi) break;
      producers.emplace_back([&, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i)
          server.submit(events[i].ring, events[i].polar_deg);
      });
    }
    for (std::thread& t : producers) t.join();
  }
  server.stop();
  const auto t1 = std::chrono::steady_clock::now();

  const auto stats = server.stats();
  ThroughputReport report;
  report.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  report.processed = stats.processed;
  report.batches = stats.batches;
  report.shed = stats.shed;
  report.degraded = stats.degraded;
  report.events_per_s = report.wall_ms > 0.0
                            ? static_cast<double>(stats.processed) * 1e3 /
                                  report.wall_ms
                            : 0.0;
  report.p50_latency_ms = percentile(latencies, 0.50);
  report.p99_latency_ms = percentile(latencies, 0.99);
  if (localizer) {
    const StreamLocalizer::Status status = localizer->status();
    report.alert_fired = status.alert_fired;
    report.alert_rings = status.alert_rings;
    report.alert_radius_deg = status.alert_radius_deg;
    report.alert_wall_ms = alert_wall_ms;
    report.loc_rings = status.rings_accepted;
    report.loc_skipped = status.rings_skipped_background;
    report.final_radius_deg =
        status.rings_accepted > 0
            ? localizer->credible_radius_deg(config.alert_content)
            : 0.0;
  }
  return report;
}

ThroughputReport measure_per_ring_baseline(pipeline::Models models,
                                           const ThroughputConfig& config) {
  ADAPT_REQUIRE(config.events >= 1, "need at least one event");
  const std::vector<Event> events = make_stream(config.events, config.seed);

  std::vector<double> latencies;
  latencies.reserve(events.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const Event& e : events) {
    const auto e0 = std::chrono::steady_clock::now();
    const std::span<const recon::ComptonRing> ring(&e.ring, 1);
    const std::span<const double> polar(&e.polar_deg, 1);
    (void)models.classify_background_batch(ring, polar);
    (void)models.predict_deta_batch(ring, polar);
    latencies.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - e0)
                            .count());
  }
  const auto t1 = std::chrono::steady_clock::now();

  ThroughputReport report;
  report.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  report.processed = events.size();
  report.batches = events.size();
  report.events_per_s =
      report.wall_ms > 0.0
          ? static_cast<double>(events.size()) * 1e3 / report.wall_ms
          : 0.0;
  report.p50_latency_ms = percentile(latencies, 0.50);
  report.p99_latency_ms = percentile(latencies, 0.99);
  return report;
}

}  // namespace adapt::serve
