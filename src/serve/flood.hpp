#pragma once

/// \file flood.hpp
/// Fleet-scale load harness for the StreamRouter, shared by
/// bench_serve_multistream and `adaptctl flood`.
///
/// A flood run pre-generates one synthetic event stream, assigns each
/// event a logical stream id drawn from a Zipf(skew) distribution over
/// K streams (skew 0 = uniform; larger = hotter head), then replays it
/// through a running StreamRouter from P producer threads.  Out the
/// other side come the numbers the multi-stream layer is judged on:
///   * aggregate events/s and wall time,
///   * per-stream p50/p99 latency, delivered/shed counts, alert state,
///   * the Jain fairness index over per-stream delivery ratios
///     x_i = processed_i / submitted_i — 1.0 when every stream gets the
///     same fraction of its offered load through, 1/K when one stream
///     monopolizes the service.
///
/// The config-from-flags parsers double as the CLI validation layer
/// for `adaptctl flood` and `adaptctl serve-bench`: every flag is
/// parsed strictly (core::CliArgs) and range-checked HERE, so a
/// malformed invocation dies with CliError -> usage -> exit 2 at the
/// CLI boundary instead of tripping an ADAPT_REQUIRE (exit 1) deep in
/// the serve layer — and the rules are unit-testable without spawning
/// a process.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cli.hpp"
#include "pipeline/models.hpp"
#include "serve/throughput.hpp"

namespace adapt::serve {

struct FloodConfig {
  std::size_t streams = 100;
  std::size_t events = 200000;  ///< Total across all streams.
  /// Zipf exponent for the stream popularity ranking: stream k gets
  /// weight (k+1)^-skew.  0 = uniform.
  double skew = 1.0;
  std::size_t producers = 4;
  std::size_t shards = 8;
  std::size_t workers = 4;
  std::size_t shard_capacity = 8192;
  std::size_t per_stream_cap = 1024;
  std::size_t quantum = 16;
  std::size_t max_batch = 64;
  std::chrono::microseconds flush_deadline{200};
  double degrade_watermark = 0.75;
  bool degrade_when_saturated = true;
  std::uint64_t seed = 42;

  /// When > 0, every stream runs its own localizer on a shared
  /// synthetic burst (throughput.hpp alert mode, per stream).
  double alert_deg = 0.0;
  double alert_content = 0.68;
  double background_fraction = 0.25;
  double loc_resolution_deg = 2.0;
};

struct StreamFloodReport {
  std::uint32_t stream_id = 0;
  std::uint64_t submitted = 0;  ///< Offered load (admissions).
  std::uint64_t processed = 0;
  std::uint64_t shed = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  bool alert_fired = false;
};

struct FloodReport {
  double events_per_s = 0.0;  ///< Aggregate, processed / wall.
  double wall_ms = 0.0;
  double p50_latency_ms = 0.0;  ///< Over all delivered events.
  double p99_latency_ms = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t processed = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t mixed_batches = 0;
  std::uint64_t degraded = 0;
  /// Jain index over per-stream delivery ratios; 1.0 = perfectly fair.
  double fairness = 0.0;
  std::size_t alerts_fired = 0;
  std::vector<StreamFloodReport> streams;  ///< By stream id.
};

/// Replay a Zipf-skewed multi-stream flood through a StreamRouter.
FloodReport measure_flood(pipeline::Models models, const FloodConfig& config);

/// Jain's fairness index over per-stream delivery ratios.  Streams
/// with zero offered load are skipped; an empty set scores 1.0.
double jain_fairness(const std::vector<StreamFloodReport>& streams);

/// Strict flag parsing + range validation for `adaptctl flood`.
/// Throws core::CliError on any malformed or out-of-range flag.
FloodConfig flood_config_from_args(const core::CliArgs& args);

/// Strict flag parsing + range validation for `adaptctl serve-bench`.
/// Throws core::CliError on any malformed or out-of-range flag
/// (notably: --batch > --queue, --alert-deg < 0, --alert-content or
/// --background-fraction outside their unit ranges — all formerly
/// either silent or deep ADAPT_REQUIRE aborts).
ThroughputConfig throughput_config_from_args(const core::CliArgs& args);

}  // namespace adapt::serve
