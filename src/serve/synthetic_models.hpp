#pragma once

/// \file synthetic_models.hpp
/// Deterministic stand-in networks and event streams for serving
/// benches and tests.
///
/// The throughput bench and the serve test suite need real forward
/// passes at the paper's layer dimensions, but training the actual
/// networks takes minutes — far too slow for a unit test or a bench
/// warm-up.  These builders produce networks with seeded random
/// weights at the exact paper architectures (background 13-256-128-64-1
/// with BatchNorm, dEta 13-8-16-8-1), so the compute cost per forward
/// is identical to the deployed models and every run is bit-for-bit
/// reproducible from the seed.  The INT8 variant assembles a
/// QuantizedMlp directly (seeded int8 weights) rather than running the
/// full QAT export, again for speed — the integer kernel exercised is
/// the production one.

#include <cstdint>

#include "core/rng.hpp"
#include "pipeline/models.hpp"
#include "recon/ring.hpp"

namespace adapt::serve {

/// FP32 background classifier (paper architecture, BatchNorm blocks)
/// with seeded weights, a deterministic standardizer, and non-trivial
/// per-bin polar thresholds.
pipeline::BackgroundNet synthetic_background_net(std::uint64_t seed);

/// INT8 background classifier: a QuantizedMlp at the same dimensions
/// with seeded int8 weights, driving the production integer kernel.
pipeline::BackgroundNet synthetic_background_net_int8(std::uint64_t seed);

/// dEta regressor (paper architecture) with seeded weights.
pipeline::DEtaNet synthetic_deta_net(std::uint64_t seed);

/// One plausible reconstructed ring: finite features in the ranges the
/// detector produces, so the feature extractor's finiteness contracts
/// hold and the standardizer sees realistic spreads.
recon::ComptonRing synthetic_ring(core::Rng& rng);

}  // namespace adapt::serve
