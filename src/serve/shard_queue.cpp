#include "serve/shard_queue.hpp"

#include <utility>

#include "core/contract.hpp"
#include "core/require.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {

namespace tm = core::telemetry;

ShardQueue::ShardQueue(const ShardQueueConfig& config) : config_(config) {
  ADAPT_REQUIRE(config.capacity >= 1, "shard queue needs capacity >= 1");
  ADAPT_REQUIRE(config.per_stream_cap >= 1 &&
                    config.per_stream_cap <= config.capacity,
                "per-stream cap must be in [1, capacity]");
  ADAPT_REQUIRE(config.quantum >= 1, "round-robin quantum must be >= 1");
}

void ShardQueue::RequestRing::grow() {
  std::vector<ServeRequest> next(buf_.empty() ? 8 : buf_.size() * 2);
  for (std::size_t i = 0; i < count_; ++i)
    next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
  buf_ = std::move(next);
  head_ = 0;
}

ShardQueue::~ShardQueue() {
  core::LockGuard lock(mutex_);
  ADAPT_INVARIANT(pushed_ == popped_ + shed_ + size_,
                  "shard queue ledger imbalance at teardown "
                  "(pushed != popped + shed + resident)");
}

ShardQueue::Stream& ShardQueue::stream_locked(std::uint32_t id) {
  const auto it = streams_.find(id);
  if (it != streams_.end()) return it->second;
  Stream& s = streams_[id];
  s.id = id;
  rr_order_.push_back(&s);  // Node pointers are stable under rehash.
  return s;
}

void ShardQueue::shed_from_deepest_locked() {
  Stream* deepest = nullptr;
  for (Stream* s : rr_order_) {
    if (deepest == nullptr || s->fifo.size() > deepest->fifo.size())
      deepest = s;
  }
  ADAPT_INVARIANT(deepest != nullptr && !deepest->fifo.empty(),
                  "shed on an empty shard");
  deepest->fifo.pop_front();
  ++deepest->shed;
  ++shed_;
  --size_;
}

bool ShardQueue::push(ServeRequest request) {
  static tm::Counter& shed_metric = tm::counter("serve.stream.shed");
  {
    core::LockGuard lock(mutex_);
    if (closed_) {
      ++rejected_;
      return false;
    }
    Stream& s = stream_locked(request.stream_id);
    if (s.fifo.size() >= config_.per_stream_cap) {
      // Per-stream admission: the stream at its cap sheds ITS OWN
      // oldest request.  The flood pays for the flood.
      s.fifo.pop_front();
      ++s.shed;
      ++shed_;
      --size_;
      shed_metric.add();
    } else if (size_ >= config_.capacity) {
      // Whole-shard overload: the deepest stream (the one most
      // responsible for the backlog) sheds its oldest.
      shed_from_deepest_locked();
      shed_metric.add();
    }
    s.fifo.push_back(std::move(request));
    ++s.pushed;
    ++pushed_;
    ++size_;
  }
  nonempty_.notify_one();
  return true;
}

std::size_t ShardQueue::pop_batch(std::vector<ServeRequest>& out,
                                  std::size_t max_items,
                                  std::chrono::microseconds max_wait) {
  ADAPT_REQUIRE(max_items >= 1, "pop_batch needs max_items >= 1");
  core::UniqueLock lock(mutex_);
  if (size_ == 0 && !closed_ && max_wait.count() > 0) {
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    while (size_ == 0 && !closed_) {
      if (nonempty_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;
    }
  }
  if (size_ == 0) return 0;  // Timed out (open) or closed-and-drained.

  // Quantum round-robin fill: cycle the resident streams starting at
  // the persistent cursor, taking up to `quantum` per visit, until the
  // batch is full or the shard is empty.  The cursor advances past
  // every visited stream so the NEXT batch starts where this one
  // stopped — fairness across batches, not just within one.
  std::size_t taken = 0;
  while (taken < max_items && size_ > 0) {
    Stream& s = *rr_order_[rr_cursor_ % rr_order_.size()];
    rr_cursor_ = (rr_cursor_ + 1) % rr_order_.size();
    std::size_t k = config_.quantum;
    if (k > s.fifo.size()) k = s.fifo.size();
    if (k > max_items - taken) k = max_items - taken;
    for (std::size_t i = 0; i < k; ++i) out.push_back(s.fifo.pop_front());
    s.popped += k;
    taken += k;
    size_ -= k;
  }
  popped_ += taken;
  return taken;
}

void ShardQueue::close() {
  {
    core::LockGuard lock(mutex_);
    closed_ = true;
  }
  nonempty_.notify_all();
}

bool ShardQueue::drained() const {
  core::LockGuard lock(mutex_);
  return closed_ && size_ == 0;
}

std::size_t ShardQueue::depth() const {
  core::LockGuard lock(mutex_);
  return size_;
}

std::size_t ShardQueue::stream_depth(std::uint32_t stream_id) const {
  core::LockGuard lock(mutex_);
  const auto it = streams_.find(stream_id);
  return it == streams_.end() ? 0 : it->second.fifo.size();
}

bool ShardQueue::closed() const {
  core::LockGuard lock(mutex_);
  return closed_;
}

ShardQueue::Stats ShardQueue::stats() const {
  core::LockGuard lock(mutex_);
  Stats s;
  s.pushed = pushed_;
  s.popped = popped_;
  s.shed = shed_;
  s.rejected = rejected_;
  s.resident = size_;
  return s;
}

std::vector<ShardQueue::StreamStats> ShardQueue::stream_stats() const {
  core::LockGuard lock(mutex_);
  std::vector<StreamStats> rows;
  rows.reserve(rr_order_.size());
  for (const Stream* s : rr_order_) {
    StreamStats row;
    row.stream_id = s->id;
    row.pushed = s->pushed;
    row.popped = s->popped;
    row.shed = s->shed;
    row.resident = s->fifo.size();
    rows.push_back(row);
  }
  return rows;
}

std::size_t ShardQueue::stream_count() const {
  core::LockGuard lock(mutex_);
  return rr_order_.size();
}

}  // namespace adapt::serve
