#include "serve/inference_server.hpp"

#include <algorithm>
#include <utility>

#include "core/require.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {

namespace tm = core::telemetry;

InferenceServer::InferenceServer(pipeline::Models models, ServeConfig config,
                                 ResultSink sink)
    : models_(models),
      config_(config),
      sink_(std::move(sink)),
      queue_(config.queue_capacity),
      batcher_(queue_, BatchPolicy{config.max_batch, config.flush_deadline}) {
  ADAPT_REQUIRE(static_cast<bool>(sink_), "inference server needs a sink");
  ADAPT_REQUIRE(config.max_batch <= config.queue_capacity,
                "max_batch cannot exceed queue capacity");
  ADAPT_REQUIRE(
      config.degrade_watermark > 0.0 && config.degrade_watermark <= 1.0,
      "degrade watermark must be in (0, 1]");
  ADAPT_REQUIRE(config.d_eta_floor > 0.0 && config.d_eta_cap > config.d_eta_floor,
                "invalid d_eta bounds");
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  ADAPT_REQUIRE(!started_.exchange(true), "server already started");
  worker_ = std::thread([this] { worker_loop(); });
}

std::uint64_t InferenceServer::submit(const recon::ComptonRing& ring,
                                      double polar_deg_guess) {
  ServeRequest request;
  request.ring = ring;
  request.polar_deg_guess = polar_deg_guess;
  request.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  request.enqueued_at = std::chrono::steady_clock::now();
  const std::uint64_t seq = request.sequence;
  return queue_.push(std::move(request)) ? seq : 0;
}

void InferenceServer::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

InferenceServer::Stats InferenceServer::stats() const {
  Stats s;
  s.submitted = next_sequence_.load(std::memory_order_relaxed) - 1;
  s.processed = processed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.shed = queue_.shed_count();
  s.rejected = queue_.rejected_count();
  s.background = background_.load(std::memory_order_relaxed);
  return s;
}

void InferenceServer::worker_loop() {
  static tm::Counter& events_metric = tm::counter("serve.events");
  static tm::Counter& batches_metric = tm::counter("serve.batches");

  // The degrade decision keys on queue depth *after* the pop: the
  // backlog the next flush already faces.  At or above the watermark
  // the server is behind; spending the dEta forward on a batch it
  // cannot afford only deepens the hole.
  const auto watermark = static_cast<std::size_t>(
      config_.degrade_watermark *
      static_cast<double>(config_.queue_capacity));

  std::vector<ServeRequest> batch;
  std::vector<ServeResult> results;
  for (;;) {
    batch.clear();
    const std::size_t n = batcher_.next_batch(batch);
    if (n == 0) break;  // Closed and drained.

    const bool degraded = config_.degrade_when_saturated &&
                          queue_.depth() >= std::max<std::size_t>(watermark, 1);
    results.clear();
    process_batch(batch, degraded, results);

    processed_.fetch_add(n, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    events_metric.add(n);
    batches_metric.add();
    sink_(results);
  }
}

void InferenceServer::process_batch(std::span<const ServeRequest> batch,
                                    bool degraded,
                                    std::vector<ServeResult>& results) {
  static tm::Histogram& infer_ms = tm::histogram("serve.infer_ms");
  static tm::Histogram& latency_ms = tm::histogram("serve.latency_ms");
  static tm::Counter& degraded_metric = tm::counter("serve.degraded_events");

  // One contiguous ring array + per-ring polar guesses = one feature
  // Tensor per network per flush.
  thread_local std::vector<recon::ComptonRing> rings;
  thread_local std::vector<double> polar;
  rings.clear();
  polar.clear();
  for (const ServeRequest& r : batch) {
    rings.push_back(r.ring);
    polar.push_back(r.polar_deg_guess);
  }

  std::vector<std::uint8_t> is_background;
  std::vector<double> d_eta;
  {
    tm::ScopedTimer timer(infer_ms);
    is_background = models_.classify_background_batch(rings, polar);
    // Degraded mode = the null-deta analytic passthrough, by
    // construction the same clamp the Models fallback applies.
    pipeline::Models deta_source = models_;
    if (degraded) deta_source.deta = nullptr;
    d_eta = deta_source.predict_deta_batch(rings, polar, config_.d_eta_floor,
                                           config_.d_eta_cap);
  }

  const bool actually_degraded = degraded && models_.deta != nullptr;
  if (actually_degraded) {
    degraded_.fetch_add(batch.size(), std::memory_order_relaxed);
    degraded_metric.add(batch.size());
  }

  const auto now = std::chrono::steady_clock::now();
  results.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ServeResult res;
    res.sequence = batch[i].sequence;
    res.is_background = is_background[i];
    res.d_eta = d_eta[i];
    res.degraded = actually_degraded;
    res.latency_ms = std::chrono::duration<double, std::milli>(
                         now - batch[i].enqueued_at)
                         .count();
    latency_ms.record(res.latency_ms);
    if (res.is_background) background_.fetch_add(1, std::memory_order_relaxed);
    results.push_back(res);
  }
}

}  // namespace adapt::serve
