#include "serve/inference_server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/require.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {

namespace tm = core::telemetry;

InferenceServer::InferenceServer(pipeline::Models models, ServeConfig config,
                                 ResultSink sink)
    : models_(models),
      config_(config),
      sink_(std::move(sink)),
      queue_(config.queue_capacity),
      batcher_(queue_, BatchPolicy{config.max_batch, config.flush_deadline}) {
  ADAPT_REQUIRE(static_cast<bool>(sink_), "inference server needs a sink");
  ADAPT_REQUIRE(config.max_batch <= config.queue_capacity,
                "max_batch cannot exceed queue capacity");
  ADAPT_REQUIRE(
      config.degrade_watermark > 0.0 && config.degrade_watermark <= 1.0,
      "degrade watermark must be in (0, 1]");
  ADAPT_REQUIRE(config.d_eta_floor > 0.0 && config.d_eta_cap > config.d_eta_floor,
                "invalid d_eta bounds");
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  ADAPT_REQUIRE(!started_.exchange(true), "server already started");
  worker_ = std::thread([this] { worker_loop(); });
}

void InferenceServer::set_engine(InferenceEngine engine) {
  ADAPT_REQUIRE(!started_.load(), "set_engine must precede start()");
  engine_ = std::move(engine);
}

void InferenceServer::set_batch_observer(BatchObserver observer) {
  ADAPT_REQUIRE(!started_.load(), "set_batch_observer must precede start()");
  batch_observer_ = std::move(observer);
}

std::uint64_t InferenceServer::submit(const recon::ComptonRing& ring,
                                      double polar_deg_guess,
                                      std::uint32_t stream_id) {
  ServeRequest request;
  request.ring = ring;
  request.polar_deg_guess = polar_deg_guess;
  request.stream_id = stream_id;
  request.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  request.enqueued_at = std::chrono::steady_clock::now();
  const std::uint64_t seq = request.sequence;
  return queue_.push(std::move(request)) ? seq : 0;
}

void InferenceServer::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

InferenceServer::Stats InferenceServer::stats() const {
  Stats s;
  s.submitted = next_sequence_.load(std::memory_order_relaxed) - 1;
  s.processed = processed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.shed = queue_.shed_count();
  s.rejected = queue_.rejected_count();
  s.background = background_.load(std::memory_order_relaxed);
  s.fallback = fallback_.load(std::memory_order_relaxed);
  s.batch_errors = batch_errors_.load(std::memory_order_relaxed);
  return s;
}

void InferenceServer::worker_loop() {
  static tm::Counter& events_metric = tm::counter("serve.events");
  static tm::Counter& batches_metric = tm::counter("serve.batches");

  // The degrade decision keys on queue depth *after* the pop: the
  // backlog the next flush already faces.  At or above the watermark
  // the server is behind; spending the dEta forward on a batch it
  // cannot afford only deepens the hole.
  const auto watermark = static_cast<std::size_t>(
      config_.degrade_watermark *
      static_cast<double>(config_.queue_capacity));

  static tm::Counter& errors_metric = tm::counter("serve.batch_exceptions");

  std::vector<ServeRequest> batch;
  std::vector<ServeResult> results;
  for (;;) {
    batch.clear();
    const std::size_t n = batcher_.next_batch(batch);
    if (n == 0) break;  // Closed and drained.
    in_flight_.store(true, std::memory_order_relaxed);

    const bool degraded = config_.degrade_when_saturated &&
                          queue_.depth() >= std::max<std::size_t>(watermark, 1);
    results.clear();
    // A forward that throws (corrupt weights tripping a contract, an
    // injected transient, an engine bug) must not take the worker
    // thread down with it: the batch fails over to the analytic
    // emergency path and the stream keeps flowing.
    try {
      process_batch(batch, degraded, results);
    } catch (const std::exception&) {
      batch_errors_.fetch_add(1, std::memory_order_relaxed);
      errors_metric.add();
      results.clear();
      emergency_results(batch, results);
    }

    processed_.fetch_add(n, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    events_metric.add(n);
    batches_metric.add();
    // Observer before sink: the Supervisor's sink consumes its
    // duplicate-suppression bookkeeping, and its observer wrapper must
    // still see it intact (stream_localizer.hpp relies on this order
    // so an injected duplicate never double-counts into the sky
    // accumulator).
    if (batch_observer_) batch_observer_(batch, results);
    sink_(results);
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.store(false, std::memory_order_relaxed);
  }
}

void InferenceServer::process_batch(std::span<const ServeRequest> batch,
                                    bool degraded,
                                    std::vector<ServeResult>& results) {
  static tm::Histogram& infer_ms = tm::histogram("serve.infer_ms");
  static tm::Histogram& latency_ms = tm::histogram("serve.latency_ms");
  static tm::Counter& degraded_metric = tm::counter("serve.degraded_events");

  // Structure-of-arrays staging: the AoS request batch splits into a
  // contiguous ring array + per-ring polar guesses, and the fused
  // Models::infer_batch assembles ONE feature panel per flush from
  // them (one quantization + one quantized GEMM per layer on the INT8
  // path, instead of per-row panels).
  thread_local std::vector<recon::ComptonRing> rings;
  thread_local std::vector<double> polar;
  rings.clear();
  polar.clear();
  for (const ServeRequest& r : batch) {
    rings.push_back(r.ring);
    polar.push_back(r.polar_deg_guess);
  }

  BatchOutputs out;
  {
    tm::ScopedTimer timer(infer_ms);
    if (engine_) {
      out = engine_(rings, polar, degraded);
    } else {
      // Degraded mode = the null-deta analytic passthrough, by
      // construction the same clamp the Models fallback applies.
      auto fused = models_.infer_batch(rings, polar, config_.d_eta_floor,
                                       config_.d_eta_cap,
                                       /*allow_deta=*/!degraded);
      out.is_background = std::move(fused.is_background);
      out.d_eta = std::move(fused.d_eta);
      out.degraded = degraded && models_.deta != nullptr;
    }
  }
  ADAPT_REQUIRE(out.is_background.size() == batch.size() &&
                    out.d_eta.size() == batch.size(),
                "inference engine output count mismatch");

  if (out.degraded) {
    degraded_.fetch_add(batch.size(), std::memory_order_relaxed);
    degraded_metric.add(batch.size());
  }
  if (out.fallback)
    fallback_.fetch_add(batch.size(), std::memory_order_relaxed);

  const auto now = std::chrono::steady_clock::now();
  results.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ServeResult res;
    res.sequence = batch[i].sequence;
    res.stream_id = batch[i].stream_id;
    res.is_background = out.is_background[i];
    res.d_eta = out.d_eta[i];
    res.degraded = out.degraded;
    res.fallback = out.fallback;
    res.latency_ms = std::chrono::duration<double, std::milli>(
                         now - batch[i].enqueued_at)
                         .count();
    latency_ms.record(res.latency_ms);
    if (res.is_background) background_.fetch_add(1, std::memory_order_relaxed);
    results.push_back(res);
  }
}

void InferenceServer::emergency_results(std::span<const ServeRequest> batch,
                                        std::vector<ServeResult>& results) {
  static tm::Counter& fallback_metric = tm::counter("serve.fallback_events");

  fallback_.fetch_add(batch.size(), std::memory_order_relaxed);
  fallback_metric.add(batch.size());
  const auto now = std::chrono::steady_clock::now();
  results.reserve(batch.size());
  for (const ServeRequest& r : batch) {
    ServeResult res;
    res.sequence = r.sequence;
    res.stream_id = r.stream_id;
    res.is_background = 0;  // No veto: background leaks are flagged, not
                            // silently dropped science.
    const double analytic =
        std::isfinite(r.ring.d_eta) ? r.ring.d_eta : config_.d_eta_floor;
    res.d_eta = std::clamp(analytic, config_.d_eta_floor, config_.d_eta_cap);
    res.fallback = true;
    res.latency_ms =
        std::chrono::duration<double, std::milli>(now - r.enqueued_at).count();
    results.push_back(res);
  }
}

}  // namespace adapt::serve
