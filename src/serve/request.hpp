#pragma once

/// \file request.hpp
/// Wire types of the streaming serving layer (`adapt::serve`).
///
/// A ServeRequest is one reconstructed Compton ring awaiting NN
/// evaluation — background classification plus a dEta prediction —
/// tagged with the polar-angle guess current when it was enqueued, a
/// monotone sequence number for result matching, and its enqueue
/// timestamp so end-to-end latency (queue wait + batching delay +
/// inference) can be quoted per event, not per batch.

#include <chrono>
#include <cstdint>

#include "recon/ring.hpp"

namespace adapt::serve {

struct ServeRequest {
  recon::ComptonRing ring;
  double polar_deg_guess = 0.0;  ///< Localization estimate at submit time.
  std::uint64_t sequence = 0;    ///< Assigned by InferenceServer::submit.
  std::uint32_t stream_id = 0;   ///< Logical event stream (telescope /
                                 ///< replayed burst).  The single-stream
                                 ///< InferenceServer leaves it 0; the
                                 ///< StreamRouter keys shard placement,
                                 ///< fairness, and per-stream
                                 ///< localization on it.
  std::chrono::steady_clock::time_point enqueued_at{};
};

struct ServeResult {
  std::uint64_t sequence = 0;
  std::uint32_t stream_id = 0;     ///< Copied from the request, so a
                                   ///< shared sink can demultiplex a
                                   ///< mixed multi-stream batch.
  std::uint8_t is_background = 0;  ///< Background net decision (1 = drop).
  double d_eta = 0.0;              ///< NN prediction, or the analytic
                                   ///< propagated value when degraded.
  bool degraded = false;           ///< True when overload policy skipped
                                   ///< the dEta network for this event.
  bool fallback = false;           ///< True when the supervised recovery
                                   ///< path produced this result (analytic
                                   ///< d_eta, no NN veto) because a model
                                   ///< was corrupt or inference failed.
                                   ///< Fallback results are ALWAYS flagged,
                                   ///< never silently substituted.
  double latency_ms = 0.0;         ///< Enqueue -> result, wall clock.
};

}  // namespace adapt::serve
