#pragma once

/// \file inference_server.hpp
/// Streaming NN inference: queue -> micro-batcher -> batched forward.
///
/// The server owns one worker thread that drains the bounded
/// EventQueue through a MicroBatcher and runs the two networks as
/// *batched* forwards — one feature Tensor and one forward() per
/// flush, not one per ring (pipeline::Models::classify_background_batch
/// / predict_deta_batch).  Results are delivered to a caller-supplied
/// sink on the worker thread, in submit order within a batch.
///
/// Overload policy (two independent layers):
///   1. The queue itself sheds oldest-first when full (never blocks a
///      producer; see event_queue.hpp for why oldest).
///   2. When the queue depth at flush time is at or above
///      `degrade_watermark * queue_capacity`, the worker skips the
///      dEta network for that batch and reports the analytic
///      (propagated) d_eta instead — `ServeResult::degraded` is set and
///      `serve.degraded_events` counts them.  Background
///      classification is never skipped: dropping the veto would let
///      background leak into the science stream, while an analytic
///      d_eta merely widens a weight.
///
/// Telemetry: `serve.latency_ms` (enqueue -> result, per event) and
/// `serve.infer_ms` (forward time, per batch) histograms on top of the
/// queue/batcher metrics; `serve.events` / `serve.batches` /
/// `serve.degraded_events` counters.
///
/// Thread-safety: the server itself holds NO lock — every cross-thread
/// field below is an atomic, and all blocking synchronization lives in
/// the EventQueue's core::sync capability (the serve layer's innermost
/// lock).  The thread-safety gate therefore has nothing to check here
/// by construction: there is no guarded state to mis-access.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "pipeline/models.hpp"
#include "serve/event_queue.hpp"
#include "serve/micro_batcher.hpp"

namespace adapt::serve {

struct ServeConfig {
  std::size_t queue_capacity = 4096;
  std::size_t max_batch = 64;
  std::chrono::microseconds flush_deadline{200};
  /// Depth fraction at which the worker degrades to analytic dEta.
  double degrade_watermark = 0.75;
  /// Master switch for the degrade layer (shedding is always on).
  bool degrade_when_saturated = true;
  /// Bound for analytic / NN d_eta alike.
  double d_eta_floor = 1e-4;
  double d_eta_cap = 2.0;
};

/// Consumes each finished micro-batch on the worker thread.  Keep it
/// cheap — inference stalls while the sink runs.
using ResultSink = std::function<void(std::span<const ServeResult>)>;

/// Observes each finished micro-batch on the worker thread *before*
/// the sink runs, with the original requests alongside the results
/// (results[i] answers requests[i]).  ServeResult carries no ring, so
/// consumers that need the event itself — the streaming localizer
/// feeding rings into its sky accumulator — hook in here.  Same
/// cheapness rule as the sink.
using BatchObserver = std::function<void(std::span<const ServeRequest>,
                                         std::span<const ServeResult>)>;

/// What one batch forward produced.  `degraded`/`fallback` apply to
/// the whole batch (the worker stamps them onto each result).
struct BatchOutputs {
  std::vector<std::uint8_t> is_background;  ///< One entry per ring.
  std::vector<double> d_eta;                ///< One entry per ring.
  bool degraded = false;  ///< Overload policy skipped the dEta net.
  bool fallback = false;  ///< Supervised recovery path served this batch.
};

/// Computes the model outputs for one batch on the worker thread.
/// When installed (set_engine), it replaces the built-in direct
/// Models calls — the supervisor's fault-tolerant engine (checksum
/// gating, retry-with-backoff, analytic fallback) plugs in here.
/// `degrade_requested` is the server's own overload signal for this
/// batch.  Must return one is_background and one d_eta per input
/// ring; an engine that throws fails the batch over to the server's
/// analytic emergency path (results flagged `fallback`).
using InferenceEngine = std::function<BatchOutputs(
    std::span<const recon::ComptonRing>, std::span<const double>,
    bool degrade_requested)>;

class InferenceServer {
 public:
  /// `models` pointers must outlive the server; either may be null
  /// (see pipeline::Models for the null semantics).
  InferenceServer(pipeline::Models models, ServeConfig config,
                  ResultSink sink);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Launch the worker.  Call once.
  void start();

  /// Install a replacement inference engine (see InferenceEngine).
  /// Must be called before start().
  void set_engine(InferenceEngine engine);

  /// Install a batch observer (see BatchObserver).  Must be called
  /// before start().
  void set_batch_observer(BatchObserver observer);

  /// Enqueue one ring (thread-safe, non-blocking; any producer
  /// thread).  Returns the assigned sequence number, or 0 if the
  /// server is stopped (sequence numbers start at 1).  `stream_id`
  /// tags the request's logical stream; the single-queue server treats
  /// it as opaque (no per-stream policy) and copies it onto the
  /// result so shared sinks can demultiplex.
  std::uint64_t submit(const recon::ComptonRing& ring,
                       double polar_deg_guess, std::uint32_t stream_id = 0);

  /// Close the queue, drain it, and join the worker.  Every request
  /// admitted before stop() is either delivered to the sink or counted
  /// as shed.  Idempotent.
  void stop();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t processed = 0;
    std::uint64_t batches = 0;
    std::uint64_t degraded = 0;   ///< Events served analytic dEta.
    std::uint64_t shed = 0;       ///< Oldest-shed by the full queue.
    std::uint64_t rejected = 0;   ///< Submitted after stop().
    std::uint64_t background = 0; ///< Events classified as background.
    std::uint64_t fallback = 0;   ///< Events served by a recovery path.
    std::uint64_t batch_errors = 0;  ///< Batches whose forward threw.
  };
  Stats stats() const;

  std::size_t queue_depth() const { return queue_.depth(); }
  const ServeConfig& config() const { return config_; }

  /// Liveness signals for an external watchdog (serve::Supervisor):
  /// `heartbeat` advances once per completed batch; `in_flight` is
  /// true between a batch being popped and its results delivered.  A
  /// worker that is in_flight with an unchanging heartbeat for longer
  /// than the stall budget is wedged in a forward and needs a restart.
  std::uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }
  bool in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

 private:
  void worker_loop();
  void process_batch(std::span<const ServeRequest> batch, bool degraded,
                     std::vector<ServeResult>& results);
  /// Emergency path when a batch forward threw: analytic d_eta
  /// passthrough, no veto, every result flagged `fallback`.
  void emergency_results(std::span<const ServeRequest> batch,
                         std::vector<ServeResult>& results);

  pipeline::Models models_;
  ServeConfig config_;
  ResultSink sink_;
  InferenceEngine engine_;
  BatchObserver batch_observer_;
  EventQueue queue_;
  MicroBatcher batcher_;
  std::thread worker_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> next_sequence_{1};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> background_{0};
  std::atomic<std::uint64_t> fallback_{0};
  std::atomic<std::uint64_t> batch_errors_{0};
  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<bool> in_flight_{false};
};

}  // namespace adapt::serve
