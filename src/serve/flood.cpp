#include "serve/flood.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "core/require.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "serve/stream_router.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::serve {

namespace {

struct FloodEvent {
  recon::ComptonRing ring;
  double polar_deg = 0.0;
  std::uint32_t stream_id = 0;
};

/// Cumulative Zipf(skew) distribution over `streams` ranks; stream k
/// gets weight (k+1)^-skew.  skew 0 degenerates to uniform.
std::vector<double> zipf_cdf(std::size_t streams, double skew) {
  std::vector<double> cdf(streams);
  double total = 0.0;
  for (std::size_t k = 0; k < streams; ++k) {
    total += std::pow(static_cast<double>(k + 1), -skew);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  cdf.back() = 1.0;  // Guard the tail against rounding.
  return cdf;
}

std::vector<FloodEvent> make_flood_stream(const FloodConfig& config) {
  core::Rng rng(config.seed);
  const std::vector<double> cdf = zipf_cdf(config.streams, config.skew);
  const bool alert_mode = config.alert_deg > 0.0;
  // Alert mode: every stream observes the same synthetic burst (one
  // source direction), so each per-stream localizer converges on its
  // own subset of the rings — the per-stream analog of the
  // throughput.hpp burst stream.
  const core::Vec3 source = core::from_spherical(
      core::deg_to_rad(35.0), core::deg_to_rad(120.0));
  constexpr double kSourceDEta = 0.05;

  std::vector<FloodEvent> events(config.events);
  for (FloodEvent& e : events) {
    e.ring = synthetic_ring(rng);
    e.polar_deg = rng.uniform(0.0, 90.0);
    const auto it =
        std::upper_bound(cdf.begin(), cdf.end(), rng.uniform());
    e.stream_id = static_cast<std::uint32_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1));
    if (alert_mode) {
      e.ring.axis = rng.isotropic_direction();
      e.ring.d_eta = kSourceDEta;
      if (rng.uniform() < config.background_fraction) {
        e.ring.eta = rng.uniform(-1.0, 1.0);
      } else {
        e.ring.eta = std::clamp(
            e.ring.axis.dot(source) + rng.normal(0.0, kSourceDEta), -1.0,
            1.0);
      }
    }
  }
  return events;
}

double percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place.size() - 1));
  return sorted_in_place[idx];
}

/// Strict non-negative integer flag (count() rejects 0, which is a
/// legal value for a deadline now that zero means "flush immediately").
std::uint64_t non_negative_count(const core::CliArgs& args,
                                 const std::string& key,
                                 std::uint64_t fallback) {
  const double v = args.number(key, static_cast<double>(fallback));
  if (v < 0.0 || v != std::floor(v) || v > 1e15) {
    throw core::CliError("--" + key + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

void check_unit_interval(const core::CliArgs& args, const std::string& key,
                         double value, bool allow_zero, bool allow_one) {
  const bool lo_ok = allow_zero ? value >= 0.0 : value > 0.0;
  const bool hi_ok = allow_one ? value <= 1.0 : value < 1.0;
  if (!lo_ok || !hi_ok) {
    throw core::CliError("--" + key + "='" + args.text(key, "") +
                         "' is outside " + (allow_zero ? "[" : "(") + "0, 1" +
                         (allow_one ? "]" : ")"));
  }
}

}  // namespace

double jain_fairness(const std::vector<StreamFloodReport>& streams) {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (const StreamFloodReport& s : streams) {
    if (s.submitted == 0) continue;
    const double x =
        static_cast<double>(s.processed) / static_cast<double>(s.submitted);
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n == 0) return 1.0;
  if (sum_sq <= 0.0) return 0.0;  // Offered load, nothing delivered.
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

FloodReport measure_flood(pipeline::Models models, const FloodConfig& config) {
  ADAPT_REQUIRE(config.streams >= 1, "flood needs at least one stream");
  ADAPT_REQUIRE(config.events >= 1, "flood needs at least one event");
  ADAPT_REQUIRE(config.producers >= 1, "flood needs at least one producer");
  const std::vector<FloodEvent> events = make_flood_stream(config);

  RouterConfig rc;
  rc.num_shards = config.shards;
  rc.num_workers = config.workers;
  rc.shard_capacity = config.shard_capacity;
  rc.per_stream_cap = config.per_stream_cap;
  rc.quantum = config.quantum;
  rc.max_batch = config.max_batch;
  rc.flush_deadline = config.flush_deadline;
  rc.degrade_watermark = config.degrade_watermark;
  rc.degrade_when_saturated = config.degrade_when_saturated;
  if (config.alert_deg > 0.0) {
    rc.localize = true;
    rc.localizer_template.localizer.resolution_deg = config.loc_resolution_deg;
    rc.localizer_template.alert_radius_deg = config.alert_deg;
    rc.localizer_template.alert_content = config.alert_content;
    // Synthetic-model floods localize with the rings' own analytic
    // widths (same rationale as the serve-bench alert mode).
    rc.localizer_template.use_served_d_eta = false;
  }

  // One latency vector per stream.  Sink calls for the same stream are
  // serialized by the router (stream -> shard -> worker is static), so
  // concurrent workers never touch the same inner vector.  Reserve for
  // the hot stream's plausible share up front (the single-stream bench
  // reserves fully) so sink-side reallocation does not tax the
  // measured region; the cap keeps the reservation bounded when the
  // stream count is huge.
  std::vector<std::vector<double>> latencies(config.streams);
  const std::size_t reserve_per_stream = std::min<std::size_t>(
      config.events, 8 * (config.events / config.streams) + 256);
  for (auto& v : latencies) v.reserve(reserve_per_stream);
  StreamRouter router(models, rc,
                      [&](std::span<const ServeResult> results) {
                        for (const ServeResult& r : results)
                          latencies[r.stream_id].push_back(r.latency_ms);
                      });

  const auto t0 = std::chrono::steady_clock::now();
  router.start();
  {
    std::vector<std::thread> producers;
    const std::size_t per =
        (events.size() + config.producers - 1) / config.producers;
    for (std::size_t p = 0; p < config.producers; ++p) {
      const std::size_t lo = p * per;
      const std::size_t hi = std::min(events.size(), lo + per);
      if (lo >= hi) break;
      producers.emplace_back([&, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i)
          router.submit(events[i].stream_id, events[i].ring,
                        events[i].polar_deg);
      });
    }
    for (std::thread& t : producers) t.join();
  }
  router.stop();
  const auto t1 = std::chrono::steady_clock::now();

  const StreamRouter::Stats stats = router.stats();
  FloodReport report;
  report.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  report.submitted = stats.submitted;
  report.processed = stats.processed;
  report.shed = stats.shed;
  report.batches = stats.batches;
  report.mixed_batches = stats.mixed_batches;
  report.degraded = stats.degraded;
  report.events_per_s =
      report.wall_ms > 0.0
          ? static_cast<double>(stats.processed) * 1e3 / report.wall_ms
          : 0.0;

  report.streams.resize(config.streams);
  for (std::size_t k = 0; k < config.streams; ++k)
    report.streams[k].stream_id = static_cast<std::uint32_t>(k);
  for (const StreamRouter::StreamStats& row : router.stream_stats()) {
    if (row.stream_id >= config.streams) continue;
    StreamFloodReport& s = report.streams[row.stream_id];
    s.submitted = row.submitted;
    s.processed = row.processed;
    s.shed = row.shed;
    s.alert_fired = row.alert_fired;
    if (s.alert_fired) ++report.alerts_fired;
  }
  std::vector<double> all;
  all.reserve(events.size());
  for (std::size_t k = 0; k < config.streams; ++k) {
    StreamFloodReport& s = report.streams[k];
    s.p50_latency_ms = percentile(latencies[k], 0.50);
    s.p99_latency_ms = percentile(latencies[k], 0.99);
    all.insert(all.end(), latencies[k].begin(), latencies[k].end());
  }
  report.p50_latency_ms = percentile(all, 0.50);
  report.p99_latency_ms = percentile(all, 0.99);
  report.fairness = jain_fairness(report.streams);
  return report;
}

FloodConfig flood_config_from_args(const core::CliArgs& args) {
  FloodConfig cfg;
  cfg.streams = args.count("streams", cfg.streams);
  if (cfg.streams > 1000000) {
    throw core::CliError("--streams must be <= 1000000");
  }
  cfg.events = args.count("events", cfg.events);
  cfg.skew = args.number("skew", cfg.skew);
  if (cfg.skew < 0.0 || cfg.skew > 16.0) {
    throw core::CliError("--skew must be in [0, 16]");
  }
  cfg.producers = args.count("producers", cfg.producers);
  cfg.shards = args.count("shards", cfg.shards);
  cfg.workers = args.count("workers", cfg.workers);
  if (cfg.workers > cfg.shards) {
    throw core::CliError("--workers cannot exceed --shards (a worker "
                         "with no shard would idle forever)");
  }
  cfg.shard_capacity = args.count("shard-cap", cfg.shard_capacity);
  cfg.per_stream_cap = args.count("stream-cap", cfg.per_stream_cap);
  if (cfg.per_stream_cap > cfg.shard_capacity) {
    throw core::CliError("--stream-cap cannot exceed --shard-cap");
  }
  cfg.quantum = args.count("quantum", cfg.quantum);
  cfg.max_batch = args.count("batch", cfg.max_batch);
  if (cfg.max_batch > cfg.shard_capacity) {
    throw core::CliError("--batch cannot exceed --shard-cap");
  }
  cfg.flush_deadline = std::chrono::microseconds(static_cast<long>(
      non_negative_count(args, "deadline-us",
                         static_cast<std::uint64_t>(
                             cfg.flush_deadline.count()))));
  cfg.degrade_watermark = args.number("watermark", cfg.degrade_watermark);
  check_unit_interval(args, "watermark", cfg.degrade_watermark,
                      /*allow_zero=*/false, /*allow_one=*/true);
  cfg.degrade_when_saturated = !args.has("no-degrade");
  cfg.seed = args.count("seed", cfg.seed);
  cfg.alert_deg = args.number("alert-deg", cfg.alert_deg);
  if (cfg.alert_deg < 0.0) {
    throw core::CliError("--alert-deg must be >= 0 (0 disables alerting)");
  }
  cfg.alert_content = args.number("alert-content", cfg.alert_content);
  check_unit_interval(args, "alert-content", cfg.alert_content,
                      /*allow_zero=*/false, /*allow_one=*/false);
  cfg.background_fraction =
      args.number("background-fraction", cfg.background_fraction);
  check_unit_interval(args, "background-fraction", cfg.background_fraction,
                      /*allow_zero=*/true, /*allow_one=*/true);
  cfg.loc_resolution_deg =
      args.positive_number("loc-resolution", cfg.loc_resolution_deg);
  return cfg;
}

ThroughputConfig throughput_config_from_args(const core::CliArgs& args) {
  ThroughputConfig cfg;
  cfg.events = args.count("events", cfg.events);
  cfg.max_batch = args.count("batch", cfg.max_batch);
  cfg.producers = args.count("producers", 2);  // serve-bench CLI default.
  cfg.queue_capacity = args.count("queue", cfg.queue_capacity);
  if (cfg.max_batch > cfg.queue_capacity) {
    throw core::CliError("--batch cannot exceed --queue");
  }
  cfg.flush_deadline = std::chrono::microseconds(static_cast<long>(
      non_negative_count(args, "deadline-us",
                         static_cast<std::uint64_t>(
                             cfg.flush_deadline.count()))));
  cfg.seed = args.count("seed", cfg.seed);
  cfg.alert_deg = args.number("alert-deg", cfg.alert_deg);
  if (cfg.alert_deg < 0.0) {
    throw core::CliError("--alert-deg must be >= 0 (0 disables alerting)");
  }
  cfg.alert_content = args.number("alert-content", cfg.alert_content);
  check_unit_interval(args, "alert-content", cfg.alert_content,
                      /*allow_zero=*/false, /*allow_one=*/false);
  cfg.background_fraction =
      args.number("background-fraction", cfg.background_fraction);
  check_unit_interval(args, "background-fraction", cfg.background_fraction,
                      /*allow_zero=*/true, /*allow_one=*/true);
  return cfg;
}

}  // namespace adapt::serve
