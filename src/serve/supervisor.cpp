#include "serve/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/contract.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {

namespace tm = core::telemetry;

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kRecovering:
      return "recovering";
  }
  return "unknown";
}

Supervisor::Supervisor(pipeline::Models models, SupervisorConfig config,
                       ResultSink sink)
    : config_(config), user_sink_(std::move(sink)), models_(models) {
  ADAPT_REQUIRE(static_cast<bool>(user_sink_), "supervisor needs a sink");
  ADAPT_REQUIRE(config.retry_backoff.count() >= 0, "negative retry backoff");
  if (models_.background)
    background_ref_ = models_.background->weight_checksum();
  if (models_.deta) deta_ref_ = models_.deta->weight_checksum();
  server_ = make_server();
}

Supervisor::~Supervisor() { stop(); }

std::unique_ptr<InferenceServer> Supervisor::make_server() {
  // The inner server carries *no* models: every forward goes through
  // engine(), which applies the supervisor's quarantine flags to the
  // attached models under state_mutex_.
  auto server = std::make_unique<InferenceServer>(
      pipeline::Models{}, config_.serve,
      [this](std::span<const ServeResult> results) { deliver(results); });
  server->set_engine([this](std::span<const recon::ComptonRing> rings,
                            std::span<const double> polar,
                            bool degrade_requested) {
    return engine(rings, polar, degrade_requested);
  });
  // Installed unconditionally (not only when batch_observer_ is set):
  // make_server() also runs from the constructor, before
  // set_batch_observer() can have been called.
  server->set_batch_observer([this](std::span<const ServeRequest> requests,
                                    std::span<const ServeResult> results) {
    observe_batch(requests, results);
  });
  return server;
}

void Supervisor::set_batch_observer(BatchObserver observer) {
  ADAPT_REQUIRE(!started_.load(), "install observers before start()");
  batch_observer_ = std::move(observer);
}

void Supervisor::observe_batch(std::span<const ServeRequest> requests,
                               std::span<const ServeResult> results) {
  if (!batch_observer_) return;
  observed_requests_.clear();
  observed_results_.clear();
  {
    core::LockGuard lock(sink_mutex_);
    // Filter injected duplicates WITHOUT erasing them: the worker
    // calls the observer before the sink, and deliver() still needs
    // the entries to suppress (and count) the duplicate results
    // themselves.
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!expected_duplicates_.empty() &&
          expected_duplicates_.count(results[i].sequence) > 0)
        continue;
      observed_requests_.push_back(requests[i]);
      observed_results_.push_back(results[i]);
    }
  }
  // sink_mutex_ released: an observer that re-enters the supervisor
  // (e.g. submit(), which takes server_mutex_ -> sink_mutex_ on the
  // duplicate path) must not deadlock against the lock that filtered
  // its batch (regression-tested in tests/serve/supervisor_test.cpp).
  if (!observed_results_.empty())
    batch_observer_(observed_requests_, observed_results_);
}

void Supervisor::start() {
  ADAPT_REQUIRE(!started_.exchange(true), "supervisor already started");
  {
    core::LockGuard lock(server_mutex_);
    server_->start();
  }
  if (config_.watchdog_interval.count() > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

void Supervisor::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  watchdog_stop_.store(true);
  if (watchdog_.joinable()) watchdog_.join();
  core::LockGuard lock(server_mutex_);
  if (server_) server_->stop();
}

void Supervisor::set_queue_fault_hook(QueueFaultHook hook) {
  ADAPT_REQUIRE(!started_.load(), "install hooks before start()");
  queue_fault_hook_ = std::move(hook);
}

void Supervisor::set_forward_hook(ForwardHook hook) {
  ADAPT_REQUIRE(!started_.load(), "install hooks before start()");
  forward_hook_ = std::move(hook);
}

bool Supervisor::ring_admissible(const recon::ComptonRing& ring,
                                 double polar_deg_guess) {
  const auto finite3 = [](const core::Vec3& v) {
    return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
  };
  return finite3(ring.axis) && core::is_cosine(ring.eta) &&
         std::isfinite(ring.d_eta) && ring.d_eta >= 0.0 &&
         std::isfinite(ring.e_total) && ring.e_total >= 0.0 &&
         std::isfinite(ring.hit1.energy) && ring.hit1.energy >= 0.0 &&
         std::isfinite(ring.hit2.energy) && ring.hit2.energy >= 0.0 &&
         finite3(ring.hit1.position) && finite3(ring.hit2.position) &&
         std::isfinite(polar_deg_guess);
}

std::uint64_t Supervisor::submit(const recon::ComptonRing& ring,
                                 double polar_deg_guess,
                                 std::uint32_t stream_id) {
  static tm::Counter& rejected_metric =
      tm::counter("serve.supervisor.input_rejected");
  static tm::Counter& drops_metric =
      tm::counter("serve.supervisor.queue_drops");

  if (config_.validate_inputs && !ring_admissible(ring, polar_deg_guess)) {
    input_rejected_.fetch_add(1, std::memory_order_relaxed);
    rejected_metric.add();
    return 0;
  }
  const QueueFault fault =
      queue_fault_hook_ ? queue_fault_hook_() : QueueFault::kNone;
  if (fault == QueueFault::kDrop) {
    // An injected drop is absorbed here: counted, never enqueued, so
    // the downstream stream simply continues.
    queue_drops_.fetch_add(1, std::memory_order_relaxed);
    drops_metric.add();
    return 0;
  }

  core::LockGuard lock(server_mutex_);
  if (!server_) return 0;
  const std::uint64_t seq = server_->submit(ring, polar_deg_guess, stream_id);
  if (seq == 0) return 0;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (fault == QueueFault::kDuplicate) {
    // Register the duplicate before the worker can deliver it:
    // deliver() serializes on sink_mutex_, so holding it across the
    // second submit closes the publish/consume race.  This is the one
    // place two supervisor locks nest: server_mutex_ -> sink_mutex_
    // (DESIGN.md lock ordering).
    core::LockGuard sink_lock(sink_mutex_);
    const std::uint64_t dup =
        server_->submit(ring, polar_deg_guess, stream_id);
    if (dup != 0) expected_duplicates_.insert(dup);
  }
  return seq;
}

BatchOutputs Supervisor::analytic_outputs(
    std::span<const recon::ComptonRing> rings) const {
  BatchOutputs out;
  out.fallback = true;
  out.is_background.assign(rings.size(), 0);  // No veto: flagged, not dropped.
  out.d_eta.resize(rings.size());
  for (std::size_t i = 0; i < rings.size(); ++i) {
    const double analytic = std::isfinite(rings[i].d_eta)
                                ? rings[i].d_eta
                                : config_.serve.d_eta_floor;
    out.d_eta[i] = std::clamp(analytic, config_.serve.d_eta_floor,
                              config_.serve.d_eta_cap);
  }
  return out;
}

BatchOutputs Supervisor::engine(std::span<const recon::ComptonRing> rings,
                                std::span<const double> polar,
                                bool degrade_requested) {
  static tm::Counter& retries_metric = tm::counter("serve.supervisor.retries");
  static tm::Counter& recovered_metric =
      tm::counter("serve.supervisor.transient_recovered");
  static tm::Counter& fallback_metric =
      tm::counter("serve.supervisor.fallback_batches");

  core::UniqueLock lock(state_mutex_);
  for (std::size_t attempt = 0;; ++attempt) {
    // Quarantined models are nulled out for this batch; the
    // pipeline::Models null semantics (no veto / analytic d_eta) are
    // exactly the fallback path, and the batch is flagged.
    pipeline::Models effective = models_;
    if (!background_ok_) effective.background = nullptr;
    if (!deta_ok_) effective.deta = nullptr;
    const bool model_fallback = (models_.background && !background_ok_) ||
                                (models_.deta && !deta_ok_);
    try {
      if (forward_hook_) forward_hook_(rings.size());
      BatchOutputs out;
      out.is_background = effective.classify_background_batch(rings, polar);
      pipeline::Models deta_source = effective;
      if (degrade_requested) deta_source.deta = nullptr;
      out.d_eta = deta_source.predict_deta_batch(
          rings, polar, config_.serve.d_eta_floor, config_.serve.d_eta_cap);
      out.degraded = degrade_requested && effective.deta != nullptr;
      out.fallback = model_fallback;
      ADAPT_ENSURE(out.is_background.size() == rings.size() &&
                       out.d_eta.size() == rings.size(),
                   "supervised engine must emit one result per ring");
      if (model_fallback) {
        fallback_batches_.fetch_add(1, std::memory_order_relaxed);
        fallback_metric.add();
      } else {
        // A clean batch after a restore completes the recovery: no
        // fallback-flagged result can follow it (recovery-ordering
        // invariant; tests/fault).
        update_state_locked(/*allow_complete_recovery=*/true);
      }
      if (attempt > 0) {
        transient_recovered_.fetch_add(1, std::memory_order_relaxed);
        recovered_metric.add();
      }
      return out;
    } catch (const std::exception&) {
      if (attempt >= config_.max_retries) {
        // Persistent failure: serve the batch analytically, flagged.
        fallback_batches_.fetch_add(1, std::memory_order_relaxed);
        fallback_metric.add();
        return analytic_outputs(rings);
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      retries_metric.add();
      // Back off without pinning model state: a health tick or restore
      // may run between attempts, so effective is recomputed above.
      const auto backoff =
          config_.retry_backoff * (1u << std::min<std::size_t>(attempt, 10));
      lock.unlock();
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      lock.lock();
    }
  }
}

void Supervisor::deliver(std::span<const ServeResult> results) {
  static tm::Counter& suppressed_metric =
      tm::counter("serve.supervisor.duplicates_suppressed");
  static tm::Counter& delivered_metric =
      tm::counter("serve.supervisor.delivered");

  filtered_.clear();
  {
    core::LockGuard lock(sink_mutex_);
    for (const ServeResult& r : results) {
      if (!expected_duplicates_.empty() &&
          expected_duplicates_.erase(r.sequence) > 0) {
        duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
        suppressed_metric.add();
        continue;
      }
      delivered_.fetch_add(1, std::memory_order_relaxed);
      delivered_metric.add();
      if (r.fallback)
        delivered_fallback_.fetch_add(1, std::memory_order_relaxed);
      if (r.degraded)
        delivered_degraded_.fetch_add(1, std::memory_order_relaxed);
      filtered_.push_back(r);
    }
  }
  // The user sink runs with sink_mutex_ released (same contract as the
  // batch observer): suppression bookkeeping is already done, and a
  // sink that re-enters the supervisor must not deadlock.
  if (!filtered_.empty()) user_sink_(filtered_);
}

void Supervisor::update_state_locked(bool allow_complete_recovery) {
  static tm::Counter& degraded_metric =
      tm::counter("serve.supervisor.state_degraded");
  static tm::Counter& recovering_metric =
      tm::counter("serve.supervisor.state_recovering");
  static tm::Counter& healthy_metric =
      tm::counter("serve.supervisor.state_healthy");

  const bool all_ok = background_ok_ && deta_ok_;
  if (!all_ok) {
    if (state_ != HealthState::kDegraded) {
      state_ = HealthState::kDegraded;
      degraded_entered_.fetch_add(1, std::memory_order_relaxed);
      degraded_metric.add();
    }
    return;
  }
  if (state_ == HealthState::kDegraded) {
    state_ = HealthState::kRecovering;
    recovering_entered_.fetch_add(1, std::memory_order_relaxed);
    recovering_metric.add();
  }
  if (state_ == HealthState::kRecovering && allow_complete_recovery) {
    state_ = HealthState::kHealthy;
    healthy_entered_.fetch_add(1, std::memory_order_relaxed);
    healthy_metric.add();
  }
}

void Supervisor::health_tick() {
  core::LockGuard lock(state_mutex_);
  health_tick_locked();
}

void Supervisor::health_tick_locked() {
  static tm::Counter& checksum_metric =
      tm::counter("serve.supervisor.checksum_failures");

  // Only ok -> bad transitions count: a model already quarantined stays
  // quarantined (and uncounted) until an explicit restore re-arms it.
  if (background_ok_ && models_.background &&
      models_.background->weight_checksum() != background_ref_) {
    background_ok_ = false;
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    checksum_metric.add();
  }
  if (deta_ok_ && models_.deta &&
      models_.deta->weight_checksum() != deta_ref_) {
    deta_ok_ = false;
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    checksum_metric.add();
  }
  update_state_locked(/*allow_complete_recovery=*/true);
}

bool Supervisor::try_health_tick() {
  // The tick body runs under the TRY-acquired lock.  The previous
  // shape (try-lock, release, then call the blocking health_tick())
  // was a TOCTOU: between the release and the re-acquire the worker
  // could enter a forward — or stall in one — and the watchdog would
  // block on exactly the wedge it exists to detect.
  if (!state_mutex_.try_lock()) return false;  // Worker mid-forward.
  health_tick_locked();
  state_mutex_.unlock();
  return true;
}

void Supervisor::with_models_quiesced(
    const std::function<void(pipeline::Models&)>& fn) {
  ADAPT_REQUIRE(static_cast<bool>(fn), "null quiesce callback");
  // Deliberate callback-under-lock (the only one besides the forward
  // hook): exclusive model access IS the quiesce contract.  `fn` must
  // not call back into the Supervisor.
  core::LockGuard lock(state_mutex_);
  fn(models_);
}

void Supervisor::restore_background(pipeline::BackgroundNet* net) {
  static tm::Counter& restores_metric =
      tm::counter("serve.supervisor.restores");
  core::LockGuard lock(state_mutex_);
  models_.background = net;
  background_ref_ = net ? net->weight_checksum() : 0;
  background_ok_ = true;
  restores_.fetch_add(1, std::memory_order_relaxed);
  restores_metric.add();
  // Recovery completes on the first clean batch (or an idle tick),
  // not here: kRecovering marks the drain window.
  update_state_locked(/*allow_complete_recovery=*/false);
}

void Supervisor::restore_deta(pipeline::DEtaNet* net) {
  static tm::Counter& restores_metric =
      tm::counter("serve.supervisor.restores");
  core::LockGuard lock(state_mutex_);
  models_.deta = net;
  deta_ref_ = net ? net->weight_checksum() : 0;
  deta_ok_ = true;
  restores_.fetch_add(1, std::memory_order_relaxed);
  restores_metric.add();
  update_state_locked(/*allow_complete_recovery=*/false);
}

void Supervisor::watchdog_loop() {
  static tm::Counter& restarts_metric =
      tm::counter("serve.supervisor.watchdog_restarts");

  std::uint64_t last_heartbeat = 0;
  bool stall_candidate = false;
  auto stall_since = std::chrono::steady_clock::now();
  std::size_t samples = 0;
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(config_.watchdog_interval);
    if (watchdog_stop_.load(std::memory_order_relaxed)) break;

    std::uint64_t heartbeat = 0;
    bool in_flight = false;
    {
      core::LockGuard lock(server_mutex_);
      if (!server_) continue;
      heartbeat = server_->heartbeat();
      in_flight = server_->in_flight();
    }
    const auto now = std::chrono::steady_clock::now();
    if (heartbeat != last_heartbeat || !in_flight) {
      last_heartbeat = heartbeat;
      stall_candidate = false;
    } else if (!stall_candidate) {
      stall_candidate = true;
      stall_since = now;
    } else if (now - stall_since >= config_.stall_timeout) {
      restart_server();
      restarts_metric.add();
      stall_candidate = false;
      last_heartbeat = 0;
    }

    // Periodic checksum validation *after* the stall check, and only
    // via try-lock: a stalled forward holds state_mutex_, and the
    // watchdog must stay live to detect exactly that.
    if (config_.checksum_every_n_ticks != 0 &&
        ++samples % config_.checksum_every_n_ticks == 0)
      try_health_tick();
  }
}

void Supervisor::restart_server() {
  core::LockGuard lock(server_mutex_);
  if (!server_) return;
  // stop() closes the queue and joins the worker once the stalled
  // forward returns; every admitted request is delivered or counted
  // shed before the replacement starts, so the restart loses nothing.
  server_->stop();
  server_ = make_server();
  server_->start();
  watchdog_restarts_.fetch_add(1, std::memory_order_relaxed);
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.input_rejected = input_rejected_.load(std::memory_order_relaxed);
  s.queue_drops = queue_drops_.load(std::memory_order_relaxed);
  s.duplicates_suppressed =
      duplicates_suppressed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.transient_recovered = transient_recovered_.load(std::memory_order_relaxed);
  s.fallback_batches = fallback_batches_.load(std::memory_order_relaxed);
  s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
  s.restores = restores_.load(std::memory_order_relaxed);
  s.watchdog_restarts = watchdog_restarts_.load(std::memory_order_relaxed);
  s.degraded_entered = degraded_entered_.load(std::memory_order_relaxed);
  s.recovering_entered = recovering_entered_.load(std::memory_order_relaxed);
  s.healthy_entered = healthy_entered_.load(std::memory_order_relaxed);
  s.delivered = delivered_.load(std::memory_order_relaxed);
  s.delivered_fallback = delivered_fallback_.load(std::memory_order_relaxed);
  s.delivered_degraded = delivered_degraded_.load(std::memory_order_relaxed);
  s.state = state();
  return s;
}

HealthState Supervisor::state() const {
  core::LockGuard lock(state_mutex_);
  return state_;
}

InferenceServer::Stats Supervisor::server_stats() const {
  core::LockGuard lock(server_mutex_);
  if (!server_) return {};
  return server_->stats();
}

}  // namespace adapt::serve
