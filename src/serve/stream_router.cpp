#include "serve/stream_router.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/require.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {

namespace tm = core::telemetry;

StreamRouter::StreamRouter(pipeline::Models models, RouterConfig config,
                           ResultSink sink)
    : models_(models), config_(config), sink_(std::move(sink)) {
  ADAPT_REQUIRE(static_cast<bool>(sink_), "stream router needs a sink");
  ADAPT_REQUIRE(config.num_shards >= 1, "router needs at least one shard");
  ADAPT_REQUIRE(config.num_workers >= 1, "router needs at least one worker");
  ADAPT_REQUIRE(config.max_batch >= 1 &&
                    config.max_batch <= config.shard_capacity,
                "max_batch must be in [1, shard_capacity]");
  ADAPT_REQUIRE(
      config.degrade_watermark > 0.0 && config.degrade_watermark <= 1.0,
      "degrade watermark must be in (0, 1]");
  ADAPT_REQUIRE(config.d_eta_floor > 0.0 &&
                    config.d_eta_cap > config.d_eta_floor,
                "invalid d_eta bounds");
  // More workers than shards would leave the surplus workers with no
  // shard to own (shard -> worker is static).
  ADAPT_REQUIRE(config.num_workers <= config.num_shards,
                "num_workers cannot exceed num_shards");
  ShardQueueConfig shard_config;
  shard_config.capacity = config.shard_capacity;
  shard_config.per_stream_cap = config.per_stream_cap;
  shard_config.quantum = config.quantum;
  shards_.reserve(config.num_shards);
  for (std::size_t s = 0; s < config.num_shards; ++s)
    shards_.push_back(std::make_unique<ShardQueue>(shard_config));
}

StreamRouter::~StreamRouter() { stop(); }

void StreamRouter::start() {
  ADAPT_REQUIRE(!started_.exchange(true), "router already started");
  workers_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

void StreamRouter::set_engine(InferenceEngine engine) {
  ADAPT_REQUIRE(!started_.load(), "set_engine must precede start()");
  engine_ = std::move(engine);
}

void StreamRouter::set_alert_callback(StreamAlertCallback on_alert) {
  ADAPT_REQUIRE(!started_.load(), "set_alert_callback must precede start()");
  on_alert_ = std::move(on_alert);
}

StreamRouter::PerStream& StreamRouter::stream_entry(std::uint32_t stream_id) {
  {
    core::ReaderLock lock(streams_mutex_);
    const auto it = streams_.find(stream_id);
    if (it != streams_.end()) return *it->second;
  }
  core::WriterLock lock(streams_mutex_);
  auto& slot = streams_[stream_id];
  if (!slot) {
    static tm::Counter& streams_metric = tm::counter("serve.stream.streams");
    slot = std::make_unique<PerStream>();
    if (config_.localize) {
      AlertCallback forward;
      if (on_alert_) {
        // Tag the shared callback with the stream id.  The localizer
        // fires it outside its own mutex, and we hold no router lock
        // on the worker path that triggers it.
        forward = [this, stream_id](const AlertInfo& info) {
          on_alert_(stream_id, info);
        };
      }
      slot->localizer = std::make_unique<StreamLocalizer>(
          config_.localizer_template, std::move(forward));
    }
    streams_metric.add();
  }
  return *slot;
}

std::uint64_t StreamRouter::submit(std::uint32_t stream_id,
                                   const recon::ComptonRing& ring,
                                   double polar_deg_guess) {
  // Hot path: sequence assignment + one shard push, nothing else.  The
  // router's stream registry is populated worker-side (account_batch);
  // per-stream submission counts are the shard ledger's per-stream
  // `pushed`, maintained under the same shard lock the push already
  // takes.
  static tm::Counter& submitted_metric = tm::counter("serve.stream.submitted");
  ServeRequest request;
  request.ring = ring;
  request.polar_deg_guess = polar_deg_guess;
  request.stream_id = stream_id;
  request.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  request.enqueued_at = std::chrono::steady_clock::now();
  const std::uint64_t seq = request.sequence;
  if (!shards_[shard_of(stream_id)]->push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  submitted_metric.add();
  return seq;
}

void StreamRouter::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  for (auto& shard : shards_) shard->close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void StreamRouter::worker_loop(std::size_t worker_index) {
  static tm::Counter& events_metric = tm::counter("serve.stream.events");
  static tm::Counter& batches_metric = tm::counter("serve.stream.batches");
  static tm::Counter& errors_metric =
      tm::counter("serve.stream.batch_exceptions");
  static tm::Histogram& depth_metric = tm::histogram("serve.stream.shard_depth");

  // The shards this worker owns, in index order.
  std::vector<std::size_t> my_shards;
  for (std::size_t s = worker_index; s < shards_.size();
       s += config_.num_workers)
    my_shards.push_back(s);

  // Same degrade rule as the single-stream server, per shard: key on
  // the owning shard's post-pop depth.
  const auto watermark = static_cast<std::size_t>(
      config_.degrade_watermark * static_cast<double>(config_.shard_capacity));

  // Idle wait when a full polling cycle found every owned shard empty.
  // Blocking on one shard while another fills costs at most this much
  // staleness, which is the same bound the flush deadline already puts
  // on a quiet single-stream server.
  const auto idle_wait = config_.flush_deadline.count() > 0
                             ? config_.flush_deadline
                             : std::chrono::microseconds(100);

  std::size_t cursor = 0;  // Round-robin over my_shards.
  std::vector<ServeRequest> batch;
  std::vector<ServeResult> results;
  for (;;) {
    // One polling cycle of zero-wait pops, then one blocking pop on
    // the next shard in turn.
    std::size_t n = 0;
    std::size_t shard = my_shards[0];
    for (std::size_t i = 0; i <= my_shards.size(); ++i) {
      const bool last = i == my_shards.size();
      const std::size_t s = my_shards[(cursor + i) % my_shards.size()];
      batch.clear();
      n = shards_[s]->pop_batch(batch, config_.max_batch,
                                last ? idle_wait
                                     : std::chrono::microseconds(0));
      if (n > 0) {
        shard = s;
        cursor = (cursor + i + 1) % my_shards.size();
        break;
      }
    }
    if (n == 0) {
      bool all_drained = true;
      for (const std::size_t s : my_shards)
        all_drained = all_drained && shards_[s]->drained();
      if (all_drained) break;
      continue;
    }

    const std::size_t depth_after = shards_[shard]->depth();
    depth_metric.record(static_cast<double>(depth_after));
    const bool degraded = config_.degrade_when_saturated &&
                          depth_after >= std::max<std::size_t>(watermark, 1);
    results.clear();
    // Same failure containment as the single-stream worker: a forward
    // that throws fails the batch over to the analytic emergency path.
    try {
      process_batch(batch, degraded, results);
    } catch (const std::exception&) {
      batch_errors_.fetch_add(1, std::memory_order_relaxed);
      errors_metric.add();
      results.clear();
      emergency_results(batch, results);
    }

    processed_.fetch_add(n, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    events_metric.add(n);
    batches_metric.add();
    // Per-stream accounting and localizer feed precede the sink, the
    // same observer-before-sink order the single-stream server keeps.
    account_batch(batch, results);
    sink_(results);
  }
}

void StreamRouter::process_batch(std::span<const ServeRequest> batch,
                                 bool degraded,
                                 std::vector<ServeResult>& results) {
  static tm::Histogram& infer_ms = tm::histogram("serve.stream.infer_ms");
  static tm::Histogram& latency_ms = tm::histogram("serve.stream.latency_ms");
  static tm::Counter& degraded_metric =
      tm::counter("serve.stream.degraded_events");

  // Identical staging + forward to InferenceServer::process_batch —
  // the K=1 equality suite depends on this path producing bit-equal
  // outputs for bit-equal inputs.
  thread_local std::vector<recon::ComptonRing> rings;
  thread_local std::vector<double> polar;
  rings.clear();
  polar.clear();
  for (const ServeRequest& r : batch) {
    rings.push_back(r.ring);
    polar.push_back(r.polar_deg_guess);
  }

  BatchOutputs out;
  {
    tm::ScopedTimer timer(infer_ms);
    if (engine_) {
      out = engine_(rings, polar, degraded);
    } else {
      auto fused = models_.infer_batch(rings, polar, config_.d_eta_floor,
                                       config_.d_eta_cap,
                                       /*allow_deta=*/!degraded);
      out.is_background = std::move(fused.is_background);
      out.d_eta = std::move(fused.d_eta);
      out.degraded = degraded && models_.deta != nullptr;
    }
  }
  ADAPT_REQUIRE(out.is_background.size() == batch.size() &&
                    out.d_eta.size() == batch.size(),
                "inference engine output count mismatch");

  if (out.degraded) {
    degraded_.fetch_add(batch.size(), std::memory_order_relaxed);
    degraded_metric.add(batch.size());
  }
  if (out.fallback)
    fallback_.fetch_add(batch.size(), std::memory_order_relaxed);

  const auto now = std::chrono::steady_clock::now();
  results.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ServeResult res;
    res.sequence = batch[i].sequence;
    res.stream_id = batch[i].stream_id;
    res.is_background = out.is_background[i];
    res.d_eta = out.d_eta[i];
    res.degraded = out.degraded;
    res.fallback = out.fallback;
    res.latency_ms = std::chrono::duration<double, std::milli>(
                         now - batch[i].enqueued_at)
                         .count();
    latency_ms.record(res.latency_ms);
    if (res.is_background) background_.fetch_add(1, std::memory_order_relaxed);
    results.push_back(res);
  }
}

void StreamRouter::emergency_results(std::span<const ServeRequest> batch,
                                     std::vector<ServeResult>& results) {
  static tm::Counter& fallback_metric =
      tm::counter("serve.stream.fallback_events");

  fallback_.fetch_add(batch.size(), std::memory_order_relaxed);
  fallback_metric.add(batch.size());
  const auto now = std::chrono::steady_clock::now();
  results.reserve(batch.size());
  for (const ServeRequest& r : batch) {
    ServeResult res;
    res.sequence = r.sequence;
    res.stream_id = r.stream_id;
    res.is_background = 0;  // No veto on the emergency path.
    const double analytic =
        std::isfinite(r.ring.d_eta) ? r.ring.d_eta : config_.d_eta_floor;
    res.d_eta = std::clamp(analytic, config_.d_eta_floor, config_.d_eta_cap);
    res.fallback = true;
    res.latency_ms =
        std::chrono::duration<double, std::milli>(now - r.enqueued_at).count();
    results.push_back(res);
  }
}

void StreamRouter::account_batch(std::span<const ServeRequest> batch,
                                 std::span<const ServeResult> results) {
  static tm::Counter& mixed_metric = tm::counter("serve.stream.mixed_batches");
  static tm::Histogram& streams_per_batch =
      tm::histogram("serve.stream.batch_streams");

  // The shard filler emits contiguous per-stream runs, so one pass
  // over run boundaries demultiplexes the batch.
  std::size_t runs = 0;
  std::size_t begin = 0;
  while (begin < batch.size()) {
    std::size_t end = begin + 1;
    while (end < batch.size() &&
           batch[end].stream_id == batch[begin].stream_id)
      ++end;
    ++runs;

    PerStream& entry = stream_entry(batch[begin].stream_id);
    const std::size_t count = end - begin;
    entry.processed.fetch_add(count, std::memory_order_relaxed);
    std::uint64_t background = 0;
    std::uint64_t degraded = 0;
    std::uint64_t fallback = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (results[i].is_background) ++background;
      if (results[i].degraded) ++degraded;
      if (results[i].fallback) ++fallback;
    }
    if (background)
      entry.background.fetch_add(background, std::memory_order_relaxed);
    if (degraded)
      entry.degraded.fetch_add(degraded, std::memory_order_relaxed);
    if (fallback)
      entry.fallback.fetch_add(fallback, std::memory_order_relaxed);
    if (entry.localizer)
      entry.localizer->observe(batch.subspan(begin, count),
                               results.subspan(begin, count));
    begin = end;
  }
  streams_per_batch.record(static_cast<double>(runs));
  if (runs > 1) {
    mixed_batches_.fetch_add(1, std::memory_order_relaxed);
    mixed_metric.add();
  }
}

StreamRouter::Stats StreamRouter::stats() const {
  Stats s;
  s.submitted = next_sequence_.load(std::memory_order_relaxed) - 1;
  s.processed = processed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mixed_batches = mixed_batches_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.background = background_.load(std::memory_order_relaxed);
  s.fallback = fallback_.load(std::memory_order_relaxed);
  s.batch_errors = batch_errors_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    s.shed += shard->stats().shed;
    // Streams never span shards, so the shard counts sum exactly.
    s.streams += shard->stream_count();
  }
  return s;
}

std::vector<StreamRouter::StreamStats> StreamRouter::stream_stats() const {
  // The shard ledgers are the source of truth for which streams exist
  // and for submitted / shed / resident (`pushed` counts admissions,
  // i.e. successful submits); the router registry — populated
  // worker-side — contributes the processing-side counters, which may
  // briefly trail the shard ledger for a stream the workers have not
  // reached yet.  Shard rows are collected before the registry lock so
  // the two locks are never held together.
  std::vector<std::vector<ShardQueue::StreamStats>> by_shard;
  by_shard.reserve(shards_.size());
  for (const auto& shard : shards_) by_shard.push_back(shard->stream_stats());

  std::vector<StreamStats> rows;
  core::ReaderLock lock(streams_mutex_);
  for (const auto& shard_rows : by_shard) {
    for (const ShardQueue::StreamStats& shard_row : shard_rows) {
      StreamStats row;
      row.stream_id = shard_row.stream_id;
      row.submitted = shard_row.pushed;
      row.shed = shard_row.shed;
      row.resident = shard_row.resident;
      const auto it = streams_.find(shard_row.stream_id);
      if (it != streams_.end()) {
        const PerStream& entry = *it->second;
        row.processed = entry.processed.load(std::memory_order_relaxed);
        row.background = entry.background.load(std::memory_order_relaxed);
        row.degraded = entry.degraded.load(std::memory_order_relaxed);
        row.fallback = entry.fallback.load(std::memory_order_relaxed);
        if (entry.localizer)
          row.alert_fired = entry.localizer->status().alert_fired;
      }
      rows.push_back(row);
    }
  }
  return rows;
}

std::optional<StreamLocalizer::Status> StreamRouter::localizer_status(
    std::uint32_t stream_id) const {
  core::ReaderLock lock(streams_mutex_);
  const auto it = streams_.find(stream_id);
  if (it == streams_.end() || !it->second->localizer) return std::nullopt;
  return it->second->localizer->status();
}

std::size_t StreamRouter::queue_depth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->depth();
  return total;
}

}  // namespace adapt::serve
