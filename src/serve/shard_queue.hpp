#pragma once

/// \file shard_queue.hpp
/// One shard of the multi-stream serving layer: a bounded MPSC queue
/// that keeps a separate FIFO *per logical stream* and assembles
/// micro-batches by quantum round-robin across the streams resident in
/// the shard.
///
/// Why not one FIFO per shard (the single-stream EventQueue)?  Because
/// a FIFO is exactly how one flooding stream starves its neighbors: at
/// 10:1 skew the hot stream owns ~90% of every batch and the trickle
/// streams' events age behind its backlog.  Here each stream queues
/// into its own ring FIFO and the batch filler cycles streams, taking up
/// to `quantum` requests per visit (deficit round-robin with equal
/// weights — every resident stream gets the same share of every batch
/// it has events for).  The round-robin cursor persists across
/// batches, so fairness holds across flushes, not just within one.
///
/// Admission control (two caps, both shed-oldest *within a stream* so
/// overload stays where it was caused):
///   * per-stream depth cap — a stream at its cap sheds its own oldest
///     request to admit the new one.  A flooding stream therefore
///     absorbs all of its own shedding; trickle streams never pay.
///   * shard capacity — when the whole shard is full (possible only
///     when per_stream_cap * streams > capacity), the deepest stream
///     sheds its oldest.  The deepest stream is by construction the
///     one contributing most to the overload.
/// Every shed is counted per stream and under `serve.stream.shed`.
///
/// Conservation ledger: like EventQueue, pushed == popped + shed +
/// resident is checked at teardown in checked builds, and stats() /
/// stream_stats() expose the ledger for the stress suites.
///
/// Thread-safety: any number of producers push; ONE consumer (the
/// router worker that owns this shard) pops.  All state is guarded by
/// the shard mutex — the innermost lock of the serve layer, same slot
/// as the EventQueue mutex in DESIGN.md's ordering: nothing else is
/// acquired while holding it and no callback ever runs under it.

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "serve/request.hpp"

namespace adapt::serve {

struct ShardQueueConfig {
  /// Total requests resident across all streams of this shard.
  std::size_t capacity = 4096;
  /// Per-stream resident cap (admission control).
  std::size_t per_stream_cap = 1024;
  /// Requests taken from one stream per round-robin visit.
  std::size_t quantum = 16;
};

class ShardQueue {
 public:
  explicit ShardQueue(const ShardQueueConfig& config);

  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  /// Checks the conservation ledger (checked builds): pushed ==
  /// popped + shed + resident.
  ~ShardQueue();

  /// Producer side; `request.stream_id` selects the sub-queue.
  /// Returns false iff the shard is closed (request dropped and
  /// counted as rejected).  Never blocks: overload sheds (see file
  /// comment), it does not backpressure the readout.
  bool push(ServeRequest request);

  /// Consumer side: quantum round-robin batch fill.  Waits up to
  /// `max_wait` for the shard to become non-empty (zero = poll: flush
  /// whatever is visible now, the EventQueue zero-deadline semantics);
  /// then appends up to `max_items` requests to `out`, cycling the
  /// resident streams.  Returns the number of requests popped — 0 when
  /// the wait expired on an open-but-empty shard OR the shard is
  /// closed and drained; use drained() to tell them apart.  Within the
  /// batch, each stream's requests stay in stream order (contiguous
  /// runs of at most `quantum`).
  std::size_t pop_batch(std::vector<ServeRequest>& out, std::size_t max_items,
                        std::chrono::microseconds max_wait);

  /// Close the shard: producers are refused from now on; the consumer
  /// drains what is left.
  void close();

  /// True once closed and fully drained — the consumer's exit signal.
  bool drained() const;

  std::size_t depth() const;
  std::size_t stream_depth(std::uint32_t stream_id) const;
  std::size_t capacity() const { return config_.capacity; }
  bool closed() const;

  /// Aggregate conservation ledger (one lock, mutually consistent).
  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t resident = 0;
  };
  Stats stats() const;

  /// Per-stream ledger row.
  struct StreamStats {
    std::uint32_t stream_id = 0;
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::uint64_t shed = 0;
    std::uint64_t resident = 0;
  };
  /// Snapshot of every stream this shard has ever seen, in first-seen
  /// order (the round-robin order).
  std::vector<StreamStats> stream_stats() const;

  /// Number of distinct streams this shard has ever seen.
  std::size_t stream_count() const;

 private:
  /// Growable power-of-two ring FIFO.  A std::deque here would cost
  /// one malloc+free per request: at sizeof(ServeRequest) == 264 a
  /// libstdc++ deque block (512 bytes) holds a single element.  The
  /// ring doubles geometrically, stays resident once grown (bounded by
  /// per_stream_cap), and steady-state push/pop never touch the
  /// allocator.
  class RequestRing {
   public:
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    void push_back(ServeRequest request) {
      if (count_ == buf_.size()) grow();
      buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(request);
      ++count_;
    }
    ServeRequest pop_front() {
      ServeRequest out = std::move(buf_[head_]);
      head_ = (head_ + 1) & (buf_.size() - 1);
      --count_;
      return out;
    }

   private:
    void grow();
    std::vector<ServeRequest> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  struct Stream {
    std::uint32_t id = 0;
    RequestRing fifo;
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::uint64_t shed = 0;
  };

  /// Stream for `id`, created on first sight.  Caller holds mutex_.
  Stream& stream_locked(std::uint32_t id) ADAPT_REQUIRES(mutex_);
  /// Shed the oldest request of the deepest stream.  Caller holds
  /// mutex_; the shard must be non-empty.
  void shed_from_deepest_locked() ADAPT_REQUIRES(mutex_);

  const ShardQueueConfig config_;
  mutable core::Mutex mutex_;
  core::CondVar nonempty_;
  std::unordered_map<std::uint32_t, Stream> streams_ ADAPT_GUARDED_BY(mutex_);
  /// First-seen stream order; the round-robin cursor walks this.
  /// Cached node pointers (stable for unordered_map) so the per-visit
  /// walk in pop_batch — which touches every resident stream, mostly
  /// empty ones under high stream counts — costs a deref, not a hash
  /// lookup.
  std::vector<Stream*> rr_order_ ADAPT_GUARDED_BY(mutex_);
  std::size_t rr_cursor_ ADAPT_GUARDED_BY(mutex_) = 0;
  std::size_t size_ ADAPT_GUARDED_BY(mutex_) = 0;
  bool closed_ ADAPT_GUARDED_BY(mutex_) = false;
  std::uint64_t pushed_ ADAPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t popped_ ADAPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ ADAPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ ADAPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace adapt::serve
