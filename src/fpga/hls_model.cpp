#include "fpga/hls_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/contract.hpp"

namespace adapt::fpga {

const char* to_string(DataType t) {
  return t == DataType::kInt8 ? "INT8" : "FP32";
}

std::size_t KernelLayerSpec::weight_bytes(DataType t) const {
  const std::size_t per_value = t == DataType::kInt8 ? 1 : 4;
  return macs() * per_value;
}

DataTypeModel DataTypeModel::int8() {
  DataTypeModel m;
  // Two int8 MACs pack into one DSP48; the sustained rate and unit
  // costs below reproduce the paper's Vitis HLS 2021.1 synthesis of
  // the background network (Table III).
  m.sustained_macs_per_cycle = 48.0;
  m.dsp_per_mac_unit = 0.67;
  m.simd = 16;
  m.ff_per_mac_unit = 54;
  m.lut_per_mac_unit = 113;
  m.bytes_per_value = 1;
  m.bank_replication = 1;
  return m;
}

DataTypeModel DataTypeModel::fp32() {
  DataTypeModel m;
  // FP32 multiply-add consumes several DSPs and deep adder pipelines;
  // sustained throughput is ~1.75x lower than INT8.
  m.sustained_macs_per_cycle = 27.3;
  m.dsp_per_mac_unit = 4.16;
  m.simd = 4;
  m.ff_per_mac_unit = 350;
  m.lut_per_mac_unit = 427;
  m.bytes_per_value = 4;
  m.bank_replication = 2;
  return m;
}

DataTypeModel DataTypeModel::narrow_int(int bits) {
  ADAPT_REQUIRE(bits >= 2 && bits <= 8, "narrow int bits in [2, 8]");
  DataTypeModel m = int8();
  const double pack = 8.0 / static_cast<double>(bits);
  // DSP48 packing improves with narrower operands; arithmetic cost and
  // storage shrink proportionally, logic cost roughly linearly.
  m.sustained_macs_per_cycle *= pack;
  m.dsp_per_mac_unit /= pack;
  m.ff_per_mac_unit = static_cast<std::size_t>(
      static_cast<double>(m.ff_per_mac_unit) / pack);
  m.lut_per_mac_unit = static_cast<std::size_t>(
      static_cast<double>(m.lut_per_mac_unit) / pack);
  m.bytes_per_value = static_cast<double>(bits) / 8.0;
  return m;
}

std::size_t KernelReport::batch_latency_cycles(std::size_t n) const {
  if (n == 0) return 0;
  return n * ii_cycles + (latency_cycles - ii_cycles);
}

double KernelReport::batch_latency_ms(std::size_t n) const {
  return static_cast<double>(batch_latency_cycles(n)) * clock_ns * 1e-6;
}

double KernelReport::throughput_per_second() const {
  ADAPT_REQUIRE(ii_cycles > 0, "kernel has zero II");
  return 1e9 / (static_cast<double>(ii_cycles) * clock_ns);
}

namespace {

/// Pipeline fill depth of one stage: the reduction-tree depth over the
/// input fan-in plus the per-datatype operator latency.
std::size_t stage_depth(const KernelLayerSpec& layer, DataType t) {
  const auto fan_in =
      static_cast<double>(std::max<std::size_t>(layer.in_features, 2));
  const auto tree = static_cast<std::size_t>(std::ceil(std::log2(fan_in)));
  // FP32 adders are ~4-cycle pipelined cores; int adds are 1 cycle.
  return t == DataType::kInt8 ? tree + 6 : tree * 4 + 10;
}

}  // namespace

KernelReport synthesize(const std::vector<KernelLayerSpec>& layers,
                        DataType data_type, const HlsConfig& config,
                        const DataTypeModel* model_override) {
  ADAPT_REQUIRE(!layers.empty(), "kernel needs at least one layer");
  const DataTypeModel model =
      model_override ? *model_override
                     : (data_type == DataType::kInt8 ? DataTypeModel::int8()
                                                     : DataTypeModel::fp32());
  ADAPT_REQUIRE(model.sustained_macs_per_cycle > 0.0,
                "model throughput must be positive");

  KernelReport report;
  report.data_type = data_type;
  report.clock_ns = config.clock_ns;
  report.stages.reserve(layers.size());

  std::size_t max_stage_ii = 0;
  std::size_t total_depth = 0;
  for (const KernelLayerSpec& layer : layers) {
    ADAPT_REQUIRE(layer.in_features > 0 && layer.out_features > 0,
                  "layer dims must be positive");
    StageReport stage;
    stage.ii_cycles = static_cast<std::size_t>(
        std::ceil(static_cast<double>(layer.macs()) /
                  model.sustained_macs_per_cycle));
    stage.depth_cycles = stage_depth(layer, data_type);

    // Instantiated MAC hardware: every output channel gets a SIMD-wide
    // dot-product engine (the "parallelize computational logic to the
    // extent possible" optimization the paper applies).
    stage.mac_units =
        layer.out_features * std::min(model.simd, layer.in_features);
    stage.dsp = static_cast<std::size_t>(
        std::ceil(static_cast<double>(stage.mac_units) *
                  model.dsp_per_mac_unit));

    const auto bytes = static_cast<std::size_t>(
        std::ceil(static_cast<double>(layer.macs()) * model.bytes_per_value) *
        static_cast<double>(model.bank_replication));
    stage.bram = bytes <= config.lutram_threshold_bytes
                     ? 0
                     : (bytes + config.bram_bytes - 1) / config.bram_bytes;

    // A pipelined stage initiates at least once and fills over at
    // least one cycle — a zero here would make the report claim
    // infinite throughput.
    ADAPT_ENSURE(stage.ii_cycles >= 1, "stage II must be at least one cycle");
    ADAPT_ENSURE(stage.depth_cycles >= 1, "stage depth must be positive");
    max_stage_ii = std::max(max_stage_ii, stage.ii_cycles);
    total_depth += stage.depth_cycles;
    report.dsp += stage.dsp;
    report.bram += stage.bram;
    report.ff += stage.mac_units * model.ff_per_mac_unit;
    report.lut += stage.mac_units * model.lut_per_mac_unit;
    report.stages.push_back(stage);
  }

  report.ff += config.base_ff;
  report.lut += config.base_lut;
  report.ii_cycles = max_stage_ii + config.control_overhead_cycles;
  // First-result latency: the bottleneck interval, every stage's fill
  // depth, and the AXI transfer beats (which scale with value width).
  report.latency_cycles =
      report.ii_cycles + total_depth +
      static_cast<std::size_t>(std::ceil(
          static_cast<double>(config.io_beats) * model.bytes_per_value));
  // First-result latency can never beat the initiation interval.
  ADAPT_ENSURE(report.latency_cycles >= report.ii_cycles,
               "latency must cover at least one initiation interval");
  return report;
}

std::vector<KernelLayerSpec> kernel_spec_from(
    const std::vector<quant::FusedLayer>& fused) {
  std::vector<KernelLayerSpec> out;
  out.reserve(fused.size());
  for (const auto& f : fused)
    out.push_back(KernelLayerSpec{f.in_features(), f.out_features(), f.relu});
  return out;
}

std::vector<KernelLayerSpec> kernel_spec_from(const quant::QuantizedMlp& mlp) {
  std::vector<KernelLayerSpec> out;
  out.reserve(mlp.layers().size());
  for (const auto& l : mlp.layers())
    out.push_back(KernelLayerSpec{l.in_features, l.out_features, l.relu});
  return out;
}

}  // namespace adapt::fpga
