#pragma once

/// \file hls_model.hpp
/// Analytic model of the paper's HLS FPGA kernel (Sec. V, Table III).
///
/// The paper synthesizes the (layer-swapped, BN-fused, sigmoid-free)
/// background network with Vitis HLS 2021.1 as a deep dataflow
/// pipeline and reports latency L, initiation interval II, and
/// resource usage for INT8 and FP32 variants.  We have no FPGA
/// toolchain in this environment, so this module substitutes an
/// analytic dataflow model with the same structure real HLS kernels
/// obey:
///
///  * each fused layer is a dataflow stage; the kernel II is the
///    maximum stage II plus loop-control overhead;
///  * a stage's II is its MAC count divided by the sustained
///    MACs/cycle the datatype's arithmetic supports
///    (INT8 DSP packing sustains ~1.75x the FP32 rate — the paper's
///    observed throughput ratio);
///  * pipelined batch latency follows the paper's law
///    n * II + (L - II)  [37];
///  * weights below a LUTRAM threshold live in distributed RAM, the
///    rest in BRAM18 blocks (FP32 additionally replicates banks for
///    port width);
///  * DSP/FF/LUT scale with the instantiated MAC units (output
///    channels x SIMD factor) at per-datatype unit costs.
///
/// The unit-cost constants are calibrated against the paper's reported
/// synthesis (Table III); the *model structure* is what carries the
/// INT8-vs-FP32 comparison, so changing network shape or clock gives
/// sensible extrapolations.

#include <cstddef>
#include <string>
#include <vector>

#include "quant/fuse.hpp"
#include "quant/quantized_mlp.hpp"

namespace adapt::fpga {

enum class DataType { kInt8, kFp32 };

const char* to_string(DataType t);

/// One fully connected stage of the kernel.
struct KernelLayerSpec {
  std::size_t in_features = 0;
  std::size_t out_features = 0;
  bool relu = false;

  std::size_t macs() const { return in_features * out_features; }
  std::size_t weight_bytes(DataType t) const;
};

/// Per-datatype synthesis characteristics.  Defaults are calibrated to
/// Vitis HLS 2021.1 synthesis of the background network as reported in
/// the paper's Table III.
struct DataTypeModel {
  double sustained_macs_per_cycle = 0.0;  ///< Pipeline throughput cap.
  double dsp_per_mac_unit = 0.0;  ///< DSP slices per instantiated MAC.
  std::size_t simd = 0;           ///< Input-side unroll per channel.
  std::size_t ff_per_mac_unit = 0;
  std::size_t lut_per_mac_unit = 0;
  double bytes_per_value = 0.0;   ///< Fractional for sub-byte widths.
  std::size_t bank_replication = 1;  ///< BRAM banks per logical array.

  static DataTypeModel int8();
  static DataTypeModel fp32();

  /// Extrapolated model for narrow integer weights (paper future work:
  /// broader quantization strategies).  DSP packing and storage scale
  /// with the bit width; sustained throughput improves with packing.
  static DataTypeModel narrow_int(int bits);
};

struct HlsConfig {
  double clock_ns = 10.0;  ///< Conservative 100 MHz (paper Sec. V).
  std::size_t control_overhead_cycles = 8;  ///< Loop entry/flush.
  std::size_t io_beats = 140;  ///< AXI transfer beats per inference,
                               ///< scaled by bytes_per_value.
  std::size_t lutram_threshold_bytes = 8192;  ///< Arrays at or below
                                              ///< this live in LUTRAM.
  std::size_t bram_bytes = 2304;  ///< One BRAM18 (18 kbit).
  std::size_t base_ff = 22000;    ///< Interface/control flip-flops.
  std::size_t base_lut = 50000;   ///< Interface/control LUTs.
};

struct StageReport {
  std::size_t ii_cycles = 0;
  std::size_t depth_cycles = 0;  ///< Pipeline fill depth.
  std::size_t dsp = 0;
  std::size_t bram = 0;  ///< 0 when the stage fits in LUTRAM.
  std::size_t mac_units = 0;
};

struct KernelReport {
  DataType data_type = DataType::kFp32;
  std::size_t latency_cycles = 0;
  std::size_t ii_cycles = 0;
  std::size_t bram = 0;
  std::size_t dsp = 0;
  std::size_t ff = 0;
  std::size_t lut = 0;
  double clock_ns = 10.0;
  std::vector<StageReport> stages;

  /// Total latency for n pipelined inputs: n * II + (L - II) cycles.
  std::size_t batch_latency_cycles(std::size_t n) const;
  double batch_latency_ms(std::size_t n) const;

  /// Sustained inferences per second at the configured clock.
  double throughput_per_second() const;
};

/// Synthesize the analytic kernel for a stack of fused layers.
KernelReport synthesize(const std::vector<KernelLayerSpec>& layers,
                        DataType data_type, const HlsConfig& config = {},
                        const DataTypeModel* model_override = nullptr);

/// Convenience adapters from the quantization module's layer forms.
std::vector<KernelLayerSpec> kernel_spec_from(
    const std::vector<quant::FusedLayer>& fused);
std::vector<KernelLayerSpec> kernel_spec_from(const quant::QuantizedMlp& mlp);

}  // namespace adapt::fpga
