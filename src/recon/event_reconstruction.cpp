#include "recon/event_reconstruction.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"
#include "physics/compton.hpp"
#include "physics/cross_sections.hpp"
#include "recon/error_propagation.hpp"

namespace adapt::recon {

using core::kElectronMassMeV;
using core::Vec3;
using detector::MeasuredHit;

EventReconstructor::EventReconstructor(const detector::Material& material,
                                       const ReconstructionConfig& config)
    : material_(material), config_(config) {
  ADAPT_REQUIRE(config.max_hits_for_ordering >= 2,
                "ordering needs at least two hits");
  ADAPT_REQUIRE(config.eta_slack >= 0.0, "eta slack must be >= 0");
}

namespace {

/// Mean transverse position uncertainty of a hit [cm].
double mean_sigma(const MeasuredHit& h) {
  return (h.sigma_position.x + h.sigma_position.y + h.sigma_position.z) / 3.0;
}

/// Uncertainty of the geometric cosine at the vertex joining segments
/// a->b and b->c, from the endpoint position uncertainties.
double geometric_cos_sigma(const MeasuredHit& a, const MeasuredHit& b,
                           const MeasuredHit& c) {
  const double l1 = (b.position - a.position).norm();
  const double l2 = (c.position - b.position).norm();
  if (l1 <= 0.0 || l2 <= 0.0) return 1.0;
  const double t1 = std::sqrt(mean_sigma(a) * mean_sigma(a) +
                              mean_sigma(b) * mean_sigma(b)) / l1;
  const double t2 = std::sqrt(mean_sigma(b) * mean_sigma(b) +
                              mean_sigma(c) * mean_sigma(c)) / l2;
  return std::sqrt(t1 * t1 + t2 * t2);
}

}  // namespace

std::optional<double> EventReconstructor::ordering_score(
    const std::vector<const MeasuredHit*>& order, double e_total) const {
  const std::size_t n = order.size();
  ADAPT_REQUIRE(n >= 2, "ordering needs at least two hits");

  // Walk the trajectory, tracking the photon energy entering each hit.
  // Validity: energy must remain positive, and each non-final hit must
  // be a kinematically possible Compton scatter (within noise slack).
  const double slack = config_.eta_slack + 0.25;  // Looser than the final
                                                  // eta cut: noise on the
                                                  // interior energies is
                                                  // larger.
  double e_in = e_total;
  double chi2 = 0.0;
  int n_vertices = 0;

  for (std::size_t j = 0; j + 1 < n; ++j) {
    const double deposit = order[j]->energy;
    const double e_out = e_in - deposit;
    if (e_out <= 0.0) return std::nullopt;

    const double cos_kin = physics::compton_cos_theta(e_in, e_out);
    if (cos_kin < -1.0 - slack || cos_kin > 1.0 + slack) return std::nullopt;

    if (j >= 1) {
      // Interior vertex: the geometric bend must match the kinematic
      // angle.  Segments (j-1 -> j) and (j -> j+1).
      const Vec3 seg_in =
          (order[j]->position - order[j - 1]->position).normalized();
      const Vec3 seg_out =
          (order[j + 1]->position - order[j]->position).normalized();
      const double cos_geo = seg_in.dot(seg_out);

      const double s_energy_in = kElectronMassMeV / (e_in * e_in) *
                                 std::max(order[j - 1]->sigma_energy, 1e-4);
      const double s_energy_out = kElectronMassMeV / (e_out * e_out) *
                                  std::max(order[j]->sigma_energy, 1e-4);
      const double s_geo =
          geometric_cos_sigma(*order[j - 1], *order[j], *order[j + 1]);
      const double sigma2 = s_energy_in * s_energy_in +
                            s_energy_out * s_energy_out + s_geo * s_geo;
      const double d = cos_geo - std::clamp(cos_kin, -1.0, 1.0);
      chi2 += d * d / std::max(sigma2, 1e-6);
      ++n_vertices;
    }
    e_in = e_out;
  }

  if (n_vertices > 0) return chi2;

  // Two-hit event: no interior vertex to test.  Rank the two possible
  // orderings by physical plausibility: the Klein-Nishina weight of
  // the implied first-scatter angle, times the attenuation probability
  // density of the observed lever arm at the post-scatter energy.
  const double e1 = order[0]->energy;
  const double e_prime = e_total - e1;
  const double cos_theta =
      std::clamp(physics::ring_cosine(e_total, e1), -1.0, 1.0);

  // Klein-Nishina angular weight (unnormalized, bounded in (0, 2]).
  const double r = physics::compton_scattered_energy(e_total, cos_theta) /
                   e_total;
  const double kn = r * r * (r + 1.0 / r - (1.0 - cos_theta * cos_theta));

  const double lever =
      (order[1]->position - order[0]->position).norm();
  const double mu = physics::attenuation(material_, e_prime).total();
  const double travel = mu * std::exp(-mu * lever);

  const double likelihood = std::max(kn * travel, 1e-300);
  return -std::log(likelihood);
}

std::optional<ComptonRing> EventReconstructor::reconstruct(
    const detector::MeasuredEvent& event, ReconstructionStats* stats) const {
  const auto count = [&stats](std::uint64_t ReconstructionStats::*field) {
    if (stats) ++(stats->*field);
  };

  if (event.hits.size() < 2) {
    count(&ReconstructionStats::too_few_hits);
    return std::nullopt;
  }

  double e_total = 0.0;
  double var_e_total = 0.0;
  for (const MeasuredHit& h : event.hits) {
    e_total += h.energy;
    var_e_total += h.sigma_energy * h.sigma_energy;
  }
  if (e_total < config_.min_total_energy ||
      e_total > config_.max_total_energy) {
    count(&ReconstructionStats::energy_cut);
    return std::nullopt;
  }

  // Candidate hits for ordering: all of them, or the most energetic
  // max_hits_for_ordering when the event is larger.
  std::vector<const MeasuredHit*> candidates;
  candidates.reserve(event.hits.size());
  for (const MeasuredHit& h : event.hits) candidates.push_back(&h);
  if (static_cast<int>(candidates.size()) > config_.max_hits_for_ordering) {
    std::sort(candidates.begin(), candidates.end(),
              [](const MeasuredHit* a, const MeasuredHit* b) {
                return a->energy > b->energy;
              });
    candidates.resize(static_cast<std::size_t>(config_.max_hits_for_ordering));
  }

  // Enumerate permutations; keep the best-scoring valid ordering.
  std::vector<std::size_t> index(candidates.size());
  std::iota(index.begin(), index.end(), 0u);
  std::sort(index.begin(), index.end());

  std::optional<double> best_score;
  std::optional<double> second_score;
  std::vector<const MeasuredHit*> best_order;
  std::vector<const MeasuredHit*> order(candidates.size());
  do {
    for (std::size_t i = 0; i < index.size(); ++i)
      order[i] = candidates[index[i]];
    const auto score = ordering_score(order, e_total);
    if (!score) continue;
    if (!best_score || *score < *best_score) {
      second_score = best_score;
      best_score = score;
      best_order = order;
    } else if (!second_score || *score < *second_score) {
      second_score = score;
    }
  } while (std::next_permutation(index.begin(), index.end()));

  if (!best_score) {
    count(&ReconstructionStats::eta_invalid);
    return std::nullopt;
  }

  // Two-hit events carry no interior-vertex cross-check, so demand the
  // chosen ordering be decisively more likely than its reverse.
  if (best_order.size() == 2 && second_score &&
      *second_score - *best_score < config_.two_hit_margin) {
    count(&ReconstructionStats::ambiguous_order);
    return std::nullopt;
  }

  const MeasuredHit& first = *best_order[0];
  const MeasuredHit& second = *best_order[1];

  const double lever = (first.position - second.position).norm();
  if (lever < config_.min_lever_arm) {
    count(&ReconstructionStats::lever_arm_cut);
    return std::nullopt;
  }

  const double e1 = first.energy;
  if (e1 <= 0.0 || e1 >= e_total) {
    count(&ReconstructionStats::eta_invalid);
    return std::nullopt;
  }
  double eta = physics::ring_cosine(e_total, e1);
  if (eta < -1.0 - config_.eta_slack || eta > 1.0 + config_.eta_slack) {
    count(&ReconstructionStats::eta_invalid);
    return std::nullopt;
  }
  eta = std::clamp(eta, -1.0, 1.0);

  const bool multi_hit = best_order.size() >= 3;
  if (multi_hit && *best_score > config_.max_order_chi2) {
    count(&ReconstructionStats::chi2_cut);
    return std::nullopt;
  }

  ComptonRing ring;
  ring.axis = (first.position - second.position).normalized();
  ring.eta = eta;
  ring.e_total = e_total;
  ring.sigma_e_total = std::sqrt(var_e_total);
  ring.hit1 = RingHit{first.position, first.energy, first.sigma_position,
                      first.sigma_energy};
  ring.hit2 = RingHit{second.position, second.energy, second.sigma_position,
                      second.sigma_energy};
  ring.n_hits = static_cast<int>(event.hits.size());
  ring.order_chi2 = multi_hit ? *best_score : 0.0;
  ring.origin = event.origin;
  ring.true_direction = event.true_direction;
  ring.d_eta = propagate_d_eta(ring.hit1, ring.hit2, e_total,
                               ring.sigma_e_total, eta, config_.min_d_eta);

  // What every consumer (localizer, NN features, training data) is
  // entitled to assume about an accepted ring.
  ADAPT_CHECK_UNIT_VECTOR(ring.axis, "ring.axis");
  ADAPT_CHECK_COSINE(ring.eta, "ring.eta");
  ADAPT_CHECK_FINITE(ring.e_total, "ring.e_total");
  ADAPT_ENSURE(ring.d_eta > 0.0 && std::isfinite(ring.d_eta),
               "accepted ring must carry a positive finite d_eta");

  count(&ReconstructionStats::accepted);
  return ring;
}

std::vector<ComptonRing> EventReconstructor::reconstruct_all(
    const std::vector<detector::MeasuredEvent>& events,
    ReconstructionStats* stats) const {
  // Chunked through core::parallel_for: each chunk owns results[i] for
  // its indices plus its own stats slot, so iterations share nothing
  // and the totals are bit-identical for any thread count (stats merge
  // in chunk-index order, not thread order).
  constexpr std::size_t kChunk = 16;
  const std::size_t n = events.size();
  const std::size_t n_chunks = (n + kChunk - 1) / kChunk;
  std::vector<std::optional<ComptonRing>> results(n);
  std::vector<ReconstructionStats> local_stats(n_chunks);

  core::parallel_for(n_chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * kChunk;
    const std::size_t end = std::min(begin + kChunk, n);
    for (std::size_t i = begin; i < end; ++i)
      results[i] = reconstruct(events[i], &local_stats[chunk]);
  });

  std::vector<ComptonRing> rings;
  rings.reserve(events.size());
  for (auto& r : results) {
    if (r) rings.push_back(std::move(*r));
  }

  ReconstructionStats merged;
  for (const auto& s : local_stats) {
    merged.accepted += s.accepted;
    merged.too_few_hits += s.too_few_hits;
    merged.energy_cut += s.energy_cut;
    merged.lever_arm_cut += s.lever_arm_cut;
    merged.eta_invalid += s.eta_invalid;
    merged.chi2_cut += s.chi2_cut;
    merged.ambiguous_order += s.ambiguous_order;
  }
  if (stats) {
    stats->accepted += merged.accepted;
    stats->too_few_hits += merged.too_few_hits;
    stats->energy_cut += merged.energy_cut;
    stats->lever_arm_cut += merged.lever_arm_cut;
    stats->eta_invalid += merged.eta_invalid;
    stats->chi2_cut += merged.chi2_cut;
    stats->ambiguous_order += merged.ambiguous_order;
  }

  // One add per field per window keeps the telemetry cost off the
  // per-event path; the counters mirror ReconstructionStats exactly.
  {
    namespace tm = core::telemetry;
    static tm::Counter& events_in = tm::counter("recon.events_in");
    static tm::Counter& rings_built = tm::counter("recon.rings_built");
    static tm::Counter& too_few = tm::counter("recon.rejected.too_few_hits");
    static tm::Counter& energy = tm::counter("recon.rejected.energy_cut");
    static tm::Counter& lever = tm::counter("recon.rejected.lever_arm_cut");
    static tm::Counter& eta = tm::counter("recon.rejected.eta_invalid");
    static tm::Counter& chi2 = tm::counter("recon.rejected.chi2_cut");
    static tm::Counter& ambiguous =
        tm::counter("recon.rejected.ambiguous_order");
    events_in.add(events.size());
    rings_built.add(merged.accepted);
    too_few.add(merged.too_few_hits);
    energy.add(merged.energy_cut);
    lever.add(merged.lever_arm_cut);
    eta.add(merged.eta_invalid);
    chi2.add(merged.chi2_cut);
    ambiguous.add(merged.ambiguous_order);
  }
  return rings;
}

}  // namespace adapt::recon
